//! Structured compilation diagnostics.
//!
//! The driver accumulates warnings, degradation notices, and per-unit
//! errors in a [`Diagnostics`] sink instead of aborting on the first
//! problem: one broken instruction costs that instruction, not the ISAX.
//! Every event carries the flow stage that raised it, the instruction or
//! `always`-block it refers to (when unit-local), and — where the frontend
//! provided one — the source [`Span`] of the offending definition.

use coredsl::error::Span;
use std::fmt;

/// How bad a diagnostic event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Compilation succeeded but with a caveat (e.g. a scheduler
    /// degradation). Exit code 0.
    Warning,
    /// A unit failed to compile; the rest of the ISAX is unaffected.
    /// Exit code 1.
    Error,
    /// An internal invariant was violated (IR verifier, netlist lint, or a
    /// contained panic) — a compiler bug, not a user error. Exit code 2.
    Fault,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
            Severity::Fault => "internal fault",
        })
    }
}

/// One diagnostic event with stage and source provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagEvent {
    pub severity: Severity,
    /// Flow stage that raised the event (`frontend`, `lower`, `verify`,
    /// `schedule`, `netlist`, ...).
    pub stage: &'static str,
    /// Instruction / always-block name, when unit-local.
    pub unit: Option<String>,
    /// Source location of the offending definition, when known.
    pub span: Option<Span>,
    /// Telemetry span (by raw id) that was open when the event fired, so
    /// trace consumers can line diagnostics up with pipeline stages.
    pub trace_span: Option<u64>,
    /// Stable machine-readable code (`LN0xxx`), when the frontend
    /// assigned one.
    pub code: Option<&'static str>,
    /// Suggested fix, when the frontend provided one.
    pub fixit: Option<String>,
    pub message: String,
}

impl fmt::Display for DiagEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.stage)?;
        if let Some(unit) = &self.unit {
            write!(f, " `{unit}`")?;
        }
        if let Some(span) = &self.span {
            write!(f, " at {span}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(code) = self.code {
            write!(f, " [{code}]")?;
        }
        if let Some(fixit) = &self.fixit {
            write!(f, "; help: {fixit}")?;
        }
        Ok(())
    }
}

/// Accumulating diagnostics sink for one compilation.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    /// All events, in the order they were raised.
    pub events: Vec<DiagEvent>,
    /// Telemetry span stamped onto events as they are recorded; the
    /// driver keeps this aligned with the span it is currently inside.
    current_trace_span: Option<u64>,
}

impl Diagnostics {
    /// Sets the telemetry span subsequently recorded events link to.
    pub fn set_trace_span(&mut self, span: Option<u64>) {
        self.current_trace_span = span;
    }

    /// Records an event.
    pub fn push(
        &mut self,
        severity: Severity,
        stage: &'static str,
        unit: Option<&str>,
        span: Option<Span>,
        message: impl Into<String>,
    ) {
        self.events.push(DiagEvent {
            severity,
            stage,
            unit: unit.map(str::to_owned),
            span,
            trace_span: self.current_trace_span,
            code: None,
            fixit: None,
            message: message.into(),
        });
    }

    /// Records a fully built event (used for frontend diagnostics that
    /// carry codes and fix-its), re-stamping its trace span.
    pub fn push_event(&mut self, mut event: DiagEvent) {
        event.trace_span = self.current_trace_span;
        self.events.push(event);
    }

    /// Records a warning.
    pub fn warn(
        &mut self,
        stage: &'static str,
        unit: Option<&str>,
        span: Option<Span>,
        message: impl Into<String>,
    ) {
        self.push(Severity::Warning, stage, unit, span, message);
    }

    /// Records a unit-level error.
    pub fn error(
        &mut self,
        stage: &'static str,
        unit: Option<&str>,
        span: Option<Span>,
        message: impl Into<String>,
    ) {
        self.push(Severity::Error, stage, unit, span, message);
    }

    /// Records an internal fault.
    pub fn fault(
        &mut self,
        stage: &'static str,
        unit: Option<&str>,
        span: Option<Span>,
        message: impl Into<String>,
    ) {
        self.push(Severity::Fault, stage, unit, span, message);
    }

    /// Re-records previously captured events — e.g. the core-independent
    /// lowering diagnostics a [`crate::driver::FrontendCache`] holds —
    /// re-stamping each with the currently active trace span so replayed
    /// events link into *this* compilation's trace, not the one they were
    /// first raised in.
    pub fn replay(&mut self, events: &[DiagEvent]) {
        for e in events {
            self.push_event(e.clone());
        }
    }

    /// Worst severity recorded, if any event exists.
    pub fn worst(&self) -> Option<Severity> {
        self.events.iter().map(|e| e.severity).max()
    }

    pub fn has_errors(&self) -> bool {
        self.worst() >= Some(Severity::Error)
    }

    pub fn has_faults(&self) -> bool {
        self.worst() == Some(Severity::Fault)
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one severity.
    pub fn of(&self, severity: Severity) -> impl Iterator<Item = &DiagEvent> {
        self.events.iter().filter(move |e| e.severity == severity)
    }

    /// Renders the full report, one event per line, with a trailing
    /// summary when anything was recorded.
    ///
    /// Events are rendered in a deterministic order — pipeline stage,
    /// then unit, then source span — *not* raise order, which varies
    /// with `--jobs N` interleaving. Identical cascaded events (same
    /// everything but the trace span) collapse into one line with a
    /// repeat count; the summary still counts every raw event.
    pub fn render(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        let mut sorted: Vec<&DiagEvent> = self.events.iter().collect();
        sorted.sort_by(|a, b| sort_key(a).cmp(&sort_key(b)));
        let mut i = 0;
        while i < sorted.len() {
            let e = sorted[i];
            let mut n = 1;
            while i + n < sorted.len() && same_event(e, sorted[i + n]) {
                n += 1;
            }
            let _ = if n == 1 {
                writeln!(out, "{e}")
            } else {
                writeln!(out, "{e} (x{n})")
            };
            i += n;
        }
        if !self.events.is_empty() {
            let counts = [Severity::Fault, Severity::Error, Severity::Warning]
                .iter()
                .filter_map(|&s| {
                    let n = self.of(s).count();
                    (n > 0).then(|| format!("{n} {s}{}", if n == 1 { "" } else { "(s)" }))
                })
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "{counts}");
        }
        out
    }
}

/// Rank of a stage in the pipeline; ad-hoc stage names (`schedule`,
/// `verify`, ...) sort after the telemetry pipeline stages, then
/// alphabetically.
fn stage_rank(stage: &str) -> usize {
    telemetry::STAGES
        .iter()
        .position(|s| *s == stage)
        .unwrap_or(telemetry::STAGES.len())
}

type SortKey<'a> = (
    usize,
    &'a str,
    &'a Option<String>,
    Option<(u32, u32)>,
    Severity,
    &'a str,
);

fn sort_key(e: &DiagEvent) -> SortKey<'_> {
    (
        stage_rank(e.stage),
        e.stage,
        &e.unit,
        e.span.map(|s| (s.line, s.col)),
        e.severity,
        &e.message,
    )
}

/// Event identity for de-duplication: everything except the trace span,
/// which legitimately differs between cascaded copies of one error.
fn same_event(a: &DiagEvent, b: &DiagEvent) -> bool {
    a.severity == b.severity
        && a.stage == b.stage
        && a.unit == b.unit
        && a.span == b.span
        && a.code == b.code
        && a.fixit == b.fixit
        && a.message == b.message
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_drives_worst() {
        let mut d = Diagnostics::default();
        assert_eq!(d.worst(), None);
        assert!(!d.has_errors());
        d.warn("schedule", Some("sqrt"), None, "degraded to ASAP");
        assert_eq!(d.worst(), Some(Severity::Warning));
        assert!(!d.has_errors());
        d.error("lower", Some("bad"), Some(Span::new(3, 1)), "dynamic loop");
        assert_eq!(d.worst(), Some(Severity::Error));
        assert!(d.has_errors());
        assert!(!d.has_faults());
        d.fault("verify", None, None, "operand width mismatch");
        assert!(d.has_faults());
    }

    #[test]
    fn events_link_to_the_current_trace_span() {
        let mut d = Diagnostics::default();
        d.warn("schedule", None, None, "before any span");
        d.set_trace_span(Some(7));
        d.warn("schedule", Some("sqrt"), None, "inside unit span");
        d.set_trace_span(None);
        d.error("lower", None, None, "after");
        assert_eq!(d.events[0].trace_span, None);
        assert_eq!(d.events[1].trace_span, Some(7));
        assert_eq!(d.events[2].trace_span, None);
    }

    #[test]
    fn rendering_includes_provenance() {
        let mut d = Diagnostics::default();
        d.error("lower", Some("bad"), Some(Span::new(3, 7)), "dynamic loop");
        let report = d.render();
        assert!(report.contains("error[lower]"), "{report}");
        assert!(report.contains("`bad`"), "{report}");
        assert!(report.contains("3:7"), "{report}");
        assert!(report.contains("1 error"), "{report}");
    }

    #[test]
    fn rendering_shows_codes_and_fixits() {
        let mut d = Diagnostics::default();
        d.push_event(DiagEvent {
            severity: Severity::Error,
            stage: "frontend",
            unit: Some("bad".into()),
            span: Some(Span::new(2, 4)),
            trace_span: None,
            code: Some("LN0304"),
            fixit: Some("use an explicit cast".into()),
            message: "lossy conversion".into(),
        });
        let report = d.render();
        assert!(report.contains("[LN0304]"), "{report}");
        assert!(report.contains("help: use an explicit cast"), "{report}");
    }

    #[test]
    fn render_order_is_deterministic_not_raise_order() {
        // Raise events in two different orders; the report must come out
        // identical (stage rank, then unit, then span).
        let mut a = Diagnostics::default();
        a.error("rtl", Some("zeta"), None, "late stage");
        a.warn("frontend", Some("alpha"), Some(Span::new(9, 1)), "early");
        a.warn("frontend", Some("alpha"), Some(Span::new(2, 1)), "earlier");
        let mut b = Diagnostics::default();
        b.warn("frontend", Some("alpha"), Some(Span::new(2, 1)), "earlier");
        b.error("rtl", Some("zeta"), None, "late stage");
        b.warn("frontend", Some("alpha"), Some(Span::new(9, 1)), "early");
        assert_eq!(a.render(), b.render());
        let report = a.render();
        let fe = report.find("earlier").unwrap();
        let rtl = report.find("late stage").unwrap();
        assert!(fe < rtl, "frontend events must precede rtl ones: {report}");
    }

    #[test]
    fn identical_cascaded_events_are_deduplicated() {
        let mut d = Diagnostics::default();
        for trace in [Some(1), Some(2), None] {
            d.set_trace_span(trace);
            d.error("lower", Some("u"), Some(Span::new(1, 1)), "same problem");
        }
        let report = d.render();
        assert_eq!(report.matches("same problem").count(), 1, "{report}");
        assert!(report.contains("(x3)"), "{report}");
        assert!(report.contains("3 error(s)"), "{report}");
    }
}
