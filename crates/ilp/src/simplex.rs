//! Two-phase primal simplex.
//!
//! The tableau works in `f64` with Dantzig pricing (falling back to Bland's
//! rule under prolonged degeneracy) — the pivot counts and numerical ranges
//! of the scheduling models keep this exact in practice. Solutions are
//! snapped to integers when within tolerance and re-verified exactly by the
//! branch-and-bound layer via [`crate::Model::is_feasible`].

use crate::budget::{Budget, WorkKind};
use crate::model::{ConstraintOp, Model, Sense, Solution, SolveError};
use crate::rational::Rational;

const EPS: f64 = 1e-7;
/// After this many Dantzig pivots, switch to Bland's rule (anti-cycling).
const DANTZIG_LIMIT: usize = 20_000;

/// Solves the LP relaxation of `model`, charging one
/// [`WorkKind::Pivot`] per tableau pivot against `budget`.
///
/// # Errors
///
/// Returns [`SolveError::Infeasible`], [`SolveError::Unbounded`], or
/// [`SolveError::Exhausted`] when the budget runs out mid-search (which for
/// well-formed scheduling models indicates a pathological input, not a
/// solver defect).
pub fn solve_lp(model: &Model, budget: &Budget) -> Result<Solution, SolveError> {
    let n = model.vars.len();
    let lower: Vec<f64> = model.vars.iter().map(|v| v.lower.to_f64()).collect();

    // Rows: (coeffs, op, rhs) over shifted variables (all >= 0).
    let mut rows: Vec<(Vec<f64>, ConstraintOp, f64)> = Vec::new();
    for c in &model.constraints {
        let mut coeffs = vec![0.0; n];
        let mut rhs = c.rhs.to_f64();
        for &(v, coeff) in &c.terms {
            coeffs[v.0] += coeff.to_f64();
            rhs -= coeff.to_f64() * lower[v.0];
        }
        rows.push((coeffs, c.op, rhs));
    }
    for (i, v) in model.vars.iter().enumerate() {
        if let Some(u) = v.upper {
            let mut coeffs = vec![0.0; n];
            coeffs[i] = 1.0;
            rows.push((coeffs, ConstraintOp::Le, u.to_f64() - lower[i]));
        }
    }

    let flip = model.sense == Sense::Maximize;
    let cost: Vec<f64> = model
        .objective
        .iter()
        .map(|&c| if flip { -c.to_f64() } else { c.to_f64() })
        .collect();

    // Normalize rhs >= 0; assign slack/artificial columns.
    let m = rows.len();
    let mut num_cols = n;
    let mut slack_col: Vec<Option<usize>> = vec![None; m];
    for (i, row) in rows.iter_mut().enumerate() {
        if row.2 < 0.0 {
            for c in row.0.iter_mut() {
                *c = -*c;
            }
            row.2 = -row.2;
            row.1 = match row.1 {
                ConstraintOp::Le => ConstraintOp::Ge,
                ConstraintOp::Ge => ConstraintOp::Le,
                ConstraintOp::Eq => ConstraintOp::Eq,
            };
        }
        if row.1 != ConstraintOp::Eq {
            slack_col[i] = Some(num_cols);
            num_cols += 1;
        }
    }
    let mut artificial_col: Vec<Option<usize>> = vec![None; m];
    for (i, row) in rows.iter().enumerate() {
        if row.1 != ConstraintOp::Le {
            artificial_col[i] = Some(num_cols);
            num_cols += 1;
        }
    }
    let first_artificial = (0..m)
        .filter_map(|i| artificial_col[i])
        .min()
        .unwrap_or(num_cols);

    // Flat tableau: (m + 1) rows × (num_cols + 1) columns; the last row is
    // the (reduced) objective, the last column the rhs.
    let width = num_cols + 1;
    let mut t = Tableau {
        a: vec![0.0; (m + 1) * width],
        width,
        m,
        num_cols,
        basis: vec![usize::MAX; m],
        banned_from: num_cols,
    };
    for (i, (coeffs, op, rhs)) in rows.iter().enumerate() {
        for (j, &c) in coeffs.iter().enumerate() {
            t.a[i * width + j] = c;
        }
        if let Some(s) = slack_col[i] {
            t.a[i * width + s] = match op {
                ConstraintOp::Le => 1.0,
                ConstraintOp::Ge => -1.0,
                ConstraintOp::Eq => unreachable!(),
            };
        }
        if let Some(art) = artificial_col[i] {
            t.a[i * width + art] = 1.0;
        }
        t.a[i * width + num_cols] = *rhs;
        t.basis[i] = artificial_col[i].or(slack_col[i]).expect("basic column");
    }

    // Phase 1.
    if first_artificial < num_cols {
        // Objective: minimize sum of artificials. Reduced objective row:
        // z_j = c_j - Σ_{rows with artificial basis} a[i][j].
        for j in 0..num_cols {
            let mut z = if j >= first_artificial { 1.0 } else { 0.0 };
            for i in 0..m {
                if t.basis[i] >= first_artificial {
                    z -= t.a[i * width + j];
                }
            }
            t.a[m * width + j] = z;
        }
        let mut obj = 0.0;
        for i in 0..m {
            if t.basis[i] >= first_artificial {
                obj -= t.a[i * width + num_cols];
            }
        }
        t.a[m * width + num_cols] = obj;
        t.run(budget)?;
        if t.a[m * width + num_cols] < -1e-5 {
            return Err(SolveError::Infeasible);
        }
        // Drive remaining artificials out of the basis where possible.
        for i in 0..m {
            if t.basis[i] >= first_artificial {
                if let Some(j) = (0..first_artificial)
                    .find(|&j| t.a[i * width + j].abs() > EPS)
                {
                    t.pivot(i, j);
                }
            }
        }
        t.banned_from = first_artificial;
    }

    // Phase 2 objective row.
    for j in 0..num_cols {
        let mut z = cost.get(j).copied().unwrap_or(0.0);
        for i in 0..m {
            let cb = cost.get(t.basis[i]).copied().unwrap_or(0.0);
            if cb != 0.0 {
                z -= cb * t.a[i * width + j];
            }
        }
        t.a[m * width + j] = z;
    }
    let mut obj = 0.0;
    for i in 0..m {
        let cb = cost.get(t.basis[i]).copied().unwrap_or(0.0);
        obj -= cb * t.a[i * width + num_cols];
    }
    t.a[m * width + num_cols] = obj;
    t.run(budget)?;

    // Extract (and unshift) the solution.
    let mut raw = vec![0.0f64; n];
    for (i, &b) in t.basis.iter().enumerate() {
        if b < n {
            raw[b] = t.a[i * width + num_cols];
        }
    }
    let values: Vec<Rational> = raw
        .iter()
        .zip(&lower)
        .map(|(&v, &lb)| snap(v + lb))
        .collect();
    let objective = model
        .objective
        .iter()
        .enumerate()
        .fold(Rational::ZERO, |acc, (i, &c)| acc + c * values[i]);
    Ok(Solution { values, objective })
}

/// Converts an f64 to a rational: near-integers snap exactly, and
/// fractional values are reconstructed by continued fractions so that LP
/// vertex coordinates (small-denominator rationals like 5/3) come back
/// exact rather than as lossy binary approximations.
fn snap(v: f64) -> Rational {
    let r = v.round();
    if (v - r).abs() < 1e-6 {
        return Rational::int(r as i128);
    }
    let negative = v < 0.0;
    let target = v.abs();
    let mut x = target;
    let (mut p0, mut q0, mut p1, mut q1) = (0i128, 1i128, 1i128, 0i128);
    for _ in 0..48 {
        let a = x.floor();
        let ai = a as i128;
        let p2 = ai.saturating_mul(p1).saturating_add(p0);
        let q2 = ai.saturating_mul(q1).saturating_add(q0);
        if q2 > 1_000_000_000 || q2 <= 0 {
            break;
        }
        (p0, q0, p1, q1) = (p1, q1, p2, q2);
        if (p1 as f64 / q1 as f64 - target).abs() < 1e-12 * target.max(1.0) {
            break;
        }
        let frac = x - a;
        if frac < 1e-13 {
            break;
        }
        x = 1.0 / frac;
    }
    if q1 <= 0 {
        return Rational::new((v * 1_048_576.0).round() as i128, 1_048_576);
    }
    Rational::new(if negative { -p1 } else { p1 }, q1)
}

struct Tableau {
    a: Vec<f64>,
    width: usize,
    m: usize,
    num_cols: usize,
    basis: Vec<usize>,
    /// Columns at or beyond this index may not enter the basis
    /// (frozen artificials in phase 2).
    banned_from: usize,
}

impl Tableau {
    fn run(&mut self, budget: &Budget) -> Result<(), SolveError> {
        let width = self.width;
        for iter in 0.. {
            // Entering column.
            let obj_row = self.m * width;
            let entering = if iter < DANTZIG_LIMIT {
                // Dantzig: most negative reduced cost.
                let mut best = None;
                let mut best_z = -EPS;
                for j in 0..self.banned_from.min(self.num_cols) {
                    let z = self.a[obj_row + j];
                    if z < best_z {
                        best_z = z;
                        best = Some(j);
                    }
                }
                best
            } else {
                // Bland: smallest index with negative reduced cost.
                (0..self.banned_from.min(self.num_cols))
                    .find(|&j| self.a[obj_row + j] < -EPS)
            };
            let Some(j) = entering else {
                return Ok(());
            };
            // Ratio test.
            let mut best: Option<(f64, usize)> = None;
            for i in 0..self.m {
                let aij = self.a[i * width + j];
                if aij > EPS {
                    let ratio = self.a[i * width + self.num_cols] / aij;
                    best = match best {
                        None => Some((ratio, i)),
                        Some((r, bi)) => {
                            if ratio < r - EPS
                                || (ratio < r + EPS && self.basis[i] < self.basis[bi])
                            {
                                Some((ratio, i))
                            } else {
                                Some((r, bi))
                            }
                        }
                    };
                }
            }
            let Some((_, i)) = best else {
                return Err(SolveError::Unbounded);
            };
            budget
                .charge(WorkKind::Pivot)
                .map_err(SolveError::Exhausted)?;
            self.pivot(i, j);
        }
        unreachable!("unbounded loop exits via return")
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.width;
        let p = self.a[row * width + col];
        debug_assert!(p.abs() > EPS);
        let inv = 1.0 / p;
        for j in 0..width {
            self.a[row * width + j] *= inv;
        }
        self.a[row * width + col] = 1.0; // fight rounding drift
        for i in 0..=self.m {
            if i == row {
                continue;
            }
            let factor = self.a[i * width + col];
            if factor == 0.0 {
                continue;
            }
            for j in 0..width {
                self.a[i * width + j] -= factor * self.a[row * width + j];
            }
            self.a[i * width + col] = 0.0;
        }
        self.basis[row] = col;
    }
}

#[cfg(test)]
mod tests {
    use crate::{Model, Sense, SolveError};

    #[test]
    fn simple_minimization() {
        // min x + y s.t. x + y >= 3, x <= 2
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x");
        let y = m.var("y");
        m.obj(x, 1);
        m.obj(y, 1);
        m.constraint_ge(&[(x, 1), (y, 1)], 3);
        m.set_upper(x, 2);
        let sol = m.solve_relaxation().unwrap();
        assert_eq!(sol.objective, 3.into());
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x");
        let y = m.var("y");
        m.obj(x, 3);
        m.obj(y, 2);
        m.constraint_le(&[(x, 1), (y, 1)], 4);
        m.constraint_le(&[(x, 1), (y, 3)], 6);
        let sol = m.solve_relaxation().unwrap();
        assert_eq!(sol.objective, 12.into());
        assert_eq!(sol.value(x), 4);
        assert_eq!(sol.value(y), 0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x");
        m.obj(x, 1);
        m.constraint_ge(&[(x, 1)], 5);
        m.constraint_le(&[(x, 1)], 2);
        assert_eq!(m.solve_relaxation().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x");
        m.obj(x, 1);
        assert_eq!(m.solve_relaxation().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // min 2x + y s.t. x + y == 5, x - y == 1  → x=3, y=2
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x");
        let y = m.var("y");
        m.obj(x, 2);
        m.obj(y, 1);
        m.constraint_eq(&[(x, 1), (y, 1)], 5);
        m.constraint_eq(&[(x, 1), (y, -1)], 1);
        let sol = m.solve_relaxation().unwrap();
        assert_eq!(sol.value(x), 3);
        assert_eq!(sol.value(y), 2);
    }

    #[test]
    fn lower_bound_shift() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x");
        let y = m.var("y");
        m.set_lower(x, -3);
        m.set_upper(y, 1);
        m.obj(x, 1);
        m.constraint_ge(&[(x, 1), (y, 1)], 0);
        let sol = m.solve_relaxation().unwrap();
        assert_eq!(sol.value(x), -1);
        assert_eq!(sol.value(y), 1);
    }

    #[test]
    fn fractional_lp_solution() {
        // max x s.t. 2x <= 3 → x = 3/2.
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x");
        m.obj(x, 1);
        m.constraint_le(&[(x, 2)], 3);
        let sol = m.solve_relaxation().unwrap();
        assert_eq!(sol.rational_value(x), crate::Rational::new(3, 2));
    }

    #[test]
    fn degenerate_problems_terminate() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x");
        let y = m.var("y");
        m.obj(x, 1);
        m.obj(y, 1);
        m.constraint_ge(&[(x, 1), (y, 1)], 2);
        m.constraint_ge(&[(x, 2), (y, 2)], 4);
        m.constraint_ge(&[(x, 3), (y, 3)], 6);
        let sol = m.solve_relaxation().unwrap();
        assert_eq!(sol.objective, 2.into());
    }

    #[test]
    fn negative_objective_coefficients() {
        // min x - 2y s.t. y <= x, x <= 10 → x = y = 10 gives -10.
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x");
        let y = m.var("y");
        m.obj(x, 1);
        m.obj(y, -2);
        m.constraint_le(&[(y, 1), (x, -1)], 0);
        m.set_upper(x, 10);
        let sol = m.solve_relaxation().unwrap();
        assert_eq!(sol.objective, (-10).into());
        assert_eq!(sol.value(x), 10);
        assert_eq!(sol.value(y), 10);
    }

    #[test]
    fn larger_difference_chain_is_fast() {
        // A 200-op chain with fan-outs — must solve in well under a second.
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..200).map(|i| m.int_var(&format!("t{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            m.obj(v, if i % 3 == 0 { 2 } else { -1 });
            m.set_upper(v, 400);
        }
        for w in vars.windows(2) {
            m.constraint_le(&[(w[0], 1), (w[1], -1)], -1);
        }
        for i in (0..190).step_by(10) {
            m.constraint_le(&[(vars[i], 1), (vars[i + 9], -1)], -5);
        }
        let sol = m.solve().unwrap();
        assert!(m.is_feasible(&sol.values));
    }
}
