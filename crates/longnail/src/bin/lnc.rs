//! `lnc` — the Longnail command-line compiler.
//!
//! ```text
//! usage: lnc <file.core_desc> --core <ORCA|Piccolo|PicoRV32|VexRiscv>
//!            [--unit <InstructionSet>] [--out <dir>]
//!            [--emit hir|lil|sv|config|datasheet]
//!
//! Compiles the CoreDSL description for the selected host core. Without
//! --emit, writes one SystemVerilog file per instruction/always-block plus
//! the SCAIE-V configuration YAML into --out (default: the current
//! directory) and prints a summary. With --emit, prints the requested
//! representation to stdout instead.
//! ```

use longnail::driver::{builtin_datasheet, EVAL_CORES};
use longnail::Longnail;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    input: PathBuf,
    core: String,
    unit: Option<String>,
    out: PathBuf,
    emit: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut input = None;
    let mut core = None;
    let mut unit = None;
    let mut out = PathBuf::from(".");
    let mut emit = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--core" => core = Some(args.next().ok_or("--core needs a value")?),
            "--unit" => unit = Some(args.next().ok_or("--unit needs a value")?),
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a value")?),
            "--emit" => emit = Some(args.next().ok_or("--emit needs a value")?),
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"))
            }
            other => {
                if input.replace(PathBuf::from(other)).is_some() {
                    return Err("more than one input file".into());
                }
            }
        }
    }
    Ok(Args {
        input: input.ok_or("missing input file")?,
        core: core.ok_or_else(|| {
            format!("missing --core (one of: {})", EVAL_CORES.join(", "))
        })?,
        unit,
        out,
        emit,
    })
}

fn usage() {
    eprintln!(
        "usage: lnc <file.core_desc> --core <{}> [--unit <InstructionSet>] \
         [--out <dir>] [--emit hir|lil|sv|config|datasheet]",
        EVAL_CORES.join("|")
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    let Some(datasheet) = builtin_datasheet(&args.core) else {
        eprintln!(
            "error: unknown core `{}` (known: {})",
            args.core,
            EVAL_CORES.join(", ")
        );
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(&args.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.input.display());
            return ExitCode::FAILURE;
        }
    };
    let unit = args.unit.clone().unwrap_or_else(|| {
        args.input
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default()
    });
    let mut ln = Longnail::new();
    // --emit hir needs the typed module before HLS.
    if args.emit.as_deref() == Some("hir") {
        return match ln.frontend_mut().compile_str(&src, &unit) {
            Ok(module) => {
                print!("{}", ir::hirprint::print_module(&module));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.emit.as_deref() == Some("datasheet") {
        print!("{}", datasheet.to_yaml());
        return ExitCode::SUCCESS;
    }
    let compiled = match ln.compile(&src, &unit, &datasheet) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match args.emit.as_deref() {
        Some("lil") => {
            for g in &compiled.graphs {
                print!("{}", g.graph);
            }
        }
        Some("sv") => {
            for g in &compiled.graphs {
                print!("{}", g.verilog);
            }
        }
        Some("config") => print!("{}", compiled.config.to_yaml()),
        Some(other) => {
            eprintln!("error: unknown --emit `{other}`");
            return ExitCode::FAILURE;
        }
        None => {
            if let Err(e) = std::fs::create_dir_all(&args.out) {
                eprintln!("error: cannot create {}: {e}", args.out.display());
                return ExitCode::FAILURE;
            }
            for g in &compiled.graphs {
                let path = args
                    .out
                    .join(format!("{}_{}.sv", compiled.name, g.name));
                if let Err(e) = std::fs::write(&path, &g.verilog) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!(
                    "wrote {:<40} {:>6} stages, mode {}",
                    path.display(),
                    g.max_stage,
                    g.mode
                );
            }
            let config_path = args.out.join(format!("{}.scaiev.yaml", compiled.name));
            if let Err(e) = std::fs::write(&config_path, compiled.config.to_yaml()) {
                eprintln!("error: cannot write {}: {e}", config_path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", config_path.display());
            println!(
                "\n{}: {} instruction(s), {} always-block(s) compiled for {}",
                compiled.name,
                compiled.instructions().count(),
                compiled.always_blocks().count(),
                args.core
            );
        }
    }
    ExitCode::SUCCESS
}
