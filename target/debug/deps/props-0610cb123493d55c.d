/root/repo/target/debug/deps/props-0610cb123493d55c.d: crates/sched/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-0610cb123493d55c.rmeta: crates/sched/tests/props.rs Cargo.toml

crates/sched/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
