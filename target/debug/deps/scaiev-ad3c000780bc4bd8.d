/root/repo/target/debug/deps/scaiev-ad3c000780bc4bd8.d: crates/scaiev/src/lib.rs crates/scaiev/src/arbiter.rs crates/scaiev/src/config.rs crates/scaiev/src/datasheet.rs crates/scaiev/src/hazard.rs crates/scaiev/src/integrate.rs crates/scaiev/src/modes.rs crates/scaiev/src/iface.rs crates/scaiev/src/yaml.rs

/root/repo/target/debug/deps/scaiev-ad3c000780bc4bd8: crates/scaiev/src/lib.rs crates/scaiev/src/arbiter.rs crates/scaiev/src/config.rs crates/scaiev/src/datasheet.rs crates/scaiev/src/hazard.rs crates/scaiev/src/integrate.rs crates/scaiev/src/modes.rs crates/scaiev/src/iface.rs crates/scaiev/src/yaml.rs

crates/scaiev/src/lib.rs:
crates/scaiev/src/arbiter.rs:
crates/scaiev/src/config.rs:
crates/scaiev/src/datasheet.rs:
crates/scaiev/src/hazard.rs:
crates/scaiev/src/integrate.rs:
crates/scaiev/src/modes.rs:
crates/scaiev/src/iface.rs:
crates/scaiev/src/yaml.rs:
