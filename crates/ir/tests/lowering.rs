//! Lowering tests: typed AST → LIL graphs, plus differential tests of the
//! golden interpreter against the LIL evaluator.

use bits::ApInt;
use coredsl::Frontend;
use ir::eval::{eval_graph, MapEnv, StateUpdate, UpdateKind};
use ir::interp::{Interp, SimpleState};
use ir::lil::{GraphKind, OpKind};
use ir::lower_module;
use proptest::prelude::*;

const DOTP: &str = r#"
import "RV32I.core_desc";
InstructionSet X_DOTP extends RV32I {
  instructions {
    dotp {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        signed<32> res = 0;
        for (int i = 0; i < 32; i += 8) {
          signed<16> prod = (signed) X[rs1][i+7:i] * (signed) X[rs2][i+7:i];
          res += prod;
        }
        X[rd] = (unsigned) res;
      }
    }
  }
}
"#;

const ZOL: &str = r#"
import "RV32I.core_desc";
InstructionSet zol extends RV32I {
  architectural_state {
    register unsigned<32> START_PC, END_PC, COUNT;
  }
  instructions {
    setup_zol {
      encoding: uimmL[11:0] :: uimmS[4:0] :: 3'b101 :: 5'b00000 :: 7'b0001011;
      behavior: {
        START_PC = (unsigned<32>)(PC + 4);
        END_PC = (unsigned<32>)(PC + (uimmS :: 1'b0));
        COUNT = uimmL;
      }
    }
  }
  always {
    zol {
      if (COUNT != 0 && END_PC == PC) {
        PC = START_PC;
        --COUNT;
      }
    }
  }
}
"#;

fn word_r(opcode_f3: u32, rd: u32, rs1: u32, rs2: u32) -> u32 {
    (rs2 << 20) | (rs1 << 15) | (opcode_f3 << 12) | (rd << 7) | 0b0001011
}

fn dotp_reference(a: u32, b: u32) -> u32 {
    let mut res: i32 = 0;
    for i in (0..32).step_by(8) {
        let x = ((a >> i) & 0xff) as i8 as i32;
        let y = ((b >> i) & 0xff) as i8 as i32;
        res = res.wrapping_add((x as i16).wrapping_mul(y as i16) as i32);
    }
    res as u32
}

#[test]
fn dotprod_lowers_with_unrolled_loop() {
    let module = Frontend::new().compile_str(DOTP, "X_DOTP").unwrap();
    let lil = lower_module(&module).unwrap();
    let g = lil.graph("dotp").unwrap();
    g.validate().unwrap();
    // Unrolled: 4 multiplies, interface reads deduplicated.
    let muls = g.ops.iter().filter(|o| o.kind == OpKind::Mul).count();
    assert_eq!(muls, 4);
    let rs1 = g.ops.iter().filter(|o| o.kind == OpKind::ReadRs1).count();
    assert_eq!(rs1, 1);
    assert_eq!(
        g.ops
            .iter()
            .filter(|o| o.kind == OpKind::WriteRd)
            .count(),
        1
    );
}

#[test]
fn dotprod_differential_golden_vs_lil() {
    let module = Frontend::new().compile_str(DOTP, "X_DOTP").unwrap();
    let lil = lower_module(&module).unwrap();
    let g = lil.graph("dotp").unwrap();
    let interp = Interp::new(&module);
    let word = word_r(0, 3, 1, 2);
    for (a, b) in [
        (0u32, 0u32),
        (0x01020304, 0x05060708),
        (0xff80807f, 0x7f808001),
        (0xdeadbeef, 0xcafef00d),
    ] {
        // Golden model.
        let mut st = SimpleState::new(&module);
        st.set("X", 1, ApInt::from_u64(a as u64, 32));
        st.set("X", 2, ApInt::from_u64(b as u64, 32));
        interp.exec_instruction("dotp", word, &mut st).unwrap();
        let golden = st.get("X", 3).to_u64() as u32;
        assert_eq!(golden, dotp_reference(a, b), "golden vs rust reference");
        // LIL evaluator.
        let mut env = MapEnv {
            word,
            rs1: a,
            rs2: b,
            ..MapEnv::default()
        };
        let updates = eval_graph(g, &lil, &mut env);
        assert_eq!(
            updates,
            vec![StateUpdate {
                kind: UpdateKind::Rd,
                addr: None,
                value: ApInt::from_u64(golden as u64, 32),
            }]
        );
    }
}

proptest! {
    #[test]
    fn dotprod_differential_random(a: u32, b: u32) {
        let module = Frontend::new().compile_str(DOTP, "X_DOTP").unwrap();
        let lil = lower_module(&module).unwrap();
        let g = lil.graph("dotp").unwrap();
        let mut env = MapEnv { word: word_r(0, 3, 1, 2), rs1: a, rs2: b, ..MapEnv::default() };
        let updates = eval_graph(g, &lil, &mut env);
        prop_assert_eq!(updates[0].value.to_u64() as u32, dotp_reference(a, b));
    }
}

#[test]
fn zol_always_block_lowers_and_evaluates() {
    let module = Frontend::new().compile_str(ZOL, "zol").unwrap();
    let lil = lower_module(&module).unwrap();
    assert_eq!(lil.custom_regs.len(), 3);
    let g = lil.graph("zol").unwrap();
    assert_eq!(g.kind, GraphKind::Always);
    // Always-mode writes carry mandatory valid bits (predicates).
    for op in &g.ops {
        if op.kind.is_state_write() {
            assert!(op.pred.is_some(), "{:?} lacks a valid bit", op.kind);
        }
    }
    // Loop active: END_PC == PC and COUNT != 0 → PC reset, COUNT decrement.
    let mut env = MapEnv {
        pc: 0x100,
        ..MapEnv::default()
    };
    env.cust
        .insert(("COUNT".into(), 0), ApInt::from_u64(5, 32));
    env.cust
        .insert(("START_PC".into(), 0), ApInt::from_u64(0xf0, 32));
    env.cust
        .insert(("END_PC".into(), 0), ApInt::from_u64(0x100, 32));
    let updates = eval_graph(g, &lil, &mut env);
    assert_eq!(updates.len(), 2);
    assert!(updates.iter().any(|u| u.kind == UpdateKind::Pc && u.value.to_u64() == 0xf0));
    assert!(updates
        .iter()
        .any(|u| u.kind == UpdateKind::Cust("COUNT".into()) && u.value.to_u64() == 4));
    // Loop inactive: no updates fire.
    env.pc = 0x104;
    let updates = eval_graph(g, &lil, &mut env);
    assert!(updates.is_empty());
}

#[test]
fn zol_setup_writes_three_custom_registers() {
    let module = Frontend::new().compile_str(ZOL, "zol").unwrap();
    let lil = lower_module(&module).unwrap();
    let g = lil.graph("setup_zol").unwrap();
    let writes: Vec<_> = g
        .ops
        .iter()
        .filter_map(|o| match &o.kind {
            OpKind::WriteCustReg(name) => Some(name.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(writes.len(), 3);
    assert!(writes.contains(&"START_PC".to_string()));
    // Evaluate: uimmS=3 → END_PC = PC + 6; uimmL=42 → COUNT=42.
    let word = (42u32 << 20) | (3 << 15) | (0b101 << 12) | 0b0001011;
    let mut env = MapEnv {
        word,
        pc: 0x200,
        ..MapEnv::default()
    };
    let updates = eval_graph(g, &lil, &mut env);
    let get = |name: &str| {
        updates
            .iter()
            .find(|u| u.kind == UpdateKind::Cust(name.into()))
            .map(|u| u.value.to_u64())
            .unwrap()
    };
    assert_eq!(get("START_PC"), 0x204);
    assert_eq!(get("END_PC"), 0x206);
    assert_eq!(get("COUNT"), 42);
}

#[test]
fn spawn_ops_are_marked() {
    let src = r#"
import "RV32I.core_desc";
InstructionSet s extends RV32I {
  instructions {
    slow {
      encoding: 12'd0 :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<32> x = X[rs1];
        spawn {
          X[rd] = (unsigned<32>)(x + x);
        }
      }
    }
  }
}
"#;
    let module = Frontend::new().compile_str(src, "s").unwrap();
    let lil = lower_module(&module).unwrap();
    let g = lil.graph("slow").unwrap();
    let wr = g.ops.iter().find(|o| o.kind == OpKind::WriteRd).unwrap();
    assert!(wr.in_spawn);
    let rd = g.ops.iter().find(|o| o.kind == OpKind::ReadRs1).unwrap();
    assert!(!rd.in_spawn);
}

#[test]
fn memory_word_access_maps_to_rdmem_wrmem() {
    let src = r#"
import "RV32I.core_desc";
InstructionSet m extends RV32I {
  instructions {
    copyw {
      encoding: 12'd0 :: rs1[4:0] :: 3'd1 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<32> a = X[rs1];
        unsigned<32> v = MEM[a+3:a];
        MEM[a+7:a+4] = v;
        X[rd] = v;
      }
    }
  }
}
"#;
    let module = Frontend::new().compile_str(src, "m").unwrap();
    let lil = lower_module(&module).unwrap();
    let g = lil.graph("copyw").unwrap();
    assert_eq!(g.ops.iter().filter(|o| o.kind == OpKind::ReadMem).count(), 1);
    assert_eq!(
        g.ops.iter().filter(|o| o.kind == OpKind::WriteMem).count(),
        1
    );
    let mut env = MapEnv {
        word: (1 << 15) | (0b001 << 12) | (2 << 7) | 0b0001011,
        rs1: 0x40,
        ..MapEnv::default()
    };
    env.mem.insert(0x40, 0x12345678);
    let updates = eval_graph(g, &lil, &mut env);
    assert!(updates.iter().any(|u| matches!(&u.kind, UpdateKind::Mem)
        && u.addr.as_ref().unwrap().to_u64() == 0x44
        && u.value.to_u64() == 0x12345678));
}

#[test]
fn byte_memory_access_is_rejected() {
    let src = r#"
import "RV32I.core_desc";
InstructionSet m extends RV32I {
  instructions {
    lb {
      encoding: 12'd0 :: rs1[4:0] :: 3'd1 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<32> a = X[rs1];
        X[rd] = (unsigned<32>) MEM[a];
      }
    }
  }
}
"#;
    let module = Frontend::new().compile_str(src, "m").unwrap();
    let err = lower_module(&module).unwrap_err();
    assert!(err.message.contains("4-byte"), "{err}");
}

#[test]
fn gpr_read_requires_rs_field() {
    let src = r#"
import "RV32I.core_desc";
InstructionSet g extends RV32I {
  instructions {
    weird {
      encoding: 12'd0 :: rs1[4:0] :: 3'd1 :: rd[4:0] :: 7'b0001011;
      behavior: {
        X[rd] = X[rd];
      }
    }
  }
}
"#;
    let module = Frontend::new().compile_str(src, "g").unwrap();
    let err = lower_module(&module).unwrap_err();
    assert!(err.message.contains("rs1"), "{err}");
}

#[test]
fn nonconstant_loop_bound_is_rejected() {
    let src = r#"
import "RV32I.core_desc";
InstructionSet l extends RV32I {
  instructions {
    dyn {
      encoding: 12'd0 :: rs1[4:0] :: 3'd1 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<32> n = X[rs1];
        unsigned<32> acc = 0;
        for (unsigned<32> i = 0; i < n; i += 1) {
          acc += i;
        }
        X[rd] = acc;
      }
    }
  }
}
"#;
    let module = Frontend::new().compile_str(src, "l").unwrap();
    let err = lower_module(&module).unwrap_err();
    assert!(err.message.contains("compile-time"), "{err}");
}

#[test]
fn conditional_writes_are_predicated_and_merged() {
    let src = r#"
import "RV32I.core_desc";
InstructionSet c extends RV32I {
  instructions {
    sel {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd2 :: rd[4:0] :: 7'b0001011;
      behavior: {
        if (X[rs1] < X[rs2]) {
          X[rd] = X[rs1];
        } else {
          X[rd] = X[rs2];
        }
      }
    }
  }
}
"#;
    let module = Frontend::new().compile_str(src, "c").unwrap();
    let lil = lower_module(&module).unwrap();
    let g = lil.graph("sel").unwrap();
    // Merged to a single WrRD (sub-interface used once).
    assert_eq!(g.ops.iter().filter(|o| o.kind == OpKind::WriteRd).count(), 1);
    let mut env = MapEnv {
        word: word_r(2, 3, 1, 2),
        rs1: 10,
        rs2: 20,
        ..MapEnv::default()
    };
    let updates = eval_graph(g, &lil, &mut env);
    assert_eq!(updates[0].value.to_u64(), 10);
    env.rs1 = 30;
    let updates = eval_graph(g, &lil, &mut env);
    assert_eq!(updates[0].value.to_u64(), 20);
}

#[test]
fn read_after_conditional_custom_write_sees_muxed_value() {
    let src = r#"
import "RV32I.core_desc";
InstructionSet f extends RV32I {
  architectural_state { register unsigned<32> ACC; }
  instructions {
    fwd {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd3 :: rd[4:0] :: 7'b0001011;
      behavior: {
        if (X[rs1] == 0) {
          ACC = X[rs2];
        }
        X[rd] = ACC;
      }
    }
  }
}
"#;
    let module = Frontend::new().compile_str(src, "f").unwrap();
    let lil = lower_module(&module).unwrap();
    let g = lil.graph("fwd").unwrap();
    let mut env = MapEnv {
        word: word_r(3, 3, 1, 2),
        rs1: 0,
        rs2: 77,
        ..MapEnv::default()
    };
    env.cust.insert(("ACC".into(), 0), ApInt::from_u64(5, 32));
    let updates = eval_graph(g, &lil, &mut env);
    let rd = updates
        .iter()
        .find(|u| u.kind == UpdateKind::Rd)
        .unwrap();
    assert_eq!(rd.value.to_u64(), 77, "taken branch forwards new value");
    env.rs1 = 1;
    let updates = eval_graph(g, &lil, &mut env);
    let rd = updates
        .iter()
        .find(|u| u.kind == UpdateKind::Rd)
        .unwrap();
    assert_eq!(rd.value.to_u64(), 5, "untaken branch reads old value");
    // Golden model agrees.
    let interp = Interp::new(&module);
    let mut st = SimpleState::new(&module);
    st.set("X", 1, ApInt::zero(32));
    st.set("X", 2, ApInt::from_u64(77, 32));
    st.set("ACC", 0, ApInt::from_u64(5, 32));
    interp
        .exec_instruction("fwd", word_r(3, 3, 1, 2), &mut st)
        .unwrap();
    assert_eq!(st.get("X", 3).to_u64(), 77);
}

#[test]
fn helper_functions_are_inlined() {
    let src = r#"
import "RV32I.core_desc";
InstructionSet h extends RV32I {
  functions {
    unsigned<32> rotl(unsigned<32> x, unsigned<5> n) {
      return (unsigned<32>)((x << n) | (x >> (unsigned<5>)(32 - n)));
    }
  }
  instructions {
    rot8 {
      encoding: 12'd0 :: rs1[4:0] :: 3'd4 :: rd[4:0] :: 7'b0001011;
      behavior: {
        X[rd] = rotl(X[rs1], 8);
      }
    }
  }
}
"#;
    let module = Frontend::new().compile_str(src, "h").unwrap();
    let lil = lower_module(&module).unwrap();
    let g = lil.graph("rot8").unwrap();
    let mut env = MapEnv {
        word: (1 << 15) | (0b100 << 12) | (2 << 7) | 0b0001011,
        rs1: 0x12345678,
        ..MapEnv::default()
    };
    let updates = eval_graph(g, &lil, &mut env);
    assert_eq!(updates[0].value.to_u64() as u32, 0x12345678u32.rotate_left(8));
}

#[test]
fn rom_lookup_with_dynamic_index() {
    let src = r#"
import "RV32I.core_desc";
InstructionSet r extends RV32I {
  architectural_state {
    register const unsigned<8> TBL[4] = {0x63, 0x7c, 0x77, 0x7b};
  }
  instructions {
    lut {
      encoding: 12'd0 :: rs1[4:0] :: 3'd5 :: rd[4:0] :: 7'b0001011;
      behavior: {
        X[rd] = (unsigned<32>) TBL[X[rs1][1:0]];
      }
    }
  }
}
"#;
    let module = Frontend::new().compile_str(src, "r").unwrap();
    let lil = lower_module(&module).unwrap();
    assert_eq!(lil.roms.len(), 1);
    assert!(lil.custom_regs.is_empty());
    let g = lil.graph("lut").unwrap();
    for (i, expect) in [0x63u64, 0x7c, 0x77, 0x7b].iter().enumerate() {
        let mut env = MapEnv {
            word: (1 << 15) | (0b101 << 12) | (2 << 7) | 0b0001011,
            rs1: i as u32,
            ..MapEnv::default()
        };
        let updates = eval_graph(g, &lil, &mut env);
        assert_eq!(updates[0].value.to_u64(), *expect);
    }
}

#[test]
fn hir_printer_produces_dialect_syntax() {
    let module = Frontend::new().compile_str(DOTP, "X_DOTP").unwrap();
    let text = ir::hirprint::print_module(&module);
    assert!(text.contains("coredsl.register core_x @X[32] : ui32"));
    assert!(text.contains("coredsl.instruction @dotp("));
    assert!(text.contains("hwarith.mul"));
    assert!(text.contains("coredsl.end"));
}

#[test]
fn lil_printer_matches_figure5c_style() {
    let module = Frontend::new().compile_str(DOTP, "X_DOTP").unwrap();
    let lil = lower_module(&module).unwrap();
    let text = lil.graph("dotp").unwrap().to_string();
    assert!(text.starts_with("lil.graph \"dotp\" mask \"0000000----------000-----0001011\""));
    assert!(text.contains("lil.read_rs1"));
    assert!(text.contains("lil.write_rd"));
    assert!(text.contains("lil.sink"));
}
#[test]
fn while_and_do_while_loops_unroll() {
    // while: sum constants 0..5; do-while: runs at least once.
    let src = r#"
import "RV32I.core_desc";
InstructionSet w extends RV32I {
  instructions {
    wsum {
      encoding: 12'd0 :: rs1[4:0] :: 3'd7 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<32> acc = 0;
        unsigned<8> i = 0;
        while (i < 5) {
          acc = (unsigned<32>)(acc + X[rs1]);
          i = (unsigned<8>)(i + 1);
        }
        unsigned<8> n = 0;
        do {
          acc = (unsigned<32>)(acc + 1);
          n = (unsigned<8>)(n + 1);
        } while (n < 1);
        X[rd] = acc;
      }
    }
  }
}
"#;
    let module = coredsl::Frontend::new().compile_str(src, "w").unwrap();
    let lil = ir::lower_module(&module).unwrap();
    let g = lil.graph("wsum").unwrap();
    let mut env = ir::eval::MapEnv {
        word: (1 << 15) | (0b111 << 12) | (2 << 7) | 0b0001011,
        rs1: 10,
        ..Default::default()
    };
    let updates = ir::eval::eval_graph(g, &lil, &mut env);
    assert_eq!(updates[0].value.to_u64(), 51); // 5*10 + 1
    // Golden interpreter agrees.
    let interp = ir::interp::Interp::new(&module);
    let mut st = ir::interp::SimpleState::new(&module);
    st.set("X", 1, bits::ApInt::from_u64(10, 32));
    interp
        .exec_instruction("wsum", (1 << 15) | (0b111 << 12) | (2 << 7) | 0b0001011, &mut st)
        .unwrap();
    assert_eq!(st.get("X", 2).to_u64(), 51);
}
