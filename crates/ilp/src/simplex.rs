//! Two-phase primal simplex with warm-start support.
//!
//! The tableau works in `f64` with Dantzig pricing (falling back to Bland's
//! rule under prolonged degeneracy) — the pivot counts and numerical ranges
//! of the scheduling models keep this exact in practice. Solutions are
//! snapped to exact rationals when within tolerance and re-verified exactly
//! by the branch-and-bound layer via [`crate::Model::is_feasible`].
//!
//! Beyond the one-shot [`solve_lp`] entry point, the [`Simplex`] state is
//! persistent: after an `optimize()` the tableau can accept new `<=` rows
//! ([`Simplex::add_le_row`]) and re-optimize from the previous optimal
//! basis with a **dual simplex** pass ([`Simplex::reoptimize`]) instead of
//! re-solving from scratch. The lazy-constraint scheduling loop and the
//! bound-delta branch-and-bound nodes both ride on this warm path.
//!
//! Pivot accounting is honest: every tableau row reduction — primal,
//! dual, and phase-1 artificial drive-out — charges one
//! [`WorkKind::Pivot`] against the budget, so `solver.pivots` counts real
//! work. Row additions re-express the new row in the current basis but do
//! not change the basis, so they are not pivots.

use crate::budget::{Budget, WorkKind};
use crate::model::{ConstraintOp, Model, Sense, Solution, SolveError};
use crate::rational::Rational;

const EPS: f64 = 1e-7;
/// After this many Dantzig pivots, switch to Bland's rule (anti-cycling).
const DANTZIG_LIMIT: usize = 20_000;

/// Solves the LP relaxation of `model` from scratch (two-phase primal),
/// charging one [`WorkKind::Pivot`] per tableau pivot against `budget`.
///
/// This is the naive, presolve-free reference path; [`crate::Model::solve`]
/// routes through presolve and warm starts instead.
///
/// # Errors
///
/// Returns [`SolveError::Infeasible`], [`SolveError::Unbounded`],
/// [`SolveError::Exhausted`] when the budget runs out mid-search, or
/// [`SolveError::Numerical`] when a vertex coordinate cannot be
/// reconstructed exactly.
pub fn solve_lp(model: &Model, budget: &Budget) -> Result<Solution, SolveError> {
    let mut sx = Simplex::new(model);
    sx.optimize(budget)?;
    sx.solution(model)
}

/// Converts an f64 to a rational: near-integers snap exactly, and
/// fractional values are reconstructed by continued fractions so that LP
/// vertex coordinates (small-denominator rationals like 5/3) come back
/// exact rather than as lossy binary approximations.
///
/// # Errors
///
/// Returns [`SolveError::Numerical`] for non-finite values and for
/// magnitudes outside the exactly-representable `i128` range — the old
/// fallback `(v * 2^20) as i128` silently saturated there, producing a
/// plausible-looking but wrong rational.
fn snap(v: f64) -> Result<Rational, SolveError> {
    if !v.is_finite() {
        return Err(SolveError::Numerical(format!(
            "non-finite tableau value {v}"
        )));
    }
    let out_of_range = |what: &str, x: f64| {
        SolveError::Numerical(format!(
            "{what} {x:e} outside the exactly representable i128 range"
        ))
    };
    let r = v.round();
    if r.abs() >= i128::MAX as f64 {
        return Err(out_of_range("vertex coordinate", v));
    }
    if (v - r).abs() < 1e-6 {
        return Ok(Rational::int(r as i128));
    }
    let negative = v < 0.0;
    let target = v.abs();
    let mut x = target;
    let (mut p0, mut q0, mut p1, mut q1) = (0i128, 1i128, 1i128, 0i128);
    for _ in 0..48 {
        let a = x.floor();
        let ai = a as i128;
        let p2 = ai.saturating_mul(p1).saturating_add(p0);
        let q2 = ai.saturating_mul(q1).saturating_add(q0);
        if q2 > 1_000_000_000 || q2 <= 0 {
            break;
        }
        (p0, q0, p1, q1) = (p1, q1, p2, q2);
        if (p1 as f64 / q1 as f64 - target).abs() < 1e-12 * target.max(1.0) {
            break;
        }
        let frac = x - a;
        if frac < 1e-13 {
            break;
        }
        x = 1.0 / frac;
    }
    if q1 <= 0 {
        // Continued fractions failed (huge leading digit): scale by 2^20.
        // The scaled magnitude must itself fit in i128 — saturating the
        // cast would fabricate a wrong value.
        let scaled = (v * 1_048_576.0).round();
        if scaled.abs() >= i128::MAX as f64 {
            return Err(out_of_range("scaled vertex coordinate", v));
        }
        return Ok(Rational::new(scaled as i128, 1_048_576));
    }
    Ok(Rational::new(if negative { -p1 } else { p1 }, q1))
}

/// A persistent simplex tableau over the standard form of one [`Model`].
///
/// Layout: `(m + 1)` rows × `(num_cols + 1)` columns, flat; the last row
/// is the (reduced) objective, the last column the rhs. Structural
/// variables are shifted by their lower bounds (all columns `>= 0`); upper
/// bounds are explicit rows. Cloning the state clones the whole tableau —
/// this is what bound-delta branch-and-bound nodes do instead of cloning
/// and re-solving the `Model`.
#[derive(Clone)]
pub(crate) struct Simplex {
    a: Vec<f64>,
    width: usize,
    m: usize,
    num_cols: usize,
    basis: Vec<usize>,
    /// Columns that may not enter the basis (frozen artificials after
    /// phase 1). Indexed per column; new warm-path slacks stay eligible.
    banned: Vec<bool>,
    /// Structural variable count of the source model.
    n: usize,
    /// Lower-bound shift per structural variable.
    lower: Vec<f64>,
    /// Phase-2 objective (sense-adjusted to minimization) per column.
    cost: Vec<f64>,
    /// First artificial column, `num_cols` when none exist.
    first_artificial: usize,
    /// Whether the objective row currently holds phase-2 reduced costs.
    phase2: bool,
}

impl Simplex {
    /// Builds the standard-form tableau for `model` (no pivots yet).
    pub fn new(model: &Model) -> Simplex {
        let n = model.vars.len();
        let lower: Vec<f64> = model.vars.iter().map(|v| v.lower.to_f64()).collect();

        // Rows: (coeffs, op, rhs) over shifted variables (all >= 0).
        let mut rows: Vec<(Vec<f64>, ConstraintOp, f64)> = Vec::new();
        for c in &model.constraints {
            let mut coeffs = vec![0.0; n];
            let mut rhs = c.rhs.to_f64();
            for &(v, coeff) in &c.terms {
                coeffs[v.0] += coeff.to_f64();
                rhs -= coeff.to_f64() * lower[v.0];
            }
            rows.push((coeffs, c.op, rhs));
        }
        for (i, v) in model.vars.iter().enumerate() {
            if let Some(u) = v.upper {
                let mut coeffs = vec![0.0; n];
                coeffs[i] = 1.0;
                rows.push((coeffs, ConstraintOp::Le, u.to_f64() - lower[i]));
            }
        }

        let flip = model.sense == Sense::Maximize;
        let cost: Vec<f64> = model
            .objective
            .iter()
            .map(|&c| if flip { -c.to_f64() } else { c.to_f64() })
            .collect();

        // Normalize rhs >= 0; assign slack/artificial columns.
        let m = rows.len();
        let mut num_cols = n;
        let mut slack_col: Vec<Option<usize>> = vec![None; m];
        for (i, row) in rows.iter_mut().enumerate() {
            if row.2 < 0.0 {
                for c in row.0.iter_mut() {
                    *c = -*c;
                }
                row.2 = -row.2;
                row.1 = match row.1 {
                    ConstraintOp::Le => ConstraintOp::Ge,
                    ConstraintOp::Ge => ConstraintOp::Le,
                    ConstraintOp::Eq => ConstraintOp::Eq,
                };
            }
            if row.1 != ConstraintOp::Eq {
                slack_col[i] = Some(num_cols);
                num_cols += 1;
            }
        }
        let mut artificial_col: Vec<Option<usize>> = vec![None; m];
        for (i, row) in rows.iter().enumerate() {
            if row.1 != ConstraintOp::Le {
                artificial_col[i] = Some(num_cols);
                num_cols += 1;
            }
        }
        let first_artificial = (0..m)
            .filter_map(|i| artificial_col[i])
            .min()
            .unwrap_or(num_cols);

        let width = num_cols + 1;
        let mut sx = Simplex {
            a: vec![0.0; (m + 1) * width],
            width,
            m,
            num_cols,
            basis: vec![usize::MAX; m],
            banned: vec![false; num_cols],
            n,
            lower,
            cost,
            first_artificial,
            phase2: false,
        };
        for (i, (coeffs, op, rhs)) in rows.iter().enumerate() {
            for (j, &c) in coeffs.iter().enumerate() {
                sx.a[i * width + j] = c;
            }
            if let Some(s) = slack_col[i] {
                sx.a[i * width + s] = match op {
                    ConstraintOp::Le => 1.0,
                    ConstraintOp::Ge => -1.0,
                    ConstraintOp::Eq => unreachable!(),
                };
            }
            if let Some(art) = artificial_col[i] {
                sx.a[i * width + art] = 1.0;
            }
            sx.a[i * width + num_cols] = *rhs;
            sx.basis[i] = artificial_col[i].or(slack_col[i]).expect("basic column");
        }
        sx
    }

    /// Two-phase primal solve from the initial basis, charging every pivot
    /// — including phase-1 artificial drive-out pivots — against `budget`.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`], [`SolveError::Unbounded`], or
    /// [`SolveError::Exhausted`].
    pub fn optimize(&mut self, budget: &Budget) -> Result<(), SolveError> {
        let (width, m, num_cols) = (self.width, self.m, self.num_cols);
        // Phase 1.
        if self.first_artificial < num_cols {
            // Objective: minimize sum of artificials. Reduced objective
            // row: z_j = c_j - Σ_{rows with artificial basis} a[i][j].
            for j in 0..num_cols {
                let mut z = if j >= self.first_artificial { 1.0 } else { 0.0 };
                for i in 0..m {
                    if self.basis[i] >= self.first_artificial {
                        z -= self.a[i * width + j];
                    }
                }
                self.a[m * width + j] = z;
            }
            let mut obj = 0.0;
            for i in 0..m {
                if self.basis[i] >= self.first_artificial {
                    obj -= self.a[i * width + num_cols];
                }
            }
            self.a[m * width + num_cols] = obj;
            self.run(budget)?;
            if self.a[m * width + num_cols] < -1e-5 {
                return Err(SolveError::Infeasible);
            }
            // Drive remaining artificials out of the basis where possible.
            // These are real tableau row reductions: charge them like any
            // other pivot so `solver.pivots` counts all performed work.
            for i in 0..m {
                if self.basis[i] >= self.first_artificial {
                    if let Some(j) =
                        (0..self.first_artificial).find(|&j| self.a[i * width + j].abs() > EPS)
                    {
                        budget
                            .charge(WorkKind::Pivot)
                            .map_err(SolveError::Exhausted)?;
                        self.pivot(i, j);
                    }
                }
            }
            for j in self.first_artificial..num_cols {
                self.banned[j] = true;
            }
        }

        // Phase 2 objective row.
        for j in 0..num_cols {
            let mut z = self.cost.get(j).copied().unwrap_or(0.0);
            for i in 0..m {
                let cb = self.cost.get(self.basis[i]).copied().unwrap_or(0.0);
                if cb != 0.0 {
                    z -= cb * self.a[i * width + j];
                }
            }
            self.a[m * width + j] = z;
        }
        let mut obj = 0.0;
        for i in 0..m {
            let cb = self.cost.get(self.basis[i]).copied().unwrap_or(0.0);
            obj -= cb * self.a[i * width + num_cols];
        }
        self.a[m * width + num_cols] = obj;
        self.phase2 = true;
        self.run(budget)
    }

    /// Appends one `Σ coeff·x <= rhs` row over structural variables (rhs
    /// in *unshifted* model coordinates) and makes its fresh slack basic.
    /// The row is re-expressed in the current basis; no pivot happens here
    /// — the basis does not change — but the new basic slack may come out
    /// negative, which the next [`Simplex::reoptimize`] repairs.
    pub fn add_le_row(&mut self, terms: &[(usize, f64)], rhs: f64) {
        self.push_column();
        let width = self.width;
        let slack = self.num_cols - 1;
        let mut row = vec![0.0; width];
        let mut shifted = rhs;
        for &(v, c) in terms {
            debug_assert!(v < self.n, "row term on a non-structural column");
            row[v] += c;
            shifted -= c * self.lower[v];
        }
        row[slack] = 1.0;
        row[width - 1] = shifted;
        // Express the new row in the current basis: eliminate every basic
        // column (each tableau row holds exactly 1.0 in its basis column).
        for i in 0..self.m {
            let b = self.basis[i];
            let f = row[b];
            if f != 0.0 {
                for (j, cell) in row.iter_mut().enumerate() {
                    *cell -= f * self.a[i * width + j];
                }
                row[b] = 0.0;
            }
        }
        // Insert the row before the objective row.
        self.a.extend(std::iter::repeat_n(0.0, width));
        let obj = self.m * width;
        self.a.copy_within(obj..obj + width, obj + width);
        self.a[obj..obj + width].copy_from_slice(&row);
        self.basis.push(slack);
        self.m += 1;
    }

    /// Grows the tableau by one (zero) column just before the rhs.
    fn push_column(&mut self) {
        let old_width = self.width;
        let new_width = old_width + 1;
        let rows = self.m + 1;
        let mut a = vec![0.0; rows * new_width];
        for i in 0..rows {
            let src = i * old_width;
            let dst = i * new_width;
            a[dst..dst + self.num_cols].copy_from_slice(&self.a[src..src + self.num_cols]);
            a[dst + new_width - 1] = self.a[src + old_width - 1];
        }
        self.a = a;
        self.width = new_width;
        self.num_cols += 1;
        self.banned.push(false);
    }

    /// Re-optimizes after [`Simplex::add_le_row`]: a dual-simplex pass
    /// drives the violated (negative-rhs) basic slacks out while keeping
    /// dual feasibility, then a primal pass polishes any residual negative
    /// reduced costs. Each pivot charges [`WorkKind::Pivot`].
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] (dual unbounded), [`SolveError::Unbounded`],
    /// or [`SolveError::Exhausted`].
    pub fn reoptimize(&mut self, budget: &Budget) -> Result<(), SolveError> {
        debug_assert!(self.phase2, "reoptimize before the first optimize");
        self.dual_run(budget)?;
        self.run(budget)
    }

    /// Dual simplex: restores primal feasibility (rhs >= 0) from a
    /// dual-feasible tableau.
    fn dual_run(&mut self, budget: &Budget) -> Result<(), SolveError> {
        let width = self.width;
        for iter in 0.. {
            // Leaving row: most negative rhs (after prolonged degeneracy:
            // smallest basis index — Bland-style anti-cycling). Ties break
            // on the smaller basis index for determinism.
            let mut leave: Option<(f64, usize)> = None;
            for i in 0..self.m {
                let b = self.a[i * width + self.num_cols];
                if b < -EPS {
                    let take = match leave {
                        None => true,
                        Some((lb, li)) => {
                            if iter < DANTZIG_LIMIT {
                                b < lb - EPS || (b < lb + EPS && self.basis[i] < self.basis[li])
                            } else {
                                self.basis[i] < self.basis[li]
                            }
                        }
                    };
                    if take {
                        leave = Some((b, i));
                    }
                }
            }
            let Some((_, r)) = leave else {
                return Ok(());
            };
            // Entering column: dual ratio test over negative row entries;
            // first column at the minimal ratio wins (deterministic).
            let mut enter: Option<(f64, usize)> = None;
            for j in 0..self.num_cols {
                if self.banned[j] {
                    continue;
                }
                let arj = self.a[r * width + j];
                if arj < -EPS {
                    let ratio = self.a[self.m * width + j].max(0.0) / -arj;
                    if enter.map(|(best, _)| ratio < best - EPS).unwrap_or(true) {
                        enter = Some((ratio, j));
                    }
                }
            }
            let Some((_, j)) = enter else {
                // The violated row has no negative entry: no feasible
                // point satisfies it.
                return Err(SolveError::Infeasible);
            };
            budget
                .charge(WorkKind::Pivot)
                .map_err(SolveError::Exhausted)?;
            self.pivot(r, j);
        }
        unreachable!("dual loop exits via return")
    }

    /// Extracts the (unshifted) solution and exact objective.
    ///
    /// # Errors
    ///
    /// [`SolveError::Numerical`] when a coordinate cannot be snapped.
    pub fn solution(&self, model: &Model) -> Result<Solution, SolveError> {
        let mut raw = vec![0.0f64; self.n];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n {
                raw[b] = self.a[i * self.width + self.num_cols];
            }
        }
        let mut values = Vec::with_capacity(self.n);
        for (&v, &lb) in raw.iter().zip(&self.lower) {
            values.push(snap(v + lb)?);
        }
        let objective = model
            .objective
            .iter()
            .enumerate()
            .fold(Rational::ZERO, |acc, (i, &c)| acc + c * values[i]);
        Ok(Solution { values, objective })
    }

    fn run(&mut self, budget: &Budget) -> Result<(), SolveError> {
        let width = self.width;
        for iter in 0.. {
            // Entering column.
            let obj_row = self.m * width;
            let entering = if iter < DANTZIG_LIMIT {
                // Dantzig: most negative reduced cost.
                let mut best = None;
                let mut best_z = -EPS;
                for j in 0..self.num_cols {
                    if self.banned[j] {
                        continue;
                    }
                    let z = self.a[obj_row + j];
                    if z < best_z {
                        best_z = z;
                        best = Some(j);
                    }
                }
                best
            } else {
                // Bland: smallest index with negative reduced cost.
                (0..self.num_cols).find(|&j| !self.banned[j] && self.a[obj_row + j] < -EPS)
            };
            let Some(j) = entering else {
                return Ok(());
            };
            // Ratio test.
            let mut best: Option<(f64, usize)> = None;
            for i in 0..self.m {
                let aij = self.a[i * width + j];
                if aij > EPS {
                    let ratio = self.a[i * width + self.num_cols] / aij;
                    best = match best {
                        None => Some((ratio, i)),
                        Some((r, bi)) => {
                            if ratio < r - EPS
                                || (ratio < r + EPS && self.basis[i] < self.basis[bi])
                            {
                                Some((ratio, i))
                            } else {
                                Some((r, bi))
                            }
                        }
                    };
                }
            }
            let Some((_, i)) = best else {
                return Err(SolveError::Unbounded);
            };
            budget
                .charge(WorkKind::Pivot)
                .map_err(SolveError::Exhausted)?;
            self.pivot(i, j);
        }
        unreachable!("unbounded loop exits via return")
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.width;
        let p = self.a[row * width + col];
        debug_assert!(p.abs() > EPS);
        let inv = 1.0 / p;
        for j in 0..width {
            self.a[row * width + j] *= inv;
        }
        self.a[row * width + col] = 1.0; // fight rounding drift
        for i in 0..=self.m {
            if i == row {
                continue;
            }
            let factor = self.a[i * width + col];
            if factor == 0.0 {
                continue;
            }
            for j in 0..width {
                self.a[i * width + j] -= factor * self.a[row * width + j];
            }
            self.a[i * width + col] = 0.0;
        }
        self.basis[row] = col;
    }
}

#[cfg(test)]
mod tests {
    use super::Simplex;
    use crate::{Budget, Model, Sense, SolveError, WorkKind};

    #[test]
    fn simple_minimization() {
        // min x + y s.t. x + y >= 3, x <= 2
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x");
        let y = m.var("y");
        m.obj(x, 1);
        m.obj(y, 1);
        m.constraint_ge(&[(x, 1), (y, 1)], 3);
        m.set_upper(x, 2);
        let sol = m.solve_relaxation().unwrap();
        assert_eq!(sol.objective, 3.into());
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x");
        let y = m.var("y");
        m.obj(x, 3);
        m.obj(y, 2);
        m.constraint_le(&[(x, 1), (y, 1)], 4);
        m.constraint_le(&[(x, 1), (y, 3)], 6);
        let sol = m.solve_relaxation().unwrap();
        assert_eq!(sol.objective, 12.into());
        assert_eq!(sol.value(x), 4);
        assert_eq!(sol.value(y), 0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x");
        m.obj(x, 1);
        m.constraint_ge(&[(x, 1)], 5);
        m.constraint_le(&[(x, 1)], 2);
        assert_eq!(m.solve_relaxation().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x");
        m.obj(x, 1);
        assert_eq!(m.solve_relaxation().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // min 2x + y s.t. x + y == 5, x - y == 1  → x=3, y=2
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x");
        let y = m.var("y");
        m.obj(x, 2);
        m.obj(y, 1);
        m.constraint_eq(&[(x, 1), (y, 1)], 5);
        m.constraint_eq(&[(x, 1), (y, -1)], 1);
        let sol = m.solve_relaxation().unwrap();
        assert_eq!(sol.value(x), 3);
        assert_eq!(sol.value(y), 2);
    }

    #[test]
    fn lower_bound_shift() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x");
        let y = m.var("y");
        m.set_lower(x, -3);
        m.set_upper(y, 1);
        m.obj(x, 1);
        m.constraint_ge(&[(x, 1), (y, 1)], 0);
        let sol = m.solve_relaxation().unwrap();
        assert_eq!(sol.value(x), -1);
        assert_eq!(sol.value(y), 1);
    }

    #[test]
    fn fractional_lp_solution() {
        // max x s.t. 2x <= 3 → x = 3/2.
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x");
        m.obj(x, 1);
        m.constraint_le(&[(x, 2)], 3);
        let sol = m.solve_relaxation().unwrap();
        assert_eq!(sol.rational_value(x), crate::Rational::new(3, 2));
    }

    #[test]
    fn degenerate_problems_terminate() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x");
        let y = m.var("y");
        m.obj(x, 1);
        m.obj(y, 1);
        m.constraint_ge(&[(x, 1), (y, 1)], 2);
        m.constraint_ge(&[(x, 2), (y, 2)], 4);
        m.constraint_ge(&[(x, 3), (y, 3)], 6);
        let sol = m.solve_relaxation().unwrap();
        assert_eq!(sol.objective, 2.into());
    }

    #[test]
    fn negative_objective_coefficients() {
        // min x - 2y s.t. y <= x, x <= 10 → x = y = 10 gives -10.
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x");
        let y = m.var("y");
        m.obj(x, 1);
        m.obj(y, -2);
        m.constraint_le(&[(y, 1), (x, -1)], 0);
        m.set_upper(x, 10);
        let sol = m.solve_relaxation().unwrap();
        assert_eq!(sol.objective, (-10).into());
        assert_eq!(sol.value(x), 10);
        assert_eq!(sol.value(y), 10);
    }

    #[test]
    fn larger_difference_chain_is_fast() {
        // A 200-op chain with fan-outs — must solve in well under a second.
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..200).map(|i| m.int_var(&format!("t{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            m.obj(v, if i % 3 == 0 { 2 } else { -1 });
            m.set_upper(v, 400);
        }
        for w in vars.windows(2) {
            m.constraint_le(&[(w[0], 1), (w[1], -1)], -1);
        }
        for i in (0..190).step_by(10) {
            m.constraint_le(&[(vars[i], 1), (vars[i + 9], -1)], -5);
        }
        let sol = m.solve().unwrap();
        assert!(m.is_feasible(&sol.values));
    }

    #[test]
    fn phase1_drive_out_pivots_are_charged() {
        // An equality system forces artificials; every pivot (including
        // any drive-out) must appear in the budget's pivot counter, and a
        // budget of zero must fail before any work happens.
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x");
        let y = m.var("y");
        m.obj(x, 2);
        m.obj(y, 1);
        m.constraint_eq(&[(x, 1), (y, 1)], 5);
        m.constraint_eq(&[(x, 1), (y, -1)], 1);
        let budget = Budget::unlimited();
        let sol = m.solve_relaxation_with_budget(&budget).unwrap();
        assert_eq!(sol.value(x), 3);
        assert!(budget.count(WorkKind::Pivot) >= 2);
        assert_eq!(budget.used(), budget.count(WorkKind::Pivot));
        assert!(matches!(
            m.solve_relaxation_with_budget(&Budget::new(0)),
            Err(SolveError::Exhausted(_))
        ));
    }

    #[test]
    fn snap_rejects_out_of_range_values() {
        assert!(matches!(super::snap(1e40), Err(SolveError::Numerical(_))));
        assert!(matches!(
            super::snap(f64::NAN),
            Err(SolveError::Numerical(_))
        ));
        assert!(matches!(
            super::snap(f64::INFINITY),
            Err(SolveError::Numerical(_))
        ));
        // A huge *fractional* value overflows the continued-fraction
        // accumulator and must error, not saturate: the old fallback
        // returned i128::MAX/2^20 for any such input.
        assert!(matches!(super::snap(2.5e38), Err(SolveError::Numerical(_))));
        // Sane values still snap exactly.
        assert_eq!(super::snap(3.0).unwrap(), crate::Rational::int(3));
        assert_eq!(super::snap(1.5).unwrap(), crate::Rational::new(3, 2));
    }

    #[test]
    fn warm_added_row_reoptimizes_with_dual_pivots() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 → (4, 0), obj 12.
        // Then add x <= 2: dual step moves to (2, 4/3), obj 26/3.
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x");
        let y = m.var("y");
        m.obj(x, 3);
        m.obj(y, 2);
        m.constraint_le(&[(x, 1), (y, 1)], 4);
        m.constraint_le(&[(x, 1), (y, 3)], 6);
        let budget = Budget::unlimited();
        let mut sx = Simplex::new(&m);
        sx.optimize(&budget).unwrap();
        let first = sx.solution(&m).unwrap();
        assert_eq!(first.objective, 12.into());
        let cold = budget.count(WorkKind::Pivot);

        sx.add_le_row(&[(x.0, 1.0)], 2.0);
        sx.reoptimize(&budget).unwrap();
        let second = sx.solution(&m).unwrap();
        assert_eq!(second.rational_value(x), 2.into());
        assert_eq!(second.objective, crate::Rational::new(26, 3));
        let warm = budget.count(WorkKind::Pivot) - cold;
        assert!(warm >= 1, "dual re-optimization must pivot");
        // The warm path must beat a from-scratch re-solve.
        m.set_upper(x, 2);
        let fresh = Budget::unlimited();
        let scratch = m.solve_relaxation_with_budget(&fresh).unwrap();
        assert_eq!(scratch.objective, second.objective);
        assert!(warm <= fresh.count(WorkKind::Pivot));
    }

    #[test]
    fn warm_added_row_can_prove_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x");
        m.obj(x, 1);
        m.constraint_ge(&[(x, 1)], 5);
        let budget = Budget::unlimited();
        let mut sx = Simplex::new(&m);
        sx.optimize(&budget).unwrap();
        sx.add_le_row(&[(x.0, 1.0)], 2.0); // x <= 2 contradicts x >= 5
        assert_eq!(sx.reoptimize(&budget), Err(SolveError::Infeasible));
    }
}
