/root/repo/target/debug/deps/longnail_suite-cce20c5df3656e09.d: src/suite.rs Cargo.toml

/root/repo/target/debug/deps/liblongnail_suite-cce20c5df3656e09.rmeta: src/suite.rs Cargo.toml

src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
