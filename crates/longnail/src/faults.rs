//! Deterministic, config-driven fault injection for batch robustness.
//!
//! A [`FaultPlan`] tells the driver to break specific matrix cells on
//! purpose — a forced panic at one of the eight pipeline stage
//! boundaries, a forced parse error, solver-budget exhaustion, or a
//! poisoned [`crate::driver::FrontendCache`] entry — so the graceful-
//! degradation machinery (per-cell isolation, `--keep-going`, partial
//! exit codes) can be exercised and regression-tested without relying on
//! real compiler bugs. Injection is keyed on the `(unit, core)` cell, so
//! a plan breaks exactly the cells it names and nothing else.
//!
//! Plans are parsed from a line-oriented text format (one fault per
//! line), which is what `lnc --fault-plan <path>` reads:
//!
//! ```text
//! # unit@core  kind[@stage]
//! X_DOTP@ORCA        panic@rtl
//! ZolIsax@Piccolo    parse-error
//! SboxIsax@VexRiscv  budget-exhaustion
//! AutoIncIsax@*      poison-cache
//! ```
//!
//! `*` is a wildcard for either coordinate. The stage suffix is only
//! meaningful for `panic` (one of [`telemetry::STAGES`]; default
//! `solve`); the other kinds imply their stage (`parse-error` and
//! `poison-cache` hit the frontend, `budget-exhaustion` hits the
//! solver).

use std::fmt;

/// What kind of failure to inject into a matching cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at a stage-span boundary; exercises per-cell panic
    /// isolation (`Severity::Fault`, exit code 2 territory).
    Panic,
    /// Forced coded parse error from the frontend; exercises the
    /// cache-bypassing error path (`Severity::Error`).
    ParseError,
    /// Solver work budget exhausted before a schedule exists; the cell's
    /// first unit fails with a `solve`-stage error.
    BudgetExhaustion,
    /// The shared frontend-cache entry mutex is genuinely poisoned (a
    /// panic while holding the lock); this cell fails, peers sharing the
    /// entry must recover.
    PoisonCache,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        Some(match s {
            "panic" => FaultKind::Panic,
            "parse-error" => FaultKind::ParseError,
            "budget-exhaustion" => FaultKind::BudgetExhaustion,
            "poison-cache" => FaultKind::PoisonCache,
            _ => return None,
        })
    }

    /// The plan-file spelling of this kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::ParseError => "parse-error",
            FaultKind::BudgetExhaustion => "budget-exhaustion",
            FaultKind::PoisonCache => "poison-cache",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One injected fault: which cell, what kind, and (for panics) at which
/// pipeline stage boundary it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// CoreDSL unit name the cell elaborates (`*` matches any).
    pub unit: String,
    /// Target core name (`*` matches any).
    pub core: String,
    /// Stage boundary the fault fires at, one of [`telemetry::STAGES`].
    pub stage: &'static str,
    pub kind: FaultKind,
}

impl FaultSpec {
    /// Whether this fault applies to the `(unit, core)` cell.
    pub fn matches(&self, unit: &str, core: &str) -> bool {
        (self.unit == "*" || self.unit == unit) && (self.core == "*" || self.core == core)
    }
}

/// A deterministic set of faults to inject into one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with a single fault — the shape the chaos tests sweep.
    pub fn single(unit: &str, core: &str, kind: FaultKind, stage: &str) -> Result<Self, String> {
        Ok(FaultPlan {
            faults: vec![FaultSpec {
                unit: unit.to_string(),
                core: core.to_string(),
                stage: canonical_stage(kind, Some(stage))?,
                kind,
            }],
        })
    }

    /// Parses the line-oriented plan format (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let cell = parts.next().expect("non-empty line has a first token");
            let Some(kind_spec) = parts.next() else {
                return Err(format!("line {}: expected `unit@core kind[@stage]`", n + 1));
            };
            if parts.next().is_some() {
                return Err(format!("line {}: trailing tokens after the fault kind", n + 1));
            }
            let Some((unit, core)) = cell.split_once('@') else {
                return Err(format!("line {}: cell must be `unit@core`", n + 1));
            };
            if unit.is_empty() || core.is_empty() {
                return Err(format!("line {}: empty unit or core in `{cell}`", n + 1));
            }
            let (kind_str, stage) = match kind_spec.split_once('@') {
                Some((k, s)) => (k, Some(s)),
                None => (kind_spec, None),
            };
            let Some(kind) = FaultKind::parse(kind_str) else {
                return Err(format!(
                    "line {}: unknown fault kind `{kind_str}` (known: panic, \
                     parse-error, budget-exhaustion, poison-cache)",
                    n + 1
                ));
            };
            faults.push(FaultSpec {
                unit: unit.to_string(),
                core: core.to_string(),
                stage: canonical_stage(kind, stage).map_err(|e| format!("line {}: {e}", n + 1))?,
                kind,
            });
        }
        Ok(FaultPlan { faults })
    }

    /// The first fault of `kind` that applies to the `(unit, core)` cell.
    pub fn fault(&self, unit: &str, core: &str, kind: FaultKind) -> Option<&FaultSpec> {
        self.faults
            .iter()
            .find(|f| f.kind == kind && f.matches(unit, core))
    }

    /// Whether a panic is planned for this cell at this stage boundary.
    pub fn panic_at(&self, unit: &str, core: &str, stage: &str) -> bool {
        self.faults
            .iter()
            .any(|f| f.kind == FaultKind::Panic && f.stage == stage && f.matches(unit, core))
    }

    /// Whether *any* fault targets the `(unit, core)` cell. Targeted
    /// cells bypass the incremental stage caches entirely: an injected
    /// failure must stay in its cell and never pollute a content-keyed
    /// entry a healthy run would later trust.
    pub fn targets_cell(&self, unit: &str, core: &str) -> bool {
        self.faults.iter().any(|f| f.matches(unit, core))
    }
}

/// Resolves the stage a fault fires at: panics take any pipeline stage
/// (defaulting to `solve`); the other kinds have a fixed stage and
/// reject contradictory suffixes.
fn canonical_stage(kind: FaultKind, stage: Option<&str>) -> Result<&'static str, String> {
    let implied = match kind {
        FaultKind::Panic => {
            let want = stage.unwrap_or("solve");
            return telemetry::STAGES
                .iter()
                .find(|s| **s == want)
                .copied()
                .ok_or_else(|| {
                    format!(
                        "`{want}` is not a pipeline stage (known: {})",
                        telemetry::STAGES.join(", ")
                    )
                });
        }
        FaultKind::ParseError | FaultKind::PoisonCache => "frontend",
        FaultKind::BudgetExhaustion => "solve",
    };
    match stage {
        None => Ok(implied),
        Some(s) if s == implied => Ok(implied),
        Some(s) => Err(format!("`{kind}` always fires at `{implied}`, not `{s}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_example() {
        let plan = FaultPlan::parse(
            "# comment\n\
             X_DOTP@ORCA panic@rtl\n\
             \n\
             ZolIsax@Piccolo parse-error\n\
             SboxIsax@VexRiscv budget-exhaustion\n\
             AutoIncIsax@* poison-cache\n",
        )
        .unwrap();
        assert_eq!(plan.faults.len(), 4);
        assert_eq!(plan.faults[0].kind, FaultKind::Panic);
        assert_eq!(plan.faults[0].stage, "rtl");
        assert_eq!(plan.faults[1].stage, "frontend");
        assert_eq!(plan.faults[2].stage, "solve");
        assert!(plan.faults[3].matches("AutoIncIsax", "PicoRV32"));
        assert!(!plan.faults[3].matches("ZolIsax", "PicoRV32"));
    }

    #[test]
    fn wildcards_and_lookups_match_cells() {
        let plan = FaultPlan::parse("*@ORCA panic@verilog\nU@* budget-exhaustion\n").unwrap();
        assert!(plan.panic_at("anything", "ORCA", "verilog"));
        assert!(!plan.panic_at("anything", "ORCA", "rtl"));
        assert!(!plan.panic_at("anything", "Piccolo", "verilog"));
        assert!(plan.fault("U", "Piccolo", FaultKind::BudgetExhaustion).is_some());
        assert!(plan.fault("V", "Piccolo", FaultKind::BudgetExhaustion).is_none());
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        assert!(FaultPlan::parse("justone\n").unwrap_err().contains("line 1"));
        assert!(FaultPlan::parse("a@b frobnicate\n").unwrap_err().contains("frobnicate"));
        assert!(FaultPlan::parse("a@b panic@nosuch\n")
            .unwrap_err()
            .contains("not a pipeline stage"));
        assert!(FaultPlan::parse("a@b parse-error@rtl\n")
            .unwrap_err()
            .contains("always fires at `frontend`"));
        assert!(FaultPlan::parse("@b panic\n").unwrap_err().contains("empty"));
        assert!(FaultPlan::parse("a@b panic extra\n")
            .unwrap_err()
            .contains("trailing"));
    }

    #[test]
    fn default_panic_stage_is_solve() {
        let plan = FaultPlan::parse("u@c panic\n").unwrap();
        assert_eq!(plan.faults[0].stage, "solve");
        assert!(FaultPlan::single("u", "c", FaultKind::Panic, "modes")
            .unwrap()
            .panic_at("u", "c", "modes"));
    }
}
