/root/repo/target/debug/deps/end_to_end-11fabe965a58de79.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-11fabe965a58de79: tests/end_to_end.rs

tests/end_to_end.rs:
