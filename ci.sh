#!/usr/bin/env sh
# Tier-1 gate for longnail-rs. Run from the repo root.
#
#   ./ci.sh            build + tests (+ clippy when available)
#
# Every step is deterministic and offline; the workspace has no external
# crate dependencies (rand/proptest/criterion are local stubs in crates/).
set -eu

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q --workspace"
cargo test -q --workspace

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== clippy not installed; skipping lint step"
fi

echo "== ci.sh: all checks passed"
