/root/repo/target/debug/deps/rtl_cosim-c65c0527d6dbfced.d: tests/rtl_cosim.rs Cargo.toml

/root/repo/target/debug/deps/librtl_cosim-c65c0527d6dbfced.rmeta: tests/rtl_cosim.rs Cargo.toml

tests/rtl_cosim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
