/root/repo/target/debug/deps/props-6b847749af3d1e0f.d: crates/sched/tests/props.rs

/root/repo/target/debug/deps/props-6b847749af3d1e0f: crates/sched/tests/props.rs

crates/sched/tests/props.rs:
