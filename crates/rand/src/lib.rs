//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this local crate
//! provides the (small) subset of the `rand` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! sampling methods. The generator is SplitMix64 — deterministic, seedable,
//! and statistically solid for test-input generation (it is the seeding
//! generator of the xoshiro family); it makes no cryptographic claims.

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain.
pub trait Standard: Sized {
    fn sample(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u8 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that support uniform sampling between two bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a uniform value in `[start, end_inclusive]`.
    fn sample_between(rng: &mut impl RngCore, start: Self, end_inclusive: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(rng: &mut impl RngCore, start: Self, end_inclusive: Self) -> Self {
                let span = (end_inclusive as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value of type `T` can be drawn from.
///
/// Blanket-implemented for `Range<T>` and `RangeInclusive<T>` so the
/// element type is inferred from context (e.g. an untyped `0..6` used as a
/// slice index samples a `usize`), matching the real `rand` API.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform + Dec> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_between(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        T::sample_between(rng, start, end)
    }
}

/// Decrement by one, used to convert an exclusive upper bound to an
/// inclusive one (the bound is known non-minimal at the call site).
pub trait Dec {
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),*) => {$(
        impl Dec for $t {
            fn dec(self) -> Self { self - 1 }
        }
    )*};
}

impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Samples a uniform value over the whole domain of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a uniform value from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(3..10u32);
            assert!((3..10).contains(&v));
            let w: i64 = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let idx = rng.random_range(0..4usize);
            assert!(idx < 4);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
