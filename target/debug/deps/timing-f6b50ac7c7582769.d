/root/repo/target/debug/deps/timing-f6b50ac7c7582769.d: crates/cores/tests/timing.rs Cargo.toml

/root/repo/target/debug/deps/libtiming-f6b50ac7c7582769.rmeta: crates/cores/tests/timing.rs Cargo.toml

crates/cores/tests/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
