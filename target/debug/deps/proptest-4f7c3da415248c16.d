/root/repo/target/debug/deps/proptest-4f7c3da415248c16.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/option.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-4f7c3da415248c16.rmeta: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/option.rs Cargo.toml

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/option.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
