//! CoreDSL language frontend.
//!
//! CoreDSL (paper §2) is a behavioral architecture description language with
//! a C-like surface syntax, arbitrary-precision bitwidth-aware integer types,
//! instruction encodings, and the `always`/`spawn` constructs for decoupled
//! execution. This crate implements the complete frontend:
//!
//! * [`lexer`] / [`parser`] — the grammar of Figure 2 plus C-inspired
//!   statements, expressions, and Verilog-style literals,
//! * [`types`] — the bitwidth-aware type system of §2.3 (lossless implicit
//!   assignment, widening operators, explicit narrowing casts),
//! * [`sema`] — contextual analysis producing a *typed* AST,
//! * [`elab`] — imports, `InstructionSet` inheritance, parameter
//!   assignment, and `Core` definitions, yielding an elaborated
//!   [`tast::TypedModule`] ready for HLS.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//! InstructionSet demo {
//!     architectural_state {
//!         register unsigned<32> X[32];
//!     }
//!     instructions {
//!         double_reg {
//!             encoding: 7'd0 :: 5'd0 :: rs1[4:0] :: 3'd1 :: rd[4:0] :: 7'b0001011;
//!             behavior: {
//!                 X[rd] = (unsigned<32>)(X[rs1] + X[rs1]);
//!             }
//!         }
//!     }
//! }
//! "#;
//! let module = coredsl::Frontend::new().compile_str(src, "demo").unwrap();
//! assert_eq!(module.instructions.len(), 1);
//! assert_eq!(module.instructions[0].name, "double_reg");
//! ```

pub mod ast;
pub mod elab;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod prelude_src;
pub mod sema;
pub mod tast;
pub mod token;
pub mod types;

/// Value-level evaluation helpers shared with downstream interpreters.
pub mod sema_support {
    pub use crate::sema::{eval_binary as eval_binary_op, resize as resize_value};
}

pub use elab::{CompileOutput, Frontend};
pub use error::{codes, Diagnostic, Span};
pub use parser::ParseOutput;
pub use sema::SemaOutput;
pub use tast::TypedModule;
pub use types::IntType;
