//! The Longnail HLS driver (paper §4).
//!
//! Compiles an ISAX through the full stack: frontend → LIL lowering →
//! core-aware scheduling (the *LongnailProblem*, solved with the Figure 7
//! ILP against the core's virtual datasheet) → execution-mode selection
//! (§4.3) → hardware construction and SystemVerilog emission (§4.5) →
//! SCAIE-V configuration file (§4.6).

use crate::diag::{DiagEvent, Diagnostics, Severity};
use crate::faults::{FaultKind, FaultPlan};
use crate::pipeline::{self, PipelineCache, StageCacheStats, StageVal, Tape};
use coredsl::error::{codes, Diagnostic, Span};
use coredsl::tast::TypedModule;
use coredsl::Frontend;
use eda::TechLibrary;
use ir::lil::{Graph, GraphKind, LilModule, OpKind};
use ir::{lower_always, lower_instruction, lower_state, verify_graph};
use pool::Pool;
use rtl::build::{build_graph_module, BuiltModule};
use rtl::lint::{comb_depth, lint_module};
use rtl::opt::{optimize, verify_equivalent, OptLevel};
use rtl::verilog::{emit_verilog, EmitOptions};
use scaiev::config::{Functionality, IsaxConfig, RegisterRequest, ScheduleEntry};
use scaiev::datasheet::{Timing, VirtualDatasheet};
use scaiev::iface::SubInterfaceOp;
use scaiev::modes::{select_mode, ExecutionMode};
use qcache::Digest;
use sched::problem::{LongnailProblem, OperationId, OperatorType, OperatorTypeId, Schedule};
use sched::resilient::DegradationReason;
use sched::{schedule_resilient, Budget, WorkKind};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use telemetry::{metrics, SpanId, Telemetry, Trace};

/// Abstract combinational-delay unit assigned to every "real" logic level.
///
/// The paper "currently assume[s] uniform delays and area for logic and
/// non-combinational sub-interface operations" (§4.2); a real technology
/// library is future work there, and the calibrated 22 nm model lives in
/// the `eda` crate here. Pure wiring (extracts, concats, extensions) costs
/// nothing.
pub const UNIFORM_DELAY: f64 = 1.0;

/// Default chaining budget: how many uniform logic levels fit in one
/// pipeline stage, used when the datasheet does not specify a target
/// clock. Chosen so that the 32-iteration digit-recurrence square root
/// spreads over ~10 stages, matching the paper's observation.
pub const DEFAULT_CHAIN_DEPTH: f64 = 6.0;

/// Physical duration of one uniform logic level (≈ a 32-bit adder in the
/// 22 nm model). When the datasheet carries a target clock period, the
/// per-stage chaining budget becomes `clock_ns / UNIT_NS`: fast cores chain
/// fewer levels per stage and therefore pipeline ISAXes more deeply.
pub const UNIT_NS: f64 = 0.22;

/// Error from any stage of the flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowError {
    /// Flow stage that failed (`frontend`, `lower`, `schedule`, ...).
    pub stage: &'static str,
    pub message: String,
    /// How bad the failure is: [`Severity::Error`] for rejected input,
    /// [`Severity::Fault`] for internal failures (contained panics,
    /// poisoned caches) — drives the exit code and matrix accounting.
    pub severity: Severity,
    /// The full coded diagnostic list behind a `frontend` failure. The
    /// frontend accumulates independent errors instead of stopping at
    /// the first one; `message` summarizes, this field carries them all.
    pub frontend_errors: Vec<Diagnostic>,
}

impl FlowError {
    /// An ordinary stage error (exit-code-1 territory).
    pub fn error(stage: &'static str, message: impl Into<String>) -> Self {
        FlowError {
            stage,
            message: message.into(),
            severity: Severity::Error,
            frontend_errors: Vec::new(),
        }
    }

    /// An internal fault (contained panic, poisoned state; exit code 2).
    pub fn fault(stage: &'static str, message: impl Into<String>) -> Self {
        FlowError {
            stage,
            message: message.into(),
            severity: Severity::Fault,
            frontend_errors: Vec::new(),
        }
    }

    /// A frontend failure carrying every accumulated coded diagnostic.
    /// The summary message is the first diagnostic (matching the old
    /// fail-fast behavior) plus a count of the rest.
    pub fn frontend(errors: Vec<Diagnostic>) -> Self {
        let message = match errors.as_slice() {
            [] => "frontend failed without diagnostics".to_string(),
            [only] => only.to_string(),
            [first, rest @ ..] => format!("{first} (and {} more error(s))", rest.len()),
        };
        FlowError {
            stage: "frontend",
            message,
            severity: Severity::Error,
            frontend_errors: errors,
        }
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.stage, self.message)
    }
}

impl std::error::Error for FlowError {}

thread_local! {
    /// Pipeline stage the current thread's compilation is inside,
    /// updated at every stage-span boundary. When a panic is contained
    /// (matrix isolation, `lnc`'s top-level catch), this is the stage
    /// context the resulting fault diagnostic is attributed to.
    static CURRENT_STAGE: std::cell::Cell<&'static str> =
        const { std::cell::Cell::new("frontend") };
}

/// The stage boundary most recently crossed on this thread.
pub fn current_stage() -> &'static str {
    CURRENT_STAGE.with(|c| c.get())
}

fn set_stage(stage: &'static str) {
    CURRENT_STAGE.with(|c| c.set(stage));
}

/// One compiled instruction or `always`-block.
#[derive(Debug, Clone)]
pub struct CompiledGraph {
    /// Instruction / always-block name.
    pub name: String,
    /// True for `always`-blocks.
    pub is_always: bool,
    /// Decode mask (instructions only).
    pub mask: u32,
    /// Decode match value (instructions only).
    pub match_value: u32,
    /// The scheduled LIL graph.
    pub graph: Graph,
    /// Per-LIL-operation start times and in-cycle times.
    pub schedule: Schedule,
    /// The constructed hardware module with port bindings.
    pub built: BuiltModule,
    /// Emitted SystemVerilog.
    pub verilog: String,
    /// Overall execution mode (worst interface variant, §3.2/§4.3).
    pub mode: ExecutionMode,
    /// Stage of the WrRD use, if the instruction writes `rd`.
    pub result_stage: Option<u32>,
    /// Earliest stage of any `spawn` operation (decoupled issue point).
    pub spawn_stage: Option<u32>,
    /// Highest active stage (total latency in stages).
    pub max_stage: u32,
}

/// A fully compiled ISAX, ready for SCAIE-V integration into one core.
#[derive(Debug, Clone)]
pub struct CompiledIsax {
    /// ISAX name.
    pub name: String,
    /// Core this compilation targeted.
    pub core: String,
    /// The elaborated, type-checked module (golden-model input).
    pub module: TypedModule,
    /// The lowered LIL module.
    pub lil: LilModule,
    /// One compiled artifact per instruction / always-block.
    ///
    /// Units that failed to compile are missing here and reported in
    /// [`CompiledIsax::diagnostics`] instead — one broken instruction does
    /// not abort the ISAX.
    pub graphs: Vec<CompiledGraph>,
    /// The SCAIE-V configuration file contents (Figure 8).
    pub config: IsaxConfig,
    /// Warnings, degradation notices, and per-unit errors accumulated
    /// across the flow.
    pub diagnostics: Diagnostics,
    /// Telemetry for the whole compilation: one span per pipeline stage
    /// ([`telemetry::STAGES`]), solver counters, per-unit schedule and
    /// hardware statistics, and the diagnostics mirrored with span links.
    /// Deterministic modulo the `dur_ns` timing fields
    /// ([`Trace::stripped`]).
    pub trace: Trace,
}

impl CompiledIsax {
    /// Finds a compiled graph by name.
    pub fn graph(&self, name: &str) -> Option<&CompiledGraph> {
        self.graphs.iter().find(|g| g.name == name)
    }

    /// Iterates over compiled instructions (not always-blocks).
    pub fn instructions(&self) -> impl Iterator<Item = &CompiledGraph> {
        self.graphs.iter().filter(|g| !g.is_always)
    }

    /// Iterates over compiled always-blocks.
    pub fn always_blocks(&self) -> impl Iterator<Item = &CompiledGraph> {
        self.graphs.iter().filter(|g| g.is_always)
    }
}

/// The Longnail compiler.
pub struct Longnail {
    frontend: Frontend,
    /// Chaining budget in uniform-delay units per stage.
    pub chain_depth: f64,
    /// Deterministic solver work budget granted to each graph's scheduling
    /// problem (see [`Budget`]). When the exact ILP exhausts it, the
    /// flow degrades to the verified ASAP fallback scheduler and records a
    /// warning instead of failing.
    pub work_limit: u64,
    /// Deterministic fault-injection plan (chaos testing). `None` — the
    /// default — injects nothing and costs one branch per stage boundary.
    pub fault_plan: Option<FaultPlan>,
    /// Netlist optimization effort (`lnc --opt-level`). At [`OptLevel::O0`]
    /// — the default — the `opt` stage is skipped entirely and the flow is
    /// byte-identical to the pre-optimizer compiler. Higher levels run the
    /// oracle-gated pass pipeline between `rtl` and `verilog`.
    pub opt_level: OptLevel,
}

impl Default for Longnail {
    fn default() -> Self {
        Self::new()
    }
}

impl Longnail {
    /// Creates a compiler with the built-in prelude and default chaining
    /// budget.
    pub fn new() -> Self {
        Longnail {
            frontend: Frontend::new(),
            chain_depth: DEFAULT_CHAIN_DEPTH,
            work_limit: Budget::DEFAULT_LIMIT,
            fault_plan: None,
            opt_level: OptLevel::O0,
        }
    }

    /// The canonical fingerprint of every configuration knob that shapes
    /// emitted artifacts but is *not* part of the datasheet, chaining
    /// budget, or work limit: the optimization level and the SystemVerilog
    /// emission options. Folded into [`pipeline::core_config_key`] (so the
    /// whole backend key cone tracks it) and into the on-disk
    /// [`pipeline::schema_fingerprint`] — a `-O0` artifact can never be
    /// served to a `-O2` run from a shared cache directory.
    pub fn config_fingerprint(&self) -> String {
        let opts = EmitOptions::default();
        format!(
            "opt={};guard_division={};bounded_extract_dyn={}",
            self.opt_level.level(),
            opts.guard_division,
            opts.bounded_extract_dyn
        )
    }

    /// A sibling compiler configured like `self` but at `level` — used by
    /// serve mode for per-job `opt_level` overrides. The frontend is a
    /// fresh instance (its prelude state is per-compiler); everything
    /// else carries over, so the two compilers differ only in their
    /// config fingerprints.
    pub fn with_opt_level(&self, level: OptLevel) -> Longnail {
        Longnail {
            frontend: Frontend::new(),
            chain_depth: self.chain_depth,
            work_limit: self.work_limit,
            fault_plan: self.fault_plan.clone(),
            opt_level: level,
        }
    }

    /// Crosses a stage boundary: records the stage for panic attribution
    /// and fires a planned [`FaultKind::Panic`] when this `(unit, core)`
    /// cell is targeted at this stage.
    fn stage_boundary(&self, unit: &str, core: &str, stage: &'static str) {
        set_stage(stage);
        if let Some(plan) = &self.fault_plan {
            if plan.panic_at(unit, core, stage) {
                panic!("injected fault: panic at stage `{stage}` of `{unit}` for `{core}`");
            }
        }
    }

    /// Access to the CoreDSL frontend (e.g. to register import sources).
    pub fn frontend_mut(&mut self) -> &mut Frontend {
        &mut self.frontend
    }

    /// Compiles CoreDSL source text for the given target core.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] naming the failing flow stage.
    pub fn compile(
        &self,
        src: &str,
        unit: &str,
        datasheet: &VirtualDatasheet,
    ) -> Result<CompiledIsax, FlowError> {
        let artifacts = self.frontend_artifacts(src, unit)?;
        Ok(self.compile_artifacts(&artifacts, datasheet))
    }

    /// Compiles CoreDSL source text through a shared [`FrontendCache`]:
    /// the core-independent frontend + lowering half of the flow runs at
    /// most once per distinct `(source, unit)` pair; only the core-aware
    /// backend runs per call. The emitted trace is byte-identical
    /// (after [`Trace::stripped`]) to an uncached [`Longnail::compile`].
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] naming the failing flow stage. Frontend
    /// failures are cached too: every core asking for a broken ISAX gets
    /// the same error without re-running the frontend.
    pub fn compile_cached(
        &self,
        src: &str,
        unit: &str,
        datasheet: &VirtualDatasheet,
        cache: &FrontendCache,
    ) -> Result<CompiledIsax, FlowError> {
        self.compile_cell(src, unit, datasheet, cache.pipeline())
    }

    /// Compiles one matrix cell through the full incremental pipeline:
    /// every stage is looked up in (and populates) `pipe`'s content-keyed
    /// stage store, so recompiling an unchanged cell is pure cache
    /// replay and editing a source recomputes only its downstream cone.
    /// The emitted trace is byte-identical (after [`Trace::stripped`])
    /// to an uncached [`Longnail::compile`], warm or cold.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] naming the failing flow stage. Failures
    /// are cached alongside successes — a deterministically broken input
    /// fails identically warm.
    pub fn compile_cell(
        &self,
        src: &str,
        unit: &str,
        datasheet: &VirtualDatasheet,
        pipe: &PipelineCache,
    ) -> Result<CompiledIsax, FlowError> {
        if let Some(plan) = &self.fault_plan {
            if plan.fault(unit, &datasheet.core, FaultKind::PoisonCache).is_some() {
                // Genuinely poison the slot mutex — exactly the state a
                // worker that crashed mid-compute leaves behind — then
                // fail this cell. Peers sharing the entry must recover
                // through the store's poison-tolerant locking.
                set_stage("frontend");
                pipe.store().poison("frontend", pipeline::frontend_key(unit, src));
                return Err(FlowError::fault(
                    "frontend",
                    format!("injected fault: frontend cache entry for `{unit}` poisoned"),
                ));
            }
            if plan.fault(unit, &datasheet.core, FaultKind::ParseError).is_some() {
                // Bypass the shared cache: the injected frontend failure
                // must stay in this cell, not be cached for every core
                // that asks for this (healthy) source.
                let artifacts = self.frontend_artifacts_for(src, unit, Some(&datasheet.core))?;
                return Ok(self.compile_artifacts(&artifacts, datasheet));
            }
        }
        let fe_key = pipeline::frontend_key(unit, src);
        let (result, lookup) = pipe.store().get_or_compute_sized(
            "frontend",
            fe_key,
            || self.frontend_artifacts(src, unit).map(Arc::new),
            // Typed module + lowered LIL scale with the source text.
            |_| 1024 + (src.len() as u64) * 8,
        );
        // The lowered LIL rides inside the frontend artifact; mirror the
        // lookup so `cache.lower.*` stats stay observable per stage.
        pipe.store().record("lower", lookup);
        let artifacts = result?;
        // Fault-targeted cells run the backend uncached: an injected
        // panic or degradation must fire identically warm or cold and
        // never park a poisoned artifact under a key healthy runs trust.
        let cached_backend = !self
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.targets_cell(unit, &datasheet.core));
        let ctx = cached_backend.then(|| PipeCtx {
            pipe,
            fe_key,
            cfg_key: pipeline::core_config_key(
                datasheet,
                self.chain_depth,
                self.work_limit,
                &self.config_fingerprint(),
            ),
        });
        Ok(self.compile_artifacts_with_cache(
            &artifacts,
            datasheet,
            Some(&CacheLookup::from(lookup)),
            ctx.as_ref(),
        ))
    }

    /// Compiles an already type-checked module for the given target core.
    ///
    /// Units are compiled independently: a unit that fails in lowering,
    /// verification, scheduling, or netlist construction is dropped and
    /// recorded in [`CompiledIsax::diagnostics`] while the remaining units
    /// compile normally. Callers decide what an acceptable outcome is via
    /// [`Diagnostics::has_errors`] / [`Diagnostics::has_faults`].
    ///
    /// # Errors
    ///
    /// Reserved for module-wide failures; per-unit failures surface as
    /// diagnostics instead.
    pub fn compile_module(
        &self,
        module: TypedModule,
        datasheet: &VirtualDatasheet,
    ) -> Result<CompiledIsax, FlowError> {
        Ok(self.compile_artifacts(&lower_artifacts(module), datasheet))
    }

    /// Runs the core-independent half of the flow: parse, elaborate,
    /// type-check, and lower to verified LIL. The result can be compiled
    /// for any number of cores via [`Longnail::compile_artifacts`] and is
    /// what [`FrontendCache`] shares between matrix cells.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] if the frontend rejects the source; its
    /// `frontend_errors` field carries *every* accumulated coded
    /// diagnostic, not just the first. Per-unit lowering problems are
    /// captured inside the artifacts and replayed into each
    /// compilation's diagnostics instead.
    pub fn frontend_artifacts(
        &self,
        src: &str,
        unit: &str,
    ) -> Result<FrontendArtifacts, FlowError> {
        self.frontend_artifacts_for(src, unit, None)
    }

    /// [`Longnail::frontend_artifacts`] with an optional target-core
    /// context for fault injection. The cache-shared path passes `None`
    /// (injection is per-cell, never per-cache-entry).
    fn frontend_artifacts_for(
        &self,
        src: &str,
        unit: &str,
        core: Option<&str>,
    ) -> Result<FrontendArtifacts, FlowError> {
        if let Some(core) = core {
            self.stage_boundary(unit, core, "frontend");
            if let Some(plan) = &self.fault_plan {
                if plan.fault(unit, core, FaultKind::ParseError).is_some() {
                    return Err(FlowError::frontend(vec![Diagnostic::coded(
                        codes::PARSE_EXPECTED,
                        Span::new(1, 1),
                        "injected fault: forced parse error",
                    )
                    .in_source(unit)]));
                }
            }
        } else {
            set_stage("frontend");
        }
        let out = self.frontend.compile_str_all(src, unit);
        if !out.errors.is_empty() {
            return Err(FlowError::frontend(out.errors));
        }
        let module = out
            .module
            .ok_or_else(|| FlowError::error("frontend", "elaboration produced no module"))?;
        if let Some(core) = core {
            self.stage_boundary(unit, core, "lower");
        } else {
            set_stage("lower");
        }
        Ok(lower_artifacts(module))
    }

    /// The core-aware backend: schedules, builds, and emits every verified
    /// LIL graph in `artifacts` against `datasheet`, replaying the cached
    /// frontend/lower telemetry so the trace is indistinguishable from a
    /// monolithic run.
    pub fn compile_artifacts(
        &self,
        artifacts: &FrontendArtifacts,
        datasheet: &VirtualDatasheet,
    ) -> CompiledIsax {
        self.compile_artifacts_with_cache(artifacts, datasheet, None, None)
    }

    /// [`Longnail::compile_artifacts`] plus optional cache attribution:
    /// the matrix path passes what its [`FrontendCache`] lookup observed
    /// so the cell's root span carries `cache.frontend.*` counters. The
    /// names are nondeterministic under concurrency (which cell wins the
    /// miss is a race), so [`Trace::stripped`] drops them — an uncached
    /// trace and a cached one stay byte-identical after stripping.
    fn compile_artifacts_with_cache(
        &self,
        artifacts: &FrontendArtifacts,
        datasheet: &VirtualDatasheet,
        cache: Option<&CacheLookup>,
        ctx: Option<&PipeCtx<'_>>,
    ) -> CompiledIsax {
        let module = &artifacts.module;
        let lil = &artifacts.lil;
        let mut tel = Telemetry::new();
        let root = tel.start_span("compile");
        tel.attr(root, "core", &datasheet.core);
        if let Some(lookup) = cache {
            tel.counter(root, metrics::CACHE_FRONTEND_HIT, u64::from(lookup.hit));
            tel.counter(root, metrics::CACHE_FRONTEND_MISS, u64::from(!lookup.hit));
            if lookup.waited {
                tel.counter(root, metrics::CACHE_FRONTEND_WAIT, 1);
                tel.counter(root, metrics::CACHE_FRONTEND_WAIT_NS, lookup.wait_ns);
            }
        }
        let stats = module.stats();
        self.stage_boundary(&module.name, &datasheet.core, "frontend");
        let fe = tel.start_span("frontend");
        tel.counter(fe, metrics::FRONTEND_INSTRUCTIONS, stats.instructions as u64);
        tel.counter(fe, metrics::FRONTEND_ALWAYS, stats.always_blocks as u64);
        tel.counter(fe, metrics::FRONTEND_FUNCTIONS, stats.functions as u64);
        tel.end_span(fe);
        tel.attr(root, "isax", &module.name);
        let mut diagnostics = Diagnostics::default();
        self.stage_boundary(&module.name, &datasheet.core, "lower");
        let lower_span = tel.start_span("lower");
        diagnostics.set_trace_span(Some(lower_span.0));
        diagnostics.replay(&artifacts.lower_events);
        tel.counter(lower_span, "lower.graphs", lil.graphs.len() as u64);
        tel.end_span(lower_span);
        let spans: HashMap<String, Span> = module
            .instructions
            .iter()
            .map(|i| (i.name.clone(), i.span))
            .chain(module.always_blocks.iter().map(|a| (a.name.clone(), a.span)))
            .collect();
        let mut graphs = Vec::new();
        for (gi, graph) in lil.graphs.iter().enumerate() {
            let unit_span = tel.start_unit_span("unit", Some(&graph.name));
            diagnostics.set_trace_span(Some(unit_span.0));
            // Cell-level fault injection fires once per compilation, on
            // the first unit, so a faulted cell degrades to exactly one
            // diagnostic.
            let inject = gi == 0;
            match self.compile_graph(
                graph,
                gi,
                lil,
                datasheet,
                &mut diagnostics,
                &mut tel,
                unit_span,
                inject,
                ctx,
            ) {
                Ok(cg) => graphs.push(cg),
                Err(e) => {
                    let span = spans.get(&graph.name).copied();
                    // The netlist lint guards compiler-constructed hardware;
                    // its findings are internal faults, not user errors.
                    if e.severity == Severity::Fault || e.stage == "netlist" {
                        diagnostics.fault(e.stage, Some(&graph.name), span, e.message);
                    } else {
                        diagnostics.error(e.stage, Some(&graph.name), span, e.message);
                    }
                }
            }
            // Also closes any stage span an error path left open.
            tel.end_span(unit_span);
        }
        diagnostics.set_trace_span(None);
        self.stage_boundary(&module.name, &datasheet.core, "config");
        let config_span = tel.start_span("config");
        let cval = run_stage(
            ctx,
            "config",
            |cx| pipeline::derive("config", &[&cx.fe_key, &cx.cfg_key]),
            || config_stage(lil, &graphs),
            |c| (c.functionalities.len() as u64 + 1) * 256,
        );
        cval.tape
            .replay(&mut tel, config_span, config_span, &mut diagnostics, &lil.name);
        let config = cval.outcome.expect("config stage is infallible");
        tel.end_span(config_span);
        // Errors that were contained to their unit instead of aborting
        // the compilation. Omitted (not zero) on clean runs so a clean
        // trace stays byte-identical to pre-degradation baselines.
        let recovered = diagnostics.of(Severity::Error).count() as u64;
        if recovered > 0 {
            tel.counter(root, metrics::DEGRADE_ERRORS_RECOVERED, recovered);
        }
        tel.end_span(root);
        // Mirror the diagnostics into the trace, each linked to the span
        // that was open when it fired.
        for e in &diagnostics.events {
            tel.diag(
                e.trace_span.map(SpanId),
                &e.severity.to_string(),
                e.stage,
                e.unit.as_deref(),
                &e.message,
            );
        }
        CompiledIsax {
            name: lil.name.clone(),
            core: datasheet.core.clone(),
            module: module.clone(),
            lil: lil.clone(),
            graphs,
            config,
            diagnostics,
            trace: tel.finish(),
        }
    }

    /// Compiles the full evaluation matrix (`isaxes` × `cores`) across up
    /// to `jobs` worker threads, sharing one [`FrontendCache`] so each
    /// distinct ISAX source is parsed, type-checked, and lowered exactly
    /// once no matter how many cores consume it.
    ///
    /// `isaxes` entries are `(display_name, unit, source)` triples in the
    /// shape of [`crate::isax_lib::all_isaxes`]. The result's entries are
    /// in deterministic row-major input order (`isaxes[0]×cores[0],
    /// isaxes[0]×cores[1], ...`), merged by stable cell index — never by
    /// worker completion order — so output, diagnostics, and stripped
    /// traces are identical for any `jobs` value.
    pub fn compile_matrix(
        &self,
        isaxes: &[(String, String, String)],
        cores: &[VirtualDatasheet],
        jobs: usize,
    ) -> MatrixResult {
        self.compile_matrix_cached(isaxes, cores, jobs, &PipelineCache::new())
    }

    /// [`Longnail::compile_matrix`] against a caller-owned
    /// [`PipelineCache`]. With a fresh cache this is the cold behavior;
    /// with a reused one, every pipeline stage whose content key is
    /// unchanged since the previous run is replayed from the store — a
    /// warm recompile with one edited ISAX recomputes only that ISAX's
    /// cells, stage by stage.
    pub fn compile_matrix_cached(
        &self,
        isaxes: &[(String, String, String)],
        cores: &[VirtualDatasheet],
        jobs: usize,
        pipe: &PipelineCache,
    ) -> MatrixResult {
        let cells: Vec<MatrixCell> = isaxes
            .iter()
            .flat_map(|(isax, unit, src)| {
                cores.iter().map(move |ds| MatrixCell {
                    isax: isax.clone(),
                    unit: unit.clone(),
                    src: src.clone(),
                    datasheet: ds.clone(),
                })
            })
            .collect();
        self.compile_cells(&cells, jobs, pipe)
    }

    /// Compiles an explicit list of cells (not necessarily a full cross
    /// product — the persistent layer serves some cells from disk and
    /// compiles only the rest) with the same per-cell isolation,
    /// deterministic ordering, and accounting as a full matrix.
    pub fn compile_cells(
        &self,
        cells: &[MatrixCell],
        jobs: usize,
        pipe: &PipelineCache,
    ) -> MatrixResult {
        let before: HashMap<String, qcache::StageStats> = pipe
            .stage_stats()
            .into_iter()
            .collect();
        let pool = Pool::new(jobs);
        let (outcomes, pool_stats) = pool.run_isolated_with_stats(cells.len(), |k| {
            let cell = &cells[k];
            // First containment layer: a panic anywhere in this cell's
            // flow becomes a Fault-severity outcome attributed to the
            // stage boundary the thread last crossed, and every other
            // cell completes exactly as in a clean run.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.compile_cell(&cell.src, &cell.unit, &cell.datasheet, pipe)
            }))
            .unwrap_or_else(|p| {
                Err(FlowError::fault(
                    current_stage(),
                    format!("compiler panicked: {}", pool::panic_message(p.as_ref())),
                ))
            })
        });
        let entries: Vec<MatrixEntry> = cells
            .iter()
            .zip(outcomes)
            .map(|(cell, outcome)| MatrixEntry {
                isax: cell.isax.clone(),
                unit: cell.unit.clone(),
                core: cell.datasheet.core.clone(),
                // Second containment layer: the pool's own isolation
                // catches anything that escaped the handler above.
                outcome: outcome.unwrap_or_else(|p| {
                    Err(FlowError::fault(
                        "matrix",
                        format!("compiler panicked: {}", p.message),
                    ))
                }),
            })
            .collect();
        let cell_faults = entries
            .iter()
            .filter(|e| matches!(&e.outcome, Err(f) if f.severity == Severity::Fault))
            .count() as u64;
        let errors_recovered = entries
            .iter()
            .map(|e| match &e.outcome {
                Ok(c) => c.diagnostics.of(Severity::Error).count() as u64,
                Err(f) if f.severity == Severity::Fault => 0,
                Err(f) => f.frontend_errors.len().max(1) as u64,
            })
            .sum();
        // Per-stage cache activity attributable to *this* run: the
        // cache may be long-lived (serve mode, warm recompiles), so
        // report deltas against the entry snapshot, not lifetime totals.
        let stage_stats: Vec<StageCacheStats> = pipe
            .stage_stats()
            .into_iter()
            .map(|(stage, after)| {
                let b = before.get(&stage).copied().unwrap_or_default();
                StageCacheStats {
                    stage,
                    hits: after.hits - b.hits,
                    misses: after.misses - b.misses,
                    waits: after.waits - b.waits,
                }
            })
            .collect();
        let frontend = stage_stats
            .iter()
            .find(|s| s.stage == "frontend")
            .cloned()
            .unwrap_or_default();
        MatrixResult {
            entries,
            jobs: pool.workers(),
            cache_hits: frontend.hits,
            cache_misses: frontend.misses,
            cell_faults,
            errors_recovered,
            stage_stats,
            pool_stats,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn compile_graph(
        &self,
        graph: &Graph,
        gi: usize,
        lil: &LilModule,
        datasheet: &VirtualDatasheet,
        diagnostics: &mut Diagnostics,
        tel: &mut Telemetry,
        unit_span: SpanId,
        inject: bool,
        ctx: Option<&PipeCtx<'_>>,
    ) -> Result<CompiledGraph, FlowError> {
        let is_always = graph.kind == GraphKind::Always;
        // Stage keys chain Merkle-style from this graph's scope key: an
        // upstream edit flips every key downstream of it and no other.
        let keys = ctx.map(|cx| {
            let g = pipeline::graph_scope_key(&cx.fe_key, gi, &graph.name);
            let problem = pipeline::derive("problem", &[&g, &cx.cfg_key]);
            let solve = pipeline::derive("solve", &[&problem]);
            let modes = pipeline::derive("modes", &[&solve]);
            let rtl = pipeline::derive("rtl", &[&solve]);
            let opt = pipeline::derive("opt", &[&rtl]);
            // The Verilog chains from whichever module actually feeds it:
            // the optimized one above -O0, the raw build otherwise.
            let verilog = if self.opt_level == OptLevel::O0 {
                pipeline::derive("verilog", &[&rtl])
            } else {
                pipeline::derive("verilog", &[&opt])
            };
            (problem, solve, modes, rtl, opt, verilog)
        });

        // --- LongnailProblem construction ---
        self.stage_boundary(&lil.name, &datasheet.core, "problem");
        let problem_span = tel.start_span("problem");
        let pval = run_stage(
            ctx,
            "problem",
            |_| keys.expect("keys exist when ctx does").0,
            || self.problem_stage(graph, is_always, datasheet),
            |p| (p.op_ids.len() as u64 + 1) * 192,
        );
        pval.tape
            .replay(tel, problem_span, unit_span, diagnostics, &graph.name);
        let pout = pval.outcome?;
        tel.end_span(problem_span);

        // --- ILP solve (resilient facade) ---
        self.stage_boundary(&lil.name, &datasheet.core, "solve");
        if inject {
            if let Some(plan) = &self.fault_plan {
                if plan
                    .fault(&lil.name, &datasheet.core, FaultKind::BudgetExhaustion)
                    .is_some()
                {
                    return Err(FlowError::error(
                        "solve",
                        "injected fault: solver work budget exhausted before a schedule \
                         was found",
                    ));
                }
            }
        }
        let solve_span = tel.start_span("solve");
        let sval = run_stage(
            ctx,
            "solve",
            |_| keys.expect("keys exist when ctx does").1,
            || self.solve_stage(&pout, graph),
            |s| (s.schedule.start_time.len() as u64 + 1) * 16,
        );
        sval.tape
            .replay(tel, solve_span, unit_span, diagnostics, &graph.name);
        let sout = sval.outcome?;
        tel.end_span(solve_span);

        // --- Per-write-interface mode selection (§4.3) and overall mode ---
        self.stage_boundary(&lil.name, &datasheet.core, "modes");
        let modes_span = tel.start_span("modes");
        let mval = run_stage(
            ctx,
            "modes",
            |_| keys.expect("keys exist when ctx does").2,
            || modes_stage(graph, is_always, datasheet, &sout),
            |_| 64,
        );
        mval.tape
            .replay(tel, modes_span, unit_span, diagnostics, &graph.name);
        let mout = mval.outcome?;
        tel.end_span(modes_span);

        // --- Hardware construction and lint ---
        self.stage_boundary(&lil.name, &datasheet.core, "rtl");
        let rtl_span = tel.start_span("rtl");
        let rval = run_stage(
            ctx,
            "rtl",
            |_| keys.expect("keys exist when ctx does").3,
            || rtl_stage(graph, lil, datasheet, &sout),
            |b| (b.module.nets.len() as u64 + 1) * 160,
        );
        rval.tape
            .replay(tel, rtl_span, unit_span, diagnostics, &graph.name);
        let built = rval.outcome?;
        tel.end_span(rtl_span);

        // --- Oracle-gated netlist optimization (skipped entirely at -O0,
        // so the default flow — spans, traces, artifacts — is untouched).
        // The stage *boundary* is crossed regardless: it only updates the
        // panic-attribution stage and fires planned faults, so chaos plans
        // targeting `opt` behave identically at every level. ---
        self.stage_boundary(&lil.name, &datasheet.core, "opt");
        let built = if self.opt_level == OptLevel::O0 {
            built
        } else {
            let opt_span = tel.start_span("opt");
            let oval = run_stage(
                ctx,
                "opt",
                |_| keys.expect("keys exist when ctx does").4,
                || opt_stage(&built, self.opt_level),
                |b| (b.module.nets.len() as u64 + 1) * 160,
            );
            oval.tape
                .replay(tel, opt_span, unit_span, diagnostics, &graph.name);
            let optimized = oval.outcome?;
            tel.end_span(opt_span);
            optimized
        };

        // --- SystemVerilog emission ---
        self.stage_boundary(&lil.name, &datasheet.core, "verilog");
        let verilog_span = tel.start_span("verilog");
        let vval = run_stage(
            ctx,
            "verilog",
            |_| keys.expect("keys exist when ctx does").5,
            || verilog_stage(&built),
            |v| v.len() as u64,
        );
        vval.tape
            .replay(tel, verilog_span, unit_span, diagnostics, &graph.name);
        let verilog = vval.outcome?;
        tel.end_span(verilog_span);

        let (mask, match_value) = match graph.kind {
            GraphKind::Instruction { mask, match_value } => (mask, match_value),
            GraphKind::Always => (0, 0),
        };
        Ok(CompiledGraph {
            name: graph.name.clone(),
            is_always,
            mask,
            match_value,
            graph: graph.clone(),
            schedule: sout.schedule,
            max_stage: built.max_stage,
            built,
            verilog,
            mode: mout.mode,
            result_stage: mout.result_stage,
            spawn_stage: mout.spawn_stage,
        })
    }

    /// Stage `problem`: builds the [`LongnailProblem`] for one graph.
    fn problem_stage(
        &self,
        graph: &Graph,
        is_always: bool,
        datasheet: &VirtualDatasheet,
    ) -> StageVal<ProblemOut> {
        let mut tape = Tape::default();
        let chain_limit = if datasheet.clock_ns > 0.0 {
            (datasheet.clock_ns / UNIT_NS).max(2.0)
        } else {
            self.chain_depth
        };
        let mut problem = LongnailProblem {
            cycle_time: chain_limit,
            ..LongnailProblem::default()
        };
        let mut type_cache: HashMap<String, OperatorTypeId> = HashMap::new();
        let mut op_ids = Vec::with_capacity(graph.len());
        for (_, op) in graph.iter() {
            let key = op.kind.mnemonic();
            let cache_key = format!("{key}/{}", op.in_spawn);
            let tid = match type_cache.get(&cache_key) {
                Some(&t) => t,
                None => {
                    let ot = match self.operator_type(&op.kind, is_always, datasheet) {
                        Ok(ot) => ot,
                        Err(e) => return StageVal { outcome: Err(e), tape },
                    };
                    let t = problem.add_operator_type(ot);
                    type_cache.insert(cache_key, t);
                    t
                }
            };
            op_ids.push(problem.add_operation(&key, tid));
        }
        for (v, op) in graph.iter() {
            for &operand in op.operands.iter().chain(op.pred.iter()) {
                problem.add_dependence(op_ids[operand.0], op_ids[v.0]);
            }
        }
        tape.counter(metrics::PROBLEM_OPS, graph.len() as u64);
        tape.counter(metrics::PROBLEM_IFACE_OPS, graph.interface_op_count() as u64);
        tape.counter(metrics::PROBLEM_DEPS, graph.edge_count() as u64);
        tape.gauge(metrics::SCHED_CHAIN_LIMIT, chain_limit);
        StageVal {
            outcome: Ok(ProblemOut { problem, op_ids }),
            tape,
        }
    }

    /// Stage `solve`: runs the resilient scheduler and remaps the result
    /// to graph-indexed start times.
    fn solve_stage(&self, pout: &ProblemOut, graph: &Graph) -> StageVal<SolveOut> {
        let mut tape = Tape::default();
        let budget = Budget::new(self.work_limit);
        // The solver mutates the problem (presolve rewrites it); the
        // cached ProblemOut must stay pristine for replay.
        let mut problem = pout.problem.clone();
        let result = schedule_resilient(&mut problem, &budget);
        // Solver work is counted, not timed — these are deterministic.
        tape.counter(metrics::SOLVER_PIVOTS, budget.count(WorkKind::Pivot));
        tape.counter(metrics::SOLVER_NODES, budget.count(WorkKind::Node));
        tape.counter(metrics::SOLVER_ROUNDS, budget.count(WorkKind::Round));
        tape.counter(metrics::SOLVER_PRESOLVE, budget.count(WorkKind::Presolve));
        tape.counter(metrics::SOLVER_WORK_USED, budget.used());
        tape.counter(metrics::SOLVER_WORK_LIMIT, budget.limit());
        let outcome = match result {
            Ok(o) => o,
            Err(e) => {
                return StageVal {
                    outcome: Err(FlowError::error("schedule", e.to_string())),
                    tape,
                }
            }
        };
        if let Some(deg) = &outcome.degradation {
            tape.counter(metrics::SCHED_FALLBACK, 1);
            if matches!(deg.reason, DegradationReason::BudgetExhausted(_)) {
                tape.counter(metrics::SOLVER_EXHAUSTED, 1);
            }
            tape.warn("schedule", deg.to_string());
        }
        tape.unit_attr(
            "scheduler",
            if outcome.is_exact() { "ilp" } else { "asap" }.to_string(),
        );
        let schedule = outcome.schedule;
        let start_time: Vec<u32> = (0..graph.len())
            .map(|i| schedule.start_time[pout.op_ids[i].0])
            .collect();
        let max_stage_sched = start_time.iter().copied().max().unwrap_or(0);
        tape.counter(metrics::SCHED_STAGES, u64::from(max_stage_sched));
        tape.gauge(metrics::SCHED_CHAIN_DEPTH, schedule.max_start_time_in_cycle());
        let start_time_in_cycle = (0..graph.len())
            .map(|i| schedule.start_time_in_cycle[pout.op_ids[i].0])
            .collect();
        StageVal {
            outcome: Ok(SolveOut {
                schedule: Schedule {
                    start_time,
                    start_time_in_cycle,
                },
                max_stage_sched,
            }),
            tape,
        }
    }

    /// Builds the scheduling operator type for one LIL operation kind.
    fn operator_type(
        &self,
        kind: &OpKind,
        is_always: bool,
        datasheet: &VirtualDatasheet,
    ) -> Result<OperatorType, FlowError> {
        let name = kind.mnemonic();
        if let Some(iface) = lil_iface_op(kind) {
            if is_always {
                // §4.4: all interface constraints pinned to stage 0.
                return Ok(OperatorType::combinational(&name, 0.0).with_window(0, Some(0)));
            }
            let timing = datasheet.timing(&iface).ok_or_else(|| {
                FlowError::error(
                    "schedule",
                    format!(
                        "virtual datasheet of `{}` lacks an entry for {}",
                        datasheet.core,
                        iface.key()
                    ),
                )
            })?;
            // §4.2: WrRD / RdMem / WrMem get latest = ∞ to unlock the
            // tightly-coupled and decoupled variants.
            let latest = match kind {
                OpKind::WriteRd | OpKind::ReadMem | OpKind::WriteMem => None,
                OpKind::WriteCustReg(_) => None,
                _ => timing.latest,
            };
            let mut ot = OperatorType::sequential(&name, timing.latency, 0.0);
            ot.earliest = timing.earliest;
            ot.latest = latest;
            return Ok(ot);
        }
        // Combinational logic: uniform delay, wiring is free (§4.2).
        let delay = match kind {
            OpKind::Const(_)
            | OpKind::Sink
            | OpKind::Concat
            | OpKind::Replicate(_)
            | OpKind::ExtractConst { .. }
            | OpKind::ZExt
            | OpKind::SExt
            | OpKind::Trunc => 0.0,
            OpKind::Mux | OpKind::Not => 0.2,
            OpKind::RomRead(_) => UNIFORM_DELAY,
            _ => UNIFORM_DELAY,
        };
        Ok(OperatorType::combinational(&name, delay))
    }
}

/// Stage-cache context of one cell compilation: the shared store plus
/// the two roots every stage key chains from.
pub(crate) struct PipeCtx<'a> {
    pub pipe: &'a PipelineCache,
    /// Content-address of the frontend artifact this cell consumes.
    pub fe_key: Digest,
    /// Content-address of the core/options configuration.
    pub cfg_key: Digest,
}

/// Runs one backend stage through the store when a cache context exists,
/// directly otherwise (plain `compile` / fault-targeted cells). The key
/// closure is only evaluated when there is a store to address.
fn run_stage<T, K, F>(
    ctx: Option<&PipeCtx<'_>>,
    stage: &'static str,
    key: K,
    compute: F,
    payload_bytes: fn(&T) -> u64,
) -> StageVal<T>
where
    T: Clone + Send + Sync + 'static,
    K: FnOnce(&PipeCtx<'_>) -> Digest,
    F: FnOnce() -> StageVal<T>,
{
    match ctx {
        Some(cx) => {
            cx.pipe
                .store()
                .get_or_compute_sized(stage, key(cx), compute, |v| stage_bytes(v, payload_bytes))
                .0
        }
        None => compute(),
    }
}

/// Rough heap footprint of one cached stage value, charged against the
/// byte-accounted in-memory LRU (`--cache-mem-bytes`). Coarse per-stage
/// payload estimates plus a fixed slot/tape overhead — the cap is a
/// budget, not an allocator audit.
fn stage_bytes<T>(v: &StageVal<T>, payload: fn(&T) -> u64) -> u64 {
    const BASE: u64 = 512;
    match &v.outcome {
        Ok(t) => BASE + payload(t),
        Err(e) => BASE + e.message.len() as u64,
    }
}

/// Cached output of the `problem` stage.
#[derive(Debug, Clone)]
pub(crate) struct ProblemOut {
    problem: LongnailProblem,
    /// Graph-index → problem operation id (the solver's namespace).
    op_ids: Vec<OperationId>,
}

/// Cached output of the `solve` stage, remapped to graph indices.
#[derive(Debug, Clone)]
pub(crate) struct SolveOut {
    schedule: Schedule,
    max_stage_sched: u32,
}

/// Cached output of the `modes` stage.
#[derive(Debug, Clone)]
pub(crate) struct ModesOut {
    mode: ExecutionMode,
    result_stage: Option<u32>,
    spawn_stage: Option<u32>,
}

/// Stage `modes`: per-write-interface mode selection (§4.3) and the
/// overall execution mode.
fn modes_stage(
    graph: &Graph,
    is_always: bool,
    datasheet: &VirtualDatasheet,
    sout: &SolveOut,
) -> StageVal<ModesOut> {
    let mut tape = Tape::default();
    let mut mode = if is_always {
        ExecutionMode::Always
    } else {
        ExecutionMode::InPipeline
    };
    let mut result_stage = None;
    let mut spawn_stage: Option<u32> = None;
    for (v, op) in graph.iter() {
        let stage = sout.schedule.start_time[v.0];
        if op.in_spawn {
            spawn_stage = Some(spawn_stage.map_or(stage, |s: u32| s.min(stage)));
        }
        if op.kind == OpKind::WriteRd {
            result_stage = Some(stage);
        }
        if !is_always && mode_relevant(&op.kind) {
            let iface = lil_iface_op(&op.kind).expect("interface op");
            let Some(timing) = datasheet.timing(&iface) else {
                return StageVal {
                    outcome: Err(FlowError::error(
                        "modes",
                        format!("datasheet lacks {} timing", iface.key()),
                    )),
                    tape,
                };
            };
            let m = select_mode(stage, timing, datasheet.writeback_stage, op.in_spawn, false);
            mode = worst_mode(mode, m);
        }
    }
    // Initiation interval: pipelined units accept one instruction per
    // cycle; a decoupled (`spawn`) unit is busy for its spawned
    // section's latency.
    let ii = match spawn_stage {
        Some(s) => u64::from(sout.max_stage_sched.saturating_sub(s)).max(1),
        None => 1,
    };
    tape.counter(metrics::SCHED_II, ii);
    tape.unit_attr("mode", mode.to_string());
    StageVal {
        outcome: Ok(ModesOut {
            mode,
            result_stage,
            spawn_stage,
        }),
        tape,
    }
}

/// Stage `rtl`: hardware construction and the netlist lint gate.
fn rtl_stage(
    graph: &Graph,
    lil: &LilModule,
    datasheet: &VirtualDatasheet,
    sout: &SolveOut,
) -> StageVal<BuiltModule> {
    let mut tape = Tape::default();
    let ds = datasheet.clone();
    let read_latency = move |kind: &OpKind| -> u32 {
        lil_iface_op(kind)
            .and_then(|op| ds.timing(&op))
            .map(|t| t.latency)
            .unwrap_or(0)
    };
    let built = build_graph_module(graph, lil, &sout.schedule.start_time, &read_latency);
    // Netlist lint: last gate before SystemVerilog leaves the compiler.
    if let Err(issues) = lint_module(&built.module) {
        return StageVal {
            outcome: Err(FlowError::fault(
                "netlist",
                issues
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; "),
            )),
            tape,
        };
    }
    tape.counter(metrics::RTL_CELLS, built.module.nets.len() as u64);
    tape.counter(metrics::RTL_REG_BITS, built.module.register_bits());
    tape.counter(metrics::RTL_COMB_DEPTH, u64::from(comb_depth(&built.module)));
    let estimate = eda::estimate_module(&TechLibrary::new(), &built.module);
    tape.gauge(metrics::EDA_AREA_UM2, estimate.area.total());
    tape.gauge(metrics::EDA_CRIT_NS, estimate.timing.critical_path_ns);
    StageVal {
        outcome: Ok(built),
        tape,
    }
}

/// Cycles of lockstep stimulus the opt stage's runtime oracle drives
/// through the original and optimized netlists (including X stimulus).
const OPT_VERIFY_CYCLES: u32 = 32;

/// Stage `opt`: oracle-gated netlist optimization (`-O1`/`-O2`).
///
/// Runs [`rtl::opt::optimize`] at the requested level, then gates the
/// result two ways before it may replace the built module: the structural
/// lint must stay clean, and [`rtl::opt::verify_equivalent`] must see the
/// optimized module track the original in lockstep — exact two-valued
/// output equality plus four-state refinement under X stimulus. A gate
/// violation is an optimizer bug, but not a reason to fail the cell: the
/// stage falls back to the unoptimized netlist, records a warning, and
/// counts the fallback. (The third gate — `lnc --xcheck` over the full
/// matrix — runs downstream on whatever module this stage emits.)
fn opt_stage(built: &BuiltModule, level: OptLevel) -> StageVal<BuiltModule> {
    let mut tape = Tape::default();
    let opts = EmitOptions::default();
    let fall_back = |mut tape: Tape, why: String| {
        tape.warn(
            "opt",
            format!("optimization disabled for this unit: {why}"),
        );
        tape.counter(metrics::OPT_FALLBACK, 1);
        StageVal {
            outcome: Ok(built.clone()),
            tape,
        }
    };
    let (module, report) = match optimize(&built.module, level, &opts) {
        Ok(out) => out,
        // A structurally invalid rewrite never leaves the pass manager;
        // emit the known-good module instead.
        Err(e) => return fall_back(tape, e),
    };
    let gate = lint_module(&module)
        .map_err(|issues| {
            format!(
                "optimized netlist failed lint: {}",
                issues
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; ")
            )
        })
        .and_then(|()| {
            verify_equivalent(&built.module, &module, &opts, OPT_VERIFY_CYCLES)
                .map_err(|e| format!("optimized netlist failed the lockstep oracle: {e}"))
        });
    if let Err(why) = gate {
        return fall_back(tape, why);
    }
    tape.counter(metrics::OPT_ITERATIONS, u64::from(report.iterations));
    for (pass, count) in &report.rewrites {
        let name = match *pass {
            "fold" => metrics::OPT_REWRITES_FOLD,
            "cse" => metrics::OPT_REWRITES_CSE,
            "mux" => metrics::OPT_REWRITES_MUX,
            "strength" => metrics::OPT_REWRITES_STRENGTH,
            "narrow" => metrics::OPT_REWRITES_NARROW,
            "dce" => metrics::OPT_REWRITES_DCE,
            _ => continue,
        };
        tape.counter(name, *count);
    }
    tape.counter(metrics::OPT_NETS_BEFORE, report.nets_before as u64);
    tape.counter(metrics::OPT_NETS_AFTER, report.nets_after as u64);
    // Area/critical-path before and after: the `rtl` stage already gauged
    // the unoptimized module; gauge it again here so the pair lives on one
    // span, then the optimized estimate on the standard EDA names.
    let lib = TechLibrary::new();
    let before = eda::estimate_module(&lib, &built.module);
    let after = eda::estimate_module(&lib, &module);
    tape.gauge(metrics::OPT_AREA_BEFORE_UM2, before.area.total());
    tape.gauge(metrics::EDA_AREA_UM2, after.area.total());
    tape.gauge(metrics::EDA_CRIT_NS, after.timing.critical_path_ns);
    let mut out = built.clone();
    out.module = module;
    StageVal {
        outcome: Ok(out),
        tape,
    }
}

/// Stage `verilog`: SystemVerilog emission.
fn verilog_stage(built: &BuiltModule) -> StageVal<String> {
    let mut tape = Tape::default();
    let verilog = emit_verilog(&built.module);
    tape.counter(metrics::VERILOG_BYTES, verilog.len() as u64);
    StageVal {
        outcome: Ok(verilog),
        tape,
    }
}

/// Stage `config`: the Figure 8 SCAIE-V configuration file.
fn config_stage(lil: &LilModule, graphs: &[CompiledGraph]) -> StageVal<IsaxConfig> {
    let mut tape = Tape::default();
    let config = build_config(lil, graphs);
    tape.counter(metrics::CONFIG_ENTRIES, config.schedule_entry_count() as u64);
    tape.counter(metrics::CONFIG_REGISTERS, config.registers.len() as u64);
    StageVal {
        outcome: Ok(config),
        tape,
    }
}

/// The core-independent half of a compilation: the elaborated typed
/// module plus its verified LIL lowering and any per-unit diagnostics the
/// lowering raised. Produced once per `(source, unit)` pair and shared —
/// via [`FrontendCache`] — across every core the ISAX is compiled for.
#[derive(Debug, Clone)]
pub struct FrontendArtifacts {
    /// The elaborated, type-checked module.
    pub module: TypedModule,
    /// The lowered LIL module; only graphs that passed the stage verifier
    /// are present.
    pub lil: LilModule,
    /// Diagnostics raised during lowering/verification. Core-independent,
    /// so they are replayed verbatim into every per-core compilation
    /// (re-stamped with that compilation's trace span).
    pub lower_events: Vec<DiagEvent>,
}

/// Lowers a type-checked module to verified LIL, capturing per-unit
/// problems as replayable events instead of aborting.
fn lower_artifacts(module: TypedModule) -> FrontendArtifacts {
    let mut diagnostics = Diagnostics::default();
    let mut lil = lower_state(&module);
    let spans: HashMap<String, Span> = module
        .instructions
        .iter()
        .map(|i| (i.name.clone(), i.span))
        .chain(module.always_blocks.iter().map(|a| (a.name.clone(), a.span)))
        .collect();
    let lowered = module
        .instructions
        .iter()
        .map(|i| lower_instruction(&module, i))
        .chain(module.always_blocks.iter().map(|a| lower_always(&module, a)));
    for result in lowered {
        let graph = match result {
            Ok(g) => g,
            Err(e) => {
                diagnostics.error(
                    "lower",
                    Some(&e.unit),
                    spans.get(&e.unit).copied(),
                    e.message,
                );
                continue;
            }
        };
        // Stage verifier: a graph the lowering itself produced must be
        // well-formed; a violation is a compiler bug, contained to this
        // unit.
        if let Err(errs) = verify_graph(&graph, &lil) {
            let msg = errs
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ");
            diagnostics.fault("verify", Some(&graph.name), spans.get(&graph.name).copied(), msg);
            continue;
        }
        lil.graphs.push(graph);
    }
    FrontendArtifacts {
        module,
        lil,
        lower_events: diagnostics.events,
    }
}

/// Content-address of a CoreDSL source: 64-bit FNV-1a over its bytes.
pub fn source_hash(src: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in src.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A thread-safe, content-addressed cache of [`FrontendArtifacts`].
/// Frontend *failures* are cached alongside successes so a broken ISAX
/// fails once, not once per core.
///
/// Since the incremental-pipeline refactor this is a thin facade over a
/// [`PipelineCache`]'s `frontend` stage slot (SHA-256 content keys,
/// exactly-once condvar slots, exact wait accounting — the old
/// `try_lock`-probe undercount is gone with the probe). It survives as a
/// type because "share just the frontend across one matrix" remains a
/// meaningful unit of caching.
#[derive(Default)]
pub struct FrontendCache {
    pipe: PipelineCache,
}

impl FrontendCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The full pipeline cache this facade fronts.
    pub fn pipeline(&self) -> &PipelineCache {
        &self.pipe
    }

    /// Lookups that found a previously computed entry.
    pub fn hits(&self) -> u64 {
        self.pipe.store().stage_stats("frontend").hits
    }

    /// Lookups that had to run the frontend + lowering.
    pub fn misses(&self) -> u64 {
        self.pipe.store().stage_stats("frontend").misses
    }

    /// Distinct `(source, unit)` pairs held.
    pub fn len(&self) -> usize {
        self.pipe.store().len("frontend")
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the cached artifacts for `(src, unit)`, computing them with
    /// `ln`'s frontend on first access. Concurrent requests for the same
    /// key block on the first one rather than duplicating the work.
    ///
    /// Poison-tolerant: a peer that panicked while holding a lock (its
    /// cell is already lost to a fault diagnostic) must not take every
    /// later cell down with it. A poisoned mutex is re-entered; an entry
    /// the crashed peer never finished is simply recomputed.
    ///
    /// # Errors
    ///
    /// Returns the (cached) frontend [`FlowError`] for sources that do not
    /// compile.
    pub fn get_or_compute(
        &self,
        src: &str,
        unit: &str,
        ln: &Longnail,
    ) -> Result<Arc<FrontendArtifacts>, FlowError> {
        self.get_or_compute_traced(src, unit, ln).0
    }

    /// [`FrontendCache::get_or_compute`] plus what the lookup observed
    /// from the requesting cell's point of view: hit vs miss, and whether
    /// (and how long) it blocked on a slot a concurrent peer was busy
    /// computing. The totals stay deterministic (exactly one miss per
    /// distinct key, and — unlike the old racy `try_lock` probe — every
    /// contended wait is counted, because the store counts the wait under
    /// the slot's own lock). The *attribution* — which cell got the miss
    /// — is still a race, which is why these feed nondeterministic
    /// `cache.*` metrics.
    pub fn get_or_compute_traced(
        &self,
        src: &str,
        unit: &str,
        ln: &Longnail,
    ) -> (Result<Arc<FrontendArtifacts>, FlowError>, CacheLookup) {
        let key = pipeline::frontend_key(unit, src);
        let (result, lookup) = self.pipe.store().get_or_compute_sized(
            "frontend",
            key,
            || ln.frontend_artifacts(src, unit).map(Arc::new),
            |_| 1024 + (src.len() as u64) * 8,
        );
        (result, CacheLookup::from(lookup))
    }

    /// Deliberately poisons the entry mutex for `(src, unit)` — a panic
    /// while the lock is held, exactly the state a worker that crashed
    /// mid-compute leaves behind. Fault injection uses this to prove
    /// that peers sharing the entry recover instead of cascading.
    pub fn poison_entry(&self, src: &str, unit: &str) {
        self.pipe
            .store()
            .poison("frontend", pipeline::frontend_key(unit, src));
    }
}

/// What one [`FrontendCache`] lookup observed, from the requesting
/// cell's point of view. Feeds the `cache.frontend.*` trace counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheLookup {
    /// True when the entry was already computed (hit); false when this
    /// lookup ran the frontend (miss).
    pub hit: bool,
    /// True when the lookup blocked on a slot a concurrent peer held.
    pub waited: bool,
    /// Nanoseconds spent blocked acquiring the slot.
    pub wait_ns: u64,
}

impl From<qcache::Lookup> for CacheLookup {
    fn from(l: qcache::Lookup) -> Self {
        CacheLookup {
            hit: l.hit,
            waited: l.waited,
            wait_ns: l.wait_ns,
        }
    }
}

/// One cell of work for [`Longnail::compile_cells`]: an ISAX source
/// targeted at one core's datasheet.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// ISAX display name (Table 3 row).
    pub isax: String,
    /// CoreDSL unit to elaborate.
    pub unit: String,
    /// CoreDSL source text.
    pub src: String,
    /// Target core datasheet.
    pub datasheet: VirtualDatasheet,
}

/// One cell of a compiled matrix: one ISAX targeted at one core.
#[derive(Debug, Clone)]
pub struct MatrixEntry {
    /// ISAX display name (Table 3 row).
    pub isax: String,
    /// CoreDSL unit that was elaborated.
    pub unit: String,
    /// Target core name.
    pub core: String,
    /// The compilation outcome for this cell.
    pub outcome: Result<CompiledIsax, FlowError>,
}

/// Result of [`Longnail::compile_matrix`]: all cells in deterministic
/// row-major input order plus the shared-cache statistics.
#[derive(Debug)]
pub struct MatrixResult {
    /// One entry per `(isax, core)` pair, ordered `isaxes[0]×cores[0],
    /// isaxes[0]×cores[1], …` regardless of worker scheduling.
    pub entries: Vec<MatrixEntry>,
    /// Worker threads the matrix actually ran with.
    pub jobs: usize,
    /// Frontend-cache hits across all cells (for the 8×4 evaluation
    /// matrix: 24 — each of the 8 ISAXes reused by 3 of the 4 cores).
    pub cache_hits: u64,
    /// Frontend-cache misses (distinct ISAX sources actually compiled).
    pub cache_misses: u64,
    /// Cells whose outcome is a [`Severity::Fault`] failure (contained
    /// panics, poisoned caches) — the `degrade.cell_faults` counter.
    pub cell_faults: u64,
    /// Error-severity problems that were contained (to a unit or a cell)
    /// instead of aborting the batch — `degrade.errors_recovered`.
    pub errors_recovered: u64,
    /// Per-stage cache activity of this run (hit/miss/wait deltas
    /// against the shared [`PipelineCache`]), sorted by stage name.
    /// `frontend` repeats `cache_hits`/`cache_misses`; `lower` mirrors
    /// `frontend` (the lowered IR rides inside the frontend artifact).
    pub stage_stats: Vec<StageCacheStats>,
    /// What the worker pool observed about its own scheduling: wall time,
    /// queue-wait vs run split per cell, per-worker load. Wall-clock- and
    /// scheduling-dependent — informational only, never part of the
    /// deterministic artifacts.
    pub pool_stats: pool::RunStats,
}

impl MatrixResult {
    /// Finds a cell by ISAX display name and core.
    pub fn entry(&self, isax: &str, core: &str) -> Option<&MatrixEntry> {
        self.entries
            .iter()
            .find(|e| e.isax == isax && e.core == core)
    }

    /// Iterates over successfully compiled cells.
    pub fn compiled(&self) -> impl Iterator<Item = (&MatrixEntry, &CompiledIsax)> {
        self.entries
            .iter()
            .filter_map(|e| e.outcome.as_ref().ok().map(|c| (e, c)))
    }
}

/// The virtual datasheets of all four evaluation cores (Table 4), in
/// [`EVAL_CORES`] order.
pub fn eval_datasheets() -> Vec<VirtualDatasheet> {
    EVAL_CORES
        .iter()
        .map(|c| builtin_datasheet(c).expect("builtin evaluation core"))
        .collect()
}

/// Maps a LIL operation to its SCAIE-V sub-interface, if any.
pub fn lil_iface_op(kind: &OpKind) -> Option<SubInterfaceOp> {
    Some(match kind {
        OpKind::InstrWord => SubInterfaceOp::RdInstr,
        OpKind::ReadRs1 => SubInterfaceOp::RdRS1,
        OpKind::ReadRs2 => SubInterfaceOp::RdRS2,
        OpKind::ReadPc => SubInterfaceOp::RdPC,
        OpKind::ReadMem => SubInterfaceOp::RdMem,
        OpKind::WriteRd => SubInterfaceOp::WrRD,
        OpKind::WritePc => SubInterfaceOp::WrPC,
        OpKind::WriteMem => SubInterfaceOp::WrMem,
        OpKind::ReadCustReg(reg) => SubInterfaceOp::RdCustReg { reg: reg.clone() },
        OpKind::WriteCustReg(reg) => SubInterfaceOp::WrCustRegData { reg: reg.clone() },
        _ => return None,
    })
}

/// Interface kinds whose scheduled stage participates in mode selection.
fn mode_relevant(kind: &OpKind) -> bool {
    matches!(
        kind,
        OpKind::WriteRd | OpKind::ReadMem | OpKind::WriteMem | OpKind::WriteCustReg(_)
    )
}

/// Severity order for combining per-interface modes into an instruction
/// mode.
fn worst_mode(a: ExecutionMode, b: ExecutionMode) -> ExecutionMode {
    let rank = |m: ExecutionMode| match m {
        ExecutionMode::InPipeline => 0,
        ExecutionMode::TightlyCoupled => 1,
        ExecutionMode::Decoupled => 2,
        ExecutionMode::Always => 3,
    };
    if rank(b) > rank(a) {
        b
    } else {
        a
    }
}

/// Builds the Figure 8 SCAIE-V configuration file contents.
fn build_config(lil: &LilModule, graphs: &[CompiledGraph]) -> IsaxConfig {
    let mut config = IsaxConfig {
        name: lil.name.clone(),
        ..IsaxConfig::default()
    };
    for reg in &lil.custom_regs {
        config.registers.push(RegisterRequest {
            name: reg.name.clone(),
            width: reg.width,
            elements: reg.elems,
        });
    }
    for cg in graphs {
        let mut schedule = Vec::new();
        for (v, op) in cg.graph.iter() {
            let Some(iface) = lil_iface_op(&op.kind) else {
                continue;
            };
            let stage = cg.schedule.start_time[v.0];
            let has_valid = op.pred.is_some();
            let mode = if cg.is_always {
                ExecutionMode::Always
            } else if mode_relevant(&op.kind) {
                cg.mode
            } else {
                ExecutionMode::InPipeline
            };
            if let OpKind::WriteCustReg(reg) = &op.kind {
                // The .addr entry consistently provides the hazard-handling
                // mechanism with stage information even for single-element
                // registers (paper §4.6).
                schedule.push(ScheduleEntry {
                    interface: SubInterfaceOp::WrCustRegAddr { reg: reg.clone() }.key(),
                    stage,
                    has_valid: false,
                    mode,
                });
            }
            schedule.push(ScheduleEntry {
                interface: iface.key(),
                stage,
                has_valid,
                mode,
            });
        }
        config.functionalities.push(Functionality {
            name: cg.name.clone(),
            encoding: (!cg.is_always).then(|| pattern_string(cg.mask, cg.match_value)),
            schedule,
        });
    }
    config
}

fn pattern_string(mask: u32, match_value: u32) -> String {
    (0..32)
        .rev()
        .map(|i| {
            if mask >> i & 1 == 1 {
                if match_value >> i & 1 == 1 {
                    '1'
                } else {
                    '0'
                }
            } else {
                '-'
            }
        })
        .collect()
}

/// Builds the virtual datasheets used in the evaluation. The actual core
/// descriptors (pipeline structure, base area/fmax) live in the `cores`
/// crate; this function only captures the SCAIE-V timing abstraction so the
/// compiler can be used without the core models.
pub fn builtin_datasheet(core: &str) -> Option<VirtualDatasheet> {
    let mut ds = match core {
        // 5-stage in-order pipeline: IF ID EX MEM WB (stages 0..4).
        "VexRiscv" | "ORCA" => {
            let mut ds = VirtualDatasheet::new(core, 5, 4, 3);
            let (rs_stage, wr_earliest) = if core == "ORCA" {
                // ORCA: register operands available in stage 3, result
                // write-back already expected in the following stage (§5.4).
                (3, 3)
            } else {
                (2, 2)
            };
            ds.set(SubInterfaceOp::RdInstr, Timing::new(1, Some(4), 0))
                .set(SubInterfaceOp::RdRS1, Timing::new(rs_stage, Some(4), 0))
                .set(SubInterfaceOp::RdRS2, Timing::new(rs_stage, Some(4), 0))
                .set(SubInterfaceOp::RdPC, Timing::new(1, Some(4), 0))
                .set(SubInterfaceOp::RdMem, Timing::new(3, None, 1))
                .set(SubInterfaceOp::WrRD, Timing::new(wr_earliest, None, 0))
                .set(SubInterfaceOp::WrPC, Timing::new(1, Some(4), 0))
                .set(SubInterfaceOp::WrMem, Timing::new(3, None, 0));
            ds
        }
        // 3-stage pipeline: IF / EX / WB.
        "Piccolo" => {
            let mut ds = VirtualDatasheet::new(core, 3, 2, 1);
            ds.set(SubInterfaceOp::RdInstr, Timing::new(1, Some(2), 0))
                .set(SubInterfaceOp::RdRS1, Timing::new(1, Some(2), 0))
                .set(SubInterfaceOp::RdRS2, Timing::new(1, Some(2), 0))
                .set(SubInterfaceOp::RdPC, Timing::new(1, Some(2), 0))
                .set(SubInterfaceOp::RdMem, Timing::new(1, None, 1))
                .set(SubInterfaceOp::WrRD, Timing::new(1, None, 0))
                .set(SubInterfaceOp::WrPC, Timing::new(1, Some(2), 0))
                .set(SubInterfaceOp::WrMem, Timing::new(1, None, 0));
            ds
        }
        // Non-pipelined FSM sequencing: everything available from step 1
        // and the core waits for the ISAX (paper footnote 2).
        "PicoRV32" => {
            let mut ds = VirtualDatasheet::new(core, 1, 1, 1);
            ds.set(SubInterfaceOp::RdInstr, Timing::new(0, None, 0))
                .set(SubInterfaceOp::RdRS1, Timing::new(1, None, 0))
                .set(SubInterfaceOp::RdRS2, Timing::new(1, None, 0))
                .set(SubInterfaceOp::RdPC, Timing::new(0, None, 0))
                .set(SubInterfaceOp::RdMem, Timing::new(1, None, 1))
                .set(SubInterfaceOp::WrRD, Timing::new(1, None, 0))
                .set(SubInterfaceOp::WrPC, Timing::new(1, None, 0))
                .set(SubInterfaceOp::WrMem, Timing::new(1, None, 0));
            ds
        }
        _ => return None,
    };
    // Target clock period from the base core's achievable frequency
    // (Table 4 base row) — the scheduler's chaining budget derives from it.
    ds.clock_ns = match core {
        "ORCA" => 1000.0 / 996.0,
        "Piccolo" => 1000.0 / 420.0,
        "PicoRV32" => 1000.0 / 1278.0,
        _ => 1000.0 / 701.0,
    };
    // Custom registers are accessed like the GPR file (§3.2): same window
    // as RdRS1/WrRD, write window unbounded for late commits.
    let rs = ds.entries["RdRS1"];
    let wr = ds.entries["WrRD"];
    ds.entries
        .insert("RdCustReg".into(), Timing::new(rs.earliest, rs.latest, 0));
    ds.entries
        .insert("WrCustReg.addr".into(), Timing::new(wr.earliest, None, 0));
    ds.entries
        .insert("WrCustReg.data".into(), Timing::new(wr.earliest, None, 0));
    Some(ds)
}

/// The four evaluation cores (Table 4).
pub const EVAL_CORES: [&str; 4] = ["ORCA", "Piccolo", "PicoRV32", "VexRiscv"];
