/root/repo/target/debug/deps/pipeline-6667028b09721eb7.d: crates/rtl/tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-6667028b09721eb7.rmeta: crates/rtl/tests/pipeline.rs Cargo.toml

crates/rtl/tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
