//! End-to-end telemetry integration tests: the compile trace covers every
//! pipeline stage, carries non-trivial solver counters, survives a JSONL
//! round trip, and is deterministic modulo wall-clock timings.

use longnail::driver::builtin_datasheet;
use longnail::{isax_lib, Longnail, Severity};
use telemetry::{metrics, EventKind, Trace, STAGES};

fn compile_dotprod() -> longnail::CompiledIsax {
    let (unit, src) = isax_lib::isax_source("dotprod").unwrap();
    let ds = builtin_datasheet("ORCA").unwrap();
    Longnail::new().compile(&src, &unit, &ds).unwrap()
}

#[test]
fn trace_covers_every_pipeline_stage_exactly_once() {
    let compiled = compile_dotprod();
    let trace = &compiled.trace;
    // dotprod has a single instruction, so each per-unit stage appears
    // exactly once, as do the whole-ISAX stages — except `opt`, which
    // only exists at --opt-level >= 1 and is absent from this -O0 trace.
    for stage in STAGES {
        let want = if stage == "opt" { 0 } else { 1 };
        assert_eq!(
            trace.span_count(stage),
            want,
            "stage `{stage}` should appear exactly {want} time(s)"
        );
    }
    assert_eq!(trace.span_count("unit"), 1);
    assert_eq!(trace.span_count("compile"), 1);

    // At -O2 the opt stage joins the trace, exactly once per unit.
    let (unit, src) = isax_lib::isax_source("dotprod").unwrap();
    let ds = builtin_datasheet("ORCA").unwrap();
    let mut ln = Longnail::new();
    ln.opt_level = longnail::OptLevel::O2;
    let optimized = ln.compile(&src, &unit, &ds).unwrap();
    for stage in STAGES {
        assert_eq!(
            optimized.trace.span_count(stage),
            1,
            "-O2 stage `{stage}` should appear exactly once"
        );
    }
}

#[test]
fn trace_records_solver_and_hardware_counters() {
    let compiled = compile_dotprod();
    let trace = &compiled.trace;
    assert!(trace.counter_total(metrics::SOLVER_PIVOTS) > 0, "no pivots");
    assert!(trace.counter_total(metrics::SOLVER_ROUNDS) > 0, "no rounds");
    assert!(trace.counter_total(metrics::SOLVER_WORK_USED) > 0);
    assert!(trace.counter_total(metrics::SOLVER_WORK_LIMIT) > 0);
    assert!(trace.counter_total(metrics::PROBLEM_OPS) > 0);
    assert!(trace.counter_total(metrics::PROBLEM_DEPS) > 0);
    assert!(trace.counter_total(metrics::RTL_CELLS) > 0);
    assert!(trace.counter_total(metrics::VERILOG_BYTES) > 0);
    assert!(trace.counter_total(metrics::SCHED_II) >= 1);
    assert_eq!(trace.counter_total(metrics::SCHED_FALLBACK), 0);
    let areas = trace.gauges(metrics::EDA_AREA_UM2);
    assert_eq!(areas.len(), 1);
    assert!(areas[0] > 0.0);
}

#[test]
fn trace_is_deterministic_modulo_timings() {
    let a = compile_dotprod().trace;
    let b = compile_dotprod().trace;
    assert_eq!(a.stripped(), b.stripped());
}

#[test]
fn trace_round_trips_through_jsonl() {
    let trace = compile_dotprod().trace;
    let text = trace.to_jsonl();
    let parsed = Trace::from_jsonl(&text).unwrap();
    assert_eq!(parsed, trace);
}

#[test]
fn budget_exhaustion_emits_counter_and_warning_diagnostic() {
    let (unit, src) = isax_lib::isax_source("sqrt_tightly").unwrap();
    let ds = builtin_datasheet("ORCA").unwrap();
    let mut ln = Longnail::new();
    ln.work_limit = 64; // far below what the sqrt ILP needs
    let compiled = ln.compile(&src, &unit, &ds).unwrap();
    let trace = &compiled.trace;
    assert!(trace.counter_total(metrics::SCHED_FALLBACK) >= 1);
    assert!(trace.counter_total(metrics::SOLVER_EXHAUSTED) >= 1);
    // The resilient fallback still reports a warning diagnostic, and the
    // diagnostic links back to an open span of the trace.
    let warning = compiled
        .diagnostics
        .of(Severity::Warning)
        .next()
        .expect("degradation warning");
    assert_eq!(warning.stage, "schedule");
    let span = warning.trace_span.expect("warning links to a trace span");
    assert!(
        trace.span_starts().any(|(id, ..)| id.0 == span),
        "linked span {span} not found in trace"
    );
    // The diagnostic is mirrored into the trace event stream.
    assert!(trace
        .events
        .iter()
        .any(|e| matches!(&e.kind, EventKind::Diag { severity, .. } if severity == "warning")));
}
