//! A two-pass RV32I assembler for handwritten test programs (paper §5.3).
//!
//! Supports the RV32I base instructions, common pseudo-instructions
//! (`li`, `mv`, `j`, `nop`, `ret`, `not`, `beqz`, `bnez`), labels,
//! `.word` data, and caller-registered **custom mnemonics** for ISAX
//! instructions.
//!
//! # Examples
//!
//! ```
//! let program = riscv::assemble(r#"
//!     li   t0, 5
//! loop:
//!     addi t0, t0, -1
//!     bnez t0, loop
//!     ebreak
//! "#).unwrap();
//! // `li` expands to lui+addi, so five words total.
//! assert_eq!(program.len(), 5);
//! ```

use crate::encode::{b_type, i_type, j_type, opcode, r_type, s_type, u_type};
use std::collections::HashMap;
use std::fmt;

/// Assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

type Result<T> = std::result::Result<T, AsmError>;

/// An operand of a custom mnemonic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A GPR index.
    Reg(u32),
    /// An immediate value.
    Imm(i64),
}

/// Encoder callback for a custom mnemonic.
pub type CustomEncoder = Box<dyn Fn(&[Operand]) -> std::result::Result<u32, String>>;

/// Assembles a program with no custom mnemonics, starting at address 0.
///
/// # Errors
///
/// Returns the first syntax or range error.
pub fn assemble(source: &str) -> Result<Vec<u32>> {
    Assembler::new().assemble(source)
}

/// The assembler, optionally extended with ISAX mnemonics.
#[derive(Default)]
pub struct Assembler {
    custom: HashMap<String, CustomEncoder>,
    /// Base address of the first instruction.
    pub base: u32,
}

impl Assembler {
    /// Creates an assembler with the base ISA only.
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Registers a custom mnemonic.
    pub fn register_custom(
        &mut self,
        mnemonic: &str,
        encoder: CustomEncoder,
    ) -> &mut Self {
        self.custom.insert(mnemonic.to_string(), encoder);
        self
    }

    /// Assembles `source` into instruction words.
    ///
    /// # Errors
    ///
    /// Returns the first syntax, unknown-label, or range error.
    pub fn assemble(&self, source: &str) -> Result<Vec<u32>> {
        // Pass 1: compute label addresses.
        let mut labels: HashMap<String, u32> = HashMap::new();
        let mut addr = self.base;
        let mut items: Vec<(usize, String)> = Vec::new(); // (line, stmt)
        for (lineno, raw) in source.lines().enumerate() {
            let line = raw.split(&['#', ';']).next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut rest = line;
            while let Some(colon) = rest.find(':') {
                let (label, after) = rest.split_at(colon);
                let label = label.trim();
                if label.is_empty() || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.') {
                    break;
                }
                labels.insert(label.to_string(), addr);
                rest = after[1..].trim();
            }
            if rest.is_empty() {
                continue;
            }
            let words = self.statement_size(rest, lineno + 1)?;
            items.push((lineno + 1, rest.to_string()));
            addr += 4 * words;
        }
        // Pass 2: encode.
        let mut out = Vec::new();
        let mut addr = self.base;
        for (lineno, stmt) in items {
            let words = self.encode_statement(&stmt, addr, &labels, lineno)?;
            addr += 4 * words.len() as u32;
            out.extend(words);
        }
        Ok(out)
    }

    /// Number of words a statement occupies (needed for label layout).
    fn statement_size(&self, stmt: &str, line: usize) -> Result<u32> {
        let (mnemonic, _) = split_mnemonic(stmt);
        Ok(match mnemonic {
            "li" => 2, // worst case lui+addi; emitted as exactly two words
            _ => 1,
        })
        .map_err(|m: String| AsmError { line, message: m })
    }

    fn encode_statement(
        &self,
        stmt: &str,
        addr: u32,
        labels: &HashMap<String, u32>,
        line: usize,
    ) -> Result<Vec<u32>> {
        let err = |m: String| AsmError { line, message: m };
        let (mnemonic, operand_str) = split_mnemonic(stmt);
        let ops: Vec<&str> = operand_str
            .split(',')
            .map(|s| s.trim())
            .filter(|s| !s.is_empty())
            .collect();

        let reg = |s: &str| -> Result<u32> { parse_reg(s).ok_or_else(|| err(format!("unknown register `{s}`"))) };
        let imm = |s: &str| -> Result<i64> {
            parse_imm(s).ok_or_else(|| err(format!("invalid immediate `{s}`")))
        };
        let target = |s: &str| -> Result<i32> {
            if let Some(&dest) = labels.get(s) {
                Ok(dest.wrapping_sub(addr) as i32)
            } else {
                parse_imm(s)
                    .map(|v| v as i32)
                    .ok_or_else(|| err(format!("unknown label `{s}`")))
            }
        };
        let need = |n: usize| -> Result<()> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(format!(
                    "`{mnemonic}` expects {n} operands, got {}",
                    ops.len()
                )))
            }
        };
        // `off(base)` memory operand.
        let mem_operand = |s: &str| -> Result<(i32, u32)> {
            let open = s.find('(').ok_or_else(|| err(format!("expected off(base), got `{s}`")))?;
            let close = s.rfind(')').ok_or_else(|| err("missing `)`".into()))?;
            let off = if s[..open].trim().is_empty() {
                0
            } else {
                imm(s[..open].trim())? as i32
            };
            let base = reg(s[open + 1..close].trim())?;
            Ok((off, base))
        };

        let w = match mnemonic {
            ".word" => {
                need(1)?;
                vec![imm(ops[0])? as u32]
            }
            "lui" => {
                need(2)?;
                vec![u_type((imm(ops[1])? as u32) << 12, reg(ops[0])?, opcode::LUI)]
            }
            "auipc" => {
                need(2)?;
                vec![u_type((imm(ops[1])? as u32) << 12, reg(ops[0])?, opcode::AUIPC)]
            }
            "jal" => match ops.len() {
                1 => vec![j_type(target(ops[0])?, 1, opcode::JAL)],
                2 => vec![j_type(target(ops[1])?, reg(ops[0])?, opcode::JAL)],
                n => return Err(err(format!("`jal` expects 1 or 2 operands, got {n}"))),
            },
            "j" => {
                need(1)?;
                vec![j_type(target(ops[0])?, 0, opcode::JAL)]
            }
            "jalr" => match ops.len() {
                1 => vec![i_type(0, reg(ops[0])?, 0, 1, opcode::JALR)],
                3 => vec![i_type(imm(ops[2])? as i32, reg(ops[1])?, 0, reg(ops[0])?, opcode::JALR)],
                n => return Err(err(format!("`jalr` expects 1 or 3 operands, got {n}"))),
            },
            "ret" => {
                need(0)?;
                vec![i_type(0, 1, 0, 0, opcode::JALR)]
            }
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                need(3)?;
                let funct3 = match mnemonic {
                    "beq" => 0,
                    "bne" => 1,
                    "blt" => 4,
                    "bge" => 5,
                    "bltu" => 6,
                    _ => 7,
                };
                vec![b_type(target(ops[2])?, reg(ops[1])?, reg(ops[0])?, funct3, opcode::BRANCH)]
            }
            "beqz" | "bnez" => {
                need(2)?;
                let funct3 = if mnemonic == "beqz" { 0 } else { 1 };
                vec![b_type(target(ops[1])?, 0, reg(ops[0])?, funct3, opcode::BRANCH)]
            }
            "lb" | "lh" | "lw" | "lbu" | "lhu" => {
                need(2)?;
                let funct3 = match mnemonic {
                    "lb" => 0,
                    "lh" => 1,
                    "lw" => 2,
                    "lbu" => 4,
                    _ => 5,
                };
                let (off, base) = mem_operand(ops[1])?;
                vec![i_type(off, base, funct3, reg(ops[0])?, opcode::LOAD)]
            }
            "sb" | "sh" | "sw" => {
                need(2)?;
                let funct3 = match mnemonic {
                    "sb" => 0,
                    "sh" => 1,
                    _ => 2,
                };
                let (off, base) = mem_operand(ops[1])?;
                vec![s_type(off, reg(ops[0])?, base, funct3, opcode::STORE)]
            }
            "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" => {
                need(3)?;
                let funct3 = match mnemonic {
                    "addi" => 0,
                    "slti" => 2,
                    "sltiu" => 3,
                    "xori" => 4,
                    "ori" => 6,
                    _ => 7,
                };
                let v = imm(ops[2])?;
                if !(-2048..=2047).contains(&v) {
                    return Err(err(format!("immediate {v} out of 12-bit range")));
                }
                vec![i_type(v as i32, reg(ops[1])?, funct3, reg(ops[0])?, opcode::OP_IMM)]
            }
            "slli" | "srli" | "srai" => {
                need(3)?;
                let (funct3, funct7) = match mnemonic {
                    "slli" => (1, 0),
                    "srli" => (5, 0),
                    _ => (5, 0x20),
                };
                let sh = imm(ops[2])?;
                if !(0..32).contains(&sh) {
                    return Err(err(format!("shift amount {sh} out of range")));
                }
                vec![r_type(funct7, sh as u32, reg(ops[1])?, funct3, reg(ops[0])?, opcode::OP_IMM)]
            }
            "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" => {
                need(3)?;
                let (funct3, funct7) = match mnemonic {
                    "add" => (0, 0),
                    "sub" => (0, 0x20),
                    "sll" => (1, 0),
                    "slt" => (2, 0),
                    "sltu" => (3, 0),
                    "xor" => (4, 0),
                    "srl" => (5, 0),
                    "sra" => (5, 0x20),
                    "or" => (6, 0),
                    _ => (7, 0),
                };
                vec![r_type(funct7, reg(ops[2])?, reg(ops[1])?, funct3, reg(ops[0])?, opcode::OP)]
            }
            "li" => {
                need(2)?;
                let rd = reg(ops[0])?;
                // Absolute label addresses are accepted (`li t0, target`).
                let v = match labels.get(ops[1]) {
                    Some(&addr) => addr as i32,
                    None => imm(ops[1])? as i32,
                };
                // Always two words so pass-1 sizing stays exact.
                let hi = ((v as u32).wrapping_add(0x800)) & 0xfffff000;
                let lo = v.wrapping_sub(hi as i32);
                vec![
                    u_type(hi, rd, opcode::LUI),
                    i_type(lo, rd, 0, rd, opcode::OP_IMM),
                ]
            }
            "mv" => {
                need(2)?;
                vec![i_type(0, reg(ops[1])?, 0, reg(ops[0])?, opcode::OP_IMM)]
            }
            "not" => {
                need(2)?;
                vec![i_type(-1, reg(ops[1])?, 4, reg(ops[0])?, opcode::OP_IMM)]
            }
            "nop" => {
                need(0)?;
                vec![i_type(0, 0, 0, 0, opcode::OP_IMM)]
            }
            "ecall" => {
                need(0)?;
                vec![0x0000_0073]
            }
            "ebreak" => {
                need(0)?;
                vec![0x0010_0073]
            }
            "fence" => vec![0x0ff0_000f],
            _ => {
                let Some(encoder) = self.custom.get(mnemonic) else {
                    return Err(err(format!("unknown mnemonic `{mnemonic}`")));
                };
                let mut parsed = Vec::new();
                for op in &ops {
                    if let Some(r) = parse_reg(op) {
                        parsed.push(Operand::Reg(r));
                    } else if let Some(v) = parse_imm(op) {
                        parsed.push(Operand::Imm(v));
                    } else if let Some(&dest) = labels.get(*op) {
                        parsed.push(Operand::Imm(dest as i64));
                    } else {
                        return Err(err(format!("invalid operand `{op}`")));
                    }
                }
                vec![encoder(&parsed).map_err(err)?]
            }
        };
        Ok(w)
    }
}

fn split_mnemonic(stmt: &str) -> (&str, &str) {
    match stmt.find(char::is_whitespace) {
        Some(i) => (&stmt[..i], stmt[i..].trim()),
        None => (stmt, ""),
    }
}

/// Parses `x0`..`x31` and the standard ABI names.
pub fn parse_reg(s: &str) -> Option<u32> {
    if let Some(n) = s.strip_prefix('x') {
        let i: u32 = n.parse().ok()?;
        return (i < 32).then_some(i);
    }
    Some(match s {
        "zero" => 0,
        "ra" => 1,
        "sp" => 2,
        "gp" => 3,
        "tp" => 4,
        "t0" => 5,
        "t1" => 6,
        "t2" => 7,
        "s0" | "fp" => 8,
        "s1" => 9,
        "a0" => 10,
        "a1" => 11,
        "a2" => 12,
        "a3" => 13,
        "a4" => 14,
        "a5" => 15,
        "a6" => 16,
        "a7" => 17,
        "s2" => 18,
        "s3" => 19,
        "s4" => 20,
        "s5" => 21,
        "s6" => 22,
        "s7" => 23,
        "s8" => 24,
        "s9" => 25,
        "s10" => 26,
        "s11" => 27,
        "t3" => 28,
        "t4" => 29,
        "t5" => 30,
        "t6" => 31,
        _ => return None,
    })
}

/// Parses decimal / hex / binary immediates with optional sign.
pub fn parse_imm(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(h) = body.strip_prefix("0x").or(body.strip_prefix("0X")) {
        i64::from_str_radix(&h.replace('_', ""), 16).ok()?
    } else if let Some(b) = body.strip_prefix("0b").or(body.strip_prefix("0B")) {
        i64::from_str_radix(&b.replace('_', ""), 2).ok()?
    } else {
        body.replace('_', "").parse().ok()?
    };
    Some(if neg { -v } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::DecodedInstr;

    #[test]
    fn assembles_loop_with_labels() {
        let program = assemble(
            r#"
            li   t0, 10
        loop:
            addi t0, t0, -1
            bnez t0, loop
            ebreak
        "#,
        )
        .unwrap();
        // li expands to two words, so: lui, addi, addi(loop), bnez, ebreak.
        assert_eq!(program.len(), 5);
        // bnez is at address 12, targeting 8 => offset -4.
        match crate::decode(program[3]) {
            DecodedInstr::Branch { funct3: 1, imm: -4, .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(program[4], 0x0010_0073);
    }

    #[test]
    fn li_handles_large_values() {
        let program = assemble("li a0, 0x12345678").unwrap();
        assert_eq!(program.len(), 2);
        match crate::decode(program[0]) {
            DecodedInstr::Lui { rd: 10, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn li_handles_negative_low_part() {
        // 0x12345FFF has a low part that sign-extends negative.
        for v in [0x12345FFFi64, -1, -2048, 2047, 0x7fffffff, -0x80000000] {
            let program = assemble(&format!("li a0, {v}")).unwrap();
            // Execute the two instructions manually.
            let mut x = match crate::decode(program[0]) {
                DecodedInstr::Lui { imm, .. } => imm as i32 as i64,
                other => panic!("{other:?}"),
            };
            match crate::decode(program[1]) {
                DecodedInstr::OpImm { funct3: 0, imm, .. } => {
                    x = (x as i32).wrapping_add(imm) as i64
                }
                other => panic!("{other:?}"),
            }
            assert_eq!(x as i32, v as i32, "li {v}");
        }
    }

    #[test]
    fn memory_operands() {
        let program = assemble("lw a0, 8(sp)\nsw a0, -4(s0)").unwrap();
        match crate::decode(program[0]) {
            DecodedInstr::Load { funct3: 2, rd: 10, rs1: 2, imm: 8 } => {}
            other => panic!("{other:?}"),
        }
        match crate::decode(program[1]) {
            DecodedInstr::Store { funct3: 2, rs2: 10, rs1: 8, imm: -4 } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn custom_mnemonics() {
        let mut asm = Assembler::new();
        asm.register_custom(
            "dotp",
            Box::new(|ops| match ops {
                [Operand::Reg(rd), Operand::Reg(rs1), Operand::Reg(rs2)] => {
                    Ok((rs2 << 20) | (rs1 << 15) | (rd << 7) | 0b0001011)
                }
                _ => Err("dotp expects rd, rs1, rs2".into()),
            }),
        );
        let program = asm.assemble("dotp a0, a1, a2").unwrap();
        assert_eq!(program[0], (12 << 20) | (11 << 15) | (10 << 7) | 0b0001011);
        assert!(asm.assemble("dotp a0, a1").is_err());
    }

    #[test]
    fn errors_report_lines() {
        let err = assemble("nop\nbogus x1").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
        assert!(assemble("addi t0, t0, 5000").is_err());
        assert!(assemble("beq t0, t1, nowhere").is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let program = assemble("# full line\nnop # trailing\nnop ; alt comment").unwrap();
        assert_eq!(program.len(), 2);
    }

    #[test]
    fn word_directive() {
        let program = assemble(".word 0xdeadbeef").unwrap();
        assert_eq!(program[0], 0xdead_beef);
    }
}
