//! RTL co-simulation: the *generated hardware modules* (netlists built from
//! the scheduled LIL graphs) are executed cycle-by-cycle with the netlist
//! interpreter and compared against the golden CoreDSL semantics — the
//! reproduction's analog of the paper's RTL simulation (§5.3).

use bits::ApInt;
use longnail::driver::{builtin_datasheet, CompiledIsax, EVAL_CORES};
use longnail::isax_lib;
use longnail::Longnail;
use proptest::prelude::*;
use rtl::build::IfaceSignal;
use rtl::netlist::PortDir;
use rtl::Simulator;
use std::collections::HashMap;

fn compile(core: &str, isax: &str) -> CompiledIsax {
    let ln = Longnail::new();
    let ds = builtin_datasheet(core).unwrap();
    let (unit, src) = isax_lib::isax_source(isax).unwrap();
    ln.compile(&src, &unit, &ds).unwrap()
}

/// Drives the compiled module of an R-type instruction with the given
/// operands held stable and no stalls, returning the wrrd data sampled in
/// its scheduled stage.
fn run_rtype_module(compiled: &CompiledIsax, graph_name: &str, rs1: u32, rs2: u32) -> u32 {
    let g = compiled.graph(graph_name).unwrap();
    let rd_binding = g
        .built
        .binding_any_stage(&IfaceSignal::RdData)
        .expect("result port")
        .clone();
    assert_eq!(rd_binding.dir, PortDir::Output);
    let mut sim = Simulator::new(g.built.module.clone());
    let mut inputs = HashMap::new();
    for b in &g.built.bindings {
        match &b.signal {
            IfaceSignal::Rs1Data => {
                inputs.insert(b.name.clone(), ApInt::from_u64(rs1 as u64, 32));
            }
            IfaceSignal::Rs2Data => {
                inputs.insert(b.name.clone(), ApInt::from_u64(rs2 as u64, 32));
            }
            IfaceSignal::StallIn => {
                inputs.insert(b.name.clone(), ApInt::zero(1));
            }
            _ => {}
        }
    }
    let mut out = 0;
    for _ in 0..=g.built.max_stage {
        let outputs = sim.step(&inputs);
        out = outputs[&rd_binding.name].to_u64() as u32;
    }
    out
}

fn dotp_reference(a: u32, b: u32) -> u32 {
    (0..4)
        .map(|i| {
            let x = ((a >> (8 * i)) & 0xff) as i8 as i32;
            let y = ((b >> (8 * i)) & 0xff) as i8 as i32;
            x.wrapping_mul(y)
        })
        .fold(0i32, i32::wrapping_add) as u32
}

#[test]
fn dotp_netlists_match_reference_on_all_cores() {
    for core in EVAL_CORES {
        let compiled = compile(core, "dotprod");
        for (a, b) in [(0x01020304, 0x05060708), (0xff80807f, 0x7f808001)] {
            assert_eq!(
                run_rtype_module(&compiled, "dotp", a, b),
                dotp_reference(a, b),
                "{core}: RTL dotp({a:#x},{b:#x})"
            );
        }
    }
}

#[test]
fn sqrt_netlist_pipeline_matches_reference() {
    // 10+ pipeline stages of actual hardware: drive it and check the
    // fixed-point result emerges correctly at the end.
    let compiled = compile("VexRiscv", "sqrt_tightly");
    for x in [0u32, 1, 2, 4, 144, 1764, u32::MAX] {
        let fixed = run_rtype_module(&compiled, "sqrt", x, 0) as u64;
        let target = (x as u128) << 32;
        assert!((fixed as u128) * (fixed as u128) <= target, "sqrt({x})");
        assert!(((fixed + 1) as u128) * ((fixed + 1) as u128) > target, "sqrt({x})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn alzette_netlist_matches_golden(a: u32, b: u32) {
        fn rotr(x: u32, n: u32) -> u32 {
            x.rotate_right(n)
        }
        fn alzette(mut x: u32, mut y: u32, c: u32) -> (u32, u32) {
            for (rx, ry) in [(31, 24), (17, 17), (0, 31), (24, 16)] {
                x = x.wrapping_add(rotr(y, rx));
                y ^= rotr(x, ry);
                x ^= c;
            }
            (x, y)
        }
        let compiled = compile("ORCA", "sparkle");
        for (k, c) in isax_lib::SPARKLE_RCON.iter().enumerate() {
            let (ex, ey) = alzette(a, b, *c);
            prop_assert_eq!(run_rtype_module(&compiled, &format!("alzette_x{k}"), a, b), ex);
            prop_assert_eq!(run_rtype_module(&compiled, &format!("alzette_y{k}"), a, b), ey);
        }
    }
}

/// A dynamic single-bit select, which lowers to `ExtractDyn` — the
/// construct whose historic `[b +: w]` emission was X past the top of the
/// base vector.
const BITSEL: &str = r#"
import "RV32I.core_desc";
InstructionSet X_BITSEL extends RV32I {
  instructions {
    bitsel {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd1 :: rd[4:0] :: 7'b1011011;
      behavior: {
        unsigned<1> b = X[rs1][X[rs2]];
        X[rd] = b;
      }
    }
  }
}
"#;

#[test]
fn extract_dyn_boundary_indices_agree_across_interp_xsim_and_emission() {
    let ln = Longnail::new();
    let ds = builtin_datasheet("ORCA").unwrap();
    let compiled = ln.compile(BITSEL, "X_BITSEL", &ds).unwrap();
    let g = compiled.graph("bitsel").unwrap();
    // The default emission is the total zero-filled shift, not the raw
    // indexed part-select.
    assert!(g.verilog.contains("1'("), "{}", g.verilog);
    assert!(!g.verilog.contains("+:"), "{}", g.verilog);

    // In-range, top-boundary (31), just past the top (32), and far out of
    // range: the interpreter reads zeros past the top, and the four-state
    // model of the emitted SystemVerilog must agree bit-for-bit.
    for (rs1, rs2, expect) in [
        (0x8000_0001u32, 0u32, 1u32),
        (0x8000_0001, 31, 1),
        (0x7fff_ffff, 31, 0),
        (0x8000_0001, 32, 0),
        (0xffff_ffff, 33, 0),
        (0xffff_ffff, 0xffff_ffff, 0),
    ] {
        assert_eq!(
            run_rtype_module(&compiled, "bitsel", rs1, rs2),
            expect,
            "interp bitsel({rs1:#x}, {rs2})"
        );
        let mut diff = rtl::xsim::DiffSim::new(g.built.module.clone());
        let mut inputs = HashMap::new();
        for b in &g.built.bindings {
            match &b.signal {
                IfaceSignal::Rs1Data => {
                    inputs.insert(b.name.clone(), ApInt::from_u64(rs1 as u64, 32));
                }
                IfaceSignal::Rs2Data => {
                    inputs.insert(b.name.clone(), ApInt::from_u64(rs2 as u64, 32));
                }
                IfaceSignal::StallIn => {
                    inputs.insert(b.name.clone(), ApInt::zero(1));
                }
                _ => {}
            }
        }
        for _ in 0..=g.built.max_stage {
            let stats = diff
                .step(&inputs)
                .unwrap_or_else(|e| panic!("bitsel({rs1:#x}, {rs2}): {e}"));
            assert_eq!(
                stats.output_x_bits, 0,
                "bitsel({rs1:#x}, {rs2}) leaked X to outputs"
            );
        }
    }
}

#[test]
fn emitted_verilog_is_structurally_complete() {
    // Every compiled module's SystemVerilog mentions each of its ports and
    // balances begin/end-style structure.
    for core in EVAL_CORES {
        for (name, _, _) in isax_lib::all_isaxes() {
            let compiled = compile(core, &name);
            for g in &compiled.graphs {
                let sv = &g.verilog;
                assert!(sv.starts_with("// Generated by Longnail"));
                assert!(sv.trim_end().ends_with("endmodule"), "{core}/{name}");
                for b in &g.built.bindings {
                    assert!(
                        sv.contains(&b.name),
                        "{core}/{name}/{}: port {} missing from Verilog",
                        g.name,
                        b.name
                    );
                }
                let always_ff = sv.matches("always_ff").count();
                let regs = g
                    .built
                    .module
                    .nets
                    .iter()
                    .filter(|n| matches!(n.driver, rtl::netlist::Driver::Reg { .. }))
                    .count();
                assert_eq!(always_ff, regs, "{core}/{name}: one always_ff per register");
            }
        }
    }
}

#[test]
fn zol_always_block_netlist_behaves_cycle_accurately() {
    // Drive the generated zol always-block *hardware* for several cycles
    // with custom-register values supplied externally (as SCAIE-V would)
    // and check the PC-redirect and counter-decrement requests.
    let compiled = compile("VexRiscv", "zol");
    let g = compiled.graph("zol").unwrap();
    let mut sim = Simulator::new(g.built.module.clone());
    let wrpc_data = g.built.binding_any_stage(&IfaceSignal::PcWrData).unwrap();
    let wrpc_valid = g.built.binding_any_stage(&IfaceSignal::PcWrPred).unwrap();
    let wrcount_valid = g
        .built
        .binding_any_stage(&IfaceSignal::CustWrPred("COUNT".into()))
        .unwrap();
    let wrcount_data = g
        .built
        .binding_any_stage(&IfaceSignal::CustWrData("COUNT".into()))
        .unwrap();
    let drive = |sim: &mut Simulator, pc: u32, count: u32, start: u32, end: u32| {
        let mut inputs = HashMap::new();
        for b in &g.built.bindings {
            match &b.signal {
                IfaceSignal::PcData => {
                    inputs.insert(b.name.clone(), ApInt::from_u64(pc as u64, 32));
                }
                IfaceSignal::CustRdData(r) => {
                    let v = match r.as_str() {
                        "COUNT" => count,
                        "START_PC" => start,
                        _ => end,
                    };
                    inputs.insert(b.name.clone(), ApInt::from_u64(v as u64, 32));
                }
                IfaceSignal::StallIn => {
                    inputs.insert(b.name.clone(), ApInt::zero(1));
                }
                _ => {}
            }
        }
        sim.step(&inputs)
    };
    // Loop active: PC == END_PC, COUNT != 0 -> redirect + decrement.
    let out = drive(&mut sim, 0x100, 3, 0xf0, 0x100);
    assert!(!out[&wrpc_valid.name].is_zero());
    assert_eq!(out[&wrpc_data.name].to_u64(), 0xf0);
    assert!(!out[&wrcount_valid.name].is_zero());
    assert_eq!(out[&wrcount_data.name].to_u64(), 2);
    // PC elsewhere: no valid requests.
    let out = drive(&mut sim, 0x104, 3, 0xf0, 0x100);
    assert!(out[&wrpc_valid.name].is_zero());
    assert!(out[&wrcount_valid.name].is_zero());
    // Counter exhausted at END_PC: loop falls through.
    let out = drive(&mut sim, 0x100, 0, 0xf0, 0x100);
    assert!(out[&wrpc_valid.name].is_zero());
}
