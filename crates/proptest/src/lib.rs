//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this local crate
//! reimplements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`,
//!   `ident: Type` and `pattern in strategy` parameters),
//! * the [`Strategy`] trait with [`Strategy::prop_map`] /
//!   [`Strategy::prop_flat_map`], implemented for integer ranges, tuples,
//!   and [`Just`],
//! * [`collection::vec`], [`option::weighted`], [`any`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! the generated input verbatim. Generation is deterministic (SplitMix64
//! seeded per case index), so failures reproduce across runs.

use std::fmt;

pub mod collection;
pub mod option;

/// Deterministic generator used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; try another one.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected inputs tolerated before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (type erasure).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Runs `cases` successful executions of `test` on values drawn from
/// `strategy`. Rejections (via [`prop_assume!`]) retry with fresh input.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first failing case,
/// reporting the generated input, or when the rejection budget is spent.
pub fn run<S, F>(config: &ProptestConfig, strategy: &S, mut test: F)
where
    S: Strategy,
    S::Value: Clone + fmt::Debug,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut successes = 0u32;
    let mut rejects = 0u32;
    let mut attempt = 0u64;
    while successes < config.cases {
        // Seed per attempt index: deterministic across runs, independent
        // across cases.
        let mut rng = TestRng::new(0xA076_1D64_78BD_642F ^ attempt.wrapping_mul(0x9E37_79B9));
        attempt += 1;
        let value = strategy.generate(&mut rng);
        match test(value.clone()) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest: too many rejected inputs ({rejects}) after {successes} passing cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest: case #{successes} failed: {msg}\n  input: {value:?}");
            }
        }
    }
}

/// The proptest prelude: everything the `proptest!` macro and its bodies
/// need in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the generated
/// input on failure (instead of panicking mid-case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current input (retried with a fresh one).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond).to_string()));
        }
    };
}

/// The property-test declaration macro.
///
/// Supports the proptest surface syntax used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]  // optional
///
///     #[test]
///     fn my_prop(a: u64, width in 1u32..=64) { ... }
/// }
/// ```
///
/// `ident: Type` parameters draw from [`any::<Type>()`]; `pat in strategy`
/// parameters draw from the given strategy expression.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr); ) => {};
    (@fns ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($params:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::proptest!(@munch ($cfg) [] [] $($params)*, @end $body);
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    // -- parameter munchers: accumulate [patterns] [strategies] --
    // typed form `ident: Type`
    (@munch ($cfg:expr) [$($pats:tt)*] [$($strats:tt)*] $i:ident : $t:ty, $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) [$($pats)* ($i)] [$($strats)* ($crate::any::<$t>())] $($rest)*);
    };
    // strategy form `pat in expr`
    (@munch ($cfg:expr) [$($pats:tt)*] [$($strats:tt)*] $p:pat in $s:expr, $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) [$($pats)* ($p)] [$($strats)* ($s)] $($rest)*);
    };
    // a trailing comma in the parameter list leaves `,, @end` behind;
    // absorb the extra comma instead of falling into the entry arm (which
    // would recurse forever)
    (@munch ($cfg:expr) [$($pats:tt)*] [$($strats:tt)*] , @end $body:block) => {
        $crate::proptest!(@munch ($cfg) [$($pats)*] [$($strats)*] @end $body);
    };
    // done: build the tuple strategy and run
    (@munch ($cfg:expr) [$(($pat:pat))+] [$(($strat:expr))+] @end $body:block) => {{
        let config: $crate::ProptestConfig = $cfg;
        let strategy = ($($strat,)+);
        $crate::run(&config, &strategy, |($($pat,)+)| {
            $body
            Ok(())
        });
    }};
    // entry without a config header
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone)]
    struct Pair {
        a: u32,
        b: u32,
    }

    fn pair() -> impl Strategy<Value = Pair> {
        (0u32..100).prop_flat_map(|a| (0u32..=a, 10u32..12).prop_map(move |(b, _)| Pair { a, b }))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn typed_and_strategy_params(x: u64, w in 1u32..=64, flag: bool) {
            let masked = if w == 64 { x } else { x & ((1u64 << w) - 1) };
            prop_assert!(w == 64 || masked < (1u64 << w));
            if flag {
                prop_assert_eq!(masked, masked);
            }
        }

        #[test]
        fn flat_map_dependencies_hold(p in pair()) {
            prop_assert!(p.b <= p.a || p.a == 0);
        }

        #[test]
        fn assume_rejects(v in 0u32..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }

        #[test]
        fn collections_and_options(xs in crate::collection::vec(0i64..5, 2..=6),
                                   o in crate::option::weighted(0.5, 1u32..4)) {
            prop_assert!(xs.len() >= 2 && xs.len() <= 6);
            prop_assert!(xs.iter().all(|&x| (0..5).contains(&x)));
            if let Some(v) = o {
                prop_assert!((1..4).contains(&v));
            }
        }
    }

    #[test]
    fn determinism() {
        let s = (0u32..1000, any::<u64>());
        let mut r1 = crate::TestRng::new(5);
        let mut r2 = crate::TestRng::new(5);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "proptest: case #")]
    fn failures_report_input() {
        crate::run(
            &ProptestConfig::with_cases(8),
            &(0u32..10),
            |v| {
                prop_assert!(v < 100, "bad {v}");
                prop_assert!(v > 100, "forced failure on {v}");
                Ok(())
            },
        );
    }
}
