/root/repo/target/debug/deps/props-79ec0ef77b98c9a6.d: crates/ilp/tests/props.rs

/root/repo/target/debug/deps/props-79ec0ef77b98c9a6: crates/ilp/tests/props.rs

crates/ilp/tests/props.rs:
