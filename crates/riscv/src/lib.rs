//! RV32I substrate: instruction encoding/decoding, a two-pass assembler,
//! and a golden-model instruction-set simulator (ISS).
//!
//! The paper verifies extended cores "by performing RTL simulation of the
//! execution of handwritten assembler programs" (§5.3). This crate provides
//! the assembler for those programs and the architectural golden model the
//! cycle-level core simulations are differentially checked against. Custom
//! (ISAX) instructions plug into both: the assembler accepts caller-defined
//! mnemonics, and the ISS dispatches unknown opcodes to a
//! [`iss::CustomExecutor`].

pub mod asm;
pub mod decode;
pub mod encode;
pub mod iss;

pub use asm::{assemble, Assembler, AsmError};
pub use decode::{decode, DecodedInstr};
pub use iss::{Cpu, CustomExecutor, IssError, StepOutcome};
