//! The Longnail ↔ SCAIE-V metadata exchange (paper §4.6): virtual
//! datasheets and ISAX configuration files round-trip through their YAML
//! formats for every ISAX × core combination, and the schedules they carry
//! respect the datasheet windows.

use longnail::driver::{builtin_datasheet, EVAL_CORES};
use longnail::isax_lib;
use longnail::Longnail;
use scaiev::iface::SubInterfaceOp;
use scaiev::modes::ExecutionMode;
use scaiev::{IsaxConfig, VirtualDatasheet};

#[test]
fn datasheets_round_trip_for_all_cores() {
    for core in EVAL_CORES {
        let ds = builtin_datasheet(core).unwrap();
        let parsed = VirtualDatasheet::from_yaml(&ds.to_yaml()).unwrap();
        assert_eq!(parsed, ds, "{core}");
        // Datasheets must cover every fixed sub-interface of Table 1.
        for key in [
            "RdInstr", "RdRS1", "RdRS2", "RdPC", "RdMem", "WrRD", "WrPC", "WrMem",
            "RdCustReg", "WrCustReg.addr", "WrCustReg.data",
        ] {
            let op = SubInterfaceOp::from_key(key).unwrap();
            assert!(ds.timing(&op).is_some(), "{core} lacks {key}");
        }
        assert!(ds.clock_ns > 0.0);
    }
}

#[test]
fn configs_round_trip_for_all_isaxes_and_cores() {
    let ln = Longnail::new();
    for core in EVAL_CORES {
        let ds = builtin_datasheet(core).unwrap();
        for (name, unit, src) in isax_lib::all_isaxes() {
            let compiled = ln.compile(&src, &unit, &ds).unwrap();
            let yaml = compiled.config.to_yaml();
            let parsed = IsaxConfig::from_yaml(&yaml).unwrap();
            assert_eq!(parsed, compiled.config, "{core}/{name}");
            // Every scheduled stage respects the datasheet's earliest time,
            // and every encoding is a 32-character pattern.
            for f in &compiled.config.functionalities {
                if let Some(enc) = &f.encoding {
                    assert_eq!(enc.len(), 32, "{core}/{name}/{}", f.name);
                    assert!(enc.chars().all(|c| matches!(c, '0' | '1' | '-')));
                }
                for e in &f.schedule {
                    let op = SubInterfaceOp::from_key(&e.interface)
                        .unwrap_or_else(|| panic!("bad interface key {}", e.interface));
                    if f.is_always() {
                        assert_eq!(e.stage, 0, "{core}/{name}: always uses stage 0");
                        if op.is_write() && e.interface.ends_with(".data")
                            || matches!(op, SubInterfaceOp::WrPC | SubInterfaceOp::WrRD | SubInterfaceOp::WrMem)
                        {
                            assert!(e.has_valid, "{core}/{name}: {} lacks valid", e.interface);
                        }
                    } else if let Some(t) = ds.timing(&op) {
                        assert!(
                            e.stage >= t.earliest,
                            "{core}/{name}/{}: {} at stage {} before earliest {}",
                            f.name,
                            e.interface,
                            e.stage,
                            t.earliest
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn custom_register_requests_match_declarations() {
    let ln = Longnail::new();
    let ds = builtin_datasheet("VexRiscv").unwrap();
    let (unit, src) = isax_lib::isax_source("zol").unwrap();
    let compiled = ln.compile(&src, &unit, &ds).unwrap();
    let mut names: Vec<&str> = compiled
        .config
        .registers
        .iter()
        .map(|r| r.name.as_str())
        .collect();
    names.sort_unstable();
    assert_eq!(names, vec!["COUNT", "END_PC", "START_PC"]);
    for r in &compiled.config.registers {
        assert_eq!(r.width, 32);
        assert_eq!(r.elements, 1);
    }
    // Constant registers (ROMs) are internalized, not requested (§4.5).
    let (unit, src) = isax_lib::isax_source("sbox").unwrap();
    let compiled = ln.compile(&src, &unit, &ds).unwrap();
    assert!(compiled.config.registers.is_empty());
    assert_eq!(compiled.lil.roms.len(), 1);
}

#[test]
fn mode_selection_summary_matches_section_4_3() {
    // In-pipeline when the write fits the native window, decoupled only
    // from spawn, tightly-coupled otherwise.
    let ln = Longnail::new();
    let ds = builtin_datasheet("VexRiscv").unwrap();
    let expectations = [
        ("dotprod", ExecutionMode::InPipeline),
        ("sbox", ExecutionMode::InPipeline),
        ("sqrt_tightly", ExecutionMode::TightlyCoupled),
        ("sqrt_decoupled", ExecutionMode::Decoupled),
    ];
    for (name, expected) in expectations {
        let (unit, src) = isax_lib::isax_source(name).unwrap();
        let compiled = ln.compile(&src, &unit, &ds).unwrap();
        let mode = compiled.instructions().next().unwrap().mode;
        assert_eq!(mode, expected, "{name}");
    }
}
