/root/repo/target/release/deps/rtl-e5d4c76bf6496b82.d: crates/rtl/src/lib.rs crates/rtl/src/build.rs crates/rtl/src/interp.rs crates/rtl/src/lint.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs

/root/repo/target/release/deps/librtl-e5d4c76bf6496b82.rlib: crates/rtl/src/lib.rs crates/rtl/src/build.rs crates/rtl/src/interp.rs crates/rtl/src/lint.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs

/root/repo/target/release/deps/librtl-e5d4c76bf6496b82.rmeta: crates/rtl/src/lib.rs crates/rtl/src/build.rs crates/rtl/src/interp.rs crates/rtl/src/lint.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs

crates/rtl/src/lib.rs:
crates/rtl/src/build.rs:
crates/rtl/src/interp.rs:
crates/rtl/src/lint.rs:
crates/rtl/src/netlist.rs:
crates/rtl/src/verilog.rs:
