//! Functional verification of the extended cores (paper §5.3):
//! handwritten assembler programs run on every core model and must match
//! the golden ISS + CoreDSL-interpreter reference architecturally.

use cores::{descriptor, ExtendedCore};
use longnail::driver::{builtin_datasheet, EVAL_CORES};
use longnail::golden::GoldenMachine;
use longnail::isax_lib;
use longnail::Longnail;
use riscv::asm::Assembler;

/// Compiles the named ISAXes for `core` and assembles `program` with their
/// mnemonics registered.
fn setup(
    core: &str,
    isax_names: &[&str],
    program: &str,
) -> (ExtendedCore, GoldenMachine, Vec<u32>) {
    let mut ln = Longnail::new();
    let ds = builtin_datasheet(core).unwrap();
    let mut compiled = Vec::new();
    let mut modules = Vec::new();
    let mut asm = Assembler::new();
    for name in isax_names {
        let (unit, src) = isax_lib::isax_source(name).unwrap();
        let module = ln
            .frontend_mut()
            .compile_str(&src, &unit)
            .map_err(|e| e.to_string())
            .unwrap();
        isax_lib::register_mnemonics(&mut asm, &module).unwrap();
        compiled.push(ln.compile(&src, &unit, &ds).unwrap());
        modules.push(module);
    }
    let words = asm.assemble(program).unwrap();
    let mut extended = ExtendedCore::new(descriptor(core).unwrap(), compiled, true);
    extended.load_program(0, &words);
    let mut golden = GoldenMachine::new(modules);
    golden.load_program(0, &words);
    (extended, golden, words)
}

/// Runs both machines and asserts architectural equivalence on the given
/// GPRs and custom registers.
fn check_equivalence(
    core: &str,
    isax_names: &[&str],
    program: &str,
    regs: &[u32],
    cust: &[(&str, u64)],
) -> u64 {
    let (mut extended, mut golden, _) = setup(core, isax_names, program);
    extended.run(100_000).unwrap();
    golden.run(100_000).unwrap();
    for &r in regs {
        assert_eq!(
            extended.cpu.read_reg(r),
            golden.cpu.read_reg(r),
            "{core}: x{r} differs from golden model"
        );
    }
    for &(name, idx) in cust {
        assert_eq!(
            extended.cust_reg(name, idx),
            golden.cust_reg(name, idx),
            "{core}: {name}[{idx}] differs from golden model"
        );
    }
    extended.cycles
}

const DOTP_PROGRAM: &str = r#"
    li a1, 0x01020304
    li a2, 0x85068708
    dotp a0, a1, a2
    dotp a3, a2, a2
    ebreak
"#;

#[test]
fn dotp_verifies_on_all_cores() {
    for core in EVAL_CORES {
        check_equivalence(core, &["dotprod"], DOTP_PROGRAM, &[10, 13], &[]);
    }
}

#[test]
fn sqrt_tightly_verifies_on_all_cores() {
    let program = r#"
        li a1, 1764
        sqrt a0, a1
        li a2, 2
        sqrt a3, a2
        ebreak
    "#;
    for core in EVAL_CORES {
        check_equivalence(core, &["sqrt_tightly"], program, &[10, 13], &[]);
    }
}

#[test]
fn sqrt_decoupled_overlaps_execution() {
    // Independent work after the sqrt should overlap with the decoupled
    // computation; dependent reads must still see the correct value.
    let program = r#"
        li a1, 1764
        sqrt a0, a1
        li t0, 1        # independent: overtakes the sqrt
        li t1, 2
        li t2, 3
        mv a2, a0       # dependent: scoreboard stalls until commit
        ebreak
    "#;
    for core in EVAL_CORES {
        check_equivalence(core, &["sqrt_decoupled"], program, &[10, 12, 5, 6, 7], &[]);
    }
    // The decoupled variant must not be slower than the tightly-coupled
    // one on this mixed program (that is the point of spawning).
    let (mut tight, _, _) = setup("VexRiscv", &["sqrt_tightly"], program);
    let (mut dec, _, _) = setup("VexRiscv", &["sqrt_decoupled"], program);
    tight.run(100_000).unwrap();
    dec.run(100_000).unwrap();
    assert!(
        dec.cycles <= tight.cycles,
        "decoupled {} vs tightly {}",
        dec.cycles,
        tight.cycles
    );
}

#[test]
fn zol_loop_verifies_on_all_cores() {
    let program = r#"
        li   t0, 0
        li   t1, 0
        setup_zol 9, 4    # END_PC = (here) + 8: loop body is two instrs
        addi t0, t0, 1    # START_PC
        addi t1, t1, 2    # END_PC: redirect happens after this one
        ebreak
    "#;
    for core in EVAL_CORES {
        check_equivalence(
            core,
            &["zol"],
            program,
            &[5, 6],
            &[("COUNT", 0), ("START_PC", 0), ("END_PC", 0)],
        );
    }
}

#[test]
fn autoinc_verifies_on_all_cores() {
    let program = r#"
        li   a0, 0x300
        li   t0, 5
        sw   t0, 0(a0)
        li   t0, 6
        sw   t0, 4(a0)
        setup_autoinc a0
        load_inc t1
        load_inc t2
        add  a1, t1, t2
        store_inc a1      # writes 11 to 0x308
        ebreak
    "#;
    for core in EVAL_CORES {
        let (mut extended, mut golden, _) = setup(core, &["autoinc"], program);
        extended.run(100_000).unwrap();
        golden.run(100_000).unwrap();
        assert_eq!(extended.cpu.read_reg(11), 11, "{core}");
        assert_eq!(extended.cpu.read_word(0x308), golden.cpu.read_word(0x308));
        assert_eq!(
            extended.cust_reg("ADDR", 0),
            golden.cust_reg("ADDR", 0),
            "{core}"
        );
    }
}

#[test]
fn sbox_and_sparkle_verify_on_all_cores() {
    let program = r#"
        li a1, 0x53
        aes_sbox a0, a1
        ebreak
    "#;
    for core in EVAL_CORES {
        let cycles = check_equivalence(core, &["sbox"], program, &[10], &[]);
        assert!(cycles > 0);
    }
    let program = r#"
        li a1, 0x12345678
        li a2, 0x9abcdef0
        alzette_x0 a0, a1, a2
        alzette_y0 a3, a1, a2
        ebreak
    "#;
    for core in EVAL_CORES {
        check_equivalence(core, &["sparkle"], program, &[10, 13], &[]);
    }
}

#[test]
fn ijmp_verifies_on_all_cores() {
    let program = r#"
        li   a0, 0x400
        li   t0, dest
        sw   t0, 0(a0)
        ijmp a0
        li   a1, 1
        ebreak
    dest:
        li   a1, 7
        ebreak
    "#;
    for core in EVAL_CORES {
        check_equivalence(core, &["ijmp"], program, &[11], &[]);
    }
}

#[test]
fn combined_autoinc_zol_verifies() {
    let program = r#"
        li   a0, 0x500
        li   t0, 10
        sw   t0, 0(a0)
        li   t0, 20
        sw   t0, 4(a0)
        li   t0, 30
        sw   t0, 8(a0)
        li   a1, 0
        setup_autoinc a0
        setup_zol 2, 4
        load_inc t1
        add  a1, a1, t1
        ebreak
    "#;
    for core in EVAL_CORES {
        check_equivalence(
            core,
            &["autoinc", "zol"],
            program,
            &[11],
            &[("ADDR", 0), ("COUNT", 0)],
        );
    }
}

#[test]
fn zero_overhead_loop_really_is_zero_overhead() {
    // Compare the branch-based loop against the zol loop on VexRiscv: the
    // zol version must save at least the branch penalty per iteration.
    let n = 20;
    let branch_program = format!(
        r#"
        li   t0, 0
        li   t1, {n}
    loop:
        addi t0, t0, 1
        addi t1, t1, -1
        bnez t1, loop
        ebreak
    "#
    );
    let zol_program = format!(
        r#"
        li   t0, 0
        li   t1, {n}
        setup_zol {m}, 2
        addi t0, t0, 1
        ebreak
    "#,
        m = n - 1
    );
    let (mut base, _, _) = setup("VexRiscv", &["zol"], &branch_program);
    base.run(100_000).unwrap();
    let (mut zol, _, _) = setup("VexRiscv", &["zol"], &zol_program);
    zol.run(100_000).unwrap();
    assert_eq!(base.cpu.read_reg(5), n);
    assert_eq!(zol.cpu.read_reg(5), n);
    assert!(
        zol.cycles + 4 * (n as u64) < base.cycles,
        "zol {} vs branch {}",
        zol.cycles,
        base.cycles
    );
}

#[test]
fn hazard_free_ablation_returns_stale_values() {
    // Without hazard handling (Table 4 ablation row), a dependent read
    // right after a decoupled sqrt sees the stale register value.
    let mut ln = Longnail::new();
    let ds = builtin_datasheet("VexRiscv").unwrap();
    let (unit, src) = isax_lib::isax_source("sqrt_decoupled").unwrap();
    let module = ln
        .frontend_mut()
        .compile_str(&src, &unit)
        .map_err(|e| e.to_string())
        .unwrap();
    let mut asm = Assembler::new();
    isax_lib::register_mnemonics(&mut asm, &module).unwrap();
    let program = asm
        .assemble("li a0, 0\nli a1, 1764\nsqrt a0, a1\nmv a2, a0\nebreak")
        .unwrap();
    let compiled = ln.compile(&src, &unit, &ds).unwrap();
    let mut unsafe_core =
        ExtendedCore::new(descriptor("VexRiscv").unwrap(), vec![compiled.clone()], false);
    unsafe_core.load_program(0, &program);
    unsafe_core.run(100_000).unwrap();
    // The dependent `mv` executed before the decoupled commit: stale zero.
    assert_eq!(unsafe_core.cpu.read_reg(12), 0);
    // a0 still receives the result eventually.
    assert_eq!(unsafe_core.cpu.read_reg(10), 42 << 16);
    // With hazard handling the dependent read is correct.
    let mut safe_core =
        ExtendedCore::new(descriptor("VexRiscv").unwrap(), vec![compiled], true);
    safe_core.load_program(0, &program);
    safe_core.run(100_000).unwrap();
    assert_eq!(safe_core.cpu.read_reg(12), 42 << 16);
    // And the unsafe variant is not slower.
    assert!(unsafe_core.cycles <= safe_core.cycles);
}
