/root/repo/target/debug/deps/differential_fuzz-6b36c3f0c01e598c.d: tests/differential_fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential_fuzz-6b36c3f0c01e598c.rmeta: tests/differential_fuzz.rs Cargo.toml

tests/differential_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
