/root/repo/target/debug/deps/riscv-c0e60899944fcf3d.d: crates/riscv/src/lib.rs crates/riscv/src/asm.rs crates/riscv/src/decode.rs crates/riscv/src/encode.rs crates/riscv/src/iss.rs

/root/repo/target/debug/deps/riscv-c0e60899944fcf3d: crates/riscv/src/lib.rs crates/riscv/src/asm.rs crates/riscv/src/decode.rs crates/riscv/src/encode.rs crates/riscv/src/iss.rs

crates/riscv/src/lib.rs:
crates/riscv/src/asm.rs:
crates/riscv/src/decode.rs:
crates/riscv/src/encode.rs:
crates/riscv/src/iss.rs:
