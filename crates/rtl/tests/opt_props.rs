//! Property tests for the oracle-gated netlist optimizer (DESIGN §16).
//!
//! Random *raw* netlists — not ones produced by the LIL builder, so shapes
//! the pipeline never emits are covered too — are pushed through each
//! individual optimization pass and through the full `-O2` fixpoint
//! pipeline. Every result must
//!
//! 1. still pass `lint_module` (structurally well-formed, width-correct,
//!    acyclic), and
//! 2. stay lockstep-equal to the input module over 32 cycles of
//!    differential simulation, including the four-state cycles where
//!    `verify_equivalent` knocks input bits to X.

use bits::ApInt;
use proptest::prelude::*;
use rtl::netlist::RomData;
use rtl::{
    lint_module, optimize, run_pass, verify_equivalent, CombOp, Driver, EmitOptions, Module,
    NetId, OptLevel, Pass, PortDir,
};

/// SplitMix64 — the same generator family the optimizer's own
/// `verify_equivalent` stimulus uses, kept local so the netlist shape for a
/// given seed never changes under the test harness.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn apint(&mut self, width: u32) -> ApInt {
        let mut v = ApInt::zero(width);
        for bit in 0..width {
            if self.next() & 1 == 1 {
                v.set_bit(bit, true);
            }
        }
        v
    }
}

/// Nets available as operands, tracked as `(id, width)`.
struct Pool {
    nets: Vec<(NetId, u32)>,
}

impl Pool {
    /// Any existing net.
    fn any(&self, g: &mut Gen) -> (NetId, u32) {
        self.nets[g.below(self.nets.len() as u64) as usize]
    }

    /// A net of exactly `width` bits; materializes a constant when no
    /// existing net matches so every width request succeeds.
    fn of_width(&mut self, m: &mut Module, g: &mut Gen, width: u32) -> NetId {
        let matching: Vec<NetId> = self
            .nets
            .iter()
            .filter(|(_, w)| *w == width)
            .map(|(id, _)| *id)
            .collect();
        if !matching.is_empty() {
            return matching[g.below(matching.len() as u64) as usize];
        }
        let c = g.apint(width);
        let id = m.add_net(Driver::Const(c), width, "");
        self.nets.push((id, width));
        id
    }

    fn push(&mut self, id: NetId, width: u32) {
        self.nets.push((id, width));
    }
}

/// Builds a random module that `Module::validate` and `lint_module` both
/// accept by construction: combinational drivers only reference
/// earlier-index nets, every width rule from `lint_module` is respected,
/// and each output port is driven exactly once.
fn random_module(seed: u64) -> Module {
    let mut g = Gen::new(seed);
    let mut m = Module::new("prop");
    let mut pool = Pool { nets: Vec::new() };

    let n_inputs = 1 + g.below(3) as usize;
    for i in 0..n_inputs {
        let w = 1 + g.below(24) as u32;
        let port = m.add_port(&format!("in{i}"), PortDir::Input, w);
        let id = m.add_net(Driver::Input { port }, w, &format!("in{i}"));
        pool.push(id, w);
    }
    for i in 0..2 {
        let w = 1 + g.below(24) as u32;
        let c = g.apint(w);
        let id = m.add_net(Driver::Const(c), w, &format!("c{i}"));
        pool.push(id, w);
    }
    let rom_w = 2 + g.below(10) as u32;
    let rom_len = 2 + g.below(7) as usize;
    m.roms.push(RomData {
        name: "rom0".into(),
        width: rom_w,
        contents: (0..rom_len).map(|_| g.apint(rom_w)).collect(),
    });

    let body = 8 + g.below(28);
    for k in 0..body {
        let (id, w) = match g.below(16) {
            0..=3 => {
                // Same-width binary arithmetic / logic.
                let ops = [
                    CombOp::Add,
                    CombOp::Sub,
                    CombOp::Mul,
                    CombOp::And,
                    CombOp::Or,
                    CombOp::Xor,
                    CombOp::DivU,
                    CombOp::RemU,
                    CombOp::DivS,
                    CombOp::RemS,
                ];
                let op = ops[g.below(ops.len() as u64) as usize];
                let (a, w) = pool.any(&mut g);
                let b = pool.of_width(&mut m, &mut g, w);
                let id = m.add_net(
                    Driver::Comb {
                        op,
                        args: vec![a, b],
                        lo: 0,
                    },
                    w,
                    &format!("n{k}"),
                );
                (id, w)
            }
            4 => {
                let (a, w) = pool.any(&mut g);
                let id = m.add_net(
                    Driver::Comb {
                        op: CombOp::Not,
                        args: vec![a],
                        lo: 0,
                    },
                    w,
                    &format!("n{k}"),
                );
                (id, w)
            }
            5 => {
                // Shift: amount may be any width.
                let ops = [CombOp::Shl, CombOp::ShrU, CombOp::ShrS];
                let op = ops[g.below(3) as usize];
                let (a, w) = pool.any(&mut g);
                let (amt, _) = pool.any(&mut g);
                let id = m.add_net(
                    Driver::Comb {
                        op,
                        args: vec![a, amt],
                        lo: 0,
                    },
                    w,
                    &format!("n{k}"),
                );
                (id, w)
            }
            6 => {
                // Comparison: 1-bit result.
                let ops = [
                    CombOp::Eq,
                    CombOp::Ne,
                    CombOp::Ult,
                    CombOp::Ule,
                    CombOp::Slt,
                    CombOp::Sle,
                ];
                let op = ops[g.below(ops.len() as u64) as usize];
                let (a, w) = pool.any(&mut g);
                let b = pool.of_width(&mut m, &mut g, w);
                let id = m.add_net(
                    Driver::Comb {
                        op,
                        args: vec![a, b],
                        lo: 0,
                    },
                    1,
                    &format!("n{k}"),
                );
                (id, 1)
            }
            7 => {
                let sel = pool.of_width(&mut m, &mut g, 1);
                let (t, w) = pool.any(&mut g);
                let e = pool.of_width(&mut m, &mut g, w);
                let id = m.add_net(
                    Driver::Comb {
                        op: CombOp::Mux,
                        args: vec![sel, t, e],
                        lo: 0,
                    },
                    w,
                    &format!("n{k}"),
                );
                (id, w)
            }
            8 => {
                let (hi, wh) = pool.any(&mut g);
                let (lo_net, wl) = pool.any(&mut g);
                let w = wh + wl;
                let id = m.add_net(
                    Driver::Comb {
                        op: CombOp::Concat,
                        args: vec![hi, lo_net],
                        lo: 0,
                    },
                    w,
                    &format!("n{k}"),
                );
                (id, w)
            }
            9 => {
                // Extract: lo + width <= source width.
                let (a, w) = pool.any(&mut g);
                let tw = 1 + g.below(u64::from(w)) as u32;
                let lo = g.below(u64::from(w - tw + 1)) as u32;
                let id = m.add_net(
                    Driver::Comb {
                        op: CombOp::Extract,
                        args: vec![a],
                        lo,
                    },
                    tw,
                    &format!("n{k}"),
                );
                (id, tw)
            }
            10 => {
                // ExtractDyn: result width <= base width.
                let (a, w) = pool.any(&mut g);
                let tw = 1 + g.below(u64::from(w)) as u32;
                let (off, _) = pool.any(&mut g);
                let id = m.add_net(
                    Driver::Comb {
                        op: CombOp::ExtractDyn,
                        args: vec![a, off],
                        lo: 0,
                    },
                    tw,
                    &format!("n{k}"),
                );
                (id, tw)
            }
            11 => {
                let op = if g.next() & 1 == 0 {
                    CombOp::ZExt
                } else {
                    CombOp::SExt
                };
                let (a, w) = pool.any(&mut g);
                let tw = w + g.below(9) as u32;
                let id = m.add_net(
                    Driver::Comb {
                        op,
                        args: vec![a],
                        lo: 0,
                    },
                    tw,
                    &format!("n{k}"),
                );
                (id, tw)
            }
            12 => {
                let (a, w) = pool.any(&mut g);
                let tw = 1 + g.below(u64::from(w)) as u32;
                let id = m.add_net(
                    Driver::Comb {
                        op: CombOp::Trunc,
                        args: vec![a],
                        lo: 0,
                    },
                    tw,
                    &format!("n{k}"),
                );
                (id, tw)
            }
            13 => {
                // Replicate: keep the result narrow enough to stay cheap.
                let (a, w) = pool.any(&mut g);
                let reps = 1 + g.below((48 / u64::from(w)).max(1)) as u32;
                let id = m.add_net(
                    Driver::Comb {
                        op: CombOp::Replicate,
                        args: vec![a],
                        lo: reps,
                    },
                    reps * w,
                    &format!("n{k}"),
                );
                (id, reps * w)
            }
            14 => {
                let (next, w) = pool.any(&mut g);
                let enable = if g.next() & 1 == 0 {
                    Some(pool.of_width(&mut m, &mut g, 1))
                } else {
                    None
                };
                let init = g.apint(w);
                let id = m.add_net(Driver::Reg { next, enable, init }, w, &format!("n{k}"));
                (id, w)
            }
            _ => {
                let (index, _) = pool.any(&mut g);
                let id = m.add_net(Driver::Rom { rom: 0, index }, rom_w, &format!("n{k}"));
                (id, rom_w)
            }
        };
        pool.push(id, w);
    }

    let n_outputs = 1 + g.below(3) as usize;
    for i in 0..n_outputs {
        let (id, w) = pool.any(&mut g);
        let port = m.add_port(&format!("out{i}"), PortDir::Output, w);
        m.connect_output(port, id);
    }

    m.validate()
        .expect("random_module produced an invalid netlist");
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The generator itself only emits modules the lint accepts — the
    /// properties below compare post-pass lint against this baseline, so
    /// it must hold unconditionally.
    #[test]
    fn generated_modules_are_lint_clean(seed: u64) {
        let m = random_module(seed);
        let lint = lint_module(&m);
        prop_assert!(lint.is_ok(), "seed {seed}: generator emitted lint issues: {:?}", lint.err());
    }

    /// Every individual pass, run alone on a raw netlist, preserves
    /// lint-cleanliness and 32-cycle lockstep behavior (two-valued
    /// equality plus four-state refinement on the X cycles).
    #[test]
    fn each_pass_is_lint_clean_and_lockstep_equal(seed: u64) {
        let m = random_module(seed);
        let opts = EmitOptions::default();
        for pass in Pass::ALL {
            let (out, rewrites) = match run_pass(&m, pass, &opts) {
                Ok(r) => r,
                Err(e) => return Err(TestCaseError::fail(
                    format!("seed {seed}: pass {} broke validate(): {e}", pass.name()))),
            };
            let lint = lint_module(&out);
            prop_assert!(
                lint.is_ok(),
                "seed {seed}: pass {} ({rewrites} rewrites) left lint issues: {:?}",
                pass.name(),
                lint.err()
            );
            if let Err(e) = verify_equivalent(&m, &out, &opts, 32) {
                return Err(TestCaseError::fail(
                    format!("seed {seed}: pass {} diverged: {e}", pass.name())));
            }
        }
    }

    /// The full -O2 fixpoint pipeline — all passes iterated to
    /// convergence — satisfies the same contract end to end.
    #[test]
    fn full_o2_is_lint_clean_and_lockstep_equal(seed: u64) {
        let m = random_module(seed);
        let opts = EmitOptions::default();
        let (out, report) = match optimize(&m, OptLevel::O2, &opts) {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!("seed {seed}: -O2 failed: {e}"))),
        };
        let lint = lint_module(&out);
        prop_assert!(lint.is_ok(), "seed {seed}: -O2 output has lint issues: {:?}", lint.err());
        prop_assert_eq!(report.nets_after, out.nets.len());
        if let Err(e) = verify_equivalent(&m, &out, &opts, 32) {
            return Err(TestCaseError::fail(format!("seed {seed}: -O2 diverged: {e}")));
        }
    }
}
