//! Parallel compile-matrix integration tests: the shared frontend cache
//! must not change any observable output, and the worker count must not
//! change anything at all — Verilog, YAML configs, diagnostics, and
//! stripped traces are byte-identical for every `jobs` value.

use longnail::driver::{builtin_datasheet, eval_datasheets};
use longnail::{isax_lib, FrontendCache, Longnail};

/// A small but representative slice of the Table 3 matrix: a plain
/// instruction, an always-block ISAX with custom registers, and the
/// long-schedule sqrt.
fn small_isaxes() -> Vec<(String, String, String)> {
    isax_lib::all_isaxes()
        .into_iter()
        .filter(|(name, _, _)| matches!(name.as_str(), "dotprod" | "zol" | "sqrt_tightly"))
        .collect()
}

#[test]
fn cached_compile_matches_uncached_compile() {
    let ln = Longnail::new();
    let cache = FrontendCache::new();
    let (unit, src) = isax_lib::isax_source("dotprod").unwrap();
    for ds in eval_datasheets() {
        let cold = ln.compile(&src, &unit, &ds).unwrap();
        let warm = ln.compile_cached(&src, &unit, &ds, &cache).unwrap();
        assert_eq!(
            cold.trace.stripped(),
            warm.trace.stripped(),
            "trace diverges on {}",
            ds.core
        );
        let cold_sv: Vec<&str> = cold.graphs.iter().map(|g| g.verilog.as_str()).collect();
        let warm_sv: Vec<&str> = warm.graphs.iter().map(|g| g.verilog.as_str()).collect();
        assert_eq!(cold_sv, warm_sv);
        assert_eq!(cold.config.to_yaml(), warm.config.to_yaml());
        assert_eq!(cold.diagnostics.events, warm.diagnostics.events);
    }
    // One source, four cores: one miss, three hits.
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), 3);
    assert_eq!(cache.len(), 1);
}

#[test]
fn matrix_is_deterministic_across_worker_counts() {
    let ln = Longnail::new();
    let isaxes = small_isaxes();
    let cores: Vec<_> = ["ORCA", "Piccolo"]
        .iter()
        .map(|c| builtin_datasheet(c).unwrap())
        .collect();
    let serial = ln.compile_matrix(&isaxes, &cores, 1);
    let parallel = ln.compile_matrix(&isaxes, &cores, 4);
    assert_eq!(serial.jobs, 1);
    assert_eq!(parallel.jobs, 4);
    assert_eq!(serial.entries.len(), isaxes.len() * cores.len());
    assert_eq!(parallel.entries.len(), serial.entries.len());
    // Cache totals are deterministic: one miss per ISAX, the rest hits.
    for m in [&serial, &parallel] {
        assert_eq!(m.cache_misses, isaxes.len() as u64);
        assert_eq!(
            m.cache_hits,
            (isaxes.len() * (cores.len() - 1)) as u64,
            "jobs = {}",
            m.jobs
        );
    }
    for (a, b) in serial.entries.iter().zip(&parallel.entries) {
        // Same cell in the same position.
        assert_eq!((a.isax.as_str(), a.core.as_str()), (b.isax.as_str(), b.core.as_str()));
        let (ca, cb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        assert_eq!(
            ca.trace.stripped().to_jsonl(),
            cb.trace.stripped().to_jsonl(),
            "stripped trace diverges for {}×{}",
            a.isax,
            a.core
        );
        for (ga, gb) in ca.graphs.iter().zip(&cb.graphs) {
            assert_eq!(ga.verilog, gb.verilog, "{}×{}/{}", a.isax, a.core, ga.name);
        }
        assert_eq!(ca.config.to_yaml(), cb.config.to_yaml());
        assert_eq!(ca.diagnostics.events, cb.diagnostics.events);
    }
}

#[test]
fn frontend_failures_are_cached_and_reported_per_cell() {
    let ln = Longnail::new();
    let isaxes = vec![(
        "broken".to_string(),
        "broken".to_string(),
        "InstructionSet broken { this is not CoreDSL }".to_string(),
    )];
    let cores = eval_datasheets();
    let matrix = ln.compile_matrix(&isaxes, &cores, 2);
    assert_eq!(matrix.entries.len(), cores.len());
    for e in &matrix.entries {
        let err = e.outcome.as_ref().unwrap_err();
        assert_eq!(err.stage, "frontend", "{}×{}", e.isax, e.core);
    }
    // The frontend ran once; every other cell reused the cached failure.
    assert_eq!(matrix.cache_misses, 1);
    assert_eq!(matrix.cache_hits, cores.len() as u64 - 1);
    assert_eq!(matrix.compiled().count(), 0);
}

#[test]
fn matrix_lookup_finds_cells_by_name() {
    let ln = Longnail::new();
    let isaxes = small_isaxes();
    let cores: Vec<_> = ["PicoRV32"]
        .iter()
        .map(|c| builtin_datasheet(c).unwrap())
        .collect();
    let matrix = ln.compile_matrix(&isaxes, &cores, 2);
    let cell = matrix.entry("zol", "PicoRV32").expect("cell exists");
    let compiled = cell.outcome.as_ref().unwrap();
    assert_eq!(compiled.core, "PicoRV32");
    assert!(matrix.entry("zol", "ORCA").is_none());
}
