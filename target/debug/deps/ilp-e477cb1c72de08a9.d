/root/repo/target/debug/deps/ilp-e477cb1c72de08a9.d: crates/ilp/src/lib.rs crates/ilp/src/branch_bound.rs crates/ilp/src/budget.rs crates/ilp/src/model.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs Cargo.toml

/root/repo/target/debug/deps/libilp-e477cb1c72de08a9.rmeta: crates/ilp/src/lib.rs crates/ilp/src/branch_bound.rs crates/ilp/src/budget.rs crates/ilp/src/model.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs Cargo.toml

crates/ilp/src/lib.rs:
crates/ilp/src/branch_bound.rs:
crates/ilp/src/budget.rs:
crates/ilp/src/model.rs:
crates/ilp/src/rational.rs:
crates/ilp/src/simplex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
