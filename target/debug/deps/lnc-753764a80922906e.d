/root/repo/target/debug/deps/lnc-753764a80922906e.d: crates/longnail/src/bin/lnc.rs

/root/repo/target/debug/deps/lnc-753764a80922906e: crates/longnail/src/bin/lnc.rs

crates/longnail/src/bin/lnc.rs:
