/root/repo/target/debug/deps/props-5af1bd4f6fd36859.d: crates/ilp/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-5af1bd4f6fd36859.rmeta: crates/ilp/tests/props.rs Cargo.toml

crates/ilp/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
