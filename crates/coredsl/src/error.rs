//! Source locations and diagnostics.

use std::fmt;

/// A half-open byte range in a source file, with line/column of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// 1-based line of the span start.
    pub line: u32,
    /// 1-based column of the span start.
    pub col: u32,
}

impl Span {
    /// Creates a span at the given 1-based line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Stable machine-readable error codes.
///
/// Codes are part of the tool's output contract: scripts and test fixtures
/// match on them, so a code, once assigned, never changes meaning. Blocks:
///
/// | range    | stage            |
/// |----------|------------------|
/// | `LN0000` | uncoded (legacy) |
/// | `LN00xx` | lexer            |
/// | `LN01xx` | parser           |
/// | `LN02xx` | elaboration      |
/// | `LN03xx` | semantic analysis|
pub mod codes {
    /// Fallback for diagnostics created without an explicit code.
    pub const UNCODED: &str = "LN0000";

    // Lexer.
    pub const LEX_UNTERMINATED: &str = "LN0001";
    pub const LEX_BAD_LITERAL: &str = "LN0002";
    pub const LEX_BAD_CHAR: &str = "LN0003";

    // Parser.
    pub const PARSE_EXPECTED: &str = "LN0101";
    pub const PARSE_NESTING: &str = "LN0102";
    pub const PARSE_BAD_ENCODING: &str = "LN0103";
    pub const PARSE_BAD_TYPE: &str = "LN0104";
    pub const PARSE_TOO_MANY_ERRORS: &str = "LN0105";

    // Elaboration.
    pub const ELAB_DUPLICATE_DEF: &str = "LN0201";
    pub const ELAB_UNKNOWN_IMPORT: &str = "LN0202";
    pub const ELAB_EXTENDS_CYCLE: &str = "LN0203";
    pub const ELAB_NO_UNIT: &str = "LN0204";

    // Semantic analysis.
    pub const SEMA_UNKNOWN_NAME: &str = "LN0301";
    pub const SEMA_DUPLICATE: &str = "LN0302";
    pub const SEMA_TYPE_MISMATCH: &str = "LN0303";
    pub const SEMA_LOSSY_ASSIGN: &str = "LN0304";
    pub const SEMA_BAD_WIDTH: &str = "LN0305";
    pub const SEMA_BAD_RANGE: &str = "LN0306";
    pub const SEMA_NOT_CONST: &str = "LN0307";
    pub const SEMA_PURITY: &str = "LN0308";
    pub const SEMA_BAD_CALL: &str = "LN0309";
    pub const SEMA_BAD_LVALUE: &str = "LN0310";
    pub const SEMA_BAD_RETURN: &str = "LN0311";
}

/// A frontend error: lexing, parsing, type checking, or elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Location the error refers to.
    pub span: Span,
    /// Human-readable description (lowercase, no trailing punctuation).
    pub message: String,
    /// Name of the source unit (import string or synthetic name).
    pub source_name: String,
    /// Stable machine-readable code (`LN0xxx`); see [`codes`].
    pub code: &'static str,
    /// Optional suggested fix, rendered as a `help:` suffix.
    pub fixit: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic without a source-unit name (filled in later by
    /// the driver).
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            span,
            message: message.into(),
            source_name: String::new(),
            code: codes::UNCODED,
            fixit: None,
        }
    }

    /// Creates a diagnostic with a stable machine-readable code.
    pub fn coded(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            ..Diagnostic::new(span, message)
        }
    }

    /// Attaches a suggested fix.
    pub fn with_fixit(mut self, fixit: impl Into<String>) -> Self {
        self.fixit = Some(fixit.into());
        self
    }

    /// Attaches the source-unit name.
    pub fn in_source(mut self, name: &str) -> Self {
        if self.source_name.is_empty() {
            self.source_name = name.to_string();
        }
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.source_name.is_empty() {
            write!(f, "{}: {}", self.span, self.message)?;
        } else {
            write!(f, "{}:{}: {}", self.source_name, self.span, self.message)?;
        }
        write!(f, " [{}]", self.code)?;
        if let Some(fixit) = &self.fixit {
            write!(f, "; help: {fixit}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostic {}

/// Frontend result alias.
pub type Result<T> = std::result::Result<T, Diagnostic>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coded_diagnostics_render_code_and_fixit() {
        let d = Diagnostic::coded(codes::PARSE_EXPECTED, Span::new(2, 5), "expected `;`")
            .with_fixit("insert `;` after the statement")
            .in_source("demo");
        let s = d.to_string();
        assert!(s.contains("demo:2:5: expected `;`"), "{s}");
        assert!(s.contains("[LN0101]"), "{s}");
        assert!(s.contains("help: insert `;`"), "{s}");
    }

    #[test]
    fn uncoded_diagnostics_keep_the_fallback_code() {
        let d = Diagnostic::new(Span::new(1, 1), "boom");
        assert_eq!(d.code, codes::UNCODED);
        assert!(d.to_string().contains("[LN0000]"));
    }
}
