/root/repo/target/release/deps/ilp-6fe417d106ec1cf8.d: crates/ilp/src/lib.rs crates/ilp/src/branch_bound.rs crates/ilp/src/budget.rs crates/ilp/src/model.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs

/root/repo/target/release/deps/libilp-6fe417d106ec1cf8.rlib: crates/ilp/src/lib.rs crates/ilp/src/branch_bound.rs crates/ilp/src/budget.rs crates/ilp/src/model.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs

/root/repo/target/release/deps/libilp-6fe417d106ec1cf8.rmeta: crates/ilp/src/lib.rs crates/ilp/src/branch_bound.rs crates/ilp/src/budget.rs crates/ilp/src/model.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs

crates/ilp/src/lib.rs:
crates/ilp/src/branch_bound.rs:
crates/ilp/src/budget.rs:
crates/ilp/src/model.rs:
crates/ilp/src/rational.rs:
crates/ilp/src/simplex.rs:
