//! Strategies for `Option` values.

use crate::{Strategy, TestRng};

/// Strategy producing `Some` with a fixed probability.
pub struct WeightedOption<S> {
    probability: f64,
    inner: S,
}

impl<S: Strategy> Strategy for WeightedOption<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.unit_f64() < self.probability {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// Generates `Some(value)` with probability `probability`, `None`
/// otherwise.
pub fn weighted<S: Strategy>(probability: f64, inner: S) -> WeightedOption<S> {
    WeightedOption { probability, inner }
}
