//! Elaboration: import resolution, `InstructionSet` inheritance, `Core`
//! composition, and parameter assignment (paper §2.2).
//!
//! Elaboration flattens the modular description into a single [`SemaInput`]
//! — base-ISA state first, then each extension in inheritance order — and
//! hands it to [`crate::sema`] for type checking.

use crate::ast::{CoreDef, Description, IsaDef, Stmt};
use crate::error::{Diagnostic, Result, Span};
use crate::parser::parse;
use crate::prelude_src;
use crate::sema::{analyze, SemaInput};
use crate::tast::TypedModule;
use std::collections::{HashMap, HashSet};

/// The CoreDSL frontend: owns the import namespace and drives
/// parse → elaborate → analyze.
///
/// # Examples
///
/// ```
/// use coredsl::Frontend;
///
/// let src = r#"
/// import "RV32I.core_desc";
/// InstructionSet nopext extends RV32I {
///     instructions {
///         custom_nop {
///             encoding: 25'd0 :: 7'b0001011;
///             behavior: { }
///         }
///     }
/// }
/// "#;
/// let module = Frontend::new().compile_str(src, "nopext").unwrap();
/// // The RV32I base state (X, PC, MEM) is visible after elaboration:
/// assert!(module.register("X").is_some());
/// assert!(module.register("PC").is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Frontend {
    sources: HashMap<String, String>,
}

impl Default for Frontend {
    fn default() -> Self {
        Self::new()
    }
}

impl Frontend {
    /// Creates a frontend with the built-in `RV32I.core_desc` prelude
    /// registered.
    pub fn new() -> Self {
        let mut sources = HashMap::new();
        sources.insert(
            prelude_src::RV32I_IMPORT.to_string(),
            prelude_src::RV32I.to_string(),
        );
        Frontend { sources }
    }

    /// Registers an importable source under `name` (the string used in
    /// `import "<name>";`). Replaces any previous source of that name.
    pub fn add_source(&mut self, name: &str, text: &str) -> &mut Self {
        self.sources.insert(name.to_string(), text.to_string());
        self
    }

    /// Compiles a root description: parses `src` (and, transitively, its
    /// imports), then elaborates and type-checks the requested unit.
    ///
    /// `unit` names the `InstructionSet` or `Core` to elaborate. As a
    /// convenience, if `unit` does not match any definition but the root
    /// source defines exactly one instruction set or core, that definition
    /// is elaborated (so callers can pass a display name).
    ///
    /// # Errors
    ///
    /// Returns the first parse, elaboration, or type error.
    pub fn compile_str(&self, src: &str, unit: &str) -> Result<TypedModule> {
        let mut world = World::default();
        world.load_description(src, "<root>", self)?;
        let root_sets: Vec<String> = world.root_units.clone();
        let target = if world.isa_defs.contains_key(unit) || world.core_defs.contains_key(unit) {
            unit.to_string()
        } else if root_sets.len() == 1 {
            root_sets[0].clone()
        } else {
            return Err(Diagnostic::new(
                Span::default(),
                format!(
                    "no InstructionSet or Core named `{unit}` (root defines: {})",
                    root_sets.join(", ")
                ),
            ));
        };
        let mut input = world.flatten(&target)?;
        // Give the module the caller-facing name.
        if !unit.is_empty() {
            input.name = unit.to_string();
        }
        analyze(input)
    }

    /// Compiles a registered importable source by name.
    ///
    /// # Errors
    ///
    /// Returns an error if `import_name` is not registered, or on any
    /// parse/elaboration/type error.
    pub fn compile_import(&self, import_name: &str, unit: &str) -> Result<TypedModule> {
        let src = self.sources.get(import_name).ok_or_else(|| {
            Diagnostic::new(
                Span::default(),
                format!("no source registered for import {import_name:?}"),
            )
        })?;
        self.compile_str(src, unit)
    }
}

/// The set of all parsed definitions reachable from the root file.
#[derive(Default)]
struct World {
    isa_defs: HashMap<String, IsaDef>,
    core_defs: HashMap<String, CoreDef>,
    loaded: HashSet<String>,
    /// Units defined in the *root* file, in order.
    root_units: Vec<String>,
}

impl World {
    fn load_description(&mut self, src: &str, name: &str, fe: &Frontend) -> Result<()> {
        let desc: Description = parse(src).map_err(|d| d.in_source(name))?;
        for import in &desc.imports {
            if !self.loaded.insert(import.clone()) {
                continue; // already loaded (diamond imports are fine)
            }
            let text = fe.sources.get(import).ok_or_else(|| {
                Diagnostic::new(
                    Span::default(),
                    format!("cannot resolve import {import:?}"),
                )
                .in_source(name)
            })?;
            // Clone to satisfy the borrow checker; sources are small.
            let text = text.clone();
            self.load_description(&text, import, fe)?;
        }
        let is_root = name == "<root>";
        for isa in desc.instruction_sets {
            if is_root {
                self.root_units.push(isa.name.clone());
            }
            if self.isa_defs.insert(isa.name.clone(), isa.clone()).is_some() {
                return Err(Diagnostic::new(
                    isa.span,
                    format!("InstructionSet `{}` defined more than once", isa.name),
                )
                .in_source(name));
            }
        }
        for core in desc.cores {
            if is_root {
                self.root_units.push(core.name.clone());
            }
            if self
                .core_defs
                .insert(core.name.clone(), core.clone())
                .is_some()
            {
                return Err(Diagnostic::new(
                    core.span,
                    format!("Core `{}` defined more than once", core.name),
                )
                .in_source(name));
            }
        }
        Ok(())
    }

    /// Produces the inheritance chain of an instruction set, base first.
    fn chain(&self, name: &str) -> Result<Vec<&IsaDef>> {
        let mut chain = Vec::new();
        let mut seen = HashSet::new();
        let mut cur = Some(name.to_string());
        while let Some(n) = cur {
            if !seen.insert(n.clone()) {
                return Err(Diagnostic::new(
                    Span::default(),
                    format!("inheritance cycle involving `{n}`"),
                ));
            }
            let def = self.isa_defs.get(&n).ok_or_else(|| {
                Diagnostic::new(
                    Span::default(),
                    format!("unknown InstructionSet `{n}`"),
                )
            })?;
            chain.push(def);
            cur = def.extends.clone();
        }
        chain.reverse();
        Ok(chain)
    }

    /// Flattens the named unit into a [`SemaInput`].
    fn flatten(&self, name: &str) -> Result<SemaInput> {
        let mut input = SemaInput {
            name: name.to_string(),
            ..SemaInput::default()
        };
        let mut merged: Vec<&IsaDef> = Vec::new();
        let mut seen = HashSet::new();
        if let Some(core) = self.core_defs.get(name) {
            for provided in &core.provides {
                for def in self.chain(provided)? {
                    if seen.insert(def.name.clone()) {
                        merged.push(def);
                    }
                }
            }
            // The core's own body contributes parameter assignments and
            // possibly additional state/instructions.
            for decl in &core.body.state {
                if decl.storage == crate::ast::StorageClass::Param {
                    if let Some(crate::ast::Initializer::Single(e)) = &decl.init {
                        input
                            .param_overrides
                            .push((decl.name.clone(), e.clone()));
                        continue;
                    }
                }
                input.state.push((decl.clone(), core.name.clone()));
            }
            self.merge_bodies(&merged, &mut input);
            input
                .instructions
                .extend(core.body.instructions.iter().cloned());
            input
                .always_blocks
                .extend(core.body.always_blocks.iter().cloned());
            input.functions.extend(core.body.functions.iter().cloned());
            // Core-body `param = value;` assignments (parsed as bare
            // assignments) are also accepted as overrides:
            self.collect_core_param_assignments(core, &mut input);
        } else {
            for def in self.chain(name)? {
                if seen.insert(def.name.clone()) {
                    merged.push(def);
                }
            }
            self.merge_bodies(&merged, &mut input);
        }
        Ok(input)
    }

    fn merge_bodies(&self, defs: &[&IsaDef], input: &mut SemaInput) {
        for def in defs {
            for decl in &def.body.state {
                input.state.push((decl.clone(), def.name.clone()));
            }
            input
                .instructions
                .extend(def.body.instructions.iter().cloned());
            input
                .always_blocks
                .extend(def.body.always_blocks.iter().cloned());
            input.functions.extend(def.body.functions.iter().cloned());
        }
    }

    fn collect_core_param_assignments(&self, _core: &CoreDef, _input: &mut SemaInput) {
        // Parameter re-assignment inside core bodies is expressed as state
        // declarations without storage class, handled in `flatten`. Bare
        // assignment statements cannot appear at section level in our
        // grammar, so nothing further to collect.
        let _ = Stmt::Block(crate::ast::Block::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tast::BuiltinReg;

    const DOTP: &str = r#"
import "RV32I.core_desc";
InstructionSet X_DOTP extends RV32I {
  instructions {
    dotp {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        signed<32> res = 0;
        for (int i = 0; i < 32; i += 8) {
          signed<16> prod = (signed) X[rs1][i+7:i] * (signed) X[rs2][i+7:i];
          res += prod;
        }
        X[rd] = (unsigned) res;
      }
    }
  }
}
"#;

    #[test]
    fn compiles_figure1_dotprod() {
        let module = Frontend::new().compile_str(DOTP, "X_DOTP").unwrap();
        assert_eq!(module.name, "X_DOTP");
        let (_, x) = module.register("X").unwrap();
        assert_eq!(x.builtin, Some(BuiltinReg::Gpr));
        assert_eq!(x.elems, 32);
        assert_eq!(module.instructions.len(), 1);
        let dotp = &module.instructions[0];
        assert_eq!(dotp.encoding.pattern_string().len(), 32);
        assert_eq!(
            dotp.encoding.pattern_string(),
            "0000000----------000-----0001011"
        );
        // rd, rs1, rs2 fields present:
        let names: Vec<_> = dotp.encoding.fields.iter().map(|f| &f.name).collect();
        assert!(names.contains(&&"rs1".to_string()));
        assert!(names.contains(&&"rd".to_string()));
    }

    #[test]
    fn xlen_parameter_is_resolved() {
        let module = Frontend::new()
            .compile_str("import \"RV32I.core_desc\";\nInstructionSet e extends RV32I { }", "e")
            .unwrap();
        let (name, _, value) = &module.params[0];
        assert_eq!(name, "XLEN");
        assert_eq!(value.to_u64(), 32);
    }

    #[test]
    fn unknown_import_is_an_error() {
        let err = Frontend::new()
            .compile_str("import \"nope.core_desc\";\nInstructionSet e { }", "e")
            .unwrap_err();
        assert!(err.message.contains("cannot resolve import"));
    }

    #[test]
    fn unknown_base_set_is_an_error() {
        let err = Frontend::new()
            .compile_str("InstructionSet e extends NOPE { }", "e")
            .unwrap_err();
        assert!(err.message.contains("unknown InstructionSet"));
    }

    #[test]
    fn inheritance_cycles_are_detected() {
        let src = "InstructionSet a extends b { } InstructionSet b extends a { }";
        let err = Frontend::new().compile_str(src, "a").unwrap_err();
        assert!(err.message.contains("cycle"));
    }

    #[test]
    fn lossy_assignment_is_rejected() {
        let src = r#"
import "RV32I.core_desc";
InstructionSet bad extends RV32I {
  instructions {
    i {
      encoding: 12'd0 :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<4> u4 = 0;
        unsigned<5> u5 = 0;
        u4 = u5;
      }
    }
  }
}
"#;
        let err = Frontend::new().compile_str(src, "bad").unwrap_err();
        assert!(err.message.contains("lose information"), "{err}");
    }

    #[test]
    fn sign_discarding_assignment_is_rejected() {
        let src = r#"
InstructionSet bad {
  instructions {
    i {
      encoding: 12'd0 :: 5'd0 :: 3'd0 :: 5'd0 :: 7'b0001011;
      behavior: {
        signed<4> s4 = 0;
        unsigned<4> u4 = 0;
        u4 = s4;
      }
    }
  }
}
"#;
        let err = Frontend::new().compile_str(src, "bad").unwrap_err();
        assert!(err.message.contains("lose information"), "{err}");
    }

    #[test]
    fn explicit_cast_permits_narrowing() {
        let src = r#"
InstructionSet ok {
  instructions {
    i {
      encoding: 12'd0 :: 5'd0 :: 3'd0 :: 5'd0 :: 7'b0001011;
      behavior: {
        unsigned<5> u5 = 17;
        signed<4> s4 = 3;
        unsigned<4> u4 = (unsigned<4>)(u5 + s4);
      }
    }
  }
}
"#;
        assert!(Frontend::new().compile_str(src, "ok").is_ok());
    }

    #[test]
    fn core_definition_composes_sets() {
        let src = r#"
import "RV32I.core_desc";
InstructionSet ext1 extends RV32I {
  architectural_state { register unsigned<32> ACC; }
}
Core MyCore provides ext1 {
  architectural_state { unsigned int XLEN = 32; }
}
"#;
        let module = Frontend::new().compile_str(src, "MyCore").unwrap();
        assert!(module.register("ACC").is_some());
        assert!(module.register("X").is_some());
    }

    #[test]
    fn zol_figure3_compiles() {
        let src = r#"
import "RV32I.core_desc";
InstructionSet zol extends RV32I {
  architectural_state {
    register unsigned<32> START_PC, END_PC, COUNT;
  }
  instructions {
    setup_zol {
      encoding: uimmL[11:0] :: uimmS[4:0] :: 3'b101 :: 5'b00000 :: 7'b0001011;
      behavior: {
        START_PC = (unsigned<32>)(PC + 4);
        END_PC = (unsigned<32>)(PC + (uimmS :: 1'b0));
        COUNT = uimmL;
      }
    }
  }
  always {
    zol {
      if (COUNT != 0 && END_PC == PC) {
        PC = START_PC;
        --COUNT;
      }
    }
  }
}
"#;
        let module = Frontend::new().compile_str(src, "zol").unwrap();
        assert_eq!(module.always_blocks.len(), 1);
        let (_, count) = module.register("COUNT").unwrap();
        assert!(count.is_custom());
        assert_eq!(count.addr_width(), 0);
        let (_, x) = module.register("X").unwrap();
        assert!(!x.is_custom());
        assert_eq!(x.addr_width(), 5);
    }

    #[test]
    fn functions_must_be_pure() {
        let src = r#"
import "RV32I.core_desc";
InstructionSet bad extends RV32I {
  functions {
    unsigned<32> peek() { return PC; }
  }
}
"#;
        let err = Frontend::new().compile_str(src, "bad").unwrap_err();
        assert!(err.message.contains("architectural state"), "{err}");
    }

    #[test]
    fn mem_range_load_types_as_32bit() {
        let src = r#"
import "RV32I.core_desc";
InstructionSet lw extends RV32I {
  instructions {
    loadw {
      encoding: 12'd0 :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<32> addr = X[rs1];
        X[rd] = MEM[addr+3:addr];
      }
    }
  }
}
"#;
        let module = Frontend::new().compile_str(src, "lw").unwrap();
        assert_eq!(module.instructions.len(), 1);
    }
}
