//! The paper's §5.5 motivating workload: sum an integer array on VexRiscv,
//! first with plain RV32I, then with the autoinc + zol ISAX combination —
//! a loop with *no branch instruction at all*, steered by the
//! zero-overhead-loop `always`-block.
//!
//! ```sh
//! cargo run --example zol_array_sum
//! ```

use cores::{descriptor, ExtendedCore};
use longnail::driver::builtin_datasheet;
use longnail::isax_lib;
use longnail::Longnail;
use riscv::asm::Assembler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u32 = 24;
    let base = 0x1000u32;

    // Compile both ISAXes for VexRiscv and register their mnemonics.
    let mut ln = Longnail::new();
    let ds = builtin_datasheet("VexRiscv").expect("bundled core");
    let mut asm = Assembler::new();
    let mut compiled = Vec::new();
    for name in ["autoinc", "zol"] {
        let (unit, src) = isax_lib::isax_source(name).expect("bundled ISAX");
        let module = ln
            .frontend_mut()
            .compile_str(&src, &unit)
            .map_err(|e| e.to_string())?;
        isax_lib::register_mnemonics(&mut asm, &module)?;
        compiled.push(ln.compile(&src, &unit, &ds)?);
    }

    let baseline = format!(
        r#"
        li   a0, {base:#x}
        li   a1, {n}
        li   a2, 0
    loop:
        lw   t0, 0(a0)
        add  a2, a2, t0
        addi a0, a0, 4
        addi a1, a1, -1
        bnez a1, loop
        ebreak
    "#
    );
    let with_isax = format!(
        r#"
        li   a0, {base:#x}
        li   a2, 0
        setup_autoinc a0
        setup_zol {m}, 4
        load_inc t0        # auto-incrementing load...
        add  a2, a2, t0    # ...and accumulate; the zol block loops us
        ebreak
    "#,
        m = n - 1
    );

    let run = |program: &str| -> Result<(u64, u32), Box<dyn std::error::Error>> {
        let words = asm.assemble(program)?;
        let mut core = ExtendedCore::new(descriptor("VexRiscv").unwrap(), compiled.clone(), true);
        core.load_program(0, &words);
        for i in 0..n {
            core.cpu.write_word(base + 4 * i, i + 1);
        }
        core.run(1_000_000)?;
        Ok((core.cycles, core.cpu.read_reg(12)))
    };

    let (cycles_base, sum_base) = run(&baseline)?;
    let (cycles_isax, sum_isax) = run(&with_isax)?;
    assert_eq!(sum_base, n * (n + 1) / 2);
    assert_eq!(sum_isax, sum_base);

    println!("summing {n} array elements on VexRiscv:");
    println!("  baseline RV32I loop : {cycles_base:5} cycles (sum = {sum_base})");
    println!("  autoinc + zol       : {cycles_isax:5} cycles (sum = {sum_isax})");
    println!(
        "  speed-up            : {:.2}x",
        cycles_base as f64 / cycles_isax as f64
    );
    println!("\n(the ISAX loop body is two instructions and contains no branch)");
    Ok(())
}
