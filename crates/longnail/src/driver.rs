//! The Longnail HLS driver (paper §4).
//!
//! Compiles an ISAX through the full stack: frontend → LIL lowering →
//! core-aware scheduling (the *LongnailProblem*, solved with the Figure 7
//! ILP against the core's virtual datasheet) → execution-mode selection
//! (§4.3) → hardware construction and SystemVerilog emission (§4.5) →
//! SCAIE-V configuration file (§4.6).

use crate::diag::{DiagEvent, Diagnostics, Severity};
use crate::faults::{FaultKind, FaultPlan};
use coredsl::error::{codes, Diagnostic, Span};
use coredsl::tast::TypedModule;
use coredsl::Frontend;
use eda::TechLibrary;
use ir::lil::{Graph, GraphKind, LilModule, OpKind};
use ir::{lower_always, lower_instruction, lower_state, verify_graph};
use pool::Pool;
use rtl::build::{build_graph_module, BuiltModule};
use rtl::lint::{comb_depth, lint_module};
use rtl::verilog::emit_verilog;
use scaiev::config::{Functionality, IsaxConfig, RegisterRequest, ScheduleEntry};
use scaiev::datasheet::{Timing, VirtualDatasheet};
use scaiev::iface::SubInterfaceOp;
use scaiev::modes::{select_mode, ExecutionMode};
use sched::problem::{LongnailProblem, OperatorType, OperatorTypeId, Schedule};
use sched::resilient::DegradationReason;
use sched::{schedule_resilient, Budget, WorkKind};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, TryLockError};
use std::time::Instant;
use telemetry::{metrics, SpanId, Telemetry, Trace};

/// Abstract combinational-delay unit assigned to every "real" logic level.
///
/// The paper "currently assume[s] uniform delays and area for logic and
/// non-combinational sub-interface operations" (§4.2); a real technology
/// library is future work there, and the calibrated 22 nm model lives in
/// the `eda` crate here. Pure wiring (extracts, concats, extensions) costs
/// nothing.
pub const UNIFORM_DELAY: f64 = 1.0;

/// Default chaining budget: how many uniform logic levels fit in one
/// pipeline stage, used when the datasheet does not specify a target
/// clock. Chosen so that the 32-iteration digit-recurrence square root
/// spreads over ~10 stages, matching the paper's observation.
pub const DEFAULT_CHAIN_DEPTH: f64 = 6.0;

/// Physical duration of one uniform logic level (≈ a 32-bit adder in the
/// 22 nm model). When the datasheet carries a target clock period, the
/// per-stage chaining budget becomes `clock_ns / UNIT_NS`: fast cores chain
/// fewer levels per stage and therefore pipeline ISAXes more deeply.
pub const UNIT_NS: f64 = 0.22;

/// Error from any stage of the flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowError {
    /// Flow stage that failed (`frontend`, `lower`, `schedule`, ...).
    pub stage: &'static str,
    pub message: String,
    /// How bad the failure is: [`Severity::Error`] for rejected input,
    /// [`Severity::Fault`] for internal failures (contained panics,
    /// poisoned caches) — drives the exit code and matrix accounting.
    pub severity: Severity,
    /// The full coded diagnostic list behind a `frontend` failure. The
    /// frontend accumulates independent errors instead of stopping at
    /// the first one; `message` summarizes, this field carries them all.
    pub frontend_errors: Vec<Diagnostic>,
}

impl FlowError {
    /// An ordinary stage error (exit-code-1 territory).
    pub fn error(stage: &'static str, message: impl Into<String>) -> Self {
        FlowError {
            stage,
            message: message.into(),
            severity: Severity::Error,
            frontend_errors: Vec::new(),
        }
    }

    /// An internal fault (contained panic, poisoned state; exit code 2).
    pub fn fault(stage: &'static str, message: impl Into<String>) -> Self {
        FlowError {
            stage,
            message: message.into(),
            severity: Severity::Fault,
            frontend_errors: Vec::new(),
        }
    }

    /// A frontend failure carrying every accumulated coded diagnostic.
    /// The summary message is the first diagnostic (matching the old
    /// fail-fast behavior) plus a count of the rest.
    pub fn frontend(errors: Vec<Diagnostic>) -> Self {
        let message = match errors.as_slice() {
            [] => "frontend failed without diagnostics".to_string(),
            [only] => only.to_string(),
            [first, rest @ ..] => format!("{first} (and {} more error(s))", rest.len()),
        };
        FlowError {
            stage: "frontend",
            message,
            severity: Severity::Error,
            frontend_errors: errors,
        }
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.stage, self.message)
    }
}

impl std::error::Error for FlowError {}

thread_local! {
    /// Pipeline stage the current thread's compilation is inside,
    /// updated at every stage-span boundary. When a panic is contained
    /// (matrix isolation, `lnc`'s top-level catch), this is the stage
    /// context the resulting fault diagnostic is attributed to.
    static CURRENT_STAGE: std::cell::Cell<&'static str> =
        const { std::cell::Cell::new("frontend") };
}

/// The stage boundary most recently crossed on this thread.
pub fn current_stage() -> &'static str {
    CURRENT_STAGE.with(|c| c.get())
}

fn set_stage(stage: &'static str) {
    CURRENT_STAGE.with(|c| c.set(stage));
}

/// One compiled instruction or `always`-block.
#[derive(Debug, Clone)]
pub struct CompiledGraph {
    /// Instruction / always-block name.
    pub name: String,
    /// True for `always`-blocks.
    pub is_always: bool,
    /// Decode mask (instructions only).
    pub mask: u32,
    /// Decode match value (instructions only).
    pub match_value: u32,
    /// The scheduled LIL graph.
    pub graph: Graph,
    /// Per-LIL-operation start times and in-cycle times.
    pub schedule: Schedule,
    /// The constructed hardware module with port bindings.
    pub built: BuiltModule,
    /// Emitted SystemVerilog.
    pub verilog: String,
    /// Overall execution mode (worst interface variant, §3.2/§4.3).
    pub mode: ExecutionMode,
    /// Stage of the WrRD use, if the instruction writes `rd`.
    pub result_stage: Option<u32>,
    /// Earliest stage of any `spawn` operation (decoupled issue point).
    pub spawn_stage: Option<u32>,
    /// Highest active stage (total latency in stages).
    pub max_stage: u32,
}

/// A fully compiled ISAX, ready for SCAIE-V integration into one core.
#[derive(Debug, Clone)]
pub struct CompiledIsax {
    /// ISAX name.
    pub name: String,
    /// Core this compilation targeted.
    pub core: String,
    /// The elaborated, type-checked module (golden-model input).
    pub module: TypedModule,
    /// The lowered LIL module.
    pub lil: LilModule,
    /// One compiled artifact per instruction / always-block.
    ///
    /// Units that failed to compile are missing here and reported in
    /// [`CompiledIsax::diagnostics`] instead — one broken instruction does
    /// not abort the ISAX.
    pub graphs: Vec<CompiledGraph>,
    /// The SCAIE-V configuration file contents (Figure 8).
    pub config: IsaxConfig,
    /// Warnings, degradation notices, and per-unit errors accumulated
    /// across the flow.
    pub diagnostics: Diagnostics,
    /// Telemetry for the whole compilation: one span per pipeline stage
    /// ([`telemetry::STAGES`]), solver counters, per-unit schedule and
    /// hardware statistics, and the diagnostics mirrored with span links.
    /// Deterministic modulo the `dur_ns` timing fields
    /// ([`Trace::stripped`]).
    pub trace: Trace,
}

impl CompiledIsax {
    /// Finds a compiled graph by name.
    pub fn graph(&self, name: &str) -> Option<&CompiledGraph> {
        self.graphs.iter().find(|g| g.name == name)
    }

    /// Iterates over compiled instructions (not always-blocks).
    pub fn instructions(&self) -> impl Iterator<Item = &CompiledGraph> {
        self.graphs.iter().filter(|g| !g.is_always)
    }

    /// Iterates over compiled always-blocks.
    pub fn always_blocks(&self) -> impl Iterator<Item = &CompiledGraph> {
        self.graphs.iter().filter(|g| g.is_always)
    }
}

/// The Longnail compiler.
pub struct Longnail {
    frontend: Frontend,
    /// Chaining budget in uniform-delay units per stage.
    pub chain_depth: f64,
    /// Deterministic solver work budget granted to each graph's scheduling
    /// problem (see [`Budget`]). When the exact ILP exhausts it, the
    /// flow degrades to the verified ASAP fallback scheduler and records a
    /// warning instead of failing.
    pub work_limit: u64,
    /// Deterministic fault-injection plan (chaos testing). `None` — the
    /// default — injects nothing and costs one branch per stage boundary.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for Longnail {
    fn default() -> Self {
        Self::new()
    }
}

impl Longnail {
    /// Creates a compiler with the built-in prelude and default chaining
    /// budget.
    pub fn new() -> Self {
        Longnail {
            frontend: Frontend::new(),
            chain_depth: DEFAULT_CHAIN_DEPTH,
            work_limit: Budget::DEFAULT_LIMIT,
            fault_plan: None,
        }
    }

    /// Crosses a stage boundary: records the stage for panic attribution
    /// and fires a planned [`FaultKind::Panic`] when this `(unit, core)`
    /// cell is targeted at this stage.
    fn stage_boundary(&self, unit: &str, core: &str, stage: &'static str) {
        set_stage(stage);
        if let Some(plan) = &self.fault_plan {
            if plan.panic_at(unit, core, stage) {
                panic!("injected fault: panic at stage `{stage}` of `{unit}` for `{core}`");
            }
        }
    }

    /// Access to the CoreDSL frontend (e.g. to register import sources).
    pub fn frontend_mut(&mut self) -> &mut Frontend {
        &mut self.frontend
    }

    /// Compiles CoreDSL source text for the given target core.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] naming the failing flow stage.
    pub fn compile(
        &self,
        src: &str,
        unit: &str,
        datasheet: &VirtualDatasheet,
    ) -> Result<CompiledIsax, FlowError> {
        let artifacts = self.frontend_artifacts(src, unit)?;
        Ok(self.compile_artifacts(&artifacts, datasheet))
    }

    /// Compiles CoreDSL source text through a shared [`FrontendCache`]:
    /// the core-independent frontend + lowering half of the flow runs at
    /// most once per distinct `(source, unit)` pair; only the core-aware
    /// backend runs per call. The emitted trace is byte-identical
    /// (after [`Trace::stripped`]) to an uncached [`Longnail::compile`].
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] naming the failing flow stage. Frontend
    /// failures are cached too: every core asking for a broken ISAX gets
    /// the same error without re-running the frontend.
    pub fn compile_cached(
        &self,
        src: &str,
        unit: &str,
        datasheet: &VirtualDatasheet,
        cache: &FrontendCache,
    ) -> Result<CompiledIsax, FlowError> {
        if let Some(plan) = &self.fault_plan {
            if plan.fault(unit, &datasheet.core, FaultKind::PoisonCache).is_some() {
                // Genuinely poison the slot mutex — exactly the state a
                // worker that crashed mid-compute leaves behind — then
                // fail this cell. Peers sharing the entry must recover
                // through the cache's poison-tolerant locking.
                set_stage("frontend");
                cache.poison_entry(src, unit);
                return Err(FlowError::fault(
                    "frontend",
                    format!("injected fault: frontend cache entry for `{unit}` poisoned"),
                ));
            }
            if plan.fault(unit, &datasheet.core, FaultKind::ParseError).is_some() {
                // Bypass the shared cache: the injected frontend failure
                // must stay in this cell, not be cached for every core
                // that asks for this (healthy) source.
                let artifacts = self.frontend_artifacts_for(src, unit, Some(&datasheet.core))?;
                return Ok(self.compile_artifacts(&artifacts, datasheet));
            }
        }
        let (result, lookup) = cache.get_or_compute_traced(src, unit, self);
        let artifacts = result?;
        Ok(self.compile_artifacts_with_cache(&artifacts, datasheet, Some(&lookup)))
    }

    /// Compiles an already type-checked module for the given target core.
    ///
    /// Units are compiled independently: a unit that fails in lowering,
    /// verification, scheduling, or netlist construction is dropped and
    /// recorded in [`CompiledIsax::diagnostics`] while the remaining units
    /// compile normally. Callers decide what an acceptable outcome is via
    /// [`Diagnostics::has_errors`] / [`Diagnostics::has_faults`].
    ///
    /// # Errors
    ///
    /// Reserved for module-wide failures; per-unit failures surface as
    /// diagnostics instead.
    pub fn compile_module(
        &self,
        module: TypedModule,
        datasheet: &VirtualDatasheet,
    ) -> Result<CompiledIsax, FlowError> {
        Ok(self.compile_artifacts(&lower_artifacts(module), datasheet))
    }

    /// Runs the core-independent half of the flow: parse, elaborate,
    /// type-check, and lower to verified LIL. The result can be compiled
    /// for any number of cores via [`Longnail::compile_artifacts`] and is
    /// what [`FrontendCache`] shares between matrix cells.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] if the frontend rejects the source; its
    /// `frontend_errors` field carries *every* accumulated coded
    /// diagnostic, not just the first. Per-unit lowering problems are
    /// captured inside the artifacts and replayed into each
    /// compilation's diagnostics instead.
    pub fn frontend_artifacts(
        &self,
        src: &str,
        unit: &str,
    ) -> Result<FrontendArtifacts, FlowError> {
        self.frontend_artifacts_for(src, unit, None)
    }

    /// [`Longnail::frontend_artifacts`] with an optional target-core
    /// context for fault injection. The cache-shared path passes `None`
    /// (injection is per-cell, never per-cache-entry).
    fn frontend_artifacts_for(
        &self,
        src: &str,
        unit: &str,
        core: Option<&str>,
    ) -> Result<FrontendArtifacts, FlowError> {
        if let Some(core) = core {
            self.stage_boundary(unit, core, "frontend");
            if let Some(plan) = &self.fault_plan {
                if plan.fault(unit, core, FaultKind::ParseError).is_some() {
                    return Err(FlowError::frontend(vec![Diagnostic::coded(
                        codes::PARSE_EXPECTED,
                        Span::new(1, 1),
                        "injected fault: forced parse error",
                    )
                    .in_source(unit)]));
                }
            }
        } else {
            set_stage("frontend");
        }
        let out = self.frontend.compile_str_all(src, unit);
        if !out.errors.is_empty() {
            return Err(FlowError::frontend(out.errors));
        }
        let module = out
            .module
            .ok_or_else(|| FlowError::error("frontend", "elaboration produced no module"))?;
        if let Some(core) = core {
            self.stage_boundary(unit, core, "lower");
        } else {
            set_stage("lower");
        }
        Ok(lower_artifacts(module))
    }

    /// The core-aware backend: schedules, builds, and emits every verified
    /// LIL graph in `artifacts` against `datasheet`, replaying the cached
    /// frontend/lower telemetry so the trace is indistinguishable from a
    /// monolithic run.
    pub fn compile_artifacts(
        &self,
        artifacts: &FrontendArtifacts,
        datasheet: &VirtualDatasheet,
    ) -> CompiledIsax {
        self.compile_artifacts_with_cache(artifacts, datasheet, None)
    }

    /// [`Longnail::compile_artifacts`] plus optional cache attribution:
    /// the matrix path passes what its [`FrontendCache`] lookup observed
    /// so the cell's root span carries `cache.frontend.*` counters. The
    /// names are nondeterministic under concurrency (which cell wins the
    /// miss is a race), so [`Trace::stripped`] drops them — an uncached
    /// trace and a cached one stay byte-identical after stripping.
    fn compile_artifacts_with_cache(
        &self,
        artifacts: &FrontendArtifacts,
        datasheet: &VirtualDatasheet,
        cache: Option<&CacheLookup>,
    ) -> CompiledIsax {
        let module = &artifacts.module;
        let lil = &artifacts.lil;
        let mut tel = Telemetry::new();
        let root = tel.start_span("compile");
        tel.attr(root, "core", &datasheet.core);
        if let Some(lookup) = cache {
            tel.counter(root, metrics::CACHE_FRONTEND_HIT, u64::from(lookup.hit));
            tel.counter(root, metrics::CACHE_FRONTEND_MISS, u64::from(!lookup.hit));
            if lookup.waited {
                tel.counter(root, metrics::CACHE_FRONTEND_WAIT, 1);
                tel.counter(root, metrics::CACHE_FRONTEND_WAIT_NS, lookup.wait_ns);
            }
        }
        let stats = module.stats();
        self.stage_boundary(&module.name, &datasheet.core, "frontend");
        let fe = tel.start_span("frontend");
        tel.counter(fe, metrics::FRONTEND_INSTRUCTIONS, stats.instructions as u64);
        tel.counter(fe, metrics::FRONTEND_ALWAYS, stats.always_blocks as u64);
        tel.counter(fe, metrics::FRONTEND_FUNCTIONS, stats.functions as u64);
        tel.end_span(fe);
        tel.attr(root, "isax", &module.name);
        let mut diagnostics = Diagnostics::default();
        self.stage_boundary(&module.name, &datasheet.core, "lower");
        let lower_span = tel.start_span("lower");
        diagnostics.set_trace_span(Some(lower_span.0));
        diagnostics.replay(&artifacts.lower_events);
        tel.counter(lower_span, "lower.graphs", lil.graphs.len() as u64);
        tel.end_span(lower_span);
        let spans: HashMap<String, Span> = module
            .instructions
            .iter()
            .map(|i| (i.name.clone(), i.span))
            .chain(module.always_blocks.iter().map(|a| (a.name.clone(), a.span)))
            .collect();
        let mut graphs = Vec::new();
        for (gi, graph) in lil.graphs.iter().enumerate() {
            let unit_span = tel.start_unit_span("unit", Some(&graph.name));
            diagnostics.set_trace_span(Some(unit_span.0));
            // Cell-level fault injection fires once per compilation, on
            // the first unit, so a faulted cell degrades to exactly one
            // diagnostic.
            let inject = gi == 0;
            match self.compile_graph(
                graph,
                lil,
                datasheet,
                &mut diagnostics,
                &mut tel,
                unit_span,
                inject,
            ) {
                Ok(cg) => graphs.push(cg),
                Err(e) => {
                    let span = spans.get(&graph.name).copied();
                    // The netlist lint guards compiler-constructed hardware;
                    // its findings are internal faults, not user errors.
                    if e.severity == Severity::Fault || e.stage == "netlist" {
                        diagnostics.fault(e.stage, Some(&graph.name), span, e.message);
                    } else {
                        diagnostics.error(e.stage, Some(&graph.name), span, e.message);
                    }
                }
            }
            // Also closes any stage span an error path left open.
            tel.end_span(unit_span);
        }
        diagnostics.set_trace_span(None);
        self.stage_boundary(&module.name, &datasheet.core, "config");
        let config_span = tel.start_span("config");
        let config = build_config(lil, &graphs);
        tel.counter(
            config_span,
            metrics::CONFIG_ENTRIES,
            config.schedule_entry_count() as u64,
        );
        tel.counter(
            config_span,
            metrics::CONFIG_REGISTERS,
            config.registers.len() as u64,
        );
        tel.end_span(config_span);
        // Errors that were contained to their unit instead of aborting
        // the compilation. Omitted (not zero) on clean runs so a clean
        // trace stays byte-identical to pre-degradation baselines.
        let recovered = diagnostics.of(Severity::Error).count() as u64;
        if recovered > 0 {
            tel.counter(root, metrics::DEGRADE_ERRORS_RECOVERED, recovered);
        }
        tel.end_span(root);
        // Mirror the diagnostics into the trace, each linked to the span
        // that was open when it fired.
        for e in &diagnostics.events {
            tel.diag(
                e.trace_span.map(SpanId),
                &e.severity.to_string(),
                e.stage,
                e.unit.as_deref(),
                &e.message,
            );
        }
        CompiledIsax {
            name: lil.name.clone(),
            core: datasheet.core.clone(),
            module: module.clone(),
            lil: lil.clone(),
            graphs,
            config,
            diagnostics,
            trace: tel.finish(),
        }
    }

    /// Compiles the full evaluation matrix (`isaxes` × `cores`) across up
    /// to `jobs` worker threads, sharing one [`FrontendCache`] so each
    /// distinct ISAX source is parsed, type-checked, and lowered exactly
    /// once no matter how many cores consume it.
    ///
    /// `isaxes` entries are `(display_name, unit, source)` triples in the
    /// shape of [`crate::isax_lib::all_isaxes`]. The result's entries are
    /// in deterministic row-major input order (`isaxes[0]×cores[0],
    /// isaxes[0]×cores[1], ...`), merged by stable cell index — never by
    /// worker completion order — so output, diagnostics, and stripped
    /// traces are identical for any `jobs` value.
    pub fn compile_matrix(
        &self,
        isaxes: &[(String, String, String)],
        cores: &[VirtualDatasheet],
        jobs: usize,
    ) -> MatrixResult {
        let cache = FrontendCache::new();
        let cells: Vec<(usize, usize)> = (0..isaxes.len())
            .flat_map(|i| (0..cores.len()).map(move |c| (i, c)))
            .collect();
        let pool = Pool::new(jobs);
        let (outcomes, pool_stats) = pool.run_isolated_with_stats(cells.len(), |k| {
            let (i, c) = cells[k];
            let (_, unit, src) = &isaxes[i];
            // First containment layer: a panic anywhere in this cell's
            // flow becomes a Fault-severity outcome attributed to the
            // stage boundary the thread last crossed, and every other
            // cell completes exactly as in a clean run.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.compile_cached(src, unit, &cores[c], &cache)
            }))
            .unwrap_or_else(|p| {
                Err(FlowError::fault(
                    current_stage(),
                    format!("compiler panicked: {}", pool::panic_message(p.as_ref())),
                ))
            })
        });
        let entries: Vec<MatrixEntry> = cells
            .iter()
            .zip(outcomes)
            .map(|(&(i, c), outcome)| MatrixEntry {
                isax: isaxes[i].0.clone(),
                unit: isaxes[i].1.clone(),
                core: cores[c].core.clone(),
                // Second containment layer: the pool's own isolation
                // catches anything that escaped the handler above.
                outcome: outcome.unwrap_or_else(|p| {
                    Err(FlowError::fault(
                        "matrix",
                        format!("compiler panicked: {}", p.message),
                    ))
                }),
            })
            .collect();
        let cell_faults = entries
            .iter()
            .filter(|e| matches!(&e.outcome, Err(f) if f.severity == Severity::Fault))
            .count() as u64;
        let errors_recovered = entries
            .iter()
            .map(|e| match &e.outcome {
                Ok(c) => c.diagnostics.of(Severity::Error).count() as u64,
                Err(f) if f.severity == Severity::Fault => 0,
                Err(f) => f.frontend_errors.len().max(1) as u64,
            })
            .sum();
        MatrixResult {
            entries,
            jobs: pool.workers(),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cell_faults,
            errors_recovered,
            pool_stats,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn compile_graph(
        &self,
        graph: &Graph,
        lil: &LilModule,
        datasheet: &VirtualDatasheet,
        diagnostics: &mut Diagnostics,
        tel: &mut Telemetry,
        unit_span: SpanId,
        inject: bool,
    ) -> Result<CompiledGraph, FlowError> {
        let is_always = graph.kind == GraphKind::Always;

        // --- LongnailProblem construction ---
        self.stage_boundary(&lil.name, &datasheet.core, "problem");
        let problem_span = tel.start_span("problem");
        let chain_limit = if datasheet.clock_ns > 0.0 {
            (datasheet.clock_ns / UNIT_NS).max(2.0)
        } else {
            self.chain_depth
        };
        let mut problem = LongnailProblem {
            cycle_time: chain_limit,
            ..LongnailProblem::default()
        };
        let mut type_cache: HashMap<String, OperatorTypeId> = HashMap::new();
        let mut op_ids = Vec::with_capacity(graph.len());
        for (_, op) in graph.iter() {
            let key = op.kind.mnemonic();
            let cache_key = format!("{key}/{}", op.in_spawn);
            let tid = match type_cache.get(&cache_key) {
                Some(&t) => t,
                None => {
                    let ot = self.operator_type(&op.kind, is_always, datasheet)?;
                    let t = problem.add_operator_type(ot);
                    type_cache.insert(cache_key, t);
                    t
                }
            };
            op_ids.push(problem.add_operation(&key, tid));
        }
        for (v, op) in graph.iter() {
            for &operand in op.operands.iter().chain(op.pred.iter()) {
                problem.add_dependence(op_ids[operand.0], op_ids[v.0]);
            }
        }
        tel.counter(problem_span, metrics::PROBLEM_OPS, graph.len() as u64);
        tel.counter(
            problem_span,
            metrics::PROBLEM_IFACE_OPS,
            graph.interface_op_count() as u64,
        );
        tel.counter(problem_span, metrics::PROBLEM_DEPS, graph.edge_count() as u64);
        tel.gauge(problem_span, metrics::SCHED_CHAIN_LIMIT, chain_limit);
        tel.end_span(problem_span);

        // --- ILP solve (resilient facade) ---
        self.stage_boundary(&lil.name, &datasheet.core, "solve");
        if inject {
            if let Some(plan) = &self.fault_plan {
                if plan
                    .fault(&lil.name, &datasheet.core, FaultKind::BudgetExhaustion)
                    .is_some()
                {
                    return Err(FlowError::error(
                        "solve",
                        "injected fault: solver work budget exhausted before a schedule \
                         was found",
                    ));
                }
            }
        }
        let solve_span = tel.start_span("solve");
        let budget = Budget::new(self.work_limit);
        let result = schedule_resilient(&mut problem, &budget);
        // Solver work is counted, not timed — these are deterministic.
        tel.counter(solve_span, metrics::SOLVER_PIVOTS, budget.count(WorkKind::Pivot));
        tel.counter(solve_span, metrics::SOLVER_NODES, budget.count(WorkKind::Node));
        tel.counter(solve_span, metrics::SOLVER_ROUNDS, budget.count(WorkKind::Round));
        tel.counter(
            solve_span,
            metrics::SOLVER_PRESOLVE,
            budget.count(WorkKind::Presolve),
        );
        tel.counter(solve_span, metrics::SOLVER_WORK_USED, budget.used());
        tel.counter(solve_span, metrics::SOLVER_WORK_LIMIT, budget.limit());
        let outcome = result.map_err(|e| FlowError::error("schedule", e.to_string()))?;
        if let Some(deg) = &outcome.degradation {
            tel.counter(solve_span, metrics::SCHED_FALLBACK, 1);
            if matches!(deg.reason, DegradationReason::BudgetExhausted(_)) {
                tel.counter(solve_span, metrics::SOLVER_EXHAUSTED, 1);
            }
            diagnostics.warn("schedule", Some(&graph.name), None, deg.to_string());
        }
        tel.attr(
            unit_span,
            "scheduler",
            if outcome.is_exact() { "ilp" } else { "asap" },
        );
        let schedule = outcome.schedule;
        let start_time: Vec<u32> = (0..graph.len())
            .map(|i| schedule.start_time[op_ids[i].0])
            .collect();
        let max_stage_sched = start_time.iter().copied().max().unwrap_or(0);
        tel.counter(solve_span, metrics::SCHED_STAGES, max_stage_sched as u64);
        tel.gauge(
            solve_span,
            metrics::SCHED_CHAIN_DEPTH,
            schedule.max_start_time_in_cycle(),
        );
        tel.end_span(solve_span);

        // --- Per-write-interface mode selection (§4.3) and overall mode ---
        self.stage_boundary(&lil.name, &datasheet.core, "modes");
        let modes_span = tel.start_span("modes");
        let mut mode = if is_always {
            ExecutionMode::Always
        } else {
            ExecutionMode::InPipeline
        };
        let mut result_stage = None;
        let mut spawn_stage: Option<u32> = None;
        for (v, op) in graph.iter() {
            let stage = start_time[v.0];
            if op.in_spawn {
                spawn_stage = Some(spawn_stage.map_or(stage, |s: u32| s.min(stage)));
            }
            if op.kind == OpKind::WriteRd {
                result_stage = Some(stage);
            }
            if !is_always && mode_relevant(&op.kind) {
                let iface = lil_iface_op(&op.kind).expect("interface op");
                let timing = datasheet.timing(&iface).ok_or_else(|| {
                    FlowError::error("modes", format!("datasheet lacks {} timing", iface.key()))
                })?;
                let m = select_mode(
                    stage,
                    timing,
                    datasheet.writeback_stage,
                    op.in_spawn,
                    false,
                );
                mode = worst_mode(mode, m);
            }
        }
        // Initiation interval: pipelined units accept one instruction per
        // cycle; a decoupled (`spawn`) unit is busy for its spawned
        // section's latency.
        let ii = match spawn_stage {
            Some(s) => u64::from(max_stage_sched.saturating_sub(s)).max(1),
            None => 1,
        };
        tel.counter(modes_span, metrics::SCHED_II, ii);
        tel.attr(unit_span, "mode", &mode.to_string());
        tel.end_span(modes_span);

        // --- Hardware construction and lint ---
        self.stage_boundary(&lil.name, &datasheet.core, "rtl");
        let rtl_span = tel.start_span("rtl");
        let ds = datasheet.clone();
        let read_latency = move |kind: &OpKind| -> u32 {
            lil_iface_op(kind)
                .and_then(|op| ds.timing(&op))
                .map(|t| t.latency)
                .unwrap_or(0)
        };
        let built = build_graph_module(graph, lil, &start_time, &read_latency);
        // Netlist lint: last gate before SystemVerilog leaves the compiler.
        if let Err(issues) = lint_module(&built.module) {
            return Err(FlowError::fault(
                "netlist",
                issues
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; "),
            ));
        }
        tel.counter(rtl_span, metrics::RTL_CELLS, built.module.nets.len() as u64);
        tel.counter(rtl_span, metrics::RTL_REG_BITS, built.module.register_bits());
        tel.counter(rtl_span, metrics::RTL_COMB_DEPTH, u64::from(comb_depth(&built.module)));
        let estimate = eda::estimate_module(&TechLibrary::new(), &built.module);
        tel.gauge(rtl_span, metrics::EDA_AREA_UM2, estimate.area.total());
        tel.gauge(
            rtl_span,
            metrics::EDA_CRIT_NS,
            estimate.timing.critical_path_ns,
        );
        tel.end_span(rtl_span);

        // --- SystemVerilog emission ---
        self.stage_boundary(&lil.name, &datasheet.core, "verilog");
        let verilog_span = tel.start_span("verilog");
        let verilog = emit_verilog(&built.module);
        tel.counter(verilog_span, metrics::VERILOG_BYTES, verilog.len() as u64);
        tel.end_span(verilog_span);

        let (mask, match_value) = match graph.kind {
            GraphKind::Instruction { mask, match_value } => (mask, match_value),
            GraphKind::Always => (0, 0),
        };
        let start_time_sched = Schedule {
            start_time,
            start_time_in_cycle: (0..graph.len())
                .map(|i| schedule.start_time_in_cycle[op_ids[i].0])
                .collect(),
        };
        Ok(CompiledGraph {
            name: graph.name.clone(),
            is_always,
            mask,
            match_value,
            graph: graph.clone(),
            schedule: start_time_sched,
            max_stage: built.max_stage,
            built,
            verilog,
            mode,
            result_stage,
            spawn_stage,
        })
    }

    /// Builds the scheduling operator type for one LIL operation kind.
    fn operator_type(
        &self,
        kind: &OpKind,
        is_always: bool,
        datasheet: &VirtualDatasheet,
    ) -> Result<OperatorType, FlowError> {
        let name = kind.mnemonic();
        if let Some(iface) = lil_iface_op(kind) {
            if is_always {
                // §4.4: all interface constraints pinned to stage 0.
                return Ok(OperatorType::combinational(&name, 0.0).with_window(0, Some(0)));
            }
            let timing = datasheet.timing(&iface).ok_or_else(|| {
                FlowError::error(
                    "schedule",
                    format!(
                        "virtual datasheet of `{}` lacks an entry for {}",
                        datasheet.core,
                        iface.key()
                    ),
                )
            })?;
            // §4.2: WrRD / RdMem / WrMem get latest = ∞ to unlock the
            // tightly-coupled and decoupled variants.
            let latest = match kind {
                OpKind::WriteRd | OpKind::ReadMem | OpKind::WriteMem => None,
                OpKind::WriteCustReg(_) => None,
                _ => timing.latest,
            };
            let mut ot = OperatorType::sequential(&name, timing.latency, 0.0);
            ot.earliest = timing.earliest;
            ot.latest = latest;
            return Ok(ot);
        }
        // Combinational logic: uniform delay, wiring is free (§4.2).
        let delay = match kind {
            OpKind::Const(_)
            | OpKind::Sink
            | OpKind::Concat
            | OpKind::Replicate(_)
            | OpKind::ExtractConst { .. }
            | OpKind::ZExt
            | OpKind::SExt
            | OpKind::Trunc => 0.0,
            OpKind::Mux | OpKind::Not => 0.2,
            OpKind::RomRead(_) => UNIFORM_DELAY,
            _ => UNIFORM_DELAY,
        };
        Ok(OperatorType::combinational(&name, delay))
    }
}

/// The core-independent half of a compilation: the elaborated typed
/// module plus its verified LIL lowering and any per-unit diagnostics the
/// lowering raised. Produced once per `(source, unit)` pair and shared —
/// via [`FrontendCache`] — across every core the ISAX is compiled for.
#[derive(Debug, Clone)]
pub struct FrontendArtifacts {
    /// The elaborated, type-checked module.
    pub module: TypedModule,
    /// The lowered LIL module; only graphs that passed the stage verifier
    /// are present.
    pub lil: LilModule,
    /// Diagnostics raised during lowering/verification. Core-independent,
    /// so they are replayed verbatim into every per-core compilation
    /// (re-stamped with that compilation's trace span).
    pub lower_events: Vec<DiagEvent>,
}

/// Lowers a type-checked module to verified LIL, capturing per-unit
/// problems as replayable events instead of aborting.
fn lower_artifacts(module: TypedModule) -> FrontendArtifacts {
    let mut diagnostics = Diagnostics::default();
    let mut lil = lower_state(&module);
    let spans: HashMap<String, Span> = module
        .instructions
        .iter()
        .map(|i| (i.name.clone(), i.span))
        .chain(module.always_blocks.iter().map(|a| (a.name.clone(), a.span)))
        .collect();
    let lowered = module
        .instructions
        .iter()
        .map(|i| lower_instruction(&module, i))
        .chain(module.always_blocks.iter().map(|a| lower_always(&module, a)));
    for result in lowered {
        let graph = match result {
            Ok(g) => g,
            Err(e) => {
                diagnostics.error(
                    "lower",
                    Some(&e.unit),
                    spans.get(&e.unit).copied(),
                    e.message,
                );
                continue;
            }
        };
        // Stage verifier: a graph the lowering itself produced must be
        // well-formed; a violation is a compiler bug, contained to this
        // unit.
        if let Err(errs) = verify_graph(&graph, &lil) {
            let msg = errs
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ");
            diagnostics.fault("verify", Some(&graph.name), spans.get(&graph.name).copied(), msg);
            continue;
        }
        lil.graphs.push(graph);
    }
    FrontendArtifacts {
        module,
        lil,
        lower_events: diagnostics.events,
    }
}

/// Content-address of a CoreDSL source: 64-bit FNV-1a over its bytes.
pub fn source_hash(src: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in src.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    source_hash: u64,
    unit: String,
}

/// Per-key cell: the entry mutex makes the first accessor compute while
/// any concurrent peer blocks, so each key is computed exactly once and
/// the hit/miss totals are deterministic for every worker count.
#[derive(Debug, Default)]
struct CacheSlot {
    ready: Mutex<Option<Result<Arc<FrontendArtifacts>, FlowError>>>,
}

/// A thread-safe, content-addressed cache of [`FrontendArtifacts`], keyed
/// by `(fnv1a64(source), unit)`. Frontend *failures* are cached alongside
/// successes so a broken ISAX fails once, not once per core.
#[derive(Debug, Default)]
pub struct FrontendCache {
    slots: Mutex<HashMap<CacheKey, Arc<CacheSlot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FrontendCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lookups that found a previously computed entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the frontend + lowering.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct `(source, unit)` pairs held.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the cached artifacts for `(src, unit)`, computing them with
    /// `ln`'s frontend on first access. Concurrent requests for the same
    /// key block on the first one rather than duplicating the work.
    ///
    /// Poison-tolerant: a peer that panicked while holding a lock (its
    /// cell is already lost to a fault diagnostic) must not take every
    /// later cell down with it. A poisoned mutex is re-entered; an entry
    /// the crashed peer never finished is simply recomputed.
    ///
    /// # Errors
    ///
    /// Returns the (cached) frontend [`FlowError`] for sources that do not
    /// compile.
    pub fn get_or_compute(
        &self,
        src: &str,
        unit: &str,
        ln: &Longnail,
    ) -> Result<Arc<FrontendArtifacts>, FlowError> {
        self.get_or_compute_traced(src, unit, ln).0
    }

    /// [`FrontendCache::get_or_compute`] plus what the lookup observed
    /// from the requesting cell's point of view: hit vs miss, and whether
    /// (and how long) it blocked on a slot a concurrent peer was busy
    /// computing. The totals stay deterministic (exactly one miss per
    /// distinct key); the *attribution* — which cell got the miss — is a
    /// race, which is why these feed nondeterministic `cache.*` metrics.
    pub fn get_or_compute_traced(
        &self,
        src: &str,
        unit: &str,
        ln: &Longnail,
    ) -> (Result<Arc<FrontendArtifacts>, FlowError>, CacheLookup) {
        let key = CacheKey {
            source_hash: source_hash(src),
            unit: unit.to_string(),
        };
        let slot = {
            let mut slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(slots.entry(key).or_default())
        };
        let mut lookup = CacheLookup::default();
        let mut ready = match slot.ready.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                // A peer holds the slot — either computing this very
                // entry or briefly reading it. Block as before, but
                // remember the wait so the cell's trace can attribute
                // the stall.
                lookup.waited = true;
                let blocked = Instant::now();
                let guard = slot.ready.lock().unwrap_or_else(|p| p.into_inner());
                lookup.wait_ns = blocked.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                guard
            }
        };
        if let Some(result) = &*ready {
            self.hits.fetch_add(1, Ordering::Relaxed);
            lookup.hit = true;
            return (result.clone(), lookup);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = ln.frontend_artifacts(src, unit).map(Arc::new);
        *ready = Some(result.clone());
        (result, lookup)
    }

    /// Deliberately poisons the entry mutex for `(src, unit)` — a panic
    /// while the lock is held, exactly the state a worker that crashed
    /// mid-compute leaves behind. Fault injection uses this to prove
    /// that peers sharing the entry recover instead of cascading.
    pub fn poison_entry(&self, src: &str, unit: &str) {
        let key = CacheKey {
            source_hash: source_hash(src),
            unit: unit.to_string(),
        };
        let slot = {
            let mut slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(slots.entry(key).or_default())
        };
        let _ = std::thread::spawn(move || {
            let _guard = slot.ready.lock().unwrap_or_else(|p| p.into_inner());
            panic!("injected fault: poisoning frontend cache entry");
        })
        .join();
    }
}

/// What one [`FrontendCache`] lookup observed, from the requesting
/// cell's point of view. Feeds the `cache.frontend.*` trace counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheLookup {
    /// True when the entry was already computed (hit); false when this
    /// lookup ran the frontend (miss).
    pub hit: bool,
    /// True when the lookup blocked on a slot a concurrent peer held.
    pub waited: bool,
    /// Nanoseconds spent blocked acquiring the slot.
    pub wait_ns: u64,
}

/// One cell of a compiled matrix: one ISAX targeted at one core.
#[derive(Debug, Clone)]
pub struct MatrixEntry {
    /// ISAX display name (Table 3 row).
    pub isax: String,
    /// CoreDSL unit that was elaborated.
    pub unit: String,
    /// Target core name.
    pub core: String,
    /// The compilation outcome for this cell.
    pub outcome: Result<CompiledIsax, FlowError>,
}

/// Result of [`Longnail::compile_matrix`]: all cells in deterministic
/// row-major input order plus the shared-cache statistics.
#[derive(Debug)]
pub struct MatrixResult {
    /// One entry per `(isax, core)` pair, ordered `isaxes[0]×cores[0],
    /// isaxes[0]×cores[1], …` regardless of worker scheduling.
    pub entries: Vec<MatrixEntry>,
    /// Worker threads the matrix actually ran with.
    pub jobs: usize,
    /// Frontend-cache hits across all cells (for the 8×4 evaluation
    /// matrix: 24 — each of the 8 ISAXes reused by 3 of the 4 cores).
    pub cache_hits: u64,
    /// Frontend-cache misses (distinct ISAX sources actually compiled).
    pub cache_misses: u64,
    /// Cells whose outcome is a [`Severity::Fault`] failure (contained
    /// panics, poisoned caches) — the `degrade.cell_faults` counter.
    pub cell_faults: u64,
    /// Error-severity problems that were contained (to a unit or a cell)
    /// instead of aborting the batch — `degrade.errors_recovered`.
    pub errors_recovered: u64,
    /// What the worker pool observed about its own scheduling: wall time,
    /// queue-wait vs run split per cell, per-worker load. Wall-clock- and
    /// scheduling-dependent — informational only, never part of the
    /// deterministic artifacts.
    pub pool_stats: pool::RunStats,
}

impl MatrixResult {
    /// Finds a cell by ISAX display name and core.
    pub fn entry(&self, isax: &str, core: &str) -> Option<&MatrixEntry> {
        self.entries
            .iter()
            .find(|e| e.isax == isax && e.core == core)
    }

    /// Iterates over successfully compiled cells.
    pub fn compiled(&self) -> impl Iterator<Item = (&MatrixEntry, &CompiledIsax)> {
        self.entries
            .iter()
            .filter_map(|e| e.outcome.as_ref().ok().map(|c| (e, c)))
    }
}

/// The virtual datasheets of all four evaluation cores (Table 4), in
/// [`EVAL_CORES`] order.
pub fn eval_datasheets() -> Vec<VirtualDatasheet> {
    EVAL_CORES
        .iter()
        .map(|c| builtin_datasheet(c).expect("builtin evaluation core"))
        .collect()
}

/// Maps a LIL operation to its SCAIE-V sub-interface, if any.
pub fn lil_iface_op(kind: &OpKind) -> Option<SubInterfaceOp> {
    Some(match kind {
        OpKind::InstrWord => SubInterfaceOp::RdInstr,
        OpKind::ReadRs1 => SubInterfaceOp::RdRS1,
        OpKind::ReadRs2 => SubInterfaceOp::RdRS2,
        OpKind::ReadPc => SubInterfaceOp::RdPC,
        OpKind::ReadMem => SubInterfaceOp::RdMem,
        OpKind::WriteRd => SubInterfaceOp::WrRD,
        OpKind::WritePc => SubInterfaceOp::WrPC,
        OpKind::WriteMem => SubInterfaceOp::WrMem,
        OpKind::ReadCustReg(reg) => SubInterfaceOp::RdCustReg { reg: reg.clone() },
        OpKind::WriteCustReg(reg) => SubInterfaceOp::WrCustRegData { reg: reg.clone() },
        _ => return None,
    })
}

/// Interface kinds whose scheduled stage participates in mode selection.
fn mode_relevant(kind: &OpKind) -> bool {
    matches!(
        kind,
        OpKind::WriteRd | OpKind::ReadMem | OpKind::WriteMem | OpKind::WriteCustReg(_)
    )
}

/// Severity order for combining per-interface modes into an instruction
/// mode.
fn worst_mode(a: ExecutionMode, b: ExecutionMode) -> ExecutionMode {
    let rank = |m: ExecutionMode| match m {
        ExecutionMode::InPipeline => 0,
        ExecutionMode::TightlyCoupled => 1,
        ExecutionMode::Decoupled => 2,
        ExecutionMode::Always => 3,
    };
    if rank(b) > rank(a) {
        b
    } else {
        a
    }
}

/// Builds the Figure 8 SCAIE-V configuration file contents.
fn build_config(lil: &LilModule, graphs: &[CompiledGraph]) -> IsaxConfig {
    let mut config = IsaxConfig {
        name: lil.name.clone(),
        ..IsaxConfig::default()
    };
    for reg in &lil.custom_regs {
        config.registers.push(RegisterRequest {
            name: reg.name.clone(),
            width: reg.width,
            elements: reg.elems,
        });
    }
    for cg in graphs {
        let mut schedule = Vec::new();
        for (v, op) in cg.graph.iter() {
            let Some(iface) = lil_iface_op(&op.kind) else {
                continue;
            };
            let stage = cg.schedule.start_time[v.0];
            let has_valid = op.pred.is_some();
            let mode = if cg.is_always {
                ExecutionMode::Always
            } else if mode_relevant(&op.kind) {
                cg.mode
            } else {
                ExecutionMode::InPipeline
            };
            if let OpKind::WriteCustReg(reg) = &op.kind {
                // The .addr entry consistently provides the hazard-handling
                // mechanism with stage information even for single-element
                // registers (paper §4.6).
                schedule.push(ScheduleEntry {
                    interface: SubInterfaceOp::WrCustRegAddr { reg: reg.clone() }.key(),
                    stage,
                    has_valid: false,
                    mode,
                });
            }
            schedule.push(ScheduleEntry {
                interface: iface.key(),
                stage,
                has_valid,
                mode,
            });
        }
        config.functionalities.push(Functionality {
            name: cg.name.clone(),
            encoding: (!cg.is_always).then(|| pattern_string(cg.mask, cg.match_value)),
            schedule,
        });
    }
    config
}

fn pattern_string(mask: u32, match_value: u32) -> String {
    (0..32)
        .rev()
        .map(|i| {
            if mask >> i & 1 == 1 {
                if match_value >> i & 1 == 1 {
                    '1'
                } else {
                    '0'
                }
            } else {
                '-'
            }
        })
        .collect()
}

/// Builds the virtual datasheets used in the evaluation. The actual core
/// descriptors (pipeline structure, base area/fmax) live in the `cores`
/// crate; this function only captures the SCAIE-V timing abstraction so the
/// compiler can be used without the core models.
pub fn builtin_datasheet(core: &str) -> Option<VirtualDatasheet> {
    let mut ds = match core {
        // 5-stage in-order pipeline: IF ID EX MEM WB (stages 0..4).
        "VexRiscv" | "ORCA" => {
            let mut ds = VirtualDatasheet::new(core, 5, 4, 3);
            let (rs_stage, wr_earliest) = if core == "ORCA" {
                // ORCA: register operands available in stage 3, result
                // write-back already expected in the following stage (§5.4).
                (3, 3)
            } else {
                (2, 2)
            };
            ds.set(SubInterfaceOp::RdInstr, Timing::new(1, Some(4), 0))
                .set(SubInterfaceOp::RdRS1, Timing::new(rs_stage, Some(4), 0))
                .set(SubInterfaceOp::RdRS2, Timing::new(rs_stage, Some(4), 0))
                .set(SubInterfaceOp::RdPC, Timing::new(1, Some(4), 0))
                .set(SubInterfaceOp::RdMem, Timing::new(3, None, 1))
                .set(SubInterfaceOp::WrRD, Timing::new(wr_earliest, None, 0))
                .set(SubInterfaceOp::WrPC, Timing::new(1, Some(4), 0))
                .set(SubInterfaceOp::WrMem, Timing::new(3, None, 0));
            ds
        }
        // 3-stage pipeline: IF / EX / WB.
        "Piccolo" => {
            let mut ds = VirtualDatasheet::new(core, 3, 2, 1);
            ds.set(SubInterfaceOp::RdInstr, Timing::new(1, Some(2), 0))
                .set(SubInterfaceOp::RdRS1, Timing::new(1, Some(2), 0))
                .set(SubInterfaceOp::RdRS2, Timing::new(1, Some(2), 0))
                .set(SubInterfaceOp::RdPC, Timing::new(1, Some(2), 0))
                .set(SubInterfaceOp::RdMem, Timing::new(1, None, 1))
                .set(SubInterfaceOp::WrRD, Timing::new(1, None, 0))
                .set(SubInterfaceOp::WrPC, Timing::new(1, Some(2), 0))
                .set(SubInterfaceOp::WrMem, Timing::new(1, None, 0));
            ds
        }
        // Non-pipelined FSM sequencing: everything available from step 1
        // and the core waits for the ISAX (paper footnote 2).
        "PicoRV32" => {
            let mut ds = VirtualDatasheet::new(core, 1, 1, 1);
            ds.set(SubInterfaceOp::RdInstr, Timing::new(0, None, 0))
                .set(SubInterfaceOp::RdRS1, Timing::new(1, None, 0))
                .set(SubInterfaceOp::RdRS2, Timing::new(1, None, 0))
                .set(SubInterfaceOp::RdPC, Timing::new(0, None, 0))
                .set(SubInterfaceOp::RdMem, Timing::new(1, None, 1))
                .set(SubInterfaceOp::WrRD, Timing::new(1, None, 0))
                .set(SubInterfaceOp::WrPC, Timing::new(1, None, 0))
                .set(SubInterfaceOp::WrMem, Timing::new(1, None, 0));
            ds
        }
        _ => return None,
    };
    // Target clock period from the base core's achievable frequency
    // (Table 4 base row) — the scheduler's chaining budget derives from it.
    ds.clock_ns = match core {
        "ORCA" => 1000.0 / 996.0,
        "Piccolo" => 1000.0 / 420.0,
        "PicoRV32" => 1000.0 / 1278.0,
        _ => 1000.0 / 701.0,
    };
    // Custom registers are accessed like the GPR file (§3.2): same window
    // as RdRS1/WrRD, write window unbounded for late commits.
    let rs = ds.entries["RdRS1"];
    let wr = ds.entries["WrRD"];
    ds.entries
        .insert("RdCustReg".into(), Timing::new(rs.earliest, rs.latest, 0));
    ds.entries
        .insert("WrCustReg.addr".into(), Timing::new(wr.earliest, None, 0));
    ds.entries
        .insert("WrCustReg.data".into(), Timing::new(wr.earliest, None, 0));
    Some(ds)
}

/// The four evaluation cores (Table 4).
pub const EVAL_CORES: [&str; 4] = ["ORCA", "Piccolo", "PicoRV32", "VexRiscv"];
