/root/repo/target/debug/deps/longnail_suite-664b5aad462f795f.d: src/suite.rs

/root/repo/target/debug/deps/longnail_suite-664b5aad462f795f: src/suite.rs

src/suite.rs:
