/root/repo/target/debug/deps/metadata_exchange-415ec6baa46edd22.d: tests/metadata_exchange.rs

/root/repo/target/debug/deps/metadata_exchange-415ec6baa46edd22: tests/metadata_exchange.rs

tests/metadata_exchange.rs:
