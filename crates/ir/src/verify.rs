//! Deep structural verifier for LIL modules.
//!
//! [`Graph::validate`](crate::lil::Graph::validate) checks the coarse SSA
//! invariants the lowering itself relies on (def-before-use, one use per
//! sub-interface, `always`-block restrictions). This module is the
//! compiler's internal safety net on top of that: a full per-operation
//! check of arities, widths, predicate placement, terminator shape, and
//! module-level name resolution, run after every pass that produces or
//! rewrites LIL. A bug upstream (or a hand-constructed graph in a test)
//! surfaces here as a precise [`VerifyError`] instead of a panic or silent
//! miscompile further down the flow.
//!
//! Unlike `validate`, verification collects **all** violations rather than
//! stopping at the first, so one report describes the whole damage.

use crate::lil::{Graph, LilModule, Op, OpKind};
use std::fmt;

/// One violated LIL invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Name of the offending graph (empty for module-level problems).
    pub graph: String,
    /// Index of the offending operation, if the problem is op-local.
    pub op: Option<usize>,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Some(i) => write!(f, "graph `{}`, op {}: {}", self.graph, i, self.message),
            None => write!(f, "graph `{}`: {}", self.graph, self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Expected operand count for `kind`, or `None` when variable.
fn arity(kind: &OpKind) -> Option<usize> {
    Some(match kind {
        OpKind::InstrWord
        | OpKind::ReadRs1
        | OpKind::ReadRs2
        | OpKind::ReadPc
        | OpKind::Const(_)
        | OpKind::Sink => 0,
        OpKind::ReadMem
        | OpKind::WriteRd
        | OpKind::WritePc
        | OpKind::ReadCustReg(_)
        | OpKind::RomRead(_)
        | OpKind::Not
        | OpKind::Replicate(_)
        | OpKind::ExtractConst { .. }
        | OpKind::ZExt
        | OpKind::SExt
        | OpKind::Trunc => 1,
        OpKind::WriteMem
        | OpKind::WriteCustReg(_)
        | OpKind::ExtractDyn
        | OpKind::Add
        | OpKind::Sub
        | OpKind::Mul
        | OpKind::DivU
        | OpKind::DivS
        | OpKind::RemU
        | OpKind::RemS
        | OpKind::And
        | OpKind::Or
        | OpKind::Xor
        | OpKind::Shl
        | OpKind::ShrU
        | OpKind::ShrS
        | OpKind::Eq
        | OpKind::Ne
        | OpKind::Ult
        | OpKind::Ule
        | OpKind::Slt
        | OpKind::Sle
        | OpKind::Concat => 2,
        OpKind::Mux => 3,
    })
}

/// Verifies one graph in the context of its module.
///
/// # Errors
///
/// Returns every violated invariant (the list is never empty on `Err`).
pub fn verify_graph(graph: &Graph, module: &LilModule) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    let mut fail = |op: Option<usize>, message: String| {
        errors.push(VerifyError {
            graph: graph.name.clone(),
            op,
            message,
        });
    };

    // The coarse SSA invariants first; without def-before-use the width
    // checks below could index out of bounds, so bail out early.
    if let Err(e) = graph.validate() {
        fail(None, e.message);
        return Err(errors);
    }

    // Terminator shape: exactly one `lil.sink`, in final position.
    match graph.ops.iter().filter(|o| o.kind == OpKind::Sink).count() {
        0 => fail(None, "graph has no lil.sink terminator".into()),
        1 if graph.ops.last().map(|o| &o.kind) != Some(&OpKind::Sink) => {
            fail(None, "lil.sink is not the final operation".into())
        }
        1 => {}
        n => fail(None, format!("graph has {n} lil.sink terminators")),
    }

    let width_of = |op: &Op, i: usize| graph.ops[op.operands[i].0].width;

    for (idx, op) in graph.ops.iter().enumerate() {
        let mn = op.kind.mnemonic();
        if let Some(expected) = arity(&op.kind) {
            if op.operands.len() != expected {
                fail(
                    Some(idx),
                    format!(
                        "{mn} expects {expected} operand(s), has {}",
                        op.operands.len()
                    ),
                );
                continue; // width rules below assume the arity holds
            }
        }

        // Predicates: only state writes and the (side-effect-free but
        // stateful) memory read are predicated, always by an i1.
        if let Some(p) = op.pred {
            if !op.kind.is_state_write() && op.kind != OpKind::ReadMem {
                fail(Some(idx), format!("{mn} must not carry a predicate"));
            } else if graph.ops[p.0].width != 1 {
                fail(
                    Some(idx),
                    format!(
                        "predicate of {mn} has width {}, expected i1",
                        graph.ops[p.0].width
                    ),
                );
            }
        }

        // Result-width and operand-width agreement.
        let same_width_binary = |a: u32, b: u32| -> Option<String> {
            (a != b).then(|| format!("{mn} operand widths disagree: i{a} vs i{b}"))
        };
        match &op.kind {
            OpKind::InstrWord | OpKind::ReadRs1 | OpKind::ReadRs2 | OpKind::ReadPc => {
                if op.width != 32 {
                    fail(Some(idx), format!("{mn} must produce i32, has i{}", op.width));
                }
            }
            OpKind::ReadMem => {
                if op.width != 32 {
                    fail(Some(idx), format!("{mn} must produce i32, has i{}", op.width));
                }
                if width_of(op, 0) != 32 {
                    fail(
                        Some(idx),
                        format!("{mn} address must be i32, is i{}", width_of(op, 0)),
                    );
                }
            }
            OpKind::WriteRd | OpKind::WritePc => {
                if width_of(op, 0) != 32 {
                    fail(
                        Some(idx),
                        format!("{mn} value must be i32, is i{}", width_of(op, 0)),
                    );
                }
            }
            OpKind::WriteMem => {
                for (slot, name) in [(0, "address"), (1, "value")] {
                    if width_of(op, slot) != 32 {
                        fail(
                            Some(idx),
                            format!("{mn} {name} must be i32, is i{}", width_of(op, slot)),
                        );
                    }
                }
            }
            OpKind::ReadCustReg(name) => match module.custom_reg(name) {
                None => fail(Some(idx), format!("unknown custom register @{name}")),
                Some(reg) => {
                    if op.width != reg.width {
                        fail(
                            Some(idx),
                            format!(
                                "{mn} produces i{}, register is i{}",
                                op.width, reg.width
                            ),
                        );
                    }
                }
            },
            OpKind::WriteCustReg(name) => match module.custom_reg(name) {
                None => fail(Some(idx), format!("unknown custom register @{name}")),
                Some(reg) => {
                    if width_of(op, 1) != reg.width {
                        fail(
                            Some(idx),
                            format!(
                                "{mn} value is i{}, register is i{}",
                                width_of(op, 1),
                                reg.width
                            ),
                        );
                    }
                }
            },
            OpKind::RomRead(name) => match module.rom(name) {
                None => fail(Some(idx), format!("unknown ROM @{name}")),
                Some(rom) => {
                    if op.width != rom.width {
                        fail(
                            Some(idx),
                            format!("{mn} produces i{}, ROM is i{}", op.width, rom.width),
                        );
                    }
                }
            },
            OpKind::Const(c) => {
                if op.width != c.width() {
                    fail(
                        Some(idx),
                        format!(
                            "constant payload is i{}, op declares i{}",
                            c.width(),
                            op.width
                        ),
                    );
                }
            }
            OpKind::Add
            | OpKind::Sub
            | OpKind::Mul
            | OpKind::DivU
            | OpKind::DivS
            | OpKind::RemU
            | OpKind::RemS
            | OpKind::And
            | OpKind::Or
            | OpKind::Xor => {
                if let Some(m) = same_width_binary(width_of(op, 0), width_of(op, 1)) {
                    fail(Some(idx), m);
                }
                if op.width != width_of(op, 0) {
                    fail(
                        Some(idx),
                        format!(
                            "{mn} result must match operand width i{}, has i{}",
                            width_of(op, 0),
                            op.width
                        ),
                    );
                }
            }
            OpKind::Not => {
                if op.width != width_of(op, 0) {
                    fail(
                        Some(idx),
                        format!(
                            "{mn} result must match operand width i{}, has i{}",
                            width_of(op, 0),
                            op.width
                        ),
                    );
                }
            }
            // Shift amounts may be any width; the result tracks the base.
            OpKind::Shl | OpKind::ShrU | OpKind::ShrS => {
                if op.width != width_of(op, 0) {
                    fail(
                        Some(idx),
                        format!(
                            "{mn} result must match base width i{}, has i{}",
                            width_of(op, 0),
                            op.width
                        ),
                    );
                }
            }
            OpKind::Eq | OpKind::Ne | OpKind::Ult | OpKind::Ule | OpKind::Slt | OpKind::Sle => {
                if let Some(m) = same_width_binary(width_of(op, 0), width_of(op, 1)) {
                    fail(Some(idx), m);
                }
                if op.width != 1 {
                    fail(Some(idx), format!("{mn} must produce i1, has i{}", op.width));
                }
            }
            OpKind::Mux => {
                if width_of(op, 0) != 1 {
                    fail(
                        Some(idx),
                        format!("{mn} condition must be i1, is i{}", width_of(op, 0)),
                    );
                }
                if let Some(m) = same_width_binary(width_of(op, 1), width_of(op, 2)) {
                    fail(Some(idx), m);
                }
                if op.width != width_of(op, 1) {
                    fail(
                        Some(idx),
                        format!(
                            "{mn} result must match arm width i{}, has i{}",
                            width_of(op, 1),
                            op.width
                        ),
                    );
                }
            }
            OpKind::Concat => {
                let total = width_of(op, 0) + width_of(op, 1);
                if op.width != total {
                    fail(
                        Some(idx),
                        format!("{mn} must produce i{total}, has i{}", op.width),
                    );
                }
            }
            OpKind::Replicate(n) => {
                if *n == 0 {
                    fail(Some(idx), format!("{mn} count must be at least 1"));
                } else if op.width != n * width_of(op, 0) {
                    fail(
                        Some(idx),
                        format!(
                            "{mn} must produce i{}, has i{}",
                            n * width_of(op, 0),
                            op.width
                        ),
                    );
                }
            }
            OpKind::ExtractConst { .. } | OpKind::ExtractDyn => {
                if op.width == 0 {
                    fail(Some(idx), format!("{mn} must produce a value"));
                }
            }
            OpKind::ZExt | OpKind::SExt => {
                if op.width < width_of(op, 0) {
                    fail(
                        Some(idx),
                        format!(
                            "{mn} cannot narrow i{} to i{}",
                            width_of(op, 0),
                            op.width
                        ),
                    );
                }
            }
            OpKind::Trunc => {
                if op.width > width_of(op, 0) || op.width == 0 {
                    fail(
                        Some(idx),
                        format!(
                            "{mn} must narrow i{} to 1..=i{}, has i{}",
                            width_of(op, 0),
                            width_of(op, 0),
                            op.width
                        ),
                    );
                }
            }
            OpKind::Sink => {
                if op.width != 0 {
                    fail(Some(idx), format!("{mn} must not produce a value"));
                }
            }
        }

        // Value/void discipline: state writes and the sink are the only
        // resultless operations.
        let is_void = op.kind.is_state_write() || op.kind == OpKind::Sink;
        if is_void && op.width != 0 {
            fail(Some(idx), format!("{mn} must have width 0, has i{}", op.width));
        }
        if !is_void && op.width == 0 {
            fail(Some(idx), format!("{mn} must produce a value, has width 0"));
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Verifies every graph of `module`, plus module-level consistency
/// (custom-register and ROM shapes).
///
/// # Errors
///
/// Returns the concatenated violations of all graphs.
pub fn verify_module(module: &LilModule) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    for reg in &module.custom_regs {
        let needed = if reg.elems <= 1 {
            0
        } else {
            64 - (reg.elems - 1).leading_zeros()
        };
        if reg.addr_width < needed {
            errors.push(VerifyError {
                graph: String::new(),
                op: None,
                message: format!(
                    "custom register @{} has {} elements but only {} address bits",
                    reg.name, reg.elems, reg.addr_width
                ),
            });
        }
    }
    for rom in &module.roms {
        if let Some(bad) = rom.contents.iter().position(|c| c.width() != rom.width) {
            errors.push(VerifyError {
                graph: String::new(),
                op: None,
                message: format!(
                    "ROM @{} element {} has width {}, table is i{}",
                    rom.name,
                    bad,
                    rom.contents[bad].width(),
                    rom.width
                ),
            });
        }
    }
    for graph in &module.graphs {
        if let Err(mut e) = verify_graph(graph, module) {
            errors.append(&mut e);
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lil::{GraphKind, Op, ValueId};
    use bits::ApInt;

    fn op(kind: OpKind, operands: Vec<ValueId>, width: u32) -> Op {
        Op {
            kind,
            operands,
            width,
            pred: None,
            in_spawn: false,
        }
    }

    /// A minimal valid instruction graph: rd = rs1 + rs2.
    fn add_graph() -> Graph {
        Graph {
            name: "add".into(),
            kind: GraphKind::Instruction {
                mask: 0x7f,
                match_value: 0x0b,
            },
            ops: vec![
                op(OpKind::ReadRs1, vec![], 32),
                op(OpKind::ReadRs2, vec![], 32),
                op(OpKind::Add, vec![ValueId(0), ValueId(1)], 32),
                op(OpKind::WriteRd, vec![ValueId(2)], 0),
                op(OpKind::Sink, vec![], 0),
            ],
        }
    }

    fn module_with(graph: Graph) -> LilModule {
        LilModule {
            name: "t".into(),
            graphs: vec![graph],
            ..LilModule::default()
        }
    }

    #[test]
    fn accepts_well_formed_graph() {
        let m = module_with(add_graph());
        verify_module(&m).unwrap();
    }

    #[test]
    fn catches_width_mismatch() {
        let mut g = add_graph();
        g.ops[2].width = 16; // add of two i32 declared as i16
        let m = module_with(g);
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("result must match")),
            "{errs:?}"
        );
    }

    #[test]
    fn catches_missing_terminator() {
        let mut g = add_graph();
        g.ops.pop(); // drop the sink
        let m = module_with(g);
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("no lil.sink")),
            "{errs:?}"
        );
    }

    #[test]
    fn catches_arity_violation() {
        let mut g = add_graph();
        g.ops[2].operands.pop(); // add with one operand
        let m = module_with(g);
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("expects 2 operand")),
            "{errs:?}"
        );
    }

    #[test]
    fn catches_bad_predicate() {
        let mut g = add_graph();
        g.ops[3].pred = Some(ValueId(0)); // i32 predicate
        let m = module_with(g);
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("expected i1")),
            "{errs:?}"
        );
        // Predicate on a pure op is also rejected.
        let mut g2 = add_graph();
        g2.ops[2].pred = Some(ValueId(0));
        let errs2 = verify_module(&module_with(g2)).unwrap_err();
        assert!(
            errs2
                .iter()
                .any(|e| e.message.contains("must not carry a predicate")),
            "{errs2:?}"
        );
    }

    #[test]
    fn catches_unknown_register_and_rom() {
        let g = Graph {
            name: "g".into(),
            kind: GraphKind::Instruction {
                mask: 0,
                match_value: 0,
            },
            ops: vec![
                op(OpKind::Const(ApInt::zero(5)), vec![], 5),
                op(OpKind::ReadCustReg("missing".into()), vec![ValueId(0)], 32),
                op(OpKind::RomRead("nope".into()), vec![ValueId(0)], 8),
                op(OpKind::Sink, vec![], 0),
            ],
        };
        let errs = verify_module(&module_with(g)).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unknown custom register")));
        assert!(errs.iter().any(|e| e.message.contains("unknown ROM")));
    }

    #[test]
    fn collects_multiple_errors() {
        let mut g = add_graph();
        g.ops[2].width = 7;
        g.ops[3].pred = Some(ValueId(0));
        let errs = verify_module(&module_with(g)).unwrap_err();
        assert!(errs.len() >= 2, "wanted all violations, got {errs:?}");
    }

    #[test]
    fn deliberately_corrupted_lowered_graph_is_caught() {
        // Corrupt a graph the same way a buggy rewrite would: retarget an
        // operand to a later (non-dominating) value.
        let mut g = add_graph();
        g.ops[2].operands[0] = ValueId(3);
        let errs = verify_module(&module_with(g)).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("dominate")),
            "{errs:?}"
        );
    }

    #[test]
    fn module_level_shapes_checked() {
        let mut m = module_with(add_graph());
        m.custom_regs.push(crate::lil::CustomReg {
            name: "file".into(),
            width: 32,
            elems: 8,
            addr_width: 2, // needs 3
        });
        m.roms.push(crate::lil::Rom {
            name: "tbl".into(),
            width: 8,
            contents: vec![ApInt::zero(8), ApInt::zero(9)],
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("address bits")));
        assert!(errs.iter().any(|e| e.message.contains("ROM @tbl")));
    }
}
