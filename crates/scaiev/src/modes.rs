//! Execution modes (paper §3.2) and the post-scheduling variant selection
//! rule (paper §4.3).

use crate::datasheet::Timing;
use std::fmt;

/// How an interface use (and, by extension, an instruction) executes
/// relative to the base pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// All interface operations execute during their native availability in
    /// the base core's stages; the instruction behaves as if it were part
    /// of the pipeline.
    InPipeline,
    /// The instruction runs longer than the pipeline; SCAIE-V stalls the
    /// base core until it finishes. Negligible hardware overhead, but the
    /// host core idles.
    TightlyCoupled,
    /// The instruction runs decoupled (requested via `spawn`); SCAIE-V
    /// generates scoreboard logic for hazard-free out-of-order commit.
    Decoupled,
    /// Continuous execution independent of the fetched instruction stream
    /// (`always`-blocks); state updates carry mandatory valid bits and are
    /// exempt from hazard handling.
    Always,
}

impl ExecutionMode {
    /// Parses the lowercase config-file spelling.
    pub fn parse(s: &str) -> Option<ExecutionMode> {
        match s {
            "in-pipeline" => Some(ExecutionMode::InPipeline),
            "tightly-coupled" => Some(ExecutionMode::TightlyCoupled),
            "decoupled" => Some(ExecutionMode::Decoupled),
            "always" => Some(ExecutionMode::Always),
            _ => None,
        }
    }
}

impl fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExecutionMode::InPipeline => "in-pipeline",
            ExecutionMode::TightlyCoupled => "tightly-coupled",
            ExecutionMode::Decoupled => "decoupled",
            ExecutionMode::Always => "always",
        };
        f.write_str(s)
    }
}

/// Selects the sub-interface variant after scheduling (paper §4.3):
///
/// * within the native window → **in-pipeline**;
/// * otherwise, inside a `spawn`-block → **decoupled**;
/// * otherwise → **tightly-coupled**.
///
/// `native_latest` is the stage up to which the core natively supports the
/// interface (the write-back stage for `WrRD`); `timing.latest = None`
/// marks interfaces whose schedule window is unbounded but whose *native*
/// window still ends at `native_latest`.
pub fn select_mode(
    scheduled_stage: u32,
    timing: Timing,
    native_latest: u32,
    in_spawn: bool,
    is_always_block: bool,
) -> ExecutionMode {
    if is_always_block {
        return ExecutionMode::Always;
    }
    let native_end = timing.latest.unwrap_or(native_latest).min(native_latest);
    if scheduled_stage >= timing.earliest && scheduled_stage <= native_end {
        ExecutionMode::InPipeline
    } else if in_spawn {
        ExecutionMode::Decoupled
    } else {
        ExecutionMode::TightlyCoupled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasheet::Timing;

    #[test]
    fn in_window_is_in_pipeline() {
        let t = Timing::new(2, None, 0);
        assert_eq!(select_mode(3, t, 4, false, false), ExecutionMode::InPipeline);
        assert_eq!(select_mode(4, t, 4, true, false), ExecutionMode::InPipeline);
    }

    #[test]
    fn late_spawn_is_decoupled() {
        let t = Timing::new(2, None, 0);
        assert_eq!(select_mode(9, t, 4, true, false), ExecutionMode::Decoupled);
    }

    #[test]
    fn late_without_spawn_is_tightly_coupled() {
        let t = Timing::new(2, None, 0);
        assert_eq!(
            select_mode(9, t, 4, false, false),
            ExecutionMode::TightlyCoupled
        );
    }

    #[test]
    fn always_blocks_always_select_always() {
        let t = Timing::new(0, Some(0), 0);
        assert_eq!(select_mode(0, t, 4, false, true), ExecutionMode::Always);
    }

    #[test]
    fn mode_strings_round_trip() {
        for m in [
            ExecutionMode::InPipeline,
            ExecutionMode::TightlyCoupled,
            ExecutionMode::Decoupled,
            ExecutionMode::Always,
        ] {
            assert_eq!(ExecutionMode::parse(&m.to_string()), Some(m));
        }
        assert_eq!(ExecutionMode::parse("bogus"), None);
    }
}
