/root/repo/target/debug/deps/riscv-0a3154a4aea64ed2.d: crates/riscv/src/lib.rs crates/riscv/src/asm.rs crates/riscv/src/decode.rs crates/riscv/src/encode.rs crates/riscv/src/iss.rs Cargo.toml

/root/repo/target/debug/deps/libriscv-0a3154a4aea64ed2.rmeta: crates/riscv/src/lib.rs crates/riscv/src/asm.rs crates/riscv/src/decode.rs crates/riscv/src/encode.rs crates/riscv/src/iss.rs Cargo.toml

crates/riscv/src/lib.rs:
crates/riscv/src/asm.rs:
crates/riscv/src/decode.rs:
crates/riscv/src/encode.rs:
crates/riscv/src/iss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
