//! Arithmetic, logic, shift, comparison, and structural operations.
//!
//! All binary arithmetic/logic operations require equal operand widths and
//! produce a result of that same width (wrapping), exactly like fixed-width
//! RTL operators. Width adaptation is the caller's job via [`ApInt::zext`],
//! [`ApInt::sext`], and [`ApInt::trunc`] — mirroring how the CoreDSL type
//! checker inserts explicit extension/truncation casts.

use crate::apint::{limbs_for, ApInt, LIMB_BITS};
use std::cmp::Ordering;

impl ApInt {
    fn assert_same_width(&self, rhs: &ApInt, op: &str) {
        assert_eq!(
            self.width, rhs.width,
            "{op}: operand widths differ ({} vs {})",
            self.width, rhs.width
        );
    }

    /// Zero-extends (or keeps) the value to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width < self.width()`.
    pub fn zext(&self, width: u32) -> ApInt {
        assert!(width >= self.width, "zext cannot narrow");
        let mut out = ApInt::zero(width);
        out.limbs[..self.limbs.len()].copy_from_slice(&self.limbs);
        out
    }

    /// Sign-extends (or keeps) the value to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width < self.width()`.
    pub fn sext(&self, width: u32) -> ApInt {
        assert!(width >= self.width, "sext cannot narrow");
        let mut out = self.zext(width);
        if self.sign_bit() {
            for pos in self.width..width {
                out.set_bit(pos, true);
            }
        }
        out
    }

    /// Truncates to the low `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width > self.width()` or `width == 0`.
    pub fn trunc(&self, width: u32) -> ApInt {
        assert!(width <= self.width, "trunc cannot widen");
        let mut out = ApInt::zero(width);
        let n = out.limbs.len();
        out.limbs.copy_from_slice(&self.limbs[..n]);
        out.canonicalize();
        out
    }

    /// Resizes with zero-extension or truncation as needed.
    pub fn zext_or_trunc(&self, width: u32) -> ApInt {
        if width >= self.width {
            self.zext(width)
        } else {
            self.trunc(width)
        }
    }

    /// Resizes with sign-extension or truncation as needed.
    pub fn sext_or_trunc(&self, width: u32) -> ApInt {
        if width >= self.width {
            self.sext(width)
        } else {
            self.trunc(width)
        }
    }

    /// Wrapping addition of equal-width values.
    pub fn add(&self, rhs: &ApInt) -> ApInt {
        self.assert_same_width(rhs, "add");
        let mut out = ApInt::zero(self.width);
        let mut carry = 0u64;
        for i in 0..self.limbs.len() {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.canonicalize();
        out
    }

    /// Wrapping subtraction of equal-width values.
    pub fn sub(&self, rhs: &ApInt) -> ApInt {
        self.assert_same_width(rhs, "sub");
        self.add(&rhs.neg())
    }

    /// Two's-complement negation (wrapping).
    pub fn neg(&self) -> ApInt {
        self.not().add(&ApInt::one(self.width))
    }

    /// Bitwise NOT.
    pub fn not(&self) -> ApInt {
        let mut out = self.clone();
        for l in &mut out.limbs {
            *l = !*l;
        }
        out.canonicalize();
        out
    }

    /// Bitwise AND of equal-width values.
    pub fn and(&self, rhs: &ApInt) -> ApInt {
        self.assert_same_width(rhs, "and");
        let mut out = self.clone();
        for (o, r) in out.limbs.iter_mut().zip(&rhs.limbs) {
            *o &= r;
        }
        out
    }

    /// Bitwise OR of equal-width values.
    pub fn or(&self, rhs: &ApInt) -> ApInt {
        self.assert_same_width(rhs, "or");
        let mut out = self.clone();
        for (o, r) in out.limbs.iter_mut().zip(&rhs.limbs) {
            *o |= r;
        }
        out
    }

    /// Bitwise XOR of equal-width values.
    pub fn xor(&self, rhs: &ApInt) -> ApInt {
        self.assert_same_width(rhs, "xor");
        let mut out = self.clone();
        for (o, r) in out.limbs.iter_mut().zip(&rhs.limbs) {
            *o ^= r;
        }
        out
    }

    /// Wrapping multiplication of equal-width values (low half of product).
    pub fn mul(&self, rhs: &ApInt) -> ApInt {
        self.assert_same_width(rhs, "mul");
        let n = self.limbs.len();
        let mut acc = vec![0u64; n + 1];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                if i + j >= n {
                    break;
                }
                let t = (a as u128) * (b as u128) + (acc[i + j] as u128) + carry;
                acc[i + j] = t as u64;
                carry = t >> 64;
            }
        }
        let mut out = ApInt::zero(self.width);
        out.limbs.copy_from_slice(&acc[..n]);
        out.canonicalize();
        out
    }

    /// Unsigned division. Division by zero yields all-ones (the RISC-V
    /// convention, which CoreDSL simulators follow).
    pub fn udiv(&self, rhs: &ApInt) -> ApInt {
        self.assert_same_width(rhs, "udiv");
        if rhs.is_zero() {
            return ApInt::ones(self.width);
        }
        self.udivrem(rhs).0
    }

    /// Unsigned remainder. Remainder by zero yields the dividend (the RISC-V
    /// convention).
    pub fn urem(&self, rhs: &ApInt) -> ApInt {
        self.assert_same_width(rhs, "urem");
        if rhs.is_zero() {
            return self.clone();
        }
        self.udivrem(rhs).1
    }

    /// Signed division, truncating toward zero. Division by zero yields
    /// all-ones.
    pub fn sdiv(&self, rhs: &ApInt) -> ApInt {
        self.assert_same_width(rhs, "sdiv");
        if rhs.is_zero() {
            return ApInt::ones(self.width);
        }
        let (la, lb) = (self.sign_bit(), rhs.sign_bit());
        let a = if la { self.neg() } else { self.clone() };
        let b = if lb { rhs.neg() } else { rhs.clone() };
        let q = a.udivrem(&b).0;
        if la != lb {
            q.neg()
        } else {
            q
        }
    }

    /// Signed remainder (sign follows the dividend). Remainder by zero yields
    /// the dividend.
    pub fn srem(&self, rhs: &ApInt) -> ApInt {
        self.assert_same_width(rhs, "srem");
        if rhs.is_zero() {
            return self.clone();
        }
        let la = self.sign_bit();
        let a = if la { self.neg() } else { self.clone() };
        let b = if rhs.sign_bit() { rhs.neg() } else { rhs.clone() };
        let r = a.udivrem(&b).1;
        if la {
            r.neg()
        } else {
            r
        }
    }

    /// Schoolbook long division on canonical values; `rhs` must be non-zero.
    fn udivrem(&self, rhs: &ApInt) -> (ApInt, ApInt) {
        debug_assert!(!rhs.is_zero());
        let mut quot = ApInt::zero(self.width);
        let mut rem = ApInt::zero(self.width);
        for pos in (0..self.width).rev() {
            rem = rem.shl_bits(1);
            rem.set_bit(0, self.bit(pos));
            if rem.uge(rhs) {
                rem = rem.sub(rhs);
                quot.set_bit(pos, true);
            }
        }
        (quot, rem)
    }

    /// Logical left shift by a compile-time amount; bits shifted past the
    /// width are discarded. Shift amounts `>= width` yield zero.
    pub fn shl_bits(&self, amount: u32) -> ApInt {
        if amount >= self.width {
            return ApInt::zero(self.width);
        }
        let mut out = ApInt::zero(self.width);
        let limb_shift = (amount / LIMB_BITS) as usize;
        let bit_shift = amount % LIMB_BITS;
        for i in (limb_shift..self.limbs.len()).rev() {
            let mut v = self.limbs[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                v |= self.limbs[i - limb_shift - 1] >> (LIMB_BITS - bit_shift);
            }
            out.limbs[i] = v;
        }
        out.canonicalize();
        out
    }

    /// Logical right shift by a compile-time amount. Shift amounts `>= width`
    /// yield zero.
    pub fn lshr_bits(&self, amount: u32) -> ApInt {
        if amount >= self.width {
            return ApInt::zero(self.width);
        }
        let mut out = ApInt::zero(self.width);
        let limb_shift = (amount / LIMB_BITS) as usize;
        let bit_shift = amount % LIMB_BITS;
        for i in 0..(self.limbs.len() - limb_shift) {
            let mut v = self.limbs[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < self.limbs.len() {
                v |= self.limbs[i + limb_shift + 1] << (LIMB_BITS - bit_shift);
            }
            out.limbs[i] = v;
        }
        out
    }

    /// Arithmetic right shift by a compile-time amount. Shift amounts
    /// `>= width` yield all-sign-bits.
    pub fn ashr_bits(&self, amount: u32) -> ApInt {
        let sign = self.sign_bit();
        if amount >= self.width {
            return if sign {
                ApInt::ones(self.width)
            } else {
                ApInt::zero(self.width)
            };
        }
        let mut out = self.lshr_bits(amount);
        if sign {
            for pos in (self.width - amount)..self.width {
                out.set_bit(pos, true);
            }
        }
        out
    }

    /// Left shift by a runtime amount (`rhs` read as unsigned).
    pub fn shl(&self, rhs: &ApInt) -> ApInt {
        match rhs.try_to_u64() {
            Some(amt) if amt < self.width as u64 => self.shl_bits(amt as u32),
            _ => ApInt::zero(self.width),
        }
    }

    /// Logical right shift by a runtime amount (`rhs` read as unsigned).
    pub fn lshr(&self, rhs: &ApInt) -> ApInt {
        match rhs.try_to_u64() {
            Some(amt) if amt < self.width as u64 => self.lshr_bits(amt as u32),
            _ => ApInt::zero(self.width),
        }
    }

    /// Arithmetic right shift by a runtime amount (`rhs` read as unsigned).
    pub fn ashr(&self, rhs: &ApInt) -> ApInt {
        match rhs.try_to_u64() {
            Some(amt) if amt < self.width as u64 => self.ashr_bits(amt as u32),
            _ if self.sign_bit() => ApInt::ones(self.width),
            _ => ApInt::zero(self.width),
        }
    }

    /// Unsigned comparison.
    pub fn ucmp(&self, rhs: &ApInt) -> Ordering {
        self.assert_same_width(rhs, "ucmp");
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&rhs.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Signed comparison.
    pub fn scmp(&self, rhs: &ApInt) -> Ordering {
        self.assert_same_width(rhs, "scmp");
        match (self.sign_bit(), rhs.sign_bit()) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            _ => self.ucmp(rhs),
        }
    }

    /// `self < rhs`, unsigned.
    pub fn ult(&self, rhs: &ApInt) -> bool {
        self.ucmp(rhs) == Ordering::Less
    }

    /// `self <= rhs`, unsigned.
    pub fn ule(&self, rhs: &ApInt) -> bool {
        self.ucmp(rhs) != Ordering::Greater
    }

    /// `self >= rhs`, unsigned.
    pub fn uge(&self, rhs: &ApInt) -> bool {
        self.ucmp(rhs) != Ordering::Less
    }

    /// `self < rhs`, signed.
    pub fn slt(&self, rhs: &ApInt) -> bool {
        self.scmp(rhs) == Ordering::Less
    }

    /// `self <= rhs`, signed.
    pub fn sle(&self, rhs: &ApInt) -> bool {
        self.scmp(rhs) != Ordering::Greater
    }

    /// Extracts bits `[lo + width - 1 : lo]` as a new `width`-bit value.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `self.width()` or `width == 0`.
    pub fn extract(&self, lo: u32, width: u32) -> ApInt {
        assert!(width >= 1, "extract width must be at least 1");
        assert!(
            lo + width <= self.width,
            "extract [{}:{}] out of range for width {}",
            lo + width - 1,
            lo,
            self.width
        );
        self.lshr_bits(lo).trunc(width)
    }

    /// Concatenation `self :: rhs` — `self` becomes the *most* significant
    /// part, matching CoreDSL's and Verilog's `{a, b}` semantics.
    pub fn concat(&self, rhs: &ApInt) -> ApInt {
        let width = self.width + rhs.width;
        let mut out = rhs.zext(width);
        let hi = self.zext(width).shl_bits(rhs.width);
        out = out.or(&hi);
        out
    }

    /// Replicates the value `count` times (Verilog `{count{self}}`).
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn replicate(&self, count: u32) -> ApInt {
        assert!(count >= 1, "replicate count must be at least 1");
        let mut out = self.clone();
        for _ in 1..count {
            out = out.concat(self);
        }
        out
    }

    /// Fallible conversion to `u64` (unsigned interpretation).
    pub fn try_to_u64(&self) -> Option<u64> {
        if self.limbs.iter().skip(1).all(|&l| l == 0) {
            Some(self.limbs[0])
        } else {
            None
        }
    }

    /// Low 64 bits (unsigned interpretation, silently truncating).
    pub fn to_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// Signed interpretation as `i64`; sign-extends values narrower than 64
    /// bits and truncates wider ones.
    pub fn to_i64(&self) -> i64 {
        if self.width >= 64 {
            return self.limbs[0] as i64;
        }
        let raw = self.limbs[0];
        if self.sign_bit() {
            (raw | (u64::MAX << self.width)) as i64
        } else {
            raw as i64
        }
    }
}

// Allow `limbs_for` to be referenced from this module without an unused
// import warning when compiled standalone.
#[allow(unused)]
fn _touch(width: u32) -> usize {
    limbs_for(width)
}
