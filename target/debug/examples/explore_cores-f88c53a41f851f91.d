/root/repo/target/debug/examples/explore_cores-f88c53a41f851f91.d: examples/explore_cores.rs

/root/repo/target/debug/examples/explore_cores-f88c53a41f851f91: examples/explore_cores.rs

examples/explore_cores.rs:
