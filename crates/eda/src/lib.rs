//! ASIC synthesis estimation — the stand-in for the paper's commercial
//! 22 nm reference flow (§5.3–§5.4).
//!
//! The paper synthesizes each base core + ISAX + SCAIE-V interface logic
//! with a commercial flow and reports area and fmax overheads (Table 4).
//! Here, a calibrated standard-cell model maps the *actually generated*
//! RTL netlists to area (µm²) and critical-path delay (ns):
//!
//! * [`tech`] — per-operator area/delay as functions of bitwidth,
//!   calibrated to typical 22 nm standard-cell figures, plus per-core ASIC
//!   profiles (base area/fmax from Table 4's base row — those are inputs to
//!   our model, not results),
//! * [`area`] — netlist → cell area, including SCAIE-V interface logic,
//! * [`timing`] — per-stage combinational critical paths, the
//!   synthesis-effort model (timing pressure inflates area, §5.4's
//!   "the synthesis tool ... duplicating logic"), and the forwarding-path
//!   coupling that reproduces the ORCA frequency regressions,
//! * [`report`] — assembling Table 4-style rows.

pub mod area;
pub mod report;
pub mod tech;
pub mod timing;

pub use report::{evaluate_integration, AsicReport};
pub use tech::{CoreAsicProfile, TechLibrary};

/// Quick per-module synthesis estimate: cell area plus critical path,
/// under the default 22 nm library. This is the datum telemetry attaches
/// to every compiled unit; the full integration analysis (interface
/// logic, fmax coupling) stays in [`report`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModuleEstimate {
    pub area: area::ModuleArea,
    pub timing: timing::ModuleTiming,
}

/// Estimates one netlist with `lib`.
pub fn estimate_module(lib: &TechLibrary, module: &rtl::netlist::Module) -> ModuleEstimate {
    ModuleEstimate {
        area: area::module_area(lib, module),
        timing: timing::module_timing(lib, module),
    }
}
