//! Warm-started incremental solving across lazy-constraint rounds.
//!
//! The scheduling repair loop solves the same model repeatedly, each
//! round adding a handful of `<=` rows (chain breakers) — previously by
//! rebuilding and re-solving the whole model from scratch. An
//! [`Incremental`] keeps the presolve reduction and the final simplex
//! basis of the previous solve; each added row is rewritten into the
//! reduced space, appended to the live tableau
//! ([`crate::simplex`]`::Simplex::add_le_row`), and repaired with a
//! dual-simplex pass from the old optimum instead of a full two-phase
//! solve. Integrality is then re-established by the shared
//! branch-and-bound driver ([`crate::branch_bound`]).
//!
//! The warm path is exact: it reaches a true optimum of the updated
//! model (dual simplex terminates at primal+dual feasibility), just via
//! a different — much shorter — pivot sequence.

use crate::branch_bound;
use crate::budget::Budget;
use crate::model::{Model, Solution, SolveError, VarId};
use crate::presolve::{self, Presolve, Presolved, RowReduction};
use crate::rational::Rational;
use crate::simplex::Simplex;

/// State of the warm solver across rounds.
enum State {
    /// No solve has happened yet.
    Fresh,
    /// Presolve fixed every variable; the "basis" is the fixed point.
    Fixed(Vec<Rational>),
    /// A presolve reduction plus the optimal tableau of the last solve.
    Warm(Box<Presolved>, Box<Simplex>),
}

/// An ILP that accepts added `<=` rows between solves and re-optimizes
/// from the previous basis.
pub struct Incremental {
    model: Model,
    state: State,
    /// Rows added since the last solve, in original variable space.
    pending: Vec<(Vec<(VarId, Rational)>, Rational)>,
    /// Sticky infeasibility: once proved, every later solve fails fast.
    infeasible: bool,
}

impl Incremental {
    /// Wraps a fully built model. Rows already present solve cold on the
    /// first [`Incremental::solve`]; rows added afterwards solve warm.
    pub fn new(model: Model) -> Self {
        Incremental {
            model,
            state: State::Fresh,
            pending: Vec::new(),
            infeasible: false,
        }
    }

    /// The model including every added row (for exact feasibility checks).
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Adds a `<=` row with integer coefficients, like
    /// [`Model::constraint_le`]; it takes effect at the next
    /// [`Incremental::solve`].
    pub fn add_le(&mut self, terms: &[(VarId, i64)], rhs: i64) {
        self.model.constraint_le(terms, rhs);
        self.pending.push((
            terms
                .iter()
                .map(|&(v, c)| (v, Rational::int(c as i128)))
                .collect(),
            Rational::int(rhs as i128),
        ));
    }

    /// Solves the current model: cold (presolve + two-phase simplex +
    /// branch-and-bound) on the first call, warm (dual-simplex
    /// re-optimization of the added rows from the previous basis) after.
    ///
    /// # Errors
    ///
    /// Same contract as [`Model::solve_with_budget`]; infeasibility is
    /// sticky across calls.
    pub fn solve(&mut self, budget: &Budget) -> Result<Solution, SolveError> {
        if self.infeasible {
            return Err(SolveError::Infeasible);
        }
        let result = self.solve_inner(budget);
        if matches!(result, Err(SolveError::Infeasible)) {
            self.infeasible = true;
        }
        result
    }

    fn solve_inner(&mut self, budget: &Budget) -> Result<Solution, SolveError> {
        if matches!(self.state, State::Fresh) {
            // Initial rows are already part of the model.
            self.pending.clear();
            match presolve::presolve(&self.model, budget)? {
                Presolve::Solved(values) => {
                    let solution = fixed_solution(&self.model, values.clone());
                    self.state = State::Fixed(values);
                    Ok(solution)
                }
                Presolve::Reduced(pre) => {
                    let mut root = Simplex::new(&pre.reduced);
                    root.optimize(budget)?;
                    let sol = branch_bound::integerize(&pre, &root, &self.model, budget)?;
                    self.state = State::Warm(Box::new(pre), Box::new(root));
                    Ok(sol)
                }
            }
        } else {
            match &mut self.state {
                State::Fresh => unreachable!("handled above"),
                State::Fixed(values) => {
                    // Every variable is pinned by its bounds: added rows
                    // can only be checked, never change the solution.
                    for (terms, rhs) in self.pending.drain(..) {
                        let lhs = terms
                            .iter()
                            .fold(Rational::ZERO, |acc, &(v, c)| acc + c * values[v.0]);
                        if lhs > rhs {
                            return Err(SolveError::Infeasible);
                        }
                    }
                    Ok(fixed_solution(&self.model, values.clone()))
                }
                State::Warm(pre, root) => {
                    for (terms, rhs) in self.pending.drain(..) {
                        match pre.reduce_le_row(&terms, rhs) {
                            RowReduction::Satisfied => {}
                            RowReduction::Violated => return Err(SolveError::Infeasible),
                            RowReduction::Row(free, rhs) => {
                                let terms_f64: Vec<(usize, f64)> =
                                    free.iter().map(|&(v, c)| (v, c.to_f64())).collect();
                                root.add_le_row(&terms_f64, rhs.to_f64());
                            }
                        }
                    }
                    root.reoptimize(budget)?;
                    branch_bound::integerize(pre, root, &self.model, budget)
                }
            }
        }
    }
}

fn fixed_solution(model: &Model, values: Vec<Rational>) -> Solution {
    let objective = model
        .objective
        .iter()
        .enumerate()
        .fold(Rational::ZERO, |acc, (i, &c)| acc + c * values[i]);
    Solution { values, objective }
}

#[cfg(test)]
mod tests {
    use super::Incremental;
    use crate::{Budget, Model, Sense, SolveError, WorkKind};

    fn chain_model(n: usize) -> (Model, Vec<crate::VarId>) {
        let mut m = Model::new(Sense::Minimize);
        let t: Vec<_> = (0..n).map(|i| m.int_var(&format!("t{i}"))).collect();
        for &v in &t {
            m.obj(v, 1);
        }
        for w in t.windows(2) {
            m.constraint_le(&[(w[0], 1), (w[1], -1)], -1);
        }
        (m, t)
    }

    #[test]
    fn warm_rounds_match_from_scratch() {
        let (m, t) = chain_model(6);
        let budget = Budget::unlimited();
        let mut inc = Incremental::new(m.clone());
        let first = inc.solve(&budget).unwrap();
        assert_eq!(first.value(t[5]), 5);

        // Round 2: a chain breaker forcing a gap between t1 and t2.
        inc.add_le(&[(t[1], 1), (t[2], -1)], -3);
        let warm_before = budget.count(WorkKind::Pivot);
        let second = inc.solve(&budget).unwrap();
        let warm_pivots = budget.count(WorkKind::Pivot) - warm_before;
        assert_eq!(second.value(t[2]), second.value(t[1]) + 3);
        assert!(inc.model().is_feasible(&second.values));

        // A naive (presolve-free, from-scratch) solve of the same updated
        // model agrees exactly and pays more pivots for it.
        let scratch = inc.model().clone();
        let cold = Budget::unlimited();
        let cold_sol = crate::branch_bound::solve_naive(&scratch, &cold).unwrap();
        assert_eq!(cold_sol.objective, second.objective);
        assert!(
            warm_pivots <= cold.count(WorkKind::Pivot),
            "warm round used {warm_pivots} pivots, naive {}",
            cold.count(WorkKind::Pivot)
        );
    }

    #[test]
    fn added_row_can_prove_infeasibility_and_it_sticks() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x");
        m.obj(x, 1);
        m.constraint_ge(&[(x, 1)], 5);
        m.set_upper(x, 20);
        let budget = Budget::unlimited();
        let mut inc = Incremental::new(m);
        assert_eq!(inc.solve(&budget).unwrap().value(x), 5);
        inc.add_le(&[(x, 1)], 2);
        assert!(matches!(inc.solve(&budget), Err(SolveError::Infeasible)));
        // Sticky: later calls fail fast without re-solving.
        assert!(matches!(inc.solve(&budget), Err(SolveError::Infeasible)));
    }

    #[test]
    fn fully_fixed_models_check_added_rows_exactly() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.int_var("a");
        let b = m.int_var("b");
        m.obj(a, 1);
        m.obj(b, 1);
        m.constraint_le(&[(a, 1), (b, -1)], -3);
        m.set_upper(a, 0);
        m.set_upper(b, 3); // presolve fixes a=0, b=3
        let budget = Budget::unlimited();
        let mut inc = Incremental::new(m);
        let sol = inc.solve(&budget).unwrap();
        assert_eq!((sol.value(a), sol.value(b)), (0, 3));
        assert_eq!(budget.count(WorkKind::Pivot), 0);

        inc.add_le(&[(b, 1), (a, -1)], 3); // holds at the fixed point
        assert!(inc.solve(&budget).is_ok());
        inc.add_le(&[(b, 1)], 2); // contradicts b = 3
        assert!(matches!(inc.solve(&budget), Err(SolveError::Infeasible)));
    }

    #[test]
    fn budget_exhaustion_mid_warm_round_is_typed() {
        let (m, t) = chain_model(8);
        let generous = Budget::unlimited();
        let mut inc = Incremental::new(m);
        inc.solve(&generous).unwrap();
        // Find how much a warm round needs, then replay with less: the
        // exhaustion must surface as a typed error mid-warm-start.
        inc.add_le(&[(t[2], 1), (t[3], -1)], -4);
        let before = generous.used();
        inc.solve(&generous).unwrap();
        let warm_cost = generous.used() - before;
        assert!(warm_cost > 0, "warm round must do budgeted work");

        let (m2, t2) = chain_model(8);
        let tight = Budget::unlimited();
        let mut inc2 = Incremental::new(m2);
        inc2.solve(&tight).unwrap();
        let exact = Budget::new(tight.used() + warm_cost - 1);
        let (m3, _) = chain_model(8);
        let mut inc3 = Incremental::new(m3);
        inc3.solve(&exact).unwrap();
        inc3.add_le(&[(t2[2], 1), (t2[3], -1)], -4);
        assert!(matches!(inc3.solve(&exact), Err(SolveError::Exhausted(_))));
    }
}
