/root/repo/target/debug/deps/scaiev-1f5711eae1328d7d.d: crates/scaiev/src/lib.rs crates/scaiev/src/arbiter.rs crates/scaiev/src/config.rs crates/scaiev/src/datasheet.rs crates/scaiev/src/hazard.rs crates/scaiev/src/integrate.rs crates/scaiev/src/modes.rs crates/scaiev/src/iface.rs crates/scaiev/src/yaml.rs Cargo.toml

/root/repo/target/debug/deps/libscaiev-1f5711eae1328d7d.rmeta: crates/scaiev/src/lib.rs crates/scaiev/src/arbiter.rs crates/scaiev/src/config.rs crates/scaiev/src/datasheet.rs crates/scaiev/src/hazard.rs crates/scaiev/src/integrate.rs crates/scaiev/src/modes.rs crates/scaiev/src/iface.rs crates/scaiev/src/yaml.rs Cargo.toml

crates/scaiev/src/lib.rs:
crates/scaiev/src/arbiter.rs:
crates/scaiev/src/config.rs:
crates/scaiev/src/datasheet.rs:
crates/scaiev/src/hazard.rs:
crates/scaiev/src/integrate.rs:
crates/scaiev/src/modes.rs:
crates/scaiev/src/iface.rs:
crates/scaiev/src/yaml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
