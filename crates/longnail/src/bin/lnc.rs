//! `lnc` — the Longnail command-line compiler.
//!
//! ```text
//! usage: lnc <file.core_desc> --core <ORCA|Piccolo|PicoRV32|VexRiscv>
//!            [--unit <InstructionSet>] [--out <dir>]
//!            [--emit hir|lil|sv|config|datasheet] [--budget <units>]
//!            [--opt-level <0|1|2>]
//!            [--trace] [--metrics-out <path>] [--profile-folded <path>]
//!            [--report] [--xcheck]
//!        lnc --matrix [--jobs <N>] [--out <dir>] [--budget <units>] [--xcheck]
//!            [--opt-level <0|1|2>] [--keep-going] [--fault-plan <path>]
//!            [--summary] [--verbose]
//!            [--trace] [--metrics-out <path>] [--profile-folded <path>]
//!            [--cache-dir <dir>] [--cache-mem-bytes <N>]
//!        lnc serve [--jobs <N>] [--budget <units>] [--fault-plan <path>]
//!            [--opt-level <0|1|2>] [--cache-dir <dir>] [--cache-mem-bytes <N>]
//!
//! Compiles the CoreDSL description for the selected host core. Without
//! --emit, writes one SystemVerilog file per instruction/always-block plus
//! the SCAIE-V configuration YAML into --out (default: the current
//! directory) and prints a summary. With --emit, prints the requested
//! representation to stdout instead.
//!
//! --matrix compiles the full evaluation matrix (the eight Table 3 ISAXes
//! for all four evaluation cores) through a shared frontend cache, fanning
//! the 32 cells out across --jobs worker threads (default 1). Artifacts
//! land in --out/<isax>_<core>/: the SystemVerilog per unit, the SCAIE-V
//! YAML, and the stripped (timing-free) telemetry trace as JSONL. Output
//! is byte-identical for every --jobs value.
//!
//! --xcheck runs the differential X-propagation oracle after compiling:
//! every generated netlist is re-executed under four-state IEEE-1800
//! semantics (`rtl::xsim`) against the two-valued interpreter, and the
//! static X-hazard lint is applied. Any mismatch, X bit escaping to an
//! output from fully-known stimulus, or hazard finding is an internal
//! fault (exit 2). In --matrix mode the per-cell checks are fanned across
//! --jobs workers and each cell's xcheck telemetry lands in
//! --out/<isax>_<core>/xcheck.jsonl.
//!
//! --budget bounds the deterministic solver work per instruction; when the
//! exact scheduler exhausts it, the instruction degrades to the verified
//! ASAP fallback and a warning is reported.
//!
//! --opt-level {0,1,2} selects the netlist optimization effort (default
//! 0: no opt stage, byte-identical to the pre-optimizer flow). Levels 1
//! and 2 run the oracle-gated rewrite pipeline (`rtl::opt`) on every
//! generated netlist between RTL construction and SystemVerilog emission;
//! an optimized netlist is only kept when it lints clean and a 32-cycle
//! lockstep differential simulation against the unoptimized module shows
//! zero disagreements — otherwise the unit falls back to the unoptimized
//! netlist with a warning. In serve mode, --opt-level sets the daemon
//! default and each job may override it with an `"opt_level"` field. The
//! level is part of the cache key and the persistent schema fingerprint,
//! so artifact bundles never cross optimization levels.
//!
//! --cache-mem-bytes <N> (matrix and serve) caps the shared in-memory
//! stage cache at ~N bytes; least-recently-used stage artifacts are
//! evicted (and recomputed on demand) once the estimate exceeds the cap.
//! Evictions show up in the `cache-stats:` lines.
//!
//! Observability: --trace prints the hierarchical stage-span tree with
//! wall-clock timings to stderr (in --matrix mode, the merged matrix
//! tree); --metrics-out writes the full telemetry event stream (spans,
//! counters, gauges, diagnostics) as JSON lines — in --matrix mode the
//! *merged, unstripped* matrix trace with per-cell spans nested under a
//! root `matrix` span; --profile-folded writes an inferno/flamegraph-
//! compatible folded-stack profile (`compile;frontend 1234` lines, self
//! time in ns); --report prints the per-unit compile report (schedule,
//! hardware, and solver statistics) to stdout instead of writing
//! artifacts (single-file mode only).
//!
//! Matrix observability: every --matrix run writes matrix_summary.json
//! (the deterministic, timing-stripped aggregation — byte-identical for
//! every --jobs value) into --out; --summary additionally prints the
//! full per-stage min/p50/p95/max table with the critical-path cell,
//! cache attribution, and per-worker pool utilization to stdout;
//! --verbose emits a one-line progress summary per cell to stderr.
//!
//! --keep-going (matrix only) grades a batch by what survived: cells
//! are always compiled independently (one faulting cell never stops the
//! others), and with this flag a partially successful batch exits 3
//! instead of 1/2, reserving the failure codes for batches where *every*
//! cell failed.
//!
//! --fault-plan injects deterministic faults (panics at stage
//! boundaries, forced parse errors, solver-budget exhaustion, poisoned
//! frontend-cache entries) into the cells a plan file names — see
//! `longnail::faults` for the line format. Chaos testing only.
//!
//! --cache-dir <dir> (matrix and serve) persists whole-cell artifact
//! bundles keyed by content (source + datasheet + options + schema
//! fingerprint). A warm rerun with nothing changed compiles zero cells
//! — every bundle's bytes are written back verbatim, so the artifact
//! tree is byte-identical to the cold run's — and editing one ISAX
//! recompiles only that ISAX's cells. Per-stage hit/miss attribution
//! goes to stderr as `cache-stats:` lines. Cells a fault plan targets
//! bypass the cache in both directions, and cells with errors are never
//! stored, so deterministic failures keep failing (identically) warm.
//! Incompatible with --xcheck, which needs in-memory compilations.
//!
//! serve runs the compile daemon: line-delimited JSON jobs on stdin
//! (`{"id": ..., "isax": <builtin>, "core": <core>}` or `{"id": ...,
//! "unit": ..., "core": ..., "src": <CoreDSL text>}`), one JSON result
//! per job on stdout in input order (`{"id", "status": "ok|error|fault",
//! "exit": 0|1|2, "units", "message"}`). Jobs fan out over --jobs
//! workers with matrix-grade per-cell isolation and share one
//! incremental pipeline cache (plus the persistent layer under
//! --cache-dir), so repeated jobs replay cached stages instead of
//! recompiling. The daemon exits 0; per-job failure is data.
//!
//! Diagnostics go to stderr. Exit codes: 0 — clean or warnings only;
//! 1 — at least one unit failed to compile (artifacts for the remaining
//! units are still written); 2 — an internal compiler fault (verifier,
//! netlist lint, or a contained panic); 3 — partial success under
//! --keep-going (some cells failed, at least one compiled).
//! ```

use longnail::driver::{builtin_datasheet, eval_datasheets, MatrixResult, EVAL_CORES};
use longnail::{isax_lib, Longnail, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    input: Option<PathBuf>,
    core: Option<String>,
    unit: Option<String>,
    out: PathBuf,
    emit: Option<String>,
    budget: Option<u64>,
    trace: bool,
    metrics_out: Option<PathBuf>,
    report: bool,
    matrix: bool,
    jobs: usize,
    xcheck: bool,
    keep_going: bool,
    fault_plan: Option<PathBuf>,
    summary: bool,
    verbose: bool,
    profile_folded: Option<PathBuf>,
    cache_dir: Option<PathBuf>,
    serve: bool,
    opt_level: u8,
    cache_mem_bytes: Option<u64>,
}

fn parse_args_from(args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut input = None;
    let mut core = None;
    let mut unit = None;
    let mut out = PathBuf::from(".");
    let mut emit = None;
    let mut budget = None;
    let mut trace = false;
    let mut metrics_out = None;
    let mut report = false;
    let mut matrix = false;
    let mut jobs = 1usize;
    let mut xcheck = false;
    let mut keep_going = false;
    let mut fault_plan = None;
    let mut summary = false;
    let mut verbose = false;
    let mut profile_folded = None;
    let mut cache_dir = None;
    let mut serve = false;
    let mut opt_level = 0u8;
    let mut cache_mem_bytes = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--core" => core = Some(args.next().ok_or("--core needs a value")?),
            "--unit" => unit = Some(args.next().ok_or("--unit needs a value")?),
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a value")?),
            "--emit" => emit = Some(args.next().ok_or("--emit needs a value")?),
            "--budget" => {
                let v = args.next().ok_or("--budget needs a value")?;
                budget = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--budget: `{v}` is not a work-unit count"))?,
                );
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs: `{v}` is not a worker count >= 1"))?;
            }
            "--matrix" => matrix = true,
            "--xcheck" => xcheck = true,
            "--keep-going" => keep_going = true,
            "--fault-plan" => {
                fault_plan = Some(PathBuf::from(
                    args.next().ok_or("--fault-plan needs a value")?,
                ));
            }
            "--trace" => trace = true,
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    args.next().ok_or("--metrics-out needs a value")?,
                ));
            }
            "--report" => report = true,
            "--summary" => summary = true,
            "--verbose" => verbose = true,
            "--profile-folded" => {
                profile_folded = Some(PathBuf::from(
                    args.next().ok_or("--profile-folded needs a value")?,
                ));
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(
                    args.next().ok_or("--cache-dir needs a value")?,
                ));
            }
            "--opt-level" => {
                let v = args.next().ok_or("--opt-level needs a value")?;
                opt_level = v
                    .parse::<u8>()
                    .ok()
                    .filter(|&n| n <= 2)
                    .ok_or_else(|| format!("--opt-level: `{v}` is not 0, 1, or 2"))?;
            }
            "--cache-mem-bytes" => {
                let v = args.next().ok_or("--cache-mem-bytes needs a value")?;
                cache_mem_bytes = Some(
                    v.parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--cache-mem-bytes: `{v}` is not a byte count >= 1"))?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"))
            }
            "serve" if !serve && input.is_none() => serve = true,
            other => {
                if input.replace(PathBuf::from(other)).is_some() {
                    return Err("more than one input file".into());
                }
            }
        }
    }
    if serve {
        // The daemon owns its I/O protocol; everything that shapes
        // stdout/artifact emission in the other modes is meaningless.
        if matrix {
            return Err("serve reads jobs from stdin; drop --matrix".into());
        }
        if input.is_some() {
            return Err("serve reads jobs from stdin; drop the input file".into());
        }
        for (set, flag) in [
            (core.is_some(), "--core"),
            (unit.is_some(), "--unit"),
            (emit.is_some(), "--emit"),
            (report, "--report"),
            (summary, "--summary"),
            (verbose, "--verbose"),
            (xcheck, "--xcheck"),
            (keep_going, "--keep-going"),
            (trace, "--trace"),
            (metrics_out.is_some(), "--metrics-out"),
            (profile_folded.is_some(), "--profile-folded"),
        ] {
            if set {
                return Err(format!("`{flag}` does not apply to serve mode (allowed: \
                                    --jobs, --budget, --fault-plan, --cache-dir, \
                                    --opt-level, --cache-mem-bytes)"));
            }
        }
    } else if cache_dir.is_some() {
        if xcheck {
            return Err("--cache-dir serves cells from stored artifacts; --xcheck needs \
                        in-memory compilations — drop one of them"
                .into());
        }
        if !matrix {
            return Err("--cache-dir persists matrix/serve cell bundles; add --matrix \
                        or use serve mode"
                .into());
        }
    }
    if cache_mem_bytes.is_some() && !serve && !matrix {
        return Err("--cache-mem-bytes bounds the shared matrix/serve stage cache; \
                    add --matrix or use serve mode"
            .into());
    }
    if matrix {
        if input.is_some() {
            return Err("--matrix compiles the builtin evaluation matrix; drop the input file".into());
        }
        if core.is_some() {
            return Err("--matrix targets every evaluation core; drop --core".into());
        }
        if unit.is_some() {
            return Err("--matrix compiles every builtin ISAX unit; drop --unit".into());
        }
        if emit.is_some() {
            return Err("--emit prints one representation; it does not apply to --matrix".into());
        }
        if report {
            return Err(
                "--report is the single-compilation report; use --summary for a matrix".into(),
            );
        }
    } else if !serve {
        if keep_going {
            return Err("--keep-going only applies to --matrix batches".into());
        }
        if summary {
            return Err("--summary aggregates a matrix; use --report for one compilation".into());
        }
        if verbose {
            return Err("--verbose reports per-cell matrix progress; drop it or add --matrix".into());
        }
        if input.is_none() {
            return Err("missing input file".into());
        }
        if core.is_none() {
            return Err(format!(
                "missing --core (one of: {})",
                EVAL_CORES.join(", ")
            ));
        }
    }
    Ok(Args {
        input,
        core,
        unit,
        out,
        emit,
        budget,
        trace,
        metrics_out,
        report,
        matrix,
        jobs,
        xcheck,
        keep_going,
        fault_plan,
        summary,
        verbose,
        profile_folded,
        cache_dir,
        serve,
        opt_level,
        cache_mem_bytes,
    })
}

fn usage() {
    eprintln!(
        "usage: lnc <file.core_desc> --core <{}> [--unit <InstructionSet>] \
         [--out <dir>] [--emit hir|lil|sv|config|datasheet] [--budget <units>] \
         [--opt-level <0|1|2>] \
         [--trace] [--metrics-out <path>] [--profile-folded <path>] [--report] [--xcheck]\n\
         \u{20}      lnc --matrix [--jobs <N>] [--out <dir>] [--budget <units>] [--xcheck] \
         [--opt-level <0|1|2>] [--keep-going] [--fault-plan <path>] [--summary] [--verbose] \
         [--trace] [--metrics-out <path>] [--profile-folded <path>] [--cache-dir <dir>] \
         [--cache-mem-bytes <N>]\n\
         \u{20}      lnc serve [--jobs <N>] [--budget <units>] [--fault-plan <path>] \
         [--opt-level <0|1|2>] [--cache-dir <dir>] [--cache-mem-bytes <N>]",
        EVAL_CORES.join("|")
    );
}

/// Maps the accumulated diagnostics to the process exit code.
fn exit_for(compiled: &longnail::CompiledIsax) -> ExitCode {
    match compiled.diagnostics.worst() {
        Some(Severity::Fault) => ExitCode::from(2),
        Some(Severity::Error) => ExitCode::FAILURE,
        _ => ExitCode::SUCCESS,
    }
}

/// Builds the run's pipeline cache: in-memory only, or backed by the
/// persistent `--cache-dir` layer (whose schema fingerprint folds in the
/// compiler's config fingerprint). `--cache-mem-bytes` caps the byte-
/// accounted in-memory layer.
fn build_cache(
    cache_dir: Option<&std::path::Path>,
    ln: &Longnail,
    cache_mem_bytes: Option<u64>,
) -> Result<longnail::PipelineCache, ExitCode> {
    let pipe = match cache_dir {
        Some(dir) => longnail::PipelineCache::with_disk(dir, &ln.config_fingerprint()).map_err(
            |e| {
                eprintln!("error: cannot open cache dir {}: {e}", dir.display());
                ExitCode::FAILURE
            },
        )?,
        None => longnail::PipelineCache::new(),
    };
    pipe.store().set_capacity(cache_mem_bytes);
    Ok(pipe)
}

/// Compiles and writes the full evaluation matrix. With `--cache-dir`,
/// cells whose content key matches a stored bundle are served from disk
/// verbatim and only the rest are compiled.
fn run_matrix(ln: &Longnail, args: &Args) -> ExitCode {
    use longnail::serve::{bundle_units, fault_bypassed, probe_cell, store_cell, DIAGNOSTICS_FILE};
    let isaxes = isax_lib::all_isaxes();
    let cores = eval_datasheets();
    let pipe = match build_cache(args.cache_dir.as_deref(), ln, args.cache_mem_bytes) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let t0 = std::time::Instant::now();
    let all_cells: Vec<longnail::MatrixCell> = isaxes
        .iter()
        .flat_map(|(isax, unit, src)| {
            cores.iter().map(move |ds| longnail::MatrixCell {
                isax: isax.clone(),
                unit: unit.clone(),
                src: src.clone(),
                datasheet: ds.clone(),
            })
        })
        .collect();
    // Probe the persistent layer first: a hit serves the whole cell's
    // artifact bundle verbatim; only the misses get compiled.
    let mut served: Vec<Option<longnail::CellBundle>> = (0..all_cells.len()).map(|_| None).collect();
    let mut probed = 0u64;
    if let Some(disk) = pipe.disk() {
        for (i, cell) in all_cells.iter().enumerate() {
            if !fault_bypassed(ln, cell) {
                probed += 1;
                served[i] = probe_cell(disk, ln, cell);
            }
        }
    }
    let miss_idx: Vec<usize> = (0..all_cells.len()).filter(|&i| served[i].is_none()).collect();
    let miss_cells: Vec<longnail::MatrixCell> =
        miss_idx.iter().map(|&i| all_cells[i].clone()).collect();
    let matrix: MatrixResult = ln.compile_cells(&miss_cells, args.jobs, &pipe);
    let wall = t0.elapsed();
    let mut entry_at: Vec<Option<usize>> = vec![None; all_cells.len()];
    for (k, &i) in miss_idx.iter().enumerate() {
        entry_at[i] = Some(k);
    }
    let mut worst = 0u8;
    let (mut failed_cells, mut clean_cells) = (0usize, 0usize);
    // Stripped traces of disk-served cells, re-parsed for aggregation:
    // a stripped trace carries exactly the deterministic view the
    // summary needs, so warm summaries stay byte-identical to cold.
    let mut served_traces: Vec<Option<telemetry::Trace>> = (0..all_cells.len()).map(|_| None).collect();
    for (i, cell) in all_cells.iter().enumerate() {
        let core = &cell.datasheet.core;
        let cell_dir = args.out.join(format!("{}_{}", cell.isax, core));
        if let Err(e) = std::fs::create_dir_all(&cell_dir) {
            eprintln!("error: cannot create {}: {e}", cell_dir.display());
            return ExitCode::FAILURE;
        }
        if let Some(bundle) = &served[i] {
            // Warm path: the stored bytes are what the cold run wrote,
            // so byte-identity holds by construction.
            for (name, contents) in &bundle.files {
                if name.starts_with("__") {
                    continue;
                }
                let path = cell_dir.join(name);
                if let Err(e) = std::fs::write(&path, contents) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            if let Some(diags) = bundle.file(DIAGNOSTICS_FILE) {
                eprint!(
                    "{}",
                    diags
                        .lines()
                        .map(|l| format!("{}×{core}: {l}\n", cell.isax))
                        .collect::<String>()
                );
            }
            served_traces[i] = bundle
                .file("trace.jsonl")
                .and_then(|t| telemetry::Trace::from_jsonl(t).ok());
            clean_cells += 1;
            println!(
                "compiled {:<14} for {:<9} -> {} unit(s)",
                cell.isax,
                core,
                bundle_units(bundle)
            );
            if args.verbose {
                eprintln!(
                    "cell {}_{core}: ok {} unit(s), served from cell cache",
                    cell.isax,
                    bundle_units(bundle)
                );
            }
            continue;
        }
        let entry = &matrix.entries[entry_at[i].expect("every probe miss was compiled")];
        let compiled = match &entry.outcome {
            Ok(c) => c,
            Err(e) => {
                if e.frontend_errors.is_empty() {
                    eprintln!("{}: {}×{}: {e}", e.severity, entry.isax, entry.core);
                } else {
                    for d in &e.frontend_errors {
                        eprintln!("error: {}×{}: [frontend] {d}", entry.isax, entry.core);
                    }
                }
                worst = worst.max(if e.severity == Severity::Fault { 2 } else { 1 });
                failed_cells += 1;
                if args.verbose {
                    eprintln!(
                        "cell {}_{}: failed [{}] {}",
                        entry.isax, entry.core, e.stage, e.message
                    );
                }
                continue;
            }
        };
        if !compiled.diagnostics.is_empty() {
            eprint!(
                "{}",
                compiled
                    .diagnostics
                    .render()
                    .lines()
                    .map(|l| format!("{}×{}: {l}\n", entry.isax, entry.core))
                    .collect::<String>()
            );
        }
        worst = worst.max(match compiled.diagnostics.worst() {
            Some(Severity::Fault) => 2,
            Some(Severity::Error) => 1,
            _ => 0,
        });
        if compiled.diagnostics.has_errors() {
            failed_cells += 1;
        } else {
            clean_cells += 1;
        }
        for g in &compiled.graphs {
            let path = cell_dir.join(format!("{}_{}.sv", compiled.name, g.name));
            if let Err(e) = std::fs::write(&path, &g.verilog) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        let config_path = cell_dir.join(format!("{}.scaiev.yaml", compiled.name));
        if let Err(e) = std::fs::write(&config_path, compiled.config.to_yaml()) {
            eprintln!("error: cannot write {}: {e}", config_path.display());
            return ExitCode::FAILURE;
        }
        // The stripped trace is the deterministic projection: byte-equal
        // for every --jobs value, which ci.sh's determinism gate diffs.
        let trace_path = cell_dir.join("trace.jsonl");
        if let Err(e) = std::fs::write(&trace_path, compiled.trace.stripped().to_jsonl()) {
            eprintln!("error: cannot write {}: {e}", trace_path.display());
            return ExitCode::FAILURE;
        }
        if let Some(disk) = pipe.disk() {
            // Persist the clean bundle (store_cell refuses errored
            // compiles) so the next run serves this cell from disk.
            if !fault_bypassed(ln, cell) {
                if let Err(e) = store_cell(disk, ln, cell, compiled) {
                    eprintln!("warning: cell cache store failed: {e}");
                }
            }
        }
        println!(
            "compiled {:<14} for {:<9} -> {} unit(s)",
            entry.isax,
            entry.core,
            compiled.graphs.len()
        );
        if args.verbose {
            let stage_spans: usize = telemetry::STAGES
                .iter()
                .map(|s| compiled.trace.span_count(s))
                .sum();
            eprintln!(
                "cell {}_{}: ok {} unit(s), {} stage span(s), {} cache hit(s)",
                entry.isax,
                entry.core,
                compiled.graphs.len(),
                stage_spans,
                compiled
                    .trace
                    .counter_total(telemetry::metrics::CACHE_FRONTEND_HIT)
            );
        }
    }
    if args.xcheck {
        // Fan the per-cell differential checks across the same worker
        // count as the compile; results come back in deterministic input
        // order regardless of scheduling.
        let reports: Vec<Option<longnail::XCheckReport>> =
            pool::run_indexed(matrix.entries.len(), args.jobs, |i| {
                matrix.entries[i]
                    .outcome
                    .as_ref()
                    .ok()
                    .map(longnail::xcheck_compiled)
            });
        let mut cells = 0u64;
        let (mut mism, mut xbits, mut hazards) = (0u64, 0u64, 0u64);
        for (entry, report) in matrix.entries.iter().zip(&reports) {
            let Some(report) = report else { continue };
            cells += 1;
            mism += report.mismatches();
            xbits += report.x_output_bits();
            hazards += report.lint_findings();
            for p in report.problems() {
                eprintln!("{}×{}: xcheck: {p}", entry.isax, entry.core);
            }
            let cell_dir = args.out.join(format!("{}_{}", entry.isax, entry.core));
            let path = cell_dir.join("xcheck.jsonl");
            if let Err(e) = std::fs::write(&path, report.trace.stripped().to_jsonl()) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            if !report.is_clean() {
                worst = worst.max(2);
            }
        }
        println!(
            "xcheck: {cells} cell(s), {mism} mismatch(es), {xbits} X output bit(s), \
             {hazards} hazard(s)"
        );
    }
    // --- Matrix observability: aggregation, summary, merged trace ---
    // Disk-served cells contribute their stored stripped trace; compiled
    // cells their live one. Both reduce to the same deterministic view.
    let cell_traces: Vec<(String, &telemetry::Trace)> = all_cells
        .iter()
        .enumerate()
        .filter_map(|(i, cell)| {
            let name = format!("{}_{}", cell.isax, cell.datasheet.core);
            if let Some(t) = &served_traces[i] {
                return Some((name, t));
            }
            entry_at[i]
                .and_then(|k| matrix.entries[k].outcome.as_ref().ok())
                .map(|c| (name, &c.trace))
        })
        .collect();
    let mut summary = telemetry::aggregate::summarize(&cell_traces);
    // Batch-level fields come from the authoritative MatrixResult (failed
    // cells have no trace for the aggregator to see).
    summary.cells = all_cells.len() as u64;
    summary.jobs = matrix.jobs as u64;
    summary.cache_hits = matrix.cache_hits;
    summary.cache_misses = matrix.cache_misses;
    summary.cell_faults = matrix.cell_faults;
    summary.errors_recovered = matrix.errors_recovered;
    summary.pool_wall_ns = matrix.pool_stats.wall_ns;
    // Per-stage cache attribution: the compile run's hit/miss deltas,
    // plus one credited hit per stage span a disk-served bundle would
    // have recomputed. The synthetic `cell` row counts whole-bundle
    // probes of the persistent layer.
    let served_count = served.iter().flatten().count() as u64;
    for stage in telemetry::STAGES {
        let d = matrix
            .stage_stats
            .iter()
            .find(|s| s.stage == stage)
            .cloned()
            .unwrap_or_default();
        let credit: u64 = served_traces
            .iter()
            .flatten()
            .map(|t| t.span_count(stage) as u64)
            .sum();
        summary.stage_cache.push(telemetry::aggregate::StageCacheSummary {
            stage: stage.to_string(),
            hits: d.hits + credit,
            misses: d.misses,
            waits: d.waits,
        });
    }
    summary.stage_cache.push(telemetry::aggregate::StageCacheSummary {
        stage: "cell".to_string(),
        hits: served_count,
        misses: probed - served_count,
        waits: 0,
    });
    if args.cache_dir.is_some() {
        for r in &summary.stage_cache {
            eprintln!("cache-stats: {} hits={} misses={}", r.stage, r.hits, r.misses);
        }
    }
    for (w, ws) in matrix.pool_stats.per_worker.iter().enumerate() {
        summary.pool.push(telemetry::aggregate::PoolWorkerSummary {
            jobs: ws.jobs,
            busy_ns: ws.busy_ns,
            utilization: matrix.pool_stats.utilization(w),
        });
    }
    // matrix_summary.json is the deterministic projection — part of the
    // artifact tree ci.sh diffs across --jobs values.
    let summary_path = args.out.join("matrix_summary.json");
    if let Err(e) = std::fs::write(&summary_path, summary.stripped().to_json()) {
        eprintln!("error: cannot write {}: {e}", summary_path.display());
        return ExitCode::FAILURE;
    }
    if args.summary {
        print!("{}", summary.render());
    }
    if args.trace || args.metrics_out.is_some() || args.profile_folded.is_some() {
        use telemetry::metrics;
        let matrix_counters = vec![
            (metrics::CACHE_FRONTEND_HIT.to_string(), matrix.cache_hits),
            (metrics::CACHE_FRONTEND_MISS.to_string(), matrix.cache_misses),
            (
                metrics::POOL_QUEUE_WAIT_NS.to_string(),
                matrix.pool_stats.queue_wait_total_ns(),
            ),
            (
                metrics::POOL_RUN_NS.to_string(),
                matrix.pool_stats.run_total_ns(),
            ),
            (metrics::POOL_WALL_NS.to_string(), matrix.pool_stats.wall_ns),
        ];
        let matrix_gauges: Vec<(String, f64)> = (0..matrix.pool_stats.per_worker.len())
            .map(|w| {
                (
                    metrics::POOL_WORKER_UTILIZATION.to_string(),
                    matrix.pool_stats.utilization(w),
                )
            })
            .collect();
        let merged = telemetry::aggregate::merge_traces(
            &cell_traces,
            &matrix_counters,
            &matrix_gauges,
            matrix.pool_stats.wall_ns,
        );
        if args.trace {
            eprint!("{}", telemetry::report::render_tree(&merged));
        }
        if let Some(path) = &args.metrics_out {
            // The merged stream keeps full timings and the pool/cache
            // metrics — the *unstripped* matrix view.
            if let Err(e) = std::fs::write(path, merged.to_jsonl()) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        if let Some(path) = &args.profile_folded {
            if let Err(e) = std::fs::write(path, telemetry::folded::render_folded(&merged)) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    // Wall time is nondeterministic; keep it off stdout so stdout stays
    // comparable across runs.
    eprintln!(
        "matrix: {} cell(s), {} job(s), frontend cache {} hit(s) / {} miss(es), {:.1} ms",
        all_cells.len(),
        matrix.jobs,
        matrix.cache_hits,
        matrix.cache_misses,
        wall.as_secs_f64() * 1e3
    );
    if args.cache_dir.is_some() {
        eprintln!(
            "cell cache: {} served, {} compiled",
            served_count,
            miss_cells.len()
        );
    }
    if matrix.cell_faults > 0 || matrix.errors_recovered > 0 {
        eprintln!(
            "degraded: {} = {}, {} = {}",
            telemetry::metrics::DEGRADE_CELL_FAULTS,
            matrix.cell_faults,
            telemetry::metrics::DEGRADE_ERRORS_RECOVERED,
            matrix.errors_recovered
        );
    }
    // --keep-going grades the batch by what survived: a partial success
    // exits 3, and the hard failure codes mean *nothing* compiled.
    if args.keep_going && worst > 0 && failed_cells > 0 && clean_cells > 0 {
        return ExitCode::from(3);
    }
    match worst {
        0 => ExitCode::SUCCESS,
        1 => ExitCode::FAILURE,
        _ => ExitCode::from(2),
    }
}

fn main() -> ExitCode {
    let args = match parse_args_from(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    let mut ln = Longnail::new();
    if let Some(b) = args.budget {
        ln.work_limit = b;
    }
    ln.opt_level = longnail::OptLevel::from_level(args.opt_level).expect("validated in parse_args");
    if let Some(path) = &args.fault_plan {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match longnail::FaultPlan::parse(&text) {
            Ok(plan) => ln.fault_plan = Some(plan),
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if args.serve {
        let pipe = match build_cache(args.cache_dir.as_deref(), &ln, args.cache_mem_bytes) {
            Ok(p) => p,
            Err(code) => return code,
        };
        let mut input = String::new();
        use std::io::Read;
        if let Err(e) = std::io::stdin().read_to_string(&mut input) {
            eprintln!("error: cannot read jobs from stdin: {e}");
            return ExitCode::FAILURE;
        }
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        // Per-job failures are result lines; the daemon itself exits 0.
        return match longnail::serve::run_serve(&ln, &pipe, args.jobs, &input, &mut out) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: cannot write results: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.matrix {
        return run_matrix(&ln, &args);
    }
    let core = args.core.as_deref().expect("validated in parse_args");
    let input = args.input.as_deref().expect("validated in parse_args");
    let Some(datasheet) = builtin_datasheet(core) else {
        eprintln!(
            "error: unknown core `{core}` (known: {})",
            EVAL_CORES.join(", ")
        );
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", input.display());
            return ExitCode::FAILURE;
        }
    };
    let unit = args.unit.clone().unwrap_or_else(|| {
        input
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default()
    });
    // --emit hir needs the typed module before HLS.
    if args.emit.as_deref() == Some("hir") {
        return match ln.frontend_mut().compile_str(&src, &unit) {
            Ok(module) => {
                print!("{}", ir::hirprint::print_module(&module));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.emit.as_deref() == Some("datasheet") {
        print!("{}", datasheet.to_yaml());
        return ExitCode::SUCCESS;
    }
    // A panic anywhere in the flow is an internal fault (exit 2), not a
    // crash: report it like any other diagnostic.
    let compiled = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ln.compile(&src, &unit, &datasheet)
    })) {
        Ok(Ok(c)) => c,
        Ok(Err(e)) => {
            // A frontend failure carries every accumulated coded
            // diagnostic — report them all, not just the first.
            if e.frontend_errors.len() > 1 {
                for d in &e.frontend_errors {
                    eprintln!("error: [frontend] {d}");
                }
            } else {
                eprintln!("error: {e}");
            }
            return if e.severity == Severity::Fault {
                ExitCode::from(2)
            } else {
                ExitCode::FAILURE
            };
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".into());
            eprintln!("internal fault: compiler panicked: {msg}");
            return ExitCode::from(2);
        }
    };
    if !compiled.diagnostics.is_empty() {
        eprint!("{}", compiled.diagnostics.render());
    }
    if args.trace {
        eprint!("{}", telemetry::report::render_tree(&compiled.trace));
    }
    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, compiled.trace.to_jsonl()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.profile_folded {
        if let Err(e) = std::fs::write(path, telemetry::folded::render_folded(&compiled.trace)) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if args.xcheck {
        let report = longnail::xcheck_compiled(&compiled);
        for p in report.problems() {
            eprintln!("xcheck: {p}");
        }
        if args.trace {
            eprint!("{}", telemetry::report::render_tree(&report.trace));
        }
        println!("{}", report.summary());
        if !report.is_clean() {
            // A divergence between the emitted SystemVerilog's semantics
            // and the interpreter is a compiler fault, not a user error.
            return ExitCode::from(2);
        }
    }
    if args.report {
        print!("{}", telemetry::report::render_report(&compiled.trace));
        return exit_for(&compiled);
    }
    match args.emit.as_deref() {
        Some("lil") => {
            for g in &compiled.graphs {
                print!("{}", g.graph);
            }
        }
        Some("sv") => {
            for g in &compiled.graphs {
                print!("{}", g.verilog);
            }
        }
        Some("config") => print!("{}", compiled.config.to_yaml()),
        Some(other) => {
            eprintln!("error: unknown --emit `{other}`");
            return ExitCode::FAILURE;
        }
        None => {
            if let Err(e) = std::fs::create_dir_all(&args.out) {
                eprintln!("error: cannot create {}: {e}", args.out.display());
                return ExitCode::FAILURE;
            }
            for g in &compiled.graphs {
                let path = args
                    .out
                    .join(format!("{}_{}.sv", compiled.name, g.name));
                if let Err(e) = std::fs::write(&path, &g.verilog) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!(
                    "wrote {:<40} {:>6} stages, mode {}",
                    path.display(),
                    g.max_stage,
                    g.mode
                );
            }
            let config_path = args.out.join(format!("{}.scaiev.yaml", compiled.name));
            if let Err(e) = std::fs::write(&config_path, compiled.config.to_yaml()) {
                eprintln!("error: cannot write {}: {e}", config_path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", config_path.display());
            println!(
                "\n{}: {} instruction(s), {} always-block(s) compiled for {}",
                compiled.name,
                compiled.instructions().count(),
                compiled.always_blocks().count(),
                core
            );
        }
    }
    exit_for(&compiled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn single_file_mode_requires_input_and_core() {
        let a = parse(&["x.core_desc", "--core", "ORCA", "--unit", "X"]).unwrap();
        assert_eq!(a.input.as_deref(), Some(std::path::Path::new("x.core_desc")));
        assert_eq!(a.core.as_deref(), Some("ORCA"));
        assert_eq!(a.jobs, 1);
        assert!(!a.matrix);
        assert!(parse(&["--core", "ORCA"]).unwrap_err().contains("input"));
        assert!(parse(&["x.core_desc"]).unwrap_err().contains("--core"));
    }

    #[test]
    fn matrix_mode_parses_jobs_and_rejects_single_file_flags() {
        let a = parse(&["--matrix", "--jobs", "4", "--out", "o"]).unwrap();
        assert!(a.matrix);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.out, PathBuf::from("o"));
        assert!(parse(&["--matrix", "x.core_desc"]).unwrap_err().contains("--matrix"));
        assert!(parse(&["--matrix", "--core", "ORCA"]).unwrap_err().contains("--core"));
    }

    #[test]
    fn jobs_must_be_a_positive_count() {
        assert!(parse(&["--matrix", "--jobs", "0"]).is_err());
        assert!(parse(&["--matrix", "--jobs", "many"]).is_err());
        assert!(parse(&["--matrix", "--jobs"]).is_err());
        assert_eq!(parse(&["--matrix", "--jobs", "16"]).unwrap().jobs, 16);
    }

    #[test]
    fn xcheck_flag_parses_in_both_modes() {
        assert!(parse(&["x.core_desc", "--core", "ORCA", "--xcheck"])
            .unwrap()
            .xcheck);
        assert!(parse(&["--matrix", "--xcheck", "--jobs", "2"]).unwrap().xcheck);
        assert!(!parse(&["--matrix"]).unwrap().xcheck);
    }

    #[test]
    fn keep_going_and_fault_plan_parse_in_matrix_mode() {
        let a = parse(&["--matrix", "--keep-going", "--fault-plan", "plan.txt"]).unwrap();
        assert!(a.keep_going);
        assert_eq!(a.fault_plan, Some(PathBuf::from("plan.txt")));
        assert!(!parse(&["--matrix"]).unwrap().keep_going);
        assert!(parse(&["x.core_desc", "--core", "ORCA", "--keep-going"])
            .unwrap_err()
            .contains("--matrix"));
        assert!(parse(&["--matrix", "--fault-plan"]).is_err());
    }

    #[test]
    fn summary_and_verbose_are_matrix_only() {
        let a = parse(&["--matrix", "--summary", "--verbose"]).unwrap();
        assert!(a.summary && a.verbose);
        assert!(parse(&["x", "--core", "ORCA", "--summary"])
            .unwrap_err()
            .contains("--report"));
        assert!(parse(&["x", "--core", "ORCA", "--verbose"])
            .unwrap_err()
            .contains("--matrix"));
    }

    #[test]
    fn matrix_rejects_single_compilation_flags() {
        assert!(parse(&["--matrix", "--emit", "sv"])
            .unwrap_err()
            .contains("--emit"));
        assert!(parse(&["--matrix", "--report"])
            .unwrap_err()
            .contains("--summary"));
        assert!(parse(&["--matrix", "--unit", "X"])
            .unwrap_err()
            .contains("--unit"));
    }

    #[test]
    fn profile_folded_parses_in_both_modes() {
        let a = parse(&["x", "--core", "ORCA", "--profile-folded", "p.folded"]).unwrap();
        assert_eq!(a.profile_folded, Some(PathBuf::from("p.folded")));
        let m = parse(&["--matrix", "--profile-folded", "m.folded", "--metrics-out", "m.jsonl"])
            .unwrap();
        assert_eq!(m.profile_folded, Some(PathBuf::from("m.folded")));
        assert_eq!(m.metrics_out, Some(PathBuf::from("m.jsonl")));
        assert!(parse(&["--matrix", "--profile-folded"]).is_err());
    }

    #[test]
    fn opt_level_parses_in_every_mode_and_validates_its_range() {
        assert_eq!(parse(&["x", "--core", "ORCA"]).unwrap().opt_level, 0);
        assert_eq!(
            parse(&["x", "--core", "ORCA", "--opt-level", "2"]).unwrap().opt_level,
            2
        );
        assert_eq!(parse(&["--matrix", "--opt-level", "1"]).unwrap().opt_level, 1);
        assert_eq!(parse(&["serve", "--opt-level", "2"]).unwrap().opt_level, 2);
        assert!(parse(&["--matrix", "--opt-level", "3"])
            .unwrap_err()
            .contains("not 0, 1, or 2"));
        assert!(parse(&["--matrix", "--opt-level", "fast"]).is_err());
        assert!(parse(&["--matrix", "--opt-level"]).is_err());
    }

    #[test]
    fn cache_mem_bytes_applies_to_matrix_and_serve_only() {
        let a = parse(&["--matrix", "--cache-mem-bytes", "1048576"]).unwrap();
        assert_eq!(a.cache_mem_bytes, Some(1 << 20));
        let s = parse(&["serve", "--cache-mem-bytes", "4096"]).unwrap();
        assert_eq!(s.cache_mem_bytes, Some(4096));
        assert_eq!(parse(&["--matrix"]).unwrap().cache_mem_bytes, None);
        assert!(parse(&["--matrix", "--cache-mem-bytes", "0"]).is_err());
        assert!(parse(&["--matrix", "--cache-mem-bytes", "lots"]).is_err());
        assert!(parse(&["x", "--core", "ORCA", "--cache-mem-bytes", "4096"])
            .unwrap_err()
            .contains("--matrix"));
    }

    #[test]
    fn cache_dir_applies_to_matrix_and_serve_only() {
        let a = parse(&["--matrix", "--cache-dir", "c"]).unwrap();
        assert_eq!(a.cache_dir, Some(PathBuf::from("c")));
        assert!(parse(&["--matrix", "--cache-dir"]).is_err());
        assert!(parse(&["x", "--core", "ORCA", "--cache-dir", "c"])
            .unwrap_err()
            .contains("--matrix"));
        assert!(parse(&["--matrix", "--cache-dir", "c", "--xcheck"])
            .unwrap_err()
            .contains("--xcheck"));
    }

    #[test]
    fn serve_mode_allows_only_daemon_flags() {
        let a = parse(&["serve", "--jobs", "4", "--budget", "100", "--fault-plan", "p",
                        "--cache-dir", "c"])
            .unwrap();
        assert!(a.serve && !a.matrix);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.budget, Some(100));
        assert_eq!(a.cache_dir, Some(PathBuf::from("c")));
        assert!(parse(&["serve", "--matrix"]).unwrap_err().contains("stdin"));
        assert!(parse(&["serve", "x.core_desc"]).unwrap_err().contains("stdin"));
        for flag in ["--summary", "--xcheck", "--trace", "--keep-going", "--report"] {
            assert!(parse(&["serve", flag]).unwrap_err().contains(flag), "{flag}");
        }
        assert!(parse(&["serve", "--core", "ORCA"]).unwrap_err().contains("--core"));
        // Only the *first* positional `serve` selects the daemon.
        assert!(!parse(&["serve.core_desc", "--core", "ORCA"]).unwrap().serve);
    }

    #[test]
    fn unknown_options_are_rejected() {
        assert!(parse(&["x", "--core", "ORCA", "--frobnicate"])
            .unwrap_err()
            .contains("--frobnicate"));
        assert!(parse(&["a", "b", "--core", "ORCA"])
            .unwrap_err()
            .contains("more than one"));
    }

    #[test]
    fn budget_and_observability_flags_parse() {
        let a = parse(&[
            "x.core_desc",
            "--core",
            "Piccolo",
            "--budget",
            "5000",
            "--trace",
            "--metrics-out",
            "m.jsonl",
            "--report",
        ])
        .unwrap();
        assert_eq!(a.budget, Some(5000));
        assert!(a.trace && a.report);
        assert_eq!(a.metrics_out, Some(PathBuf::from("m.jsonl")));
        assert!(parse(&["x", "--core", "ORCA", "--budget", "lots"]).is_err());
    }
}
