//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this local crate
//! provides the subset of the criterion API the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It measures with [`std::time::Instant`] and
//! prints a simple `name ... median ns/iter` line — no statistics engine,
//! no plots — which is enough to keep `cargo bench` runnable offline.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched inputs are grouped per measurement (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its median time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.samples.sort_unstable();
        let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or(0);
        println!("bench: {id:<40} {median:>12} ns/iter ({} samples)", b.samples.len());
        self
    }
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<u128>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std_black_box(routine());
            self.samples.push(t0.elapsed().as_nanos());
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            self.samples.push(t0.elapsed().as_nanos());
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn group_runs() {
        benches();
    }
}
