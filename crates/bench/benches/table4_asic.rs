//! Regenerates Table 4: ASIC area and frequency overheads of each ISAX
//! integrated into each of the four base cores.
//!
//! Absolute numbers come from this reproduction's 22 nm-class cost model,
//! not the paper's commercial flow; compare *shapes* (which ISAXes are
//! large, where frequency regresses) — see `EXPERIMENTS.md`.

use bench::{fmt_pct, table4_cell, table4_rows};
use eda::CoreAsicProfile;
use longnail::driver::EVAL_CORES;

fn main() {
    println!("Table 4: ASIC results for area and frequency overheads of ISAX");
    println!("when integrated into base cores (reproduction model)\n");
    print!("{:<32}", "");
    for core in EVAL_CORES {
        print!("{:>22}", core);
    }
    println!();
    print!("{:<32}", "Base core (area µm² / MHz)");
    for core in EVAL_CORES {
        let p = CoreAsicProfile::for_core(core).unwrap();
        print!(
            "{:>22}",
            format!("{:.0} / {:.0}", p.base_area_um2, p.base_fmax_mhz)
        );
    }
    println!();
    for (label, isaxes, hazard) in table4_rows() {
        print!("{label:<32}");
        for core in EVAL_CORES {
            let report = table4_cell(core, &isaxes, hazard);
            print!(
                "{:>22}",
                format!(
                    "{} / {}",
                    fmt_pct(report.area_overhead_pct()),
                    fmt_pct(report.fmax_delta_pct())
                )
            );
        }
        println!();
    }
    println!("\n(area overhead % / fmax delta % relative to the base core)");
}
