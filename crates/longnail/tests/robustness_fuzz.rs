//! Frontend/flow robustness fuzzing: mutated and truncated CoreDSL sources
//! must produce structured diagnostics, never panics.
//!
//! Every benchmark ISAX source is run through a deterministic mutator
//! (byte flips, truncations, deletions, duplications, digit inflation,
//! bracket noise) and compiled end to end inside `catch_unwind`. Any panic
//! is a bug: the compiler's contract is that arbitrary input yields
//! `Err(...)` or a diagnostics report. A set of handcrafted adversarial
//! sources covers known panic classes (huge widths, reversed bit ranges,
//! oversized literals, deep nesting).

use longnail::driver::builtin_datasheet;
use longnail::isax_lib::STATIC_ISAXES;
use longnail::Longnail;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Deterministic SplitMix64 so failures reproduce across runs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Produces one mutant of `src`.
fn mutate(src: &str, rng: &mut Rng) -> String {
    let bytes = src.as_bytes();
    match rng.below(6) {
        // Truncate at a random point.
        0 => String::from_utf8_lossy(&bytes[..rng.below(bytes.len())]).into_owned(),
        // Flip one byte to a random printable character.
        1 => {
            let mut b = bytes.to_vec();
            let i = rng.below(b.len());
            b[i] = 0x20 + (rng.next() % 95) as u8;
            String::from_utf8_lossy(&b).into_owned()
        }
        // Delete a random slice.
        2 => {
            let i = rng.below(bytes.len());
            let j = (i + rng.below(40)).min(bytes.len());
            let mut b = bytes[..i].to_vec();
            b.extend_from_slice(&bytes[j..]);
            String::from_utf8_lossy(&b).into_owned()
        }
        // Duplicate a random slice in place.
        3 => {
            let i = rng.below(bytes.len());
            let j = (i + rng.below(40)).min(bytes.len());
            let mut b = bytes[..j].to_vec();
            b.extend_from_slice(&bytes[i..j]);
            b.extend_from_slice(&bytes[j..]);
            String::from_utf8_lossy(&b).into_owned()
        }
        // Inflate every digit run at one position (huge widths/indices).
        4 => {
            let mut s = String::with_capacity(src.len() + 16);
            let target = rng.below(8);
            let mut seen = 0usize;
            for c in src.chars() {
                s.push(c);
                if c.is_ascii_digit() {
                    if seen == target {
                        s.push_str("4294967295");
                    }
                    seen += 1;
                }
            }
            s
        }
        // Splice structural noise at a random point.
        _ => {
            let noise = ["[", "]", "<", ">", "'", "::", "{", "}", "(", ")", ":", ";"];
            let i = rng.below(bytes.len());
            // Splice on a char boundary (sources are ASCII, but stay safe).
            let mut i = i;
            while !src.is_char_boundary(i) {
                i -= 1;
            }
            let mut s = src[..i].to_string();
            s.push_str(noise[rng.below(noise.len())]);
            s.push_str(&src[i..]);
            s
        }
    }
}

/// Compiles `src` end to end, returning whether the compiler panicked.
fn panics(src: &str, unit: &str) -> bool {
    let ds = builtin_datasheet("VexRiscv").unwrap();
    catch_unwind(AssertUnwindSafe(|| {
        let ln = Longnail::new();
        let _ = ln.compile(src, unit, &ds);
    }))
    .is_err()
}

#[test]
fn mutated_sources_never_panic() {
    // Silence the default panic-to-stderr printer for the duration: a
    // caught panic would otherwise spam the test output. Restored below so
    // real failures elsewhere still print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut failures = Vec::new();
    for isax in &STATIC_ISAXES {
        let mut rng = Rng(0x5EED ^ isax.name.len() as u64);
        for round in 0..200 {
            let mutant = mutate(isax.source, &mut rng);
            if panics(&mutant, isax.unit) {
                failures.push((isax.name, round, mutant));
            }
        }
    }
    std::panic::set_hook(default_hook);
    assert!(
        failures.is_empty(),
        "{} mutant(s) panicked; first: isax {} round {}:\n{}",
        failures.len(),
        failures[0].0,
        failures[0].1,
        failures[0].2
    );
}

#[test]
fn adversarial_sources_never_panic() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let cases: &[&str] = &[
        "",
        "InstructionSet",
        "import \"RV32I.core_desc\";",
        // Huge declared width.
        "InstructionSet A { architectural_state { register unsigned<4294967295> R; } }",
        // Width from an overflowing constant expression.
        "InstructionSet A { architectural_state { register unsigned<4000000000+4000000000> R; } }",
        // Huge array extent.
        "InstructionSet A { architectural_state { register unsigned<8> R[4294967295]; } }",
        // Reversed bit range.
        "import \"RV32I.core_desc\";
         InstructionSet A extends RV32I { instructions { i {
           encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
           behavior: { X[rd] = (unsigned<32>) X[rs1][0:31]; } } } }",
        // Oversized sized literal.
        "import \"RV32I.core_desc\";
         InstructionSet A extends RV32I { instructions { i {
           encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
           behavior: { X[rd] = 2'd999999999999999999; } } } }",
        // Shift far beyond the operand width.
        "import \"RV32I.core_desc\";
         InstructionSet A extends RV32I { instructions { i {
           encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
           behavior: { X[rd] = (unsigned<32>)(X[rs1] << 4294967295); } } } }",
        // Zero-width slice arithmetic.
        "import \"RV32I.core_desc\";
         InstructionSet A extends RV32I { instructions { i {
           encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
           behavior: { X[rd] = (unsigned<32>) X[rs1][4294967295:0]; } } } }",
        // Deeply nested parentheses.
        &format!(
            "import \"RV32I.core_desc\";
             InstructionSet A extends RV32I {{ instructions {{ i {{
               encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
               behavior: {{ X[rd] = {}1{}; }} }} }} }}",
            "(".repeat(300),
            ")".repeat(300)
        ),
        // Self-extending instruction set.
        "InstructionSet A extends A { }",
        // Unterminated everything.
        "InstructionSet A { instructions { i { encoding: 7'd0",
        // Stray NUL-adjacent control characters.
        "InstructionSet \u{1} A {}",
    ];
    let mut panicked = Vec::new();
    for (i, src) in cases.iter().enumerate() {
        if panics(src, "A") {
            panicked.push(i);
        }
    }
    std::panic::set_hook(default_hook);
    assert!(panicked.is_empty(), "adversarial case(s) {panicked:?} panicked");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]
    /// Multi-error property: the frontend over arbitrarily mutated or
    /// truncated CoreDSL never panics, and whenever it rejects the input
    /// every accumulated diagnostic carries a stable `LN0xxx` code.
    #[test]
    fn rejected_mutants_always_carry_coded_diagnostics(
        isax_idx in 0usize..STATIC_ISAXES.len(),
        seed: u64,
    ) {
        let isax = &STATIC_ISAXES[isax_idx];
        let mut rng = Rng(seed | 1);
        let mutant = mutate(isax.source, &mut rng);
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            coredsl::Frontend::new().compile_str_all(&mutant, isax.unit)
        }));
        std::panic::set_hook(default_hook);
        let Ok(out) = outcome else {
            return Err(TestCaseError::fail(format!(
                "frontend panicked on mutant of {}:\n{mutant}",
                isax.name
            )));
        };
        // Rejection without a diagnostic (or with an uncoded one) is a
        // graceful-degradation bug: batch consumers key on the codes.
        prop_assert!(
            out.module.is_some() || !out.errors.is_empty(),
            "mutant rejected silently:\n{mutant}"
        );
        for d in &out.errors {
            prop_assert!(
                d.code.len() == 6
                    && d.code.starts_with("LN")
                    && d.code[2..].bytes().all(|b| b.is_ascii_digit()),
                "uncoded diagnostic `{d}` for mutant:\n{mutant}"
            );
        }
    }
}
