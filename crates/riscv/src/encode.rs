//! RV32I instruction-word encoders.

/// R-type: `funct7 | rs2 | rs1 | funct3 | rd | opcode`.
pub fn r_type(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (funct7 << 25) | ((rs2 & 31) << 20) | ((rs1 & 31) << 15) | (funct3 << 12) | ((rd & 31) << 7) | opcode
}

/// I-type: `imm[11:0] | rs1 | funct3 | rd | opcode`.
pub fn i_type(imm: i32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (((imm as u32) & 0xfff) << 20) | ((rs1 & 31) << 15) | (funct3 << 12) | ((rd & 31) << 7) | opcode
}

/// S-type: `imm[11:5] | rs2 | rs1 | funct3 | imm[4:0] | opcode`.
pub fn s_type(imm: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5 & 0x7f) << 25)
        | ((rs2 & 31) << 20)
        | ((rs1 & 31) << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode
}

/// B-type: branch with byte offset `imm` (must be even).
pub fn b_type(imm: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3f) << 25)
        | ((rs2 & 31) << 20)
        | ((rs1 & 31) << 15)
        | (funct3 << 12)
        | ((imm >> 1 & 0xf) << 8)
        | ((imm >> 11 & 1) << 7)
        | opcode
}

/// U-type: `imm[31:12] | rd | opcode`.
pub fn u_type(imm: u32, rd: u32, opcode: u32) -> u32 {
    (imm & 0xfffff000) | ((rd & 31) << 7) | opcode
}

/// J-type: jump with byte offset `imm` (must be even).
pub fn j_type(imm: i32, rd: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3ff) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xff) << 12)
        | ((rd & 31) << 7)
        | opcode
}

/// Base opcodes.
pub mod opcode {
    pub const LUI: u32 = 0b0110111;
    pub const AUIPC: u32 = 0b0010111;
    pub const JAL: u32 = 0b1101111;
    pub const JALR: u32 = 0b1100111;
    pub const BRANCH: u32 = 0b1100011;
    pub const LOAD: u32 = 0b0000011;
    pub const STORE: u32 = 0b0100011;
    pub const OP_IMM: u32 = 0b0010011;
    pub const OP: u32 = 0b0110011;
    pub const MISC_MEM: u32 = 0b0001111;
    pub const SYSTEM: u32 = 0b1110011;
    /// The custom-0 opcode used by the paper's ISAXes (`7'b0001011`).
    pub const CUSTOM0: u32 = 0b0001011;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addi_encoding_matches_spec() {
        // addi x3, x1, -1  =>  fff08193
        assert_eq!(i_type(-1, 1, 0, 3, opcode::OP_IMM), 0xfff0_8193);
    }

    #[test]
    fn add_encoding_matches_spec() {
        // add x5, x6, x7 => 007302b3
        assert_eq!(r_type(0, 7, 6, 0, 5, opcode::OP), 0x0073_02b3);
    }

    #[test]
    fn sw_encoding_matches_spec() {
        // sw x2, 8(x1) => 0020a423
        assert_eq!(s_type(8, 2, 1, 0b010, opcode::STORE), 0x0020_a423);
    }

    #[test]
    fn beq_encoding_round_trips() {
        // beq x1, x2, +16
        let w = b_type(16, 2, 1, 0, opcode::BRANCH);
        match crate::decode(w) {
            crate::DecodedInstr::Branch { funct3: 0, rs1: 1, rs2: 2, imm: 16 } => {}
            other => panic!("{other:?}"),
        }
        // Negative offset.
        let w = b_type(-8, 2, 1, 0, opcode::BRANCH);
        match crate::decode(w) {
            crate::DecodedInstr::Branch { imm: -8, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn jal_encoding_round_trips() {
        for off in [-2048i32, -4, 0, 4, 2046, 100000] {
            let w = j_type(off, 1, opcode::JAL);
            match crate::decode(w) {
                crate::DecodedInstr::Jal { rd: 1, imm } => assert_eq!(imm, off),
                other => panic!("{other:?}"),
            }
        }
    }
}
