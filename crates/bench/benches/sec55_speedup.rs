//! Regenerates the §5.5 case study: summing an n-element integer array on
//! VexRiscv, baseline RV32I vs. the autoinc + zol ISAX combination.
//!
//! The paper reports 18n + 50 cycles for the baseline and 11n + 50 for the
//! ISAX version (>60 % speed-up at ~16 % area). This harness measures both
//! versions at several n on the cycle model, fits the linear coefficients,
//! and prints the comparison.

use bench::extended_core;

fn baseline_program(n: u32, base: u32) -> String {
    format!(
        r#"
        li   a0, {base:#x}     # array pointer
        li   a1, {n}           # element count
        li   a2, 0             # sum
    loop:
        lw   t0, 0(a0)
        add  a2, a2, t0
        addi a0, a0, 4
        addi a1, a1, -1
        bnez a1, loop
        ebreak
    "#
    )
}

fn isax_program(n: u32, base: u32) -> String {
    // The loop body is a single load_inc + add pair under zol control:
    // no pointer increment, no counter decrement, no branch.
    format!(
        r#"
        li   a0, {base:#x}
        li   a2, 0
        setup_autoinc a0
        setup_zol {m}, 4       # body: load_inc + add (8 bytes)
        load_inc t0
        add  a2, a2, t0
        ebreak
    "#,
        m = n - 1
    )
}

/// Runs a program on the extended VexRiscv, returning (cycles, sum).
fn run(program: &str, n: u32, base: u32) -> (u64, u32) {
    let (mut core, asm) = extended_core("VexRiscv", &["autoinc", "zol"]);
    let words = asm.assemble(program).unwrap();
    core.load_program(0, &words);
    for i in 0..n {
        core.cpu.write_word(base + 4 * i, i + 1);
    }
    core.run(10_000_000).unwrap();
    (core.cycles, core.cpu.read_reg(12))
}

fn fit(n1: u32, c1: u64, n2: u32, c2: u64) -> (f64, f64) {
    let slope = (c2 - c1) as f64 / (n2 - n1) as f64;
    let intercept = c1 as f64 - slope * n1 as f64;
    (slope, intercept)
}

fn main() {
    println!("Section 5.5: n-element array sum on VexRiscv\n");
    let base_addr = 0x1000;
    let (n1, n2) = (16u32, 64u32);
    let expect = |n: u32| n * (n + 1) / 2;

    let (bc1, bs1) = run(&baseline_program(n1, base_addr), n1, base_addr);
    let (bc2, bs2) = run(&baseline_program(n2, base_addr), n2, base_addr);
    assert_eq!(bs1, expect(n1), "baseline result wrong");
    assert_eq!(bs2, expect(n2), "baseline result wrong");
    let (bslope, bint) = fit(n1, bc1, n2, bc2);

    let (ic1, is1) = run(&isax_program(n1, base_addr), n1, base_addr);
    let (ic2, is2) = run(&isax_program(n2, base_addr), n2, base_addr);
    assert_eq!(is1, expect(n1), "isax result wrong");
    assert_eq!(is2, expect(n2), "isax result wrong");
    let (islope, iint) = fit(n1, ic1, n2, ic2);

    println!("  baseline RV32I loop:   {bslope:.0}n + {bint:.0} cycles   (paper: 18n + 50)");
    println!("  autoinc+zol ISAXes:    {islope:.0}n + {iint:.0} cycles   (paper: 11n + 50)");
    let speedup = bslope / islope;
    println!(
        "  asymptotic speed-up:   {:.2}x  ({:.0} % faster; paper: >60 %)",
        speedup,
        (speedup - 1.0) * 100.0
    );
    let report = bench::table4_cell("VexRiscv", &["autoinc", "zol"], true);
    println!(
        "  area for the combination on VexRiscv: +{:.0} % (paper: ~16 %)",
        report.area_overhead_pct()
    );
    assert!(speedup >= 1.5, "zol+autoinc must be well over 50% faster");
}
