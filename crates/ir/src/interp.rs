//! Golden-model interpreter for typed CoreDSL behavior.
//!
//! Executes instruction/`always` behavior with *sequential* semantics
//! against an [`ArchState`], exactly as an instruction-set simulator would.
//! This is the reference model that the LIL evaluator ([`crate::eval`]) and
//! the RTL netlist interpreter are differentially tested against, and the
//! hook through which the `riscv` ISS executes custom instructions.

use bits::ApInt;
use coredsl::ast::UnOp;
use coredsl::sema_support::{eval_binary_op, resize_value};
use coredsl::tast::{
    AlwaysBlock, Block, Encoding, Expr, ExprKind, Instruction, LValue, Local, Stmt, TypedModule,
};
use std::collections::HashMap;
use std::fmt;

/// Iteration bound for interpreted loops.
pub const MAX_LOOP_ITERATIONS: u64 = 1 << 20;

/// Architectural state as seen by interpreted behavior.
///
/// Registers are addressed by name and element index; scalar registers use
/// index 0. Implementations must return values of the register's declared
/// width.
pub trait ArchState {
    /// Reads element `index` of register `reg`.
    fn read(&mut self, reg: &str, index: u64) -> ApInt;
    /// Writes element `index` of register `reg`.
    fn write(&mut self, reg: &str, index: u64, value: ApInt);
}

/// Interpreter error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    pub message: String,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for InterpError {}

type Result<T> = std::result::Result<T, InterpError>;

fn err<T>(message: impl Into<String>) -> Result<T> {
    Err(InterpError {
        message: message.into(),
    })
}

/// Decodes the operand-field values of `word` for `encoding`.
///
/// Returns `None` if the word does not match the encoding's fixed bits.
pub fn decode_fields(encoding: &Encoding, word: u32) -> Option<HashMap<String, ApInt>> {
    if word & encoding.mask() != encoding.match_value() {
        return None;
    }
    let mut fields = HashMap::new();
    let word_ap = ApInt::from_u64(word as u64, 32);
    for field in &encoding.fields {
        let mut value = ApInt::zero(field.width);
        for (instr_lo, field_lo, len) in encoding.field_segments(&field.name) {
            let seg = word_ap.extract(instr_lo, len);
            value = value.or(&seg.zext(field.width).shl_bits(field_lo));
        }
        fields.insert(field.name.clone(), value);
    }
    Some(fields)
}

/// A behavior interpreter bound to one module.
#[derive(Debug, Clone, Copy)]
pub struct Interp<'a> {
    module: &'a TypedModule,
}

enum Flow {
    Normal,
    Returned(Option<ApInt>),
}

impl<'a> Interp<'a> {
    /// Creates an interpreter for `module`.
    pub fn new(module: &'a TypedModule) -> Self {
        Interp { module }
    }

    /// Executes instruction `name` on `word` against `state`.
    ///
    /// # Errors
    ///
    /// Returns an error if the instruction is unknown, the word does not
    /// match its encoding, or the behavior is erroneous (e.g. an unbounded
    /// loop or a read of an uninitialized local).
    pub fn exec_instruction(
        &self,
        name: &str,
        word: u32,
        state: &mut dyn ArchState,
    ) -> Result<()> {
        let instr = self
            .module
            .instructions
            .iter()
            .find(|i| i.name == name)
            .ok_or_else(|| InterpError {
                message: format!("unknown instruction `{name}`"),
            })?;
        self.exec_instruction_def(instr, word, state)
    }

    /// Executes a resolved instruction definition on `word`.
    ///
    /// # Errors
    ///
    /// See [`Interp::exec_instruction`].
    pub fn exec_instruction_def(
        &self,
        instr: &Instruction,
        word: u32,
        state: &mut dyn ArchState,
    ) -> Result<()> {
        let fields = decode_fields(&instr.encoding, word).ok_or_else(|| InterpError {
            message: format!(
                "word {word:#010x} does not match the encoding of `{}`",
                instr.name
            ),
        })?;
        let mut frame = FrameState {
            interp: *self,
            fields,
            locals: HashMap::new(),
            table: &instr.locals,
            state,
        };
        match frame.exec_block(&instr.behavior)? {
            Flow::Normal => Ok(()),
            Flow::Returned(_) => err("return outside of a function"),
        }
    }

    /// Executes one evaluation of the named `always`-block (i.e. the work it
    /// performs in a single clock cycle).
    ///
    /// # Errors
    ///
    /// Returns an error if the block is unknown or its behavior errs.
    pub fn exec_always(&self, name: &str, state: &mut dyn ArchState) -> Result<()> {
        let always = self
            .module
            .always_blocks
            .iter()
            .find(|a| a.name == name)
            .ok_or_else(|| InterpError {
                message: format!("unknown always-block `{name}`"),
            })?;
        self.exec_always_def(always, state)
    }

    /// Executes one evaluation of a resolved `always`-block.
    ///
    /// # Errors
    ///
    /// Returns an error if the behavior errs.
    pub fn exec_always_def(&self, always: &AlwaysBlock, state: &mut dyn ArchState) -> Result<()> {
        let mut frame = FrameState {
            interp: *self,
            fields: HashMap::new(),
            locals: HashMap::new(),
            table: &always.locals,
            state,
        };
        match frame.exec_block(&always.behavior)? {
            Flow::Normal => Ok(()),
            Flow::Returned(_) => err("return outside of a function"),
        }
    }
}

struct FrameState<'a, 'b> {
    interp: Interp<'a>,
    fields: HashMap<String, ApInt>,
    locals: HashMap<usize, ApInt>,
    table: &'a [Local],
    state: &'b mut dyn ArchState,
}

impl<'a, 'b> FrameState<'a, 'b> {
    fn exec_block(&mut self, block: &Block) -> Result<Flow> {
        for stmt in &block.stmts {
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow> {
        match stmt {
            Stmt::Decl { local, init } => {
                let ty = self.table[local.0].ty;
                let value = match init {
                    Some(e) => self.eval(e)?,
                    None => ApInt::zero(ty.width),
                };
                self.locals.insert(local.0, value);
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, value } => {
                let v = self.eval(value)?;
                self.assign(target, v)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                let c = self.eval(cond)?;
                if c.is_zero() {
                    self.exec_block(else_block)
                } else {
                    self.exec_block(then_block)
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                for s in init {
                    if let Flow::Returned(v) = self.exec_stmt(s)? {
                        return Ok(Flow::Returned(v));
                    }
                }
                let mut iterations = 0u64;
                loop {
                    if self.eval(cond)?.is_zero() {
                        break;
                    }
                    iterations += 1;
                    if iterations > MAX_LOOP_ITERATIONS {
                        return err("loop iteration bound exceeded");
                    }
                    if let Flow::Returned(v) = self.exec_block(body)? {
                        return Ok(Flow::Returned(v));
                    }
                    for s in step {
                        if let Flow::Returned(v) = self.exec_stmt(s)? {
                            return Ok(Flow::Returned(v));
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            // The golden model executes spawn bodies inline: decoupling
            // changes timing, not architectural results.
            Stmt::Spawn { body } => self.exec_block(body),
            Stmt::Call { callee, args } => {
                self.call(callee, args)?;
                Ok(Flow::Normal)
            }
            Stmt::Return { value } => {
                let v = match value {
                    Some(e) => Some(self.eval(e)?),
                    None => None,
                };
                Ok(Flow::Returned(v))
            }
        }
    }

    fn assign(&mut self, target: &LValue, value: ApInt) -> Result<()> {
        match target {
            LValue::Local(id) => {
                self.locals.insert(id.0, value);
                Ok(())
            }
            LValue::LocalRange {
                local,
                offset,
                width,
            } => {
                let ty = self.table[local.0].ty;
                let old = self
                    .locals
                    .get(&local.0)
                    .cloned()
                    .unwrap_or_else(|| ApInt::zero(ty.width));
                let off = self.eval(offset)?;
                let mask = ApInt::ones(*width).zext_or_trunc(ty.width).shl(&off);
                let cleared = old.and(&mask.not());
                let inserted = value.zext_or_trunc(ty.width).shl(&off);
                self.locals.insert(local.0, cleared.or(&inserted));
                Ok(())
            }
            LValue::Reg { reg, index } => {
                let r = &self.interp.module.registers[reg.0];
                if r.is_const {
                    return err(format!("cannot assign to const register `{}`", r.name));
                }
                let idx = match index {
                    Some(e) => self.eval(e)?.to_u64(),
                    None => 0,
                };
                let name = r.name.clone();
                self.state.write(&name, idx, value);
                Ok(())
            }
            LValue::RegRange { reg, lo, elems } => {
                let r = &self.interp.module.registers[reg.0];
                let elemw = r.ty.width;
                let base = self.eval(lo)?.to_u64();
                let name = r.name.clone();
                for k in 0..*elems {
                    let elem = value.extract(k as u32 * elemw, elemw);
                    self.state.write(&name, base.wrapping_add(k), elem);
                }
                Ok(())
            }
        }
    }

    fn eval(&mut self, e: &Expr) -> Result<ApInt> {
        let v = match &e.kind {
            ExprKind::Const(c) => c.clone(),
            ExprKind::Local(id) => match self.locals.get(&id.0) {
                Some(v) => v.clone(),
                None => {
                    return err(format!(
                        "local `{}` read before initialization",
                        self.table[id.0].name
                    ))
                }
            },
            ExprKind::Field(name) => self
                .fields
                .get(name)
                .cloned()
                .ok_or_else(|| InterpError {
                    message: format!("unknown field `{name}`"),
                })?,
            ExprKind::ReadReg { reg, index } => {
                let r = &self.interp.module.registers[reg.0];
                let idx = match index {
                    Some(e) => self.eval(e)?.to_u64(),
                    None => 0,
                };
                if r.is_const {
                    let contents = r.init.as_ref().expect("const registers are initialized");
                    contents
                        .get(idx as usize)
                        .cloned()
                        .unwrap_or_else(|| ApInt::zero(r.ty.width))
                } else {
                    let name = r.name.clone();
                    self.state.read(&name, idx)
                }
            }
            ExprKind::ReadRegRange { reg, lo, elems } => {
                let r = &self.interp.module.registers[reg.0];
                let elemw = r.ty.width;
                let base = self.eval(lo)?.to_u64();
                let name = r.name.clone();
                let mut acc = ApInt::zero(*elems as u32 * elemw);
                for k in 0..*elems {
                    let elem = self.state.read(&name, base.wrapping_add(k));
                    acc = acc.or(&elem.zext(acc.width()).shl_bits(k as u32 * elemw));
                }
                acc
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = lhs.ty;
                let rt = rhs.ty;
                let lv = self.eval(lhs)?;
                let rv = self.eval(rhs)?;
                let (v, t) = eval_binary_op(*op, &lv, lt, &rv, rt).ok_or_else(|| InterpError {
                    message: format!("unsupported operator {op:?}"),
                })?;
                debug_assert_eq!(t, e.ty, "operator result type mismatch");
                v
            }
            ExprKind::Unary { op, operand } => {
                let v = self.eval(operand)?;
                match op {
                    UnOp::Neg => resize_value(&v, operand.ty, e.ty).neg(),
                    UnOp::Not => v.not(),
                    UnOp::LogNot => ApInt::from_bool(v.is_zero()),
                    UnOp::Plus => v,
                }
            }
            ExprKind::Cast { operand } => {
                let v = self.eval(operand)?;
                resize_value(&v, operand.ty, e.ty)
            }
            ExprKind::Slice {
                base,
                offset,
                width,
            } => {
                let b = self.eval(base)?;
                let off = self.eval(offset)?;
                b.lshr(&off).zext_or_trunc(*width)
            }
            ExprKind::Concat { hi, lo } => {
                let h = self.eval(hi)?;
                let l = self.eval(lo)?;
                h.concat(&l)
            }
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                let c = self.eval(cond)?;
                if c.is_zero() {
                    let v = self.eval(else_val)?;
                    resize_value(&v, else_val.ty, e.ty)
                } else {
                    let v = self.eval(then_val)?;
                    resize_value(&v, then_val.ty, e.ty)
                }
            }
            ExprKind::Call { callee, args } => {
                return self.call(callee, args)?.ok_or_else(|| InterpError {
                    message: format!("void function `{callee}` used as a value"),
                })
            }
            ExprKind::Poison => {
                return err("poisoned expression survived semantic analysis (compiler bug)")
            }
        };
        debug_assert_eq!(
            v.width(),
            e.ty.width,
            "evaluated width mismatch for {:?}",
            e.kind
        );
        Ok(v)
    }

    fn call(&mut self, callee: &str, args: &[Expr]) -> Result<Option<ApInt>> {
        let func = self
            .interp
            .module
            .function(callee)
            .ok_or_else(|| InterpError {
                message: format!("unknown function `{callee}`"),
            })?;
        let mut arg_values = Vec::new();
        for a in args {
            arg_values.push(self.eval(a)?);
        }
        let mut frame = FrameState {
            interp: self.interp,
            fields: HashMap::new(),
            locals: HashMap::new(),
            table: &func.locals,
            state: self.state,
        };
        for (param, value) in func.params.iter().zip(arg_values) {
            frame.locals.insert(param.0, value);
        }
        match frame.exec_block(&func.body)? {
            Flow::Returned(v) => Ok(v),
            Flow::Normal => {
                if func.ret.is_some() {
                    err(format!("function `{callee}` did not return a value"))
                } else {
                    Ok(None)
                }
            }
        }
    }
}

/// A map-backed [`ArchState`] for tests and the golden ISS: registers are
/// pre-sized from the module's declarations and initialized to their declared
/// values (or zero).
#[derive(Debug, Clone, Default)]
pub struct SimpleState {
    widths: HashMap<String, u32>,
    values: HashMap<(String, u64), ApInt>,
}

impl SimpleState {
    /// Creates a state holder sized from `module`'s register declarations.
    pub fn new(module: &TypedModule) -> Self {
        let mut state = SimpleState::default();
        for reg in &module.registers {
            state.widths.insert(reg.name.clone(), reg.ty.width);
            if let Some(init) = &reg.init {
                for (i, v) in init.iter().enumerate() {
                    state
                        .values
                        .insert((reg.name.clone(), i as u64), v.clone());
                }
            }
        }
        state
    }

    /// Directly sets a register element (test setup convenience).
    pub fn set(&mut self, reg: &str, index: u64, value: ApInt) {
        self.values.insert((reg.to_string(), index), value);
    }

    /// Directly reads a register element without going through the trait.
    pub fn get(&self, reg: &str, index: u64) -> ApInt {
        self.values
            .get(&(reg.to_string(), index))
            .cloned()
            .unwrap_or_else(|| ApInt::zero(self.widths.get(reg).copied().unwrap_or(32)))
    }
}

impl ArchState for SimpleState {
    fn read(&mut self, reg: &str, index: u64) -> ApInt {
        self.get(reg, index)
    }

    fn write(&mut self, reg: &str, index: u64, value: ApInt) {
        self.values.insert((reg.to_string(), index), value);
    }
}
