//! The benchmark ISAXes of the evaluation (paper Table 3), as CoreDSL
//! sources, plus generic assembler-mnemonic registration so the handwritten
//! verification programs (§5.3) can use them.

use crate::driver::FlowError;
use coredsl::tast::{Encoding, EncodingPiece, TypedModule};
use riscv::asm::{Assembler, Operand};

/// One benchmark ISAX.
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkIsax {
    /// Table 3 row name.
    pub name: &'static str,
    /// CoreDSL `InstructionSet` to elaborate.
    pub unit: &'static str,
    /// CoreDSL source text.
    pub source: &'static str,
    /// What the ISAX demonstrates (Table 3).
    pub demonstrates: &'static str,
}

/// `dotp` — 4×8-bit dot product (Figure 1): loop + bit ranges for SIMD.
pub const DOTPROD: &str = r#"
import "RV32I.core_desc";
InstructionSet X_DOTP extends RV32I {
  instructions {
    dotp {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] ::
                3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        signed<32> res = 0;
        for (int i = 0; i < 32; i += 8) {
          signed<16> prod = (signed) X[rs1][i+7:i] *
                            (signed) X[rs2][i+7:i];
          res += prod;
        }
        X[rd] = (unsigned) res;
      }
    }
  }
}
"#;

/// `zol` — zero-overhead loop (Figure 3): PC and custom-register access in
/// an `always`-block.
pub const ZOL: &str = r#"
import "RV32I.core_desc";
InstructionSet zol extends RV32I {
  architectural_state {
    register unsigned<32> START_PC, END_PC, COUNT;
  }
  instructions {
    setup_zol {
      encoding: uimmL[11:0] :: uimmS[4:0] :: 3'b101
                :: 5'b00000 :: 7'b0001011;
      behavior:
      {
        START_PC = (unsigned<32>)(PC + 4);
        END_PC = (unsigned<32>)(PC + (uimmS :: 1'b0));
        COUNT = uimmL;
      }
    }
  }
  always {
    zol {
      // program counter (`PC`) defined in RV32I
      if (COUNT != 0 && END_PC == PC) {
        PC = START_PC;
        --COUNT;
      }
    }
  }
}
"#;

/// `autoinc` — auto-incrementing load/store with a custom address register.
pub const AUTOINC: &str = r#"
import "RV32I.core_desc";
InstructionSet autoinc extends RV32I {
  architectural_state {
    register unsigned<32> ADDR;
  }
  instructions {
    setup_autoinc {
      encoding: 12'd0 :: rs1[4:0] :: 3'b000 :: 5'b00000 :: 7'b0101011;
      behavior: {
        ADDR = X[rs1];
      }
    }
    load_inc {
      encoding: 12'd1 :: 5'b00000 :: 3'b001 :: rd[4:0] :: 7'b0101011;
      behavior: {
        unsigned<32> a = ADDR;
        X[rd] = MEM[a+3:a];
        ADDR = (unsigned<32>)(a + 4);
      }
    }
    store_inc {
      encoding: 7'd1 :: rs2[4:0] :: 5'b00000 :: 3'b010 :: 5'b00000 :: 7'b0101011;
      behavior: {
        unsigned<32> a = ADDR;
        MEM[a+3:a] = X[rs2];
        ADDR = (unsigned<32>)(a + 4);
      }
    }
  }
}
"#;

/// `ijmp` — read the next PC from memory (PC + main-memory access).
pub const IJMP: &str = r#"
import "RV32I.core_desc";
InstructionSet ijmp extends RV32I {
  instructions {
    ijmp {
      encoding: 12'd0 :: rs1[4:0] :: 3'b011 :: 5'b00000 :: 7'b0001011;
      behavior: {
        unsigned<32> a = X[rs1];
        PC = MEM[a+3:a];
      }
    }
  }
}
"#;

/// `sbox` — AES S-Box lookup from a constant custom register (ROM).
pub const SBOX: &str = r#"
import "RV32I.core_desc";
InstructionSet sbox extends RV32I {
  architectural_state {
    register const unsigned<8> SBOX[256] = {
      0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
      0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
      0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
      0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
      0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
      0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
      0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
      0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
      0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
      0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
      0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
      0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
      0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
      0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
      0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
      0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16
    };
  }
  instructions {
    aes_sbox {
      encoding: 12'd0 :: rs1[4:0] :: 3'b100 :: rd[4:0] :: 7'b0001011;
      behavior: {
        X[rd] = (unsigned<32>) SBOX[X[rs1][7:0]];
      }
    }
  }
}
"#;

/// The four SPARKLE round constants used by the `sparkle` ISAX (one
/// Alzette instance per ARX-box branch).
pub const SPARKLE_RCON: [u32; 4] = [0xb7e15162, 0xbf715880, 0x38b4da56, 0x324e7738];

/// `sparkle` — ARX-boxes from the SPARKLE lightweight-cryptography suite:
/// R-type instructions, bit manipulations, helper functions. One
/// `alzette_x<k>` / `alzette_y<k>` instruction pair per round constant
/// computes the x / y output of a full 4-round Alzette instance.
pub fn sparkle_src() -> String {
    let mut body = String::from(
        r#"
import "RV32I.core_desc";
InstructionSet sparkle extends RV32I {
  functions {
    unsigned<32> rotr(unsigned<32> x, unsigned<5> n) {
      return (unsigned<32>)((x >> n) | (x << (unsigned<5>)(32 - n)));
    }
"#,
    );
    for (k, c) in SPARKLE_RCON.iter().enumerate() {
        body.push_str(&format!(
            r#"
    unsigned<32> alzette{k}_x(unsigned<32> xi, unsigned<32> yi) {{
      unsigned<32> x = xi;
      unsigned<32> y = yi;
      x = (unsigned<32>)(x + rotr(y, 31));
      y = (unsigned<32>)(y ^ rotr(x, 24));
      x = (unsigned<32>)(x ^ {c:#x});
      x = (unsigned<32>)(x + rotr(y, 17));
      y = (unsigned<32>)(y ^ rotr(x, 17));
      x = (unsigned<32>)(x ^ {c:#x});
      x = (unsigned<32>)(x + y);
      y = (unsigned<32>)(y ^ rotr(x, 31));
      x = (unsigned<32>)(x ^ {c:#x});
      x = (unsigned<32>)(x + rotr(y, 24));
      y = (unsigned<32>)(y ^ rotr(x, 16));
      x = (unsigned<32>)(x ^ {c:#x});
      return x;
    }}
    unsigned<32> alzette{k}_y(unsigned<32> xi, unsigned<32> yi) {{
      unsigned<32> x = xi;
      unsigned<32> y = yi;
      x = (unsigned<32>)(x + rotr(y, 31));
      y = (unsigned<32>)(y ^ rotr(x, 24));
      x = (unsigned<32>)(x ^ {c:#x});
      x = (unsigned<32>)(x + rotr(y, 17));
      y = (unsigned<32>)(y ^ rotr(x, 17));
      x = (unsigned<32>)(x ^ {c:#x});
      x = (unsigned<32>)(x + y);
      y = (unsigned<32>)(y ^ rotr(x, 31));
      x = (unsigned<32>)(x ^ {c:#x});
      x = (unsigned<32>)(x + rotr(y, 24));
      y = (unsigned<32>)(y ^ rotr(x, 16));
      return y;
    }}
"#
        ));
    }
    body.push_str("  }\n  instructions {\n");
    for k in 0..SPARKLE_RCON.len() {
        body.push_str(&format!(
            r#"
    alzette_x{k} {{
      encoding: 7'd{f7} :: rs2[4:0] :: rs1[4:0] :: 3'b110 :: rd[4:0] :: 7'b0001011;
      behavior: {{
        X[rd] = alzette{k}_x(X[rs1], X[rs2]);
      }}
    }}
    alzette_y{k} {{
      encoding: 7'd{f7} :: rs2[4:0] :: rs1[4:0] :: 3'b111 :: rd[4:0] :: 7'b0001011;
      behavior: {{
        X[rd] = alzette{k}_y(X[rs1], X[rs2]);
      }}
    }}
"#,
            f7 = 2 + k,
        ));
    }
    body.push_str("  }\n}\n");
    body
}

fn sqrt_body(spawn: bool) -> String {
    let core = r#"
        unsigned<64> rem = 0;
        unsigned<64> root = 0;
        unsigned<64> v = x :: 32'd0;
        for (int i = 0; i < 32; i += 1) {
          rem = (unsigned<64>)((rem << 2) | v[63:62]);
          v = (unsigned<64>)(v << 2);
          root = (unsigned<64>)(root << 1);
          unsigned<64> trial = (unsigned<64>)((root << 1) | 1);
          if (trial <= rem) {
            rem = (unsigned<64>)(rem - trial);
            root = (unsigned<64>)(root | 1);
          }
        }
        X[rd] = (unsigned<32>) root;
"#;
    let (open, close) = if spawn { ("spawn {", "}") } else { ("", "") };
    format!(
        r#"
import "RV32I.core_desc";
InstructionSet {unit} extends RV32I {{
  instructions {{
    sqrt {{
      encoding: 12'd2 :: rs1[4:0] :: 3'b001 :: rd[4:0] :: 7'b0001011;
      behavior: {{
        unsigned<32> x = X[rs1];
        {open}
        {core}
        {close}
      }}
    }}
  }}
}}
"#,
        unit = if spawn { "sqrt_decoupled" } else { "sqrt_tightly" },
        open = open,
        core = core,
        close = close,
    )
}

/// `sqrt_tightly` — 32 unrolled digit-recurrence iterations of a
/// fixed-point square root (result is `sqrt(x)` in 16.16 fixed point),
/// executing via the tightly-coupled interfaces.
pub fn sqrt_tightly_src() -> String {
    sqrt_body(false)
}

/// `sqrt_decoupled` — the same computation wrapped in a `spawn`-block,
/// using the decoupled interfaces with automatic hazard handling.
pub fn sqrt_decoupled_src() -> String {
    sqrt_body(true)
}

/// All Table 3 benchmark ISAXes with static sources.
pub const STATIC_ISAXES: [BenchmarkIsax; 5] = [
    BenchmarkIsax {
        name: "autoinc",
        unit: "autoinc",
        source: AUTOINC,
        demonstrates: "custom register and main memory access",
    },
    BenchmarkIsax {
        name: "dotprod",
        unit: "X_DOTP",
        source: DOTPROD,
        demonstrates: "use of loop and bit ranges to concisely describe SIMD behavior",
    },
    BenchmarkIsax {
        name: "ijmp",
        unit: "ijmp",
        source: IJMP,
        demonstrates: "PC and main memory access",
    },
    BenchmarkIsax {
        name: "sbox",
        unit: "sbox",
        source: SBOX,
        demonstrates: "constant custom register",
    },
    BenchmarkIsax {
        name: "zol",
        unit: "zol",
        source: ZOL,
        demonstrates: "PC and custom register access in always-block",
    },
];

/// Returns `(name, unit, source)` for every Table 3 ISAX, including the
/// generated sqrt variants.
pub fn all_isaxes() -> Vec<(String, String, String)> {
    let mut all: Vec<(String, String, String)> = STATIC_ISAXES
        .iter()
        .map(|b| (b.name.to_string(), b.unit.to_string(), b.source.to_string()))
        .collect();
    // Table 3 order: autoinc, dotp, ijmp, sbox, sparkle, sqrt_*, zol.
    all.insert(4, ("sparkle".into(), "sparkle".into(), sparkle_src()));
    all.insert(
        5,
        (
            "sqrt_tightly".into(),
            "sqrt_tightly".into(),
            sqrt_tightly_src(),
        ),
    );
    all.insert(
        6,
        (
            "sqrt_decoupled".into(),
            "sqrt_decoupled".into(),
            sqrt_decoupled_src(),
        ),
    );
    all
}

/// Looks up a Table 3 ISAX source by name.
pub fn isax_source(name: &str) -> Option<(String, String)> {
    all_isaxes()
        .into_iter()
        .find(|(n, _, _)| n == name)
        .map(|(_, unit, src)| (unit, src))
}

/// Registers an assembler mnemonic for every instruction of `module`.
///
/// Operand convention: `rd`, `rs1`, `rs2` fields (when present, in that
/// order) come first as registers, followed by the remaining immediate
/// fields in encoding order (MSB-first appearance).
///
/// # Errors
///
/// Returns a [`FlowError`] if an encoding cannot be reconstructed.
pub fn register_mnemonics(asm: &mut Assembler, module: &TypedModule) -> Result<(), FlowError> {
    for instr in &module.instructions {
        let encoding = instr.encoding.clone();
        let order = operand_order(&encoding);
        let mnemonic = instr.name.clone();
        let name = instr.name.clone();
        let expected = order.len();
        let order_for_closure = order.clone();
        asm.register_custom(
            &mnemonic,
            Box::new(move |ops: &[Operand]| {
                if ops.len() != expected {
                    return Err(format!(
                        "`{name}` expects {expected} operands, got {}",
                        ops.len()
                    ));
                }
                let mut word = encoding.match_value();
                for (field, op) in order_for_closure.iter().zip(ops) {
                    let value = match (field.is_reg, op) {
                        (true, Operand::Reg(r)) => *r as u64,
                        (true, Operand::Imm(v)) => *v as u64,
                        (false, Operand::Imm(v)) => *v as u64,
                        (false, Operand::Reg(_)) => {
                            return Err(format!(
                                "operand for field `{}` must be an immediate",
                                field.name
                            ))
                        }
                    };
                    for (instr_lo, field_lo, len) in encoding.field_segments(&field.name) {
                        let mask = if len >= 32 { u32::MAX } else { (1u32 << len) - 1 };
                        let bits = ((value >> field_lo) as u32) & mask;
                        word |= bits << instr_lo;
                    }
                }
                Ok(word)
            }),
        );
    }
    Ok(())
}

#[derive(Debug, Clone)]
struct FieldOrder {
    name: String,
    is_reg: bool,
}

fn operand_order(encoding: &Encoding) -> Vec<FieldOrder> {
    let mut order = Vec::new();
    for reg in ["rd", "rs1", "rs2"] {
        if encoding.fields.iter().any(|f| f.name == reg) {
            order.push(FieldOrder {
                name: reg.to_string(),
                is_reg: true,
            });
        }
    }
    for piece in &encoding.pieces {
        if let EncodingPiece::Field { name, .. } = piece {
            if !["rd", "rs1", "rs2"].contains(&name.as_str())
                && !order.iter().any(|f| f.name == *name)
            {
                order.push(FieldOrder {
                    name: name.clone(),
                    is_reg: false,
                });
            }
        }
    }
    order
}
