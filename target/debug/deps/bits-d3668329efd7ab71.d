/root/repo/target/debug/deps/bits-d3668329efd7ab71.d: crates/bits/src/lib.rs crates/bits/src/apint.rs crates/bits/src/convert.rs crates/bits/src/ops.rs crates/bits/src/parse.rs

/root/repo/target/debug/deps/libbits-d3668329efd7ab71.rlib: crates/bits/src/lib.rs crates/bits/src/apint.rs crates/bits/src/convert.rs crates/bits/src/ops.rs crates/bits/src/parse.rs

/root/repo/target/debug/deps/libbits-d3668329efd7ab71.rmeta: crates/bits/src/lib.rs crates/bits/src/apint.rs crates/bits/src/convert.rs crates/bits/src/ops.rs crates/bits/src/parse.rs

crates/bits/src/lib.rs:
crates/bits/src/apint.rs:
crates/bits/src/convert.rs:
crates/bits/src/ops.rs:
crates/bits/src/parse.rs:
