/root/repo/target/debug/deps/ilp-1724265531d1c2f7.d: crates/ilp/src/lib.rs crates/ilp/src/branch_bound.rs crates/ilp/src/budget.rs crates/ilp/src/model.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs

/root/repo/target/debug/deps/libilp-1724265531d1c2f7.rlib: crates/ilp/src/lib.rs crates/ilp/src/branch_bound.rs crates/ilp/src/budget.rs crates/ilp/src/model.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs

/root/repo/target/debug/deps/libilp-1724265531d1c2f7.rmeta: crates/ilp/src/lib.rs crates/ilp/src/branch_bound.rs crates/ilp/src/budget.rs crates/ilp/src/model.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs

crates/ilp/src/lib.rs:
crates/ilp/src/branch_bound.rs:
crates/ilp/src/budget.rs:
crates/ilp/src/model.rs:
crates/ilp/src/rational.rs:
crates/ilp/src/simplex.rs:
