//! Built-in CoreDSL sources available to every compilation.

/// The `RV32I` base instruction-set description.
///
/// Declares the architectural state of the 32-bit base ISA — the standard
/// register field `X` with 32 elements of type `unsigned<32>` (as referenced
/// by the paper's Figure 1), the program counter `PC`, and the
/// byte-addressable standard address space `MEM`. ISAXes extend this set and
/// access the state through SCAIE-V sub-interfaces.
///
/// Longnail compiles only the *extension* instructions; the base RV32I
/// instructions are implemented natively by the host cores, so this prelude
/// carries state declarations only.
pub const RV32I: &str = r#"
InstructionSet RV32I {
    architectural_state {
        unsigned int XLEN = 32;
        register unsigned<32> X[32];
        register unsigned<32> PC;
        extern unsigned<8> MEM[4294967296];
    }
}
"#;

/// Name under which [`RV32I`] is registered with the import resolver.
pub const RV32I_IMPORT: &str = "RV32I.core_desc";
