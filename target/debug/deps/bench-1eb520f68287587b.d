/root/repo/target/debug/deps/bench-1eb520f68287587b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-1eb520f68287587b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
