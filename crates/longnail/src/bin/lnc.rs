//! `lnc` — the Longnail command-line compiler.
//!
//! ```text
//! usage: lnc <file.core_desc> --core <ORCA|Piccolo|PicoRV32|VexRiscv>
//!            [--unit <InstructionSet>] [--out <dir>]
//!            [--emit hir|lil|sv|config|datasheet] [--budget <units>]
//!            [--trace] [--metrics-out <path>] [--report]
//!
//! Compiles the CoreDSL description for the selected host core. Without
//! --emit, writes one SystemVerilog file per instruction/always-block plus
//! the SCAIE-V configuration YAML into --out (default: the current
//! directory) and prints a summary. With --emit, prints the requested
//! representation to stdout instead.
//!
//! --budget bounds the deterministic solver work per instruction; when the
//! exact scheduler exhausts it, the instruction degrades to the verified
//! ASAP fallback and a warning is reported.
//!
//! Observability: --trace prints the hierarchical stage-span tree with
//! wall-clock timings to stderr; --metrics-out writes the full telemetry
//! event stream (spans, counters, gauges, diagnostics) as JSON lines;
//! --report prints the per-unit compile report (schedule, hardware, and
//! solver statistics) to stdout instead of writing artifacts.
//!
//! Diagnostics go to stderr. Exit codes: 0 — clean or warnings only;
//! 1 — at least one unit failed to compile (artifacts for the remaining
//! units are still written); 2 — an internal compiler fault (verifier,
//! netlist lint, or a contained panic).
//! ```

use longnail::driver::{builtin_datasheet, EVAL_CORES};
use longnail::{Longnail, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    input: PathBuf,
    core: String,
    unit: Option<String>,
    out: PathBuf,
    emit: Option<String>,
    budget: Option<u64>,
    trace: bool,
    metrics_out: Option<PathBuf>,
    report: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut input = None;
    let mut core = None;
    let mut unit = None;
    let mut out = PathBuf::from(".");
    let mut emit = None;
    let mut budget = None;
    let mut trace = false;
    let mut metrics_out = None;
    let mut report = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--core" => core = Some(args.next().ok_or("--core needs a value")?),
            "--unit" => unit = Some(args.next().ok_or("--unit needs a value")?),
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a value")?),
            "--emit" => emit = Some(args.next().ok_or("--emit needs a value")?),
            "--budget" => {
                let v = args.next().ok_or("--budget needs a value")?;
                budget = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--budget: `{v}` is not a work-unit count"))?,
                );
            }
            "--trace" => trace = true,
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    args.next().ok_or("--metrics-out needs a value")?,
                ));
            }
            "--report" => report = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"))
            }
            other => {
                if input.replace(PathBuf::from(other)).is_some() {
                    return Err("more than one input file".into());
                }
            }
        }
    }
    Ok(Args {
        input: input.ok_or("missing input file")?,
        core: core.ok_or_else(|| {
            format!("missing --core (one of: {})", EVAL_CORES.join(", "))
        })?,
        unit,
        out,
        emit,
        budget,
        trace,
        metrics_out,
        report,
    })
}

fn usage() {
    eprintln!(
        "usage: lnc <file.core_desc> --core <{}> [--unit <InstructionSet>] \
         [--out <dir>] [--emit hir|lil|sv|config|datasheet] [--budget <units>] \
         [--trace] [--metrics-out <path>] [--report]",
        EVAL_CORES.join("|")
    );
}

/// Maps the accumulated diagnostics to the process exit code.
fn exit_for(compiled: &longnail::CompiledIsax) -> ExitCode {
    match compiled.diagnostics.worst() {
        Some(Severity::Fault) => ExitCode::from(2),
        Some(Severity::Error) => ExitCode::FAILURE,
        _ => ExitCode::SUCCESS,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    let Some(datasheet) = builtin_datasheet(&args.core) else {
        eprintln!(
            "error: unknown core `{}` (known: {})",
            args.core,
            EVAL_CORES.join(", ")
        );
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(&args.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.input.display());
            return ExitCode::FAILURE;
        }
    };
    let unit = args.unit.clone().unwrap_or_else(|| {
        args.input
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default()
    });
    let mut ln = Longnail::new();
    if let Some(b) = args.budget {
        ln.work_limit = b;
    }
    // --emit hir needs the typed module before HLS.
    if args.emit.as_deref() == Some("hir") {
        return match ln.frontend_mut().compile_str(&src, &unit) {
            Ok(module) => {
                print!("{}", ir::hirprint::print_module(&module));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.emit.as_deref() == Some("datasheet") {
        print!("{}", datasheet.to_yaml());
        return ExitCode::SUCCESS;
    }
    // A panic anywhere in the flow is an internal fault (exit 2), not a
    // crash: report it like any other diagnostic.
    let compiled = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ln.compile(&src, &unit, &datasheet)
    })) {
        Ok(Ok(c)) => c,
        Ok(Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".into());
            eprintln!("internal fault: compiler panicked: {msg}");
            return ExitCode::from(2);
        }
    };
    if !compiled.diagnostics.is_empty() {
        eprint!("{}", compiled.diagnostics.render());
    }
    if args.trace {
        eprint!("{}", telemetry::report::render_tree(&compiled.trace));
    }
    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, compiled.trace.to_jsonl()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if args.report {
        print!("{}", telemetry::report::render_report(&compiled.trace));
        return exit_for(&compiled);
    }
    match args.emit.as_deref() {
        Some("lil") => {
            for g in &compiled.graphs {
                print!("{}", g.graph);
            }
        }
        Some("sv") => {
            for g in &compiled.graphs {
                print!("{}", g.verilog);
            }
        }
        Some("config") => print!("{}", compiled.config.to_yaml()),
        Some(other) => {
            eprintln!("error: unknown --emit `{other}`");
            return ExitCode::FAILURE;
        }
        None => {
            if let Err(e) = std::fs::create_dir_all(&args.out) {
                eprintln!("error: cannot create {}: {e}", args.out.display());
                return ExitCode::FAILURE;
            }
            for g in &compiled.graphs {
                let path = args
                    .out
                    .join(format!("{}_{}.sv", compiled.name, g.name));
                if let Err(e) = std::fs::write(&path, &g.verilog) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!(
                    "wrote {:<40} {:>6} stages, mode {}",
                    path.display(),
                    g.max_stage,
                    g.mode
                );
            }
            let config_path = args.out.join(format!("{}.scaiev.yaml", compiled.name));
            if let Err(e) = std::fs::write(&config_path, compiled.config.to_yaml()) {
                eprintln!("error: cannot write {}: {e}", config_path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", config_path.display());
            println!(
                "\n{}: {} instruction(s), {} always-block(s) compiled for {}",
                compiled.name,
                compiled.instructions().count(),
                compiled.always_blocks().count(),
                args.core
            );
        }
    }
    exit_for(&compiled)
}
