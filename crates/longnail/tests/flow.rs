//! End-to-end flow tests: all Table 3 ISAXes × all Table 4 cores.

use longnail::driver::{builtin_datasheet, EVAL_CORES};
use longnail::golden::GoldenMachine;
use longnail::isax_lib;
use longnail::Longnail;
use riscv::asm::Assembler;
use scaiev::modes::ExecutionMode;

#[test]
fn all_isaxes_compile_for_all_cores() {
    let ln = Longnail::new();
    for core in EVAL_CORES {
        let ds = builtin_datasheet(core).unwrap();
        for (name, unit, src) in isax_lib::all_isaxes() {
            let compiled = ln
                .compile(&src, &unit, &ds)
                .unwrap_or_else(|e| panic!("{name} on {core}: {e}"));
            assert!(!compiled.graphs.is_empty(), "{name} produced no graphs");
            for g in &compiled.graphs {
                assert!(
                    g.verilog.contains("module"),
                    "{name}/{} emitted no Verilog",
                    g.name
                );
                g.built.module.validate().unwrap();
            }
            // Config round-trips through YAML.
            let yaml = compiled.config.to_yaml();
            let parsed = scaiev::IsaxConfig::from_yaml(&yaml).unwrap();
            assert_eq!(parsed, compiled.config, "{name} on {core} config YAML");
        }
    }
}

#[test]
fn execution_modes_match_table3_expectations() {
    let ln = Longnail::new();
    let ds = builtin_datasheet("VexRiscv").unwrap();

    let (unit, src) = isax_lib::isax_source("dotprod").unwrap();
    let dotp = ln.compile(&src, &unit, &ds).unwrap();
    assert_eq!(dotp.graph("dotp").unwrap().mode, ExecutionMode::InPipeline);

    let (unit, src) = isax_lib::isax_source("sqrt_tightly").unwrap();
    let sq = ln.compile(&src, &unit, &ds).unwrap();
    let g = sq.graph("sqrt").unwrap();
    assert_eq!(g.mode, ExecutionMode::TightlyCoupled, "{:?}", g.result_stage);
    // The unrolled CORDIC-style root spans far more stages than the
    // 5-stage host pipeline (the paper reports ~10).
    assert!(g.max_stage > 5, "sqrt max stage {}", g.max_stage);

    let (unit, src) = isax_lib::isax_source("sqrt_decoupled").unwrap();
    let sq = ln.compile(&src, &unit, &ds).unwrap();
    let g = sq.graph("sqrt").unwrap();
    assert_eq!(g.mode, ExecutionMode::Decoupled);
    assert!(g.spawn_stage.is_some());

    let (unit, src) = isax_lib::isax_source("zol").unwrap();
    let zol = ln.compile(&src, &unit, &ds).unwrap();
    assert_eq!(zol.graph("zol").unwrap().mode, ExecutionMode::Always);
    assert_eq!(
        zol.graph("setup_zol").unwrap().mode,
        ExecutionMode::InPipeline
    );
    assert_eq!(zol.config.registers.len(), 3);
}

#[test]
fn schedules_respect_core_windows() {
    let ln = Longnail::new();
    for core in EVAL_CORES {
        let ds = builtin_datasheet(core).unwrap();
        let (unit, src) = isax_lib::isax_source("dotprod").unwrap();
        let compiled = ln.compile(&src, &unit, &ds).unwrap();
        let g = compiled.graph("dotp").unwrap();
        for (v, op) in g.graph.iter() {
            if let Some(iface) = longnail::driver::lil_iface_op(&op.kind) {
                let t = ds.timing(&iface).unwrap();
                let st = g.schedule.start_time[v.0];
                assert!(
                    st >= t.earliest,
                    "{core}: {} scheduled at {st} before earliest {}",
                    iface.key(),
                    t.earliest
                );
            }
        }
    }
}

#[test]
fn golden_machine_runs_dotp_program() {
    let mut ln = Longnail::new();
    let (unit, src) = isax_lib::isax_source("dotprod").unwrap();
    let module = ln
        .frontend_mut()
        .compile_str(&src, &unit)
        .map_err(|e| e.to_string())
        .unwrap();
    let mut asm = Assembler::new();
    isax_lib::register_mnemonics(&mut asm, &module).unwrap();
    let program = asm
        .assemble(
            r#"
        li a1, 0x01020304
        li a2, 0x05060708
        dotp a0, a1, a2
        ebreak
    "#,
        )
        .unwrap();
    let mut machine = GoldenMachine::new(vec![module]);
    machine.load_program(0, &program);
    machine.run(100).unwrap();
    // 1*5 + 2*6 + 3*7 + 4*8 = 70
    assert_eq!(machine.cpu.read_reg(10), 70);
}

#[test]
fn golden_machine_zero_overhead_loop() {
    // A loop summing 1..=5 into a0 without any branch instruction: the
    // zol always-block redirects the PC.
    let mut ln = Longnail::new();
    let (unit, src) = isax_lib::isax_source("zol").unwrap();
    let module = ln
        .frontend_mut()
        .compile_str(&src, &unit)
        .map_err(|e| e.to_string())
        .unwrap();
    let mut asm = Assembler::new();
    isax_lib::register_mnemonics(&mut asm, &module).unwrap();
    // setup_zol uimmL=4 (4 extra iterations), uimmS: END_PC = PC + 2*uimmS.
    // setup at address 8; body = single add at 12; END_PC must be 12, so
    // uimmS = 2. After setup: START_PC = 12.
    let program = asm
        .assemble(
            r#"
        li   t0, 0        # occupies addresses 0..8
        setup_zol 4, 2    # at address 8
        addi t0, t0, 1    # loop body at address 12 == END_PC
        ebreak            # at 16
    "#,
        )
        .unwrap();
    let mut machine = GoldenMachine::new(vec![module]);
    machine.load_program(0, &program);
    machine.run(100).unwrap();
    // The body executes once per COUNT value 4,3,2,1 plus the final
    // pass-through when COUNT reaches 0: 5 executions.
    assert_eq!(machine.cpu.read_reg(5), 5);
    assert_eq!(machine.cust_reg("COUNT", 0).to_u64(), 0);
}

#[test]
fn golden_machine_autoinc_stream() {
    let mut ln = Longnail::new();
    let (unit, src) = isax_lib::isax_source("autoinc").unwrap();
    let module = ln
        .frontend_mut()
        .compile_str(&src, &unit)
        .map_err(|e| e.to_string())
        .unwrap();
    let mut asm = Assembler::new();
    isax_lib::register_mnemonics(&mut asm, &module).unwrap();
    let program = asm
        .assemble(
            r#"
        li   a0, 0x100
        li   t0, 11
        sw   t0, 0(a0)
        li   t0, 31
        sw   t0, 4(a0)
        setup_autoinc a0
        load_inc t1
        load_inc t2
        add  a1, t1, t2
        ebreak
    "#,
        )
        .unwrap();
    let mut machine = GoldenMachine::new(vec![module]);
    machine.load_program(0, &program);
    machine.run(100).unwrap();
    assert_eq!(machine.cpu.read_reg(11), 42);
    assert_eq!(machine.cust_reg("ADDR", 0).to_u64(), 0x108);
}

#[test]
fn golden_machine_sqrt_matches_float() {
    let mut ln = Longnail::new();
    let (unit, src) = isax_lib::isax_source("sqrt_decoupled").unwrap();
    let module = ln
        .frontend_mut()
        .compile_str(&src, &unit)
        .map_err(|e| e.to_string())
        .unwrap();
    let mut asm = Assembler::new();
    isax_lib::register_mnemonics(&mut asm, &module).unwrap();
    for (x, expect) in [(4u32, 2.0f64), (2, std::f64::consts::SQRT_2), (144, 12.0)] {
        let program = asm
            .assemble(&format!("li a1, {x}\nsqrt a0, a1\nebreak"))
            .unwrap();
        let mut machine = GoldenMachine::new(vec![module.clone()]);
        machine.load_program(0, &program);
        machine.run(100).unwrap();
        let fixed = machine.cpu.read_reg(10) as f64 / 65536.0;
        assert!(
            (fixed - expect).abs() < 1e-4,
            "sqrt({x}) = {fixed}, expected {expect}"
        );
    }
}

#[test]
fn ijmp_redirects_pc_via_memory() {
    let mut ln = Longnail::new();
    let (unit, src) = isax_lib::isax_source("ijmp").unwrap();
    let module = ln
        .frontend_mut()
        .compile_str(&src, &unit)
        .map_err(|e| e.to_string())
        .unwrap();
    let mut asm = Assembler::new();
    isax_lib::register_mnemonics(&mut asm, &module).unwrap();
    let program = asm
        .assemble(
            r#"
        li   a0, 0x100
        li   t0, target     # target address into memory
        sw   t0, 0(a0)
        ijmp a0
        li   a1, 111        # skipped
        ebreak
    target:
        li   a1, 222
        ebreak
    "#,
        )
        .unwrap();
    let mut machine = GoldenMachine::new(vec![module]);
    machine.load_program(0, &program);
    machine.run(100).unwrap();
    assert_eq!(machine.cpu.read_reg(11), 222);
}

#[test]
fn sbox_lookup_matches_aes() {
    let mut ln = Longnail::new();
    let (unit, src) = isax_lib::isax_source("sbox").unwrap();
    let module = ln
        .frontend_mut()
        .compile_str(&src, &unit)
        .map_err(|e| e.to_string())
        .unwrap();
    let mut asm = Assembler::new();
    isax_lib::register_mnemonics(&mut asm, &module).unwrap();
    for (input, expect) in [(0u32, 0x63u32), (0x53, 0xed), (0xff, 0x16), (0x10, 0xca)] {
        let program = asm
            .assemble(&format!("li a1, {input}\naes_sbox a0, a1\nebreak"))
            .unwrap();
        let mut machine = GoldenMachine::new(vec![module.clone()]);
        machine.load_program(0, &program);
        machine.run(100).unwrap();
        assert_eq!(machine.cpu.read_reg(10), expect, "sbox[{input:#x}]");
    }
}

#[test]
fn sparkle_alzette_reference() {
    // Cross-check the ISAX against a direct Rust transcription.
    fn rotr(x: u32, n: u32) -> u32 {
        x.rotate_right(n)
    }
    fn alzette(mut x: u32, mut y: u32) -> (u32, u32) {
        const C: u32 = 0xb7e15162;
        for (rx, ry) in [(31, 24), (17, 17), (0, 31), (24, 16)] {
            x = x.wrapping_add(rotr(y, rx));
            y ^= rotr(x, ry);
            x ^= C;
        }
        (x, y)
    }
    let mut ln = Longnail::new();
    let (unit, src) = isax_lib::isax_source("sparkle").unwrap();
    let module = ln
        .frontend_mut()
        .compile_str(&src, &unit)
        .map_err(|e| e.to_string())
        .unwrap();
    let mut asm = Assembler::new();
    isax_lib::register_mnemonics(&mut asm, &module).unwrap();
    let (x, y) = (0x12345678u32, 0x9abcdef0u32);
    let program = asm
        .assemble(&format!(
            "li a1, {x}\nli a2, {y}\nalzette_x0 a0, a1, a2\nalzette_y0 a3, a1, a2\nebreak"
        ))
        .unwrap();
    let mut machine = GoldenMachine::new(vec![module]);
    machine.load_program(0, &program);
    machine.run(100).unwrap();
    let (ex, ey) = alzette(x, y);
    assert_eq!(machine.cpu.read_reg(10), ex, "alzette x");
    assert_eq!(machine.cpu.read_reg(13), ey, "alzette y");
}

#[test]
fn combined_autoinc_zol_machine() {
    // The §5.5 case-study combination: both ISAXes active at once.
    let mut ln = Longnail::new();
    let (unit_a, src_a) = isax_lib::isax_source("autoinc").unwrap();
    let (unit_z, src_z) = isax_lib::isax_source("zol").unwrap();
    let ma = ln.frontend_mut().compile_str(&src_a, &unit_a).map_err(|e| e.to_string()).unwrap();
    let mz = ln.frontend_mut().compile_str(&src_z, &unit_z).map_err(|e| e.to_string()).unwrap();
    let mut asm = Assembler::new();
    isax_lib::register_mnemonics(&mut asm, &ma).unwrap();
    isax_lib::register_mnemonics(&mut asm, &mz).unwrap();
    // Sum a 4-element array with autoinc loads inside a zero-overhead loop.
    let program = asm
        .assemble(
            r#"
        li   a0, 0x200
        li   t0, 10
        sw   t0, 0(a0)
        li   t0, 20
        sw   t0, 4(a0)
        li   t0, 30
        sw   t0, 8(a0)
        li   t0, 40
        sw   t0, 12(a0)
        li   a1, 0              # sum
        setup_autoinc a0        # address 36
        setup_zol 3, 4          # at 40: END_PC = 40 + 8 = 48; 4 total iters
        load_inc t1             # 44
        add  a1, a1, t1         # 48 == END_PC
        ebreak                  # 52
    "#,
        )
        .unwrap();
    let mut machine = GoldenMachine::new(vec![ma, mz]);
    machine.load_program(0, &program);
    machine.run(1000).unwrap();
    assert_eq!(machine.cpu.read_reg(11), 100);
}
