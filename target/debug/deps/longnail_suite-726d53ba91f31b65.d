/root/repo/target/debug/deps/longnail_suite-726d53ba91f31b65.d: src/suite.rs

/root/repo/target/debug/deps/liblongnail_suite-726d53ba91f31b65.rlib: src/suite.rs

/root/repo/target/debug/deps/liblongnail_suite-726d53ba91f31b65.rmeta: src/suite.rs

src/suite.rs:
