/root/repo/target/release/deps/lnc-d829d574b451f591.d: crates/longnail/src/bin/lnc.rs

/root/repo/target/release/deps/lnc-d829d574b451f591: crates/longnail/src/bin/lnc.rs

crates/longnail/src/bin/lnc.rs:
