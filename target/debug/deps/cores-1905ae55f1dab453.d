/root/repo/target/debug/deps/cores-1905ae55f1dab453.d: crates/cores/src/lib.rs crates/cores/src/descriptor.rs crates/cores/src/exec.rs

/root/repo/target/debug/deps/libcores-1905ae55f1dab453.rlib: crates/cores/src/lib.rs crates/cores/src/descriptor.rs crates/cores/src/exec.rs

/root/repo/target/debug/deps/libcores-1905ae55f1dab453.rmeta: crates/cores/src/lib.rs crates/cores/src/descriptor.rs crates/cores/src/exec.rs

crates/cores/src/lib.rs:
crates/cores/src/descriptor.rs:
crates/cores/src/exec.rs:
