//! Persistent on-disk cache layer.
//!
//! Entries live at `<root>/<stage>/<key-hex>.bin` and are written as a
//! temp file in the same directory followed by an atomic rename, so a
//! reader never observes a half-written entry and concurrent writers of
//! the same key are last-writer-wins with both writers having written
//! identical bytes (keys are content addresses).
//!
//! Entry layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic            b"LNQC"
//!      4     4  format version   u32 (FORMAT_VERSION)
//!      8     8  schema fingerprint u64 (caller-supplied)
//!     16     8  payload length   u64
//!     24    32  SHA-256(payload)
//!     56     N  payload
//! ```
//!
//! `load` validates every field before trusting the payload: wrong magic
//! or version, a fingerprint from a different compiler revision, a
//! length mismatch (truncation), or a checksum mismatch (corruption) all
//! return `None` and bump the stage's `invalid` counter — the caller
//! recomputes and overwrites the bad entry.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::hash::{digest, Digest};

const MAGIC: &[u8; 4] = b"LNQC";
const FORMAT_VERSION: u32 = 1;
const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 32;

/// Per-stage disk counters, snapshotted by [`DiskCache::stage_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Entries loaded and validated successfully.
    pub hits: u64,
    /// Lookups with no entry on disk.
    pub misses: u64,
    /// Entries present but rejected (stale fingerprint, truncated,
    /// corrupted) — recomputed, never trusted.
    pub invalid: u64,
    /// Entries written.
    pub stores: u64,
}

#[derive(Default)]
struct StatCell {
    hits: AtomicU64,
    misses: AtomicU64,
    invalid: AtomicU64,
    stores: AtomicU64,
}

/// Content-addressed persistent cache under a root directory.
pub struct DiskCache {
    root: PathBuf,
    fingerprint: u64,
    tmp_seq: AtomicU64,
    stats: Mutex<BTreeMap<String, StatCell>>,
}

impl DiskCache {
    /// Open (creating if needed) a cache rooted at `root`. `fingerprint`
    /// versions the schema: entries written under a different fingerprint
    /// self-invalidate on load.
    pub fn new(root: impl Into<PathBuf>, fingerprint: u64) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DiskCache {
            root,
            fingerprint,
            tmp_seq: AtomicU64::new(0),
            stats: Mutex::new(BTreeMap::new()),
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, stage: &str, key: &Digest) -> PathBuf {
        self.root.join(stage).join(format!("{}.bin", key.to_hex()))
    }

    fn bump(&self, stage: &str, f: impl Fn(&StatCell)) {
        let mut stats = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
        f(stats.entry(stage.to_string()).or_default())
    }

    /// Load and validate the payload under `(stage, key)`. Any defect in
    /// the entry yields `None` (counted as `invalid`); a simple absence
    /// is also `None` (counted as `miss`).
    pub fn load(&self, stage: &str, key: &Digest) -> Option<Vec<u8>> {
        let path = self.entry_path(stage, key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.bump(stage, |c| {
                    c.misses.fetch_add(1, Ordering::Relaxed);
                });
                return None;
            }
        };
        match Self::decode(&bytes, self.fingerprint) {
            Some(payload) => {
                self.bump(stage, |c| {
                    c.hits.fetch_add(1, Ordering::Relaxed);
                });
                Some(payload)
            }
            None => {
                self.bump(stage, |c| {
                    c.invalid.fetch_add(1, Ordering::Relaxed);
                });
                None
            }
        }
    }

    fn decode(bytes: &[u8], fingerprint: u64) -> Option<Vec<u8>> {
        if bytes.len() < HEADER_LEN || &bytes[0..4] != MAGIC {
            return None;
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
        let fp = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        let payload_len = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
        if version != FORMAT_VERSION || fp != fingerprint {
            return None;
        }
        let payload = &bytes[HEADER_LEN..];
        if payload.len() as u64 != payload_len {
            return None;
        }
        let want = Digest(bytes[24..56].try_into().ok()?);
        if digest(payload) != want {
            return None;
        }
        Some(payload.to_vec())
    }

    /// Persist `payload` under `(stage, key)` via write-then-rename.
    pub fn store(&self, stage: &str, key: &Digest, payload: &[u8]) -> io::Result<()> {
        let path = self.entry_path(stage, key);
        let dir = path.parent().expect("entry path has a stage dir");
        fs::create_dir_all(dir)?;
        let mut entry = Vec::with_capacity(HEADER_LEN + payload.len());
        entry.extend_from_slice(MAGIC);
        entry.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        entry.extend_from_slice(&self.fingerprint.to_le_bytes());
        entry.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        entry.extend_from_slice(&digest(payload).0);
        entry.extend_from_slice(payload);
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&entry)?;
            f.sync_all()?;
        }
        let renamed = fs::rename(&tmp, &path);
        if renamed.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        self.bump(stage, |c| {
            c.stores.fetch_add(1, Ordering::Relaxed);
        });
        renamed
    }

    /// Snapshot the counters for one stage.
    pub fn stage_stats(&self, stage: &str) -> DiskStats {
        let stats = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
        stats
            .get(stage)
            .map(|c| DiskStats {
                hits: c.hits.load(Ordering::Relaxed),
                misses: c.misses.load(Ordering::Relaxed),
                invalid: c.invalid.load(Ordering::Relaxed),
                stores: c.stores.load(Ordering::Relaxed),
            })
            .unwrap_or_default()
    }

    /// Snapshot all stages, sorted by stage name.
    pub fn all_stats(&self) -> Vec<(String, DiskStats)> {
        let stats = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
        stats
            .iter()
            .map(|(s, c)| {
                (
                    s.clone(),
                    DiskStats {
                        hits: c.hits.load(Ordering::Relaxed),
                        misses: c.misses.load(Ordering::Relaxed),
                        invalid: c.invalid.load(Ordering::Relaxed),
                        stores: c.stores.load(Ordering::Relaxed),
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qcache-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_roundtrips() {
        let root = tmp_root("roundtrip");
        let cache = DiskCache::new(&root, 0xfeed).unwrap();
        let key = digest(b"cell-1");
        assert_eq!(cache.load("cell", &key), None);
        cache.store("cell", &key, b"module m; endmodule\n").unwrap();
        assert_eq!(
            cache.load("cell", &key).as_deref(),
            Some(&b"module m; endmodule\n"[..])
        );
        let s = cache.stage_stats("cell");
        assert_eq!((s.hits, s.misses, s.invalid, s.stores), (1, 1, 0, 1));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupted_entry_is_rejected_not_trusted() {
        let root = tmp_root("corrupt");
        let cache = DiskCache::new(&root, 1).unwrap();
        let key = digest(b"k");
        cache.store("rtl", &key, b"payload-bytes").unwrap();
        let path = root.join("rtl").join(format!("{}.bin", key.to_hex()));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // flip one payload bit
        fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.load("rtl", &key), None, "checksum must catch the flip");
        assert_eq!(cache.stage_stats("rtl").invalid, 1);
        // Recompute path: overwrite with a good entry, loads again.
        cache.store("rtl", &key, b"payload-bytes").unwrap();
        assert_eq!(cache.load("rtl", &key).as_deref(), Some(&b"payload-bytes"[..]));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncated_entry_is_rejected() {
        let root = tmp_root("truncate");
        let cache = DiskCache::new(&root, 1).unwrap();
        let key = digest(b"k");
        cache.store("solve", &key, b"0123456789abcdef").unwrap();
        let path = root.join("solve").join(format!("{}.bin", key.to_hex()));
        let bytes = fs::read(&path).unwrap();
        // Chop mid-payload and mid-header.
        for cut in [bytes.len() - 5, HEADER_LEN, 3] {
            fs::write(&path, &bytes[..cut]).unwrap();
            assert_eq!(cache.load("solve", &key), None, "cut at {cut}");
        }
        assert_eq!(cache.stage_stats("solve").invalid, 3);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stale_fingerprint_self_invalidates() {
        let root = tmp_root("fingerprint");
        let key = digest(b"k");
        {
            let old = DiskCache::new(&root, 100).unwrap();
            old.store("cell", &key, b"old-schema-artifact").unwrap();
        }
        let new = DiskCache::new(&root, 101).unwrap();
        assert_eq!(new.load("cell", &key), None, "old fingerprint rejected");
        assert_eq!(new.stage_stats("cell").invalid, 1);
        new.store("cell", &key, b"new-schema-artifact").unwrap();
        assert_eq!(
            new.load("cell", &key).as_deref(),
            Some(&b"new-schema-artifact"[..])
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let root = tmp_root("magic");
        let cache = DiskCache::new(&root, 1).unwrap();
        let key = digest(b"k");
        cache.store("modes", &key, b"x").unwrap();
        let path = root.join("modes").join(format!("{}.bin", key.to_hex()));
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] = b'X';
        fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.load("modes", &key), None);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn empty_payload_roundtrips() {
        let root = tmp_root("empty");
        let cache = DiskCache::new(&root, 1).unwrap();
        let key = digest(b"k");
        cache.store("cfg", &key, b"").unwrap();
        assert_eq!(cache.load("cfg", &key).as_deref(), Some(&b""[..]));
        fs::remove_dir_all(&root).unwrap();
    }
}
