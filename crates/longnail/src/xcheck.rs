//! The X-propagation verify stage (`lnc --xcheck`).
//!
//! For every compiled unit of an ISAX this drives identical, fully-known
//! stimulus through the two-valued interpreter ([`rtl::interp`]) and the
//! four-state simulator ([`rtl::xsim`]) and reports:
//!
//! * **mismatches** — cycles where a fully-known four-state net disagrees
//!   with the interpreter (an emitter/semantics bug, reported with the
//!   offending net, cycle, and driver operator),
//! * **X output bits** — X reaching an output port although every input
//!   was known (the emitted SystemVerilog would behave unpredictably in
//!   exactly the situations the interpreter claims are fine),
//! * **static X hazards** — [`rtl::lint_x_hazards`] findings, the same
//!   bug class caught without simulation.
//!
//! Oracle protocol: the interpreter ignores the `rst` port (reset happens
//! through [`rtl::Simulator::reset`]) and starts registers at their init
//! values; [`rtl::Xsim`] powers up all-X, so [`DiffSim`] applies
//! [`rtl::Xsim::reset`] before the first cycle — modelling a completed
//! synchronous reset pulse — and the stimulus then holds `rst` low. With
//! the default [`EmitOptions`] a clean report is the machine-checked
//! statement that the emitted SystemVerilog, IEEE-1800 X rules included,
//! implements exactly the semantics the compiler verified against the
//! golden model (paper §5.3).

use crate::driver::CompiledIsax;
use bits::ApInt;
use rtl::xsim::DiffSim;
use rtl::{lint_x_hazards, EmitOptions, IfaceSignal, PortDir};
use std::collections::HashMap;
use telemetry::{metrics, Telemetry, Trace};

/// Tunables for one differential check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XCheckOptions {
    /// Cycles of stimulus per unit.
    pub cycles: u64,
    /// Emission semantics the four-state side models (and the static
    /// hazard lint checks). Use the default unless reproducing a
    /// deliberately broken emitter.
    pub emit: EmitOptions,
}

impl Default for XCheckOptions {
    fn default() -> Self {
        XCheckOptions {
            cycles: 32,
            emit: EmitOptions::default(),
        }
    }
}

/// Differential result for one compiled unit.
#[derive(Debug, Clone)]
pub struct XCheckUnit {
    /// Instruction / always-block name.
    pub unit: String,
    /// Cycles actually driven (stops at the first mismatch).
    pub cycles: u64,
    /// Interp/xsim disagreements on fully-known nets (rendered with net,
    /// cycle, and driver op). At most one: checking stops there.
    pub mismatches: Vec<String>,
    /// X bits that reached output ports under fully-known inputs, summed
    /// over all checked cycles.
    pub x_output_bits: u64,
    /// Static X-hazard findings for this unit's netlist.
    pub lint_findings: Vec<String>,
}

impl XCheckUnit {
    /// True when the unit survived with no signal of any kind.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty() && self.x_output_bits == 0 && self.lint_findings.is_empty()
    }
}

/// Differential results for one compiled ISAX on one core.
#[derive(Debug, Clone)]
pub struct XCheckReport {
    /// ISAX name.
    pub isax: String,
    /// Core the compilation targeted.
    pub core: String,
    /// One result per compiled unit.
    pub units: Vec<XCheckUnit>,
    /// Telemetry for the check ([`metrics::XCHECK_CYCLES`] and friends).
    pub trace: Trace,
}

impl XCheckReport {
    /// True when every unit is clean.
    pub fn is_clean(&self) -> bool {
        self.units.iter().all(XCheckUnit::is_clean)
    }

    /// Total interp/xsim mismatches.
    pub fn mismatches(&self) -> u64 {
        self.units.iter().map(|u| u.mismatches.len() as u64).sum()
    }

    /// Total X bits that reached outputs.
    pub fn x_output_bits(&self) -> u64 {
        self.units.iter().map(|u| u.x_output_bits).sum()
    }

    /// Total static hazard findings.
    pub fn lint_findings(&self) -> u64 {
        self.units.iter().map(|u| u.lint_findings.len() as u64).sum()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "xcheck {}@{}: {} unit(s), {} mismatch(es), {} X output bit(s), {} hazard(s)",
            self.isax,
            self.core,
            self.units.len(),
            self.mismatches(),
            self.x_output_bits(),
            self.lint_findings()
        )
    }

    /// Every problem as a flat list of display lines.
    pub fn problems(&self) -> Vec<String> {
        let mut out = Vec::new();
        for u in &self.units {
            for m in &u.mismatches {
                out.push(format!("{}: mismatch: {m}", u.unit));
            }
            if u.x_output_bits > 0 {
                out.push(format!(
                    "{}: {} X bit(s) reached outputs from known inputs",
                    u.unit, u.x_output_bits
                ));
            }
            for l in &u.lint_findings {
                out.push(format!("{}: X hazard: {l}", u.unit));
            }
        }
        out
    }
}

/// Deterministic corner-biased stimulus words: zero and one (divide-by-
/// zero and trivial operands), sign boundaries, all-ones, and a couple of
/// mixed patterns. `rs2` is offset so zero divisors land against nonzero
/// dividends too.
const PATTERNS: [u64; 8] = [
    0,
    1,
    0xffff_ffff,
    0x8000_0000,
    0x7fff_ffff,
    0xdead_beef,
    2,
    0x0102_0304,
];

fn pat(t: u64) -> u64 {
    PATTERNS[(t % PATTERNS.len() as u64) as usize]
}

fn apint(v: u64, width: u32) -> ApInt {
    ApInt::from_u64(v, 64).zext_or_trunc(width)
}

/// Runs the differential check over every unit of `isax` with defaults.
pub fn xcheck_compiled(isax: &CompiledIsax) -> XCheckReport {
    xcheck_compiled_with(isax, &XCheckOptions::default())
}

/// Runs the differential check over every unit of `isax` under `opts`.
pub fn xcheck_compiled_with(isax: &CompiledIsax, opts: &XCheckOptions) -> XCheckReport {
    let mut tel = Telemetry::new();
    let root = tel.start_span("xcheck");
    tel.attr(root, "isax", &isax.name);
    tel.attr(root, "core", &isax.core);
    let mut units = Vec::new();
    for g in &isax.graphs {
        let span = tel.start_unit_span("xcheck_unit", Some(&g.name));
        let lint_findings: Vec<String> = lint_x_hazards(&g.built.module, &opts.emit)
            .into_iter()
            .map(|i| i.to_string())
            .collect();

        let mut diff = DiffSim::with_options(g.built.module.clone(), opts.emit);
        let mut mismatches = Vec::new();
        let mut x_output_bits = 0u64;
        let mut cycles = 0u64;
        for t in 0..opts.cycles {
            let inputs = stimulus(g, t);
            match diff.step(&inputs) {
                Ok(stats) => x_output_bits += stats.output_x_bits,
                Err(mm) => {
                    mismatches.push(mm.to_string());
                    cycles = t + 1;
                    break;
                }
            }
            cycles = t + 1;
        }

        tel.counter(span, metrics::XCHECK_CYCLES, cycles);
        tel.counter(span, metrics::XCHECK_MISMATCHES, mismatches.len() as u64);
        tel.counter(span, metrics::XCHECK_X_OUTPUT_BITS, x_output_bits);
        tel.counter(span, metrics::XCHECK_LINT_FINDINGS, lint_findings.len() as u64);
        tel.end_span(span);
        units.push(XCheckUnit {
            unit: g.name.clone(),
            cycles,
            mismatches,
            x_output_bits,
            lint_findings,
        });
    }
    tel.counter(root, metrics::XCHECK_MISMATCHES, units.iter().map(|u| u.mismatches.len() as u64).sum());
    tel.counter(root, metrics::XCHECK_X_OUTPUT_BITS, units.iter().map(|u| u.x_output_bits).sum());
    tel.counter(root, metrics::XCHECK_LINT_FINDINGS, units.iter().map(|u| u.lint_findings.len() as u64).sum());
    tel.end_span(root);
    XCheckReport {
        isax: isax.name.clone(),
        core: isax.core.clone(),
        units,
        trace: tel.finish(),
    }
}

/// Builds cycle `t`'s fully-known input map for a unit: every input port
/// of the built module is driven, so no X can enter from outside and any
/// X observed is manufactured by the netlist itself.
fn stimulus(g: &crate::driver::CompiledGraph, t: u64) -> HashMap<String, ApInt> {
    let mut inputs = HashMap::new();
    // clk/rst are structural (registers are modelled directly); hold rst
    // low so the oracle's one-time reset stays in effect.
    inputs.insert("clk".to_string(), ApInt::zero(1));
    inputs.insert("rst".to_string(), ApInt::zero(1));
    for b in &g.built.bindings {
        if b.dir != PortDir::Input {
            continue;
        }
        let v = match &b.signal {
            // A word that actually decodes as this instruction, with the
            // don't-care bits cycling through the patterns.
            IfaceSignal::InstrWord => {
                u64::from(g.match_value) | (pat(t) & !u64::from(g.mask))
            }
            IfaceSignal::Rs1Data => pat(t),
            // Offset so zero/one divisors meet interesting dividends.
            IfaceSignal::Rs2Data => pat(t + 3),
            IfaceSignal::PcData => 0x100 + 4 * t,
            IfaceSignal::MemRdData => pat(t + 1),
            IfaceSignal::CustRdData(_) => pat(t + 5),
            // An occasional stall exercises the register-enable paths.
            IfaceSignal::StallIn => u64::from(t % 7 == 5),
            // Remaining inputs (if any) held low.
            _ => 0,
        };
        inputs.insert(b.name.clone(), apint(v, b.width));
    }
    inputs
}
