//! Degradation acceptance: every Table 3 ISAX compiles on all four
//! evaluation cores even under a solver budget of zero — the exact ILP
//! gives way to the verified ASAP fallback, reported as a warning, and no
//! unit is lost.

use longnail::driver::{builtin_datasheet, EVAL_CORES};
use longnail::isax_lib::all_isaxes;
use longnail::{Longnail, Severity};

#[test]
fn zero_budget_compiles_every_isax_on_every_core() {
    for (name, unit, source) in all_isaxes() {
        for core in EVAL_CORES {
            let ds = builtin_datasheet(core).unwrap();
            let exact = Longnail::new()
                .compile(&source, &unit, &ds)
                .unwrap_or_else(|e| panic!("{name} on {core} (default budget): {e}"));
            let mut ln = Longnail::new();
            ln.work_limit = 0;
            let degraded = ln
                .compile(&source, &unit, &ds)
                .unwrap_or_else(|e| panic!("{name} on {core} (zero budget): {e}"));

            // The default budget compiles cleanly — no degradations, no
            // errors — so the happy path is unchanged.
            assert!(
                exact.diagnostics.is_empty(),
                "{name} on {core}: unexpected diagnostics with default budget:\n{}",
                exact.diagnostics.render()
            );
            // Zero budget loses no units: every instruction/always-block
            // still produces hardware, via the fallback scheduler.
            assert_eq!(
                degraded.graphs.len(),
                exact.graphs.len(),
                "{name} on {core}: zero budget dropped units:\n{}",
                degraded.diagnostics.render()
            );
            assert!(
                !degraded.diagnostics.has_errors(),
                "{name} on {core}: zero budget produced errors:\n{}",
                degraded.diagnostics.render()
            );
            // The switch to the fallback is reported, per scheduled graph.
            assert_eq!(
                degraded.diagnostics.of(Severity::Warning).count(),
                degraded.graphs.len(),
                "{name} on {core}: expected one degradation warning per unit:\n{}",
                degraded.diagnostics.render()
            );
            assert!(degraded
                .diagnostics
                .of(Severity::Warning)
                .all(|w| w.message.contains("ASAP fallback")));
            // Degraded hardware is still complete: SystemVerilog and a
            // schedule exist for every unit.
            for g in &degraded.graphs {
                assert!(!g.verilog.is_empty(), "{name}/{} on {core}: empty SV", g.name);
                assert_eq!(g.schedule.start_time.len(), g.graph.len());
            }
        }
    }
}
