/root/repo/target/debug/deps/language-ee882c00ffc2a1ab.d: crates/coredsl/tests/language.rs Cargo.toml

/root/repo/target/debug/deps/liblanguage-ee882c00ffc2a1ab.rmeta: crates/coredsl/tests/language.rs Cargo.toml

crates/coredsl/tests/language.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
