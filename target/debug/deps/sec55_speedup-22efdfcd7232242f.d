/root/repo/target/debug/deps/sec55_speedup-22efdfcd7232242f.d: crates/bench/benches/sec55_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libsec55_speedup-22efdfcd7232242f.rmeta: crates/bench/benches/sec55_speedup.rs Cargo.toml

crates/bench/benches/sec55_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
