//! Microarchitectural descriptors of the four evaluation cores (paper §5.2).
//!
//! ORCA and VexRiscv are 5-stage pipelines, Piccolo is a 3-stage pipeline,
//! and PicoRV32 is a non-pipelined core sequenced by an FSM. The cycle
//! parameters model the cache-less evaluation configuration of the paper
//! (§5.3: "the other cores are configured without any caches"), which is
//! why memory accesses are expensive.

/// Pipeline or FSM sequencing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoreKind {
    /// An in-order, single-issue pipeline.
    Pipeline {
        /// Number of stages.
        stages: u32,
        /// Stage in which register operands are available.
        operand_stage: u32,
        /// Memory-access stage.
        mem_stage: u32,
        /// Write-back stage.
        wb_stage: u32,
        /// True if results forward from the last stage into execution
        /// (lengthens the critical path for late ISAX writes — §5.4).
        forwarding_from_wb: bool,
    },
    /// Multi-cycle FSM sequencing (PicoRV32).
    Fsm {
        /// Cycles for a plain ALU instruction.
        alu_cycles: u64,
        /// Cycles for loads/stores (on top of the memory wait).
        mem_cycles: u64,
        /// Cycles for taken control transfers.
        branch_cycles: u64,
    },
}

/// A host core's descriptor: structure plus cycle-model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreDescriptor {
    pub name: &'static str,
    pub kind: CoreKind,
    /// Extra cycles a data-memory access waits for the (cache-less) memory.
    pub memory_wait: u64,
    /// Pipeline flush cycles for a taken branch/jump (0 for FSM cores,
    /// where `branch_cycles` covers it).
    pub branch_penalty: u64,
    /// Fixed startup cycles (reset / first fetch) counted by programs.
    pub startup_cycles: u64,
}

impl CoreDescriptor {
    /// Number of pipeline stages (1 for the FSM core).
    pub fn stages(&self) -> u32 {
        match self.kind {
            CoreKind::Pipeline { stages, .. } => stages,
            CoreKind::Fsm { .. } => 1,
        }
    }

    /// Write-back stage (the stage an in-pipeline ISAX result is due in).
    pub fn wb_stage(&self) -> u32 {
        match self.kind {
            CoreKind::Pipeline { wb_stage, .. } => wb_stage,
            CoreKind::Fsm { .. } => 1,
        }
    }
}

/// Looks up one of the four evaluation cores.
pub fn descriptor(name: &str) -> Option<CoreDescriptor> {
    Some(match name {
        "ORCA" => CoreDescriptor {
            name: "ORCA",
            kind: CoreKind::Pipeline {
                stages: 5,
                operand_stage: 3,
                mem_stage: 3,
                wb_stage: 4,
                forwarding_from_wb: true,
            },
            memory_wait: 8,
            branch_penalty: 3,
            startup_cycles: 50,
        },
        "VexRiscv" => CoreDescriptor {
            name: "VexRiscv",
            kind: CoreKind::Pipeline {
                stages: 5,
                operand_stage: 2,
                mem_stage: 3,
                wb_stage: 4,
                forwarding_from_wb: false,
            },
            memory_wait: 8,
            branch_penalty: 3,
            startup_cycles: 50,
        },
        "Piccolo" => CoreDescriptor {
            name: "Piccolo",
            kind: CoreKind::Pipeline {
                stages: 3,
                operand_stage: 1,
                mem_stage: 1,
                wb_stage: 2,
                forwarding_from_wb: false,
            },
            memory_wait: 8,
            branch_penalty: 2,
            startup_cycles: 50,
        },
        "PicoRV32" => CoreDescriptor {
            name: "PicoRV32",
            kind: CoreKind::Fsm {
                alu_cycles: 3,
                mem_cycles: 5,
                branch_cycles: 5,
            },
            memory_wait: 8,
            branch_penalty: 0,
            startup_cycles: 50,
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_cores_exist() {
        for name in ["ORCA", "Piccolo", "PicoRV32", "VexRiscv"] {
            let d = descriptor(name).unwrap();
            assert_eq!(d.name, name);
        }
        assert!(descriptor("CVA6").is_none());
    }

    #[test]
    fn pipeline_shapes_match_the_paper() {
        assert_eq!(descriptor("ORCA").unwrap().stages(), 5);
        assert_eq!(descriptor("VexRiscv").unwrap().stages(), 5);
        assert_eq!(descriptor("Piccolo").unwrap().stages(), 3);
        assert_eq!(descriptor("PicoRV32").unwrap().stages(), 1);
    }

    #[test]
    fn orca_reads_operands_late_and_forwards() {
        let d = descriptor("ORCA").unwrap();
        match d.kind {
            CoreKind::Pipeline {
                operand_stage,
                wb_stage,
                forwarding_from_wb,
                ..
            } => {
                assert_eq!(operand_stage, 3);
                assert_eq!(wb_stage, 4);
                assert!(forwarding_from_wb);
            }
            _ => panic!("ORCA is pipelined"),
        }
    }
}
