//! `cargo run -p bench` — the deterministic perf-regression gate.
//!
//! Compiles the full 8×4 evaluation matrix (through the shared frontend
//! cache, serially and with 4 workers) and writes `BENCH_compile.json` at
//! the workspace root with two sections:
//!
//! * `deterministic` — work counters that are a pure function of the
//!   input and the algorithms: solver pivots / branch-and-bound nodes /
//!   repair rounds, cache hit/miss totals, degradation counters, the
//!   per-stage op counters summed across the matrix, a per-cell
//!   solver-work breakdown, and the `incremental` per-stage hit/miss
//!   profile of a cold → warm no-change → warm one-edit recompile
//!   sequence through one shared pipeline cache, and the `opt` profile of
//!   a full -O2 matrix (per-pass rewrite totals plus modeled area and
//!   critical path against -O0, with the strict area win asserted).
//!   Byte-identical on every run of the same code.
//! * `wall` — wall-clock timings and the cache/pool/incremental
//!   speedups. Machine- and load-dependent, informational only (except
//!   the warm no-change replay, which ci.sh requires to be at least 4×
//!   faster than the cold compile — a regression there means the warm
//!   path silently recomputes).
//!
//! With `--check <baseline>` the freshly measured `deterministic` section
//! is compared **textually** against the checked-in `BENCH_baseline.json`:
//! any divergence (a solver change, a cache regression, a new fallback) is
//! a hard failure naming the first differing line, with the update command
//! to run when the change is intentional. Wall-time drift beyond
//! ±[`WALL_TOLERANCE`] only warns — timings are not gate-worthy.

use longnail::driver::{eval_datasheets, MatrixResult};
use longnail::{isax_lib, Longnail, PipelineCache};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;
use telemetry::aggregate;

/// Allowed relative wall-time drift against the baseline before the
/// (non-fatal) drift warning fires.
const WALL_TOLERANCE: f64 = 0.5;

/// Workspace-root path of the freshly written benchmark result.
const BENCH_OUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compile.json");

fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Renders one run's per-stage cache profile as `"stage": "Mm/Hh"`
/// fields in pipeline order. Hit/miss totals are deterministic (the
/// store's exactly-once slots make the miss count a function of the key
/// set, not of scheduling), so this belongs in the gated section.
fn stage_mix(m: &MatrixResult) -> String {
    telemetry::STAGES
        .iter()
        .map(|s| {
            let d = m
                .stage_stats
                .iter()
                .find(|x| x.stage == *s)
                .cloned()
                .unwrap_or_default();
            format!("\"{s}\": \"{}m/{}h\"", d.misses, d.hits)
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Every cell's artifacts must be byte-identical between two runs — the
/// warm replay is only correct if it reproduces the cold bytes exactly.
fn assert_artifacts_identical(cold: &MatrixResult, warm: &MatrixResult, what: &str) {
    assert_eq!(cold.entries.len(), warm.entries.len());
    for (c, w) in cold.entries.iter().zip(&warm.entries) {
        let (Ok(cc), Ok(wc)) = (&c.outcome, &w.outcome) else {
            panic!("{what}: cell {}_{} failed", c.isax, c.core);
        };
        let cell = format!("{}_{}", c.isax, c.core);
        assert_eq!(cc.config.to_yaml(), wc.config.to_yaml(), "{what}: {cell} config");
        assert_eq!(cc.graphs.len(), wc.graphs.len(), "{what}: {cell} unit count");
        for (cg, wg) in cc.graphs.iter().zip(&wc.graphs) {
            assert_eq!(cg.verilog, wg.verilog, "{what}: {cell} verilog {}", cg.name);
        }
        assert_eq!(
            cc.trace.stripped().to_jsonl(),
            wc.trace.stripped().to_jsonl(),
            "{what}: {cell} stripped trace"
        );
    }
}

/// Runs the matrix benchmark and renders `BENCH_compile.json`.
fn bench_json() -> String {
    let isaxes = isax_lib::all_isaxes();
    let cores = eval_datasheets();
    let ln = Longnail::new();
    let t0 = Instant::now();
    let serial = ln.compile_matrix(&isaxes, &cores, 1);
    let serial_ns = elapsed_ns(t0);
    let t0 = Instant::now();
    let parallel = ln.compile_matrix(&isaxes, &cores, 4);
    let parallel_ns = elapsed_ns(t0);
    // The cache totals are part of the determinism contract: identical
    // for every worker count.
    assert_eq!(serial.cache_hits, parallel.cache_hits);
    assert_eq!(serial.cache_misses, parallel.cache_misses);

    // Incremental profile: cold, warm no-change, warm one-edit — all
    // through one shared pipeline cache, the way `lnc serve` and warm
    // matrix recompiles run.
    let pipe = PipelineCache::new();
    let t0 = Instant::now();
    let cold = ln.compile_matrix_cached(&isaxes, &cores, 4, &pipe);
    let cold_ns = elapsed_ns(t0);
    let t0 = Instant::now();
    let warm = ln.compile_matrix_cached(&isaxes, &cores, 4, &pipe);
    let warm_ns = elapsed_ns(t0);
    let warm_misses: u64 = warm.stage_stats.iter().map(|s| s.misses).sum();
    assert_eq!(warm_misses, 0, "warm no-change recompile must be pure replay");
    assert_artifacts_identical(&cold, &warm, "warm no-change");
    // The "edit": append a comment to one ISAX — semantics unchanged,
    // content key changed, so exactly that ISAX's cone recomputes.
    let mut edited = isaxes.clone();
    edited[0].2.push_str("\n// incremental bench edit\n");
    let t0 = Instant::now();
    let edit = ln.compile_matrix_cached(&edited, &cores, 4, &pipe);
    let edit_ns = elapsed_ns(t0);
    let edit_fe = edit
        .stage_stats
        .iter()
        .find(|s| s.stage == "frontend")
        .cloned()
        .unwrap_or_default();
    assert_eq!(edit_fe.misses, 1, "one edited source, one frontend recompute");
    assert_artifacts_identical(&cold, &edit, "warm one-edit");

    // Optimized matrix: the same 8×4 matrix at -O2 through the netlist
    // optimizer. Everything recorded here is deterministic — the rewrite
    // totals are a pure function of the netlists and the pass order, and
    // the 22 nm area/timing model is a pure function of the optimized
    // netlists — so the section sits inside the gated `deterministic`
    // block. The strict area win is also asserted outright: -O2 exists to
    // shrink the matrix, and a build where it stops doing so is a
    // regression even if every counter still matches some stale baseline.
    let o2 = ln
        .with_opt_level(longnail::OptLevel::O2)
        .compile_matrix(&isaxes, &cores, 4);
    let lib = eda::TechLibrary::new();
    let estimate = |m: &MatrixResult| {
        let (mut area, mut crit) = (0.0f64, 0.0f64);
        for entry in &m.entries {
            let Ok(cell) = &entry.outcome else {
                panic!("opt bench: cell {}_{} failed", entry.isax, entry.core);
            };
            for g in &cell.graphs {
                let est = eda::estimate_module(&lib, &g.built.module);
                area += est.area.total();
                crit = crit.max(est.timing.critical_path_ns);
            }
        }
        (area, crit)
    };
    let (area_o0, crit_o0) = estimate(&serial);
    let (area_o2, crit_o2) = estimate(&o2);
    assert!(
        area_o2 < area_o0,
        "-O2 must strictly reduce total matrix area ({area_o2:.1} vs {area_o0:.1} µm²)"
    );
    let o2_traces: Vec<&telemetry::Trace> = o2
        .entries
        .iter()
        .filter_map(|e| e.outcome.as_ref().ok().map(|c| &c.trace))
        .collect();
    let opt_total = |name: &str| -> u64 { o2_traces.iter().map(|t| t.counter_total(name)).sum() };

    let cell_traces: Vec<(String, &telemetry::Trace)> = serial
        .entries
        .iter()
        .filter_map(|e| {
            e.outcome
                .as_ref()
                .ok()
                .map(|c| (format!("{}_{}", e.isax, e.core), &c.trace))
        })
        .collect();
    let summary = aggregate::summarize(&cell_traces);

    let mut json = String::from("{\n  \"schema\": \"longnail-bench/2\",\n");
    json.push_str("  \"deterministic\": {\n");
    let _ = writeln!(json, "    \"cells\": {},", serial.entries.len());
    let _ = writeln!(json, "    \"cache_hits\": {},", serial.cache_hits);
    let _ = writeln!(json, "    \"cache_misses\": {},", serial.cache_misses);
    let _ = writeln!(json, "    \"cell_faults\": {},", serial.cell_faults);
    let _ = writeln!(json, "    \"errors_recovered\": {},", serial.errors_recovered);
    json.push_str("    \"counters\": {\n");
    for (i, (name, value)) in summary.counters.iter().enumerate() {
        let _ = write!(json, "      \"{name}\": {value}");
        json.push_str(if i + 1 == summary.counters.len() { "\n" } else { ",\n" });
    }
    json.push_str("    },\n    \"per_cell\": [\n");
    for (i, (cell, trace)) in cell_traces.iter().enumerate() {
        use telemetry::metrics as m;
        let _ = write!(
            json,
            "      {{\"cell\": \"{cell}\", \"pivots\": {}, \"nodes\": {}, \"rounds\": {}, \
             \"fallbacks\": {}, \"ops\": {}, \"verilog_bytes\": {}}}",
            trace.counter_total(m::SOLVER_PIVOTS),
            trace.counter_total(m::SOLVER_NODES),
            trace.counter_total(m::SOLVER_ROUNDS),
            trace.counter_total(m::SCHED_FALLBACK),
            trace.counter_total(m::PROBLEM_OPS),
            trace.counter_total(m::VERILOG_BYTES),
        );
        json.push_str(if i + 1 == cell_traces.len() { "\n" } else { ",\n" });
    }
    json.push_str("    ],\n    \"incremental\": {\n");
    let _ = writeln!(json, "      \"cold\": {{{}}},", stage_mix(&cold));
    let _ = writeln!(json, "      \"warm_no_change\": {{{}}},", stage_mix(&warm));
    let _ = writeln!(json, "      \"warm_one_edit\": {{{}}}", stage_mix(&edit));
    json.push_str("    },\n    \"opt\": {\n");
    let _ = writeln!(json, "      \"area_o0_um2\": {area_o0:.1},");
    let _ = writeln!(json, "      \"area_o2_um2\": {area_o2:.1},");
    let _ = writeln!(
        json,
        "      \"area_reduction_pct\": {:.2},",
        (area_o0 - area_o2) / area_o0 * 100.0
    );
    let _ = writeln!(json, "      \"critical_path_o0_ns\": {crit_o0:.3},");
    let _ = writeln!(json, "      \"critical_path_o2_ns\": {crit_o2:.3},");
    {
        use telemetry::metrics as m;
        let _ = writeln!(json, "      \"iterations\": {},", opt_total(m::OPT_ITERATIONS));
        let _ = writeln!(json, "      \"nets_before\": {},", opt_total(m::OPT_NETS_BEFORE));
        let _ = writeln!(json, "      \"nets_after\": {},", opt_total(m::OPT_NETS_AFTER));
        let rewrites = [
            ("fold", m::OPT_REWRITES_FOLD),
            ("cse", m::OPT_REWRITES_CSE),
            ("mux", m::OPT_REWRITES_MUX),
            ("strength", m::OPT_REWRITES_STRENGTH),
            ("narrow", m::OPT_REWRITES_NARROW),
            ("dce", m::OPT_REWRITES_DCE),
        ];
        json.push_str("      \"rewrites\": {");
        for (i, (name, metric)) in rewrites.iter().enumerate() {
            let _ = write!(json, "\"{name}\": {}", opt_total(metric));
            json.push_str(if i + 1 == rewrites.len() { "}\n" } else { ", " });
        }
    }
    json.push_str("    }\n  },\n");
    let speedup = serial_ns as f64 / parallel_ns.max(1) as f64;
    let warm_speedup = cold_ns as f64 / warm_ns.max(1) as f64;
    let edit_speedup = cold_ns as f64 / edit_ns.max(1) as f64;
    let _ = write!(
        json,
        "  \"wall\": {{\"serial_wall_ns\": {serial_ns}, \"parallel_wall_ns\": {parallel_ns}, \
         \"speedup\": {speedup:.3},\n           \"cold_wall_ns\": {cold_ns}, \
         \"warm_wall_ns\": {warm_ns}, \"warm_speedup\": {warm_speedup:.3},\n           \
         \"edit_wall_ns\": {edit_ns}, \"edit_speedup\": {edit_speedup:.3}}}\n}}\n"
    );
    json
}

/// Extracts the `"key": {{...}}` object (balanced braces) from `json`.
fn extract_section(json: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let start = json.find(&marker)?;
    let open = start + json[start..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..open + i + 1].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts the first `"key": <u64>` scalar from `json`.
fn extract_u64(json: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\":");
    let start = json.find(&marker)? + marker.len();
    let digits: String = json[start..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// First line where the two texts differ, as `(line_no, got, want)`.
fn first_diff(got: &str, want: &str) -> Option<(usize, String, String)> {
    let mut g = got.lines();
    let mut w = want.lines();
    let mut line = 0;
    loop {
        line += 1;
        match (g.next(), w.next()) {
            (None, None) => return None,
            (a, b) if a == b => {}
            (a, b) => {
                return Some((
                    line,
                    a.unwrap_or("<end of file>").to_string(),
                    b.unwrap_or("<end of file>").to_string(),
                ))
            }
        }
    }
}

fn check_against(current: &str, baseline_path: &str) -> ExitCode {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench gate: cannot read baseline {baseline_path}: {e}");
            eprintln!("bench gate: create it with: cp BENCH_compile.json BENCH_baseline.json");
            return ExitCode::FAILURE;
        }
    };
    let (Some(got), Some(want)) = (
        extract_section(current, "deterministic"),
        extract_section(&baseline, "deterministic"),
    ) else {
        eprintln!("bench gate: missing `deterministic` section (schema mismatch?)");
        eprintln!("bench gate: regenerate with: cp BENCH_compile.json BENCH_baseline.json");
        return ExitCode::FAILURE;
    };
    if got != want {
        let (line, g, w) = first_diff(&got, &want).expect("sections differ");
        eprintln!("bench gate: FAIL — deterministic work counters diverge from baseline");
        eprintln!("bench gate: first difference (line {line} of the section):");
        eprintln!("bench gate:   measured: {}", g.trim());
        eprintln!("bench gate:   baseline: {}", w.trim());
        eprintln!(
            "bench gate: if this perf/work change is intentional, update the baseline with:"
        );
        eprintln!("bench gate:   cp BENCH_compile.json BENCH_baseline.json");
        return ExitCode::FAILURE;
    }
    println!("bench gate: deterministic counters match the baseline");
    // Wall drift: machine-dependent, warn-only.
    if let (Some(cur), Some(base)) = (
        extract_u64(current, "parallel_wall_ns"),
        extract_u64(&baseline, "parallel_wall_ns"),
    ) {
        if base > 0 {
            let drift = (cur as f64 - base as f64) / base as f64;
            if drift.abs() > WALL_TOLERANCE {
                eprintln!(
                    "bench gate: warning: parallel wall time drifted {:+.0}% vs baseline \
                     ({cur} ns vs {base} ns) — informational, not a failure",
                    drift * 100.0
                );
            } else {
                println!(
                    "bench gate: wall time within tolerance ({:+.0}% vs baseline)",
                    drift * 100.0
                );
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--check" => Some(path.clone()),
        _ => {
            eprintln!("usage: cargo run -p bench [-- --check <BENCH_baseline.json>]");
            return ExitCode::FAILURE;
        }
    };
    let json = bench_json();
    if let Err(e) = std::fs::write(BENCH_OUT, &json) {
        eprintln!("error: cannot write {BENCH_OUT}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote BENCH_compile.json");
    match baseline {
        Some(path) => check_against(&json, &path),
        None => ExitCode::SUCCESS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "{\n  \"deterministic\": {\n    \"cells\": 32,\n    \
         \"counters\": {\n      \"a\": 1\n    }\n  },\n  \
         \"wall\": {\"parallel_wall_ns\": 1200, \"speedup\": 2.5}\n}\n";

    #[test]
    fn extract_section_balances_nested_braces() {
        let det = extract_section(SAMPLE, "deterministic").unwrap();
        assert!(det.starts_with('{') && det.ends_with('}'));
        assert!(det.contains("\"cells\": 32"));
        assert!(det.contains("\"a\": 1"));
        assert!(!det.contains("wall"));
        assert!(extract_section(SAMPLE, "missing").is_none());
    }

    #[test]
    fn extract_u64_reads_scalars() {
        assert_eq!(extract_u64(SAMPLE, "parallel_wall_ns"), Some(1200));
        assert_eq!(extract_u64(SAMPLE, "cells"), Some(32));
        assert_eq!(extract_u64(SAMPLE, "speedup"), Some(2)); // integer prefix
        assert_eq!(extract_u64(SAMPLE, "nope"), None);
    }

    #[test]
    fn first_diff_names_the_line() {
        assert_eq!(first_diff("a\nb\nc", "a\nb\nc"), None);
        let (line, g, w) = first_diff("a\nX\nc", "a\nb\nc").unwrap();
        assert_eq!((line, g.as_str(), w.as_str()), (2, "X", "b"));
        let (line, g, _) = first_diff("a\nb\nextra", "a\nb").unwrap();
        assert_eq!((line, g.as_str()), (3, "extra"));
    }
}
