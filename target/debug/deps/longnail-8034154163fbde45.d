/root/repo/target/debug/deps/longnail-8034154163fbde45.d: crates/longnail/src/lib.rs crates/longnail/src/diag.rs crates/longnail/src/driver.rs crates/longnail/src/golden.rs crates/longnail/src/isax_lib.rs

/root/repo/target/debug/deps/longnail-8034154163fbde45: crates/longnail/src/lib.rs crates/longnail/src/diag.rs crates/longnail/src/driver.rs crates/longnail/src/golden.rs crates/longnail/src/isax_lib.rs

crates/longnail/src/lib.rs:
crates/longnail/src/diag.rs:
crates/longnail/src/driver.rs:
crates/longnail/src/golden.rs:
crates/longnail/src/isax_lib.rs:
