//! Write your own ISAX: a population-count instruction defined from
//! scratch in CoreDSL, compiled, integrated into a core model, executed,
//! and checked against the golden model — the full user journey of the
//! paper's toolflow in one file.
//!
//! ```sh
//! cargo run --example custom_isax
//! ```

use cores::{descriptor, ExtendedCore};
use longnail::driver::builtin_datasheet;
use longnail::golden::GoldenMachine;
use longnail::isax_lib::register_mnemonics;
use longnail::Longnail;
use riscv::asm::Assembler;

/// A byte-wise population count: adds the set bits of each byte of rs1.
const POPCOUNT: &str = r#"
import "RV32I.core_desc";
InstructionSet xpopcount extends RV32I {
  functions {
    unsigned<4> count_byte(unsigned<8> b) {
      unsigned<4> n = 0;
      for (int i = 0; i < 8; i += 1) {
        n = (unsigned<4>)(n + b[i]);
      }
      return n;
    }
  }
  instructions {
    popcount {
      encoding: 12'd0 :: rs1[4:0] :: 3'b110 :: rd[4:0] :: 7'b0101011;
      behavior: {
        unsigned<32> x = X[rs1];
        unsigned<6> total = 0;
        for (int i = 0; i < 32; i += 8) {
          total = (unsigned<6>)(total + count_byte(X[rs1][i+7:i]));
        }
        X[rd] = (unsigned<32>) total;
      }
    }
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ln = Longnail::new();
    let ds = builtin_datasheet("Piccolo").expect("bundled core");

    // Compile and show what came out.
    let compiled = ln.compile(POPCOUNT, "xpopcount", &ds)?;
    let g = compiled.graph("popcount").expect("compiled instruction");
    println!(
        "compiled `popcount` for {}: {} LIL ops across {} stage(s), mode {}",
        ds.core,
        g.graph.len(),
        g.max_stage,
        g.mode
    );
    println!("\ngenerated SystemVerilog (first lines):");
    for line in g.verilog.lines().take(12) {
        println!("  {line}");
    }

    // Assemble a test program using the new mnemonic.
    let module = ln
        .frontend_mut()
        .compile_str(POPCOUNT, "xpopcount")
        .map_err(|e| e.to_string())?;
    let mut asm = Assembler::new();
    register_mnemonics(&mut asm, &module)?;
    let program = asm.assemble(
        r#"
        li a1, 0xdeadbeef
        popcount a0, a1
        ebreak
    "#,
    )?;

    // Run on the cycle-level core model...
    let mut core = ExtendedCore::new(descriptor("Piccolo").unwrap(), vec![compiled], true);
    core.load_program(0, &program);
    core.run(1_000)?;
    // ...and on the golden ISS + CoreDSL interpreter.
    let mut golden = GoldenMachine::new(vec![module]);
    golden.load_program(0, &program);
    golden.run(1_000)?;

    let hw = core.cpu.read_reg(10);
    let gold = golden.cpu.read_reg(10);
    println!("\npopcount(0xdeadbeef) = {hw} (core model) / {gold} (golden model)");
    assert_eq!(hw, gold);
    assert_eq!(hw, 0xdeadbeefu32.count_ones());
    println!("matches u32::count_ones: OK");
    Ok(())
}
