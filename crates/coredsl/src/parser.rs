//! Recursive-descent parser for CoreDSL, implementing the grammar of
//! Figure 2 plus C-inspired statements and expressions.

use crate::ast::*;
use crate::error::{codes, Diagnostic, Result, Span};
use crate::lexer::lex;
use crate::token::{Keyword, Punct, Token, TokenKind};

/// A parse with recovery: the best-effort AST plus every syntax error the
/// parser could report after re-synchronizing at statement, section, and
/// top-level boundaries.
#[derive(Debug)]
pub struct ParseOutput {
    /// Definitions that parsed cleanly (empty on a lex error).
    pub description: Description,
    /// All recorded diagnostics, in source order of discovery.
    pub errors: Vec<Diagnostic>,
}

/// Parses a complete CoreDSL description file, recovering at sync points
/// (`;`, matching `}`, and the next top-level `InstructionSet` / `Core`)
/// so one pass reports every independent syntax error.
///
/// Valid sources produce byte-identical ASTs to [`parse`]; recovery only
/// engages after the first error.
pub fn parse_all(src: &str) -> ParseOutput {
    let tokens = match lex(src) {
        Ok(t) => t,
        Err(e) => {
            return ParseOutput {
                description: Description::default(),
                errors: vec![e],
            }
        }
    };
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
        errors: Vec::new(),
    };
    let description = p.description();
    ParseOutput {
        description,
        errors: p.errors,
    }
}

/// Parses a complete CoreDSL description file.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(src: &str) -> Result<Description> {
    let mut out = parse_all(src);
    if out.errors.is_empty() {
        Ok(out.description)
    } else {
        Err(out.errors.remove(0))
    }
}

/// Parses a single expression (used by tests and the REPL-style tooling).
///
/// # Errors
///
/// Returns an error if `src` is not exactly one expression.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
        errors: Vec::new(),
    };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Maximum combined nesting depth of expressions and statements. The
/// parser is recursive-descent; unbounded nesting in hostile input would
/// overflow the stack (an abort `catch_unwind` cannot contain), so depth
/// is bounded well below any stack limit and over-deep input gets a
/// regular diagnostic. Real ISAX
/// descriptions nest a handful of levels.
const MAX_NESTING: u32 = 64;

/// Hard cap on recorded errors per parse. Recovery on garbage input can
/// re-synchronize indefinitely; past this point the parse bails out to the
/// end of input with one final `LN0105` diagnostic.
const MAX_ERRORS: usize = 64;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: u32,
    errors: Vec<Diagnostic>,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == &TokenKind::Keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<Span> {
        let span = self.span();
        if self.eat_punct(p) {
            Ok(span)
        } else {
            Err(Diagnostic::coded(
                codes::PARSE_EXPECTED,
                span,
                format!("expected `{p}`, found {}", self.peek().describe()),
            )
            .with_fixit(format!("insert `{p}` here")))
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<Span> {
        let span = self.span();
        if self.eat_keyword(k) {
            Ok(span)
        } else {
            Err(Diagnostic::coded(
                codes::PARSE_EXPECTED,
                span,
                format!("expected keyword `{k:?}`, found {}", self.peek().describe()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span)> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, span))
            }
            other => Err(Diagnostic::coded(
                codes::PARSE_EXPECTED,
                span,
                format!("expected identifier, found {}", other.describe()),
            )),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(Diagnostic::coded(
                codes::PARSE_EXPECTED,
                self.span(),
                format!("expected end of input, found {}", self.peek().describe()),
            ))
        }
    }

    // ---- error recovery -------------------------------------------------

    fn at_eof(&self) -> bool {
        self.peek() == &TokenKind::Eof
    }

    /// True once the error budget is spent; the parse is winding down.
    fn capped(&self) -> bool {
        self.errors.len() >= MAX_ERRORS
    }

    /// Records a diagnostic. On hitting [`MAX_ERRORS`] the parser gives up
    /// on recovery: one final cap notice is recorded and the cursor jumps
    /// to end of input so every loop drains. Exact duplicates of the most
    /// recent diagnostic (same code, span, and message) are dropped —
    /// stalled recovery would otherwise repeat itself.
    fn record(&mut self, e: Diagnostic) {
        if self.capped() {
            return;
        }
        if self.errors.last() == Some(&e) {
            return;
        }
        self.errors.push(e);
        if self.errors.len() == MAX_ERRORS {
            self.errors.push(
                Diagnostic::coded(
                    codes::PARSE_TOO_MANY_ERRORS,
                    self.span(),
                    format!("too many syntax errors ({MAX_ERRORS}); giving up on this file"),
                )
                .with_fixit("fix the earlier errors and re-run"),
            );
            self.pos = self.tokens.len() - 1;
        }
    }

    /// Records `e`, then skips to the next top-level definition keyword
    /// (`InstructionSet` / `Core`), past a `;` at brace depth zero, or to
    /// end of input. The keywords are reserved and never legal inside a
    /// definition body, so they are a sync point at *any* depth — a stray
    /// unbalanced `{` before them must not swallow the rest of the file.
    fn recover_top_level(&mut self, e: Diagnostic) {
        self.record(e);
        let mut depth = 0u32;
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Keyword(Keyword::InstructionSet | Keyword::Core) => break,
                TokenKind::Punct(Punct::Semi) if depth == 0 => {
                    self.bump();
                    break;
                }
                TokenKind::Punct(Punct::LBrace) => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::Punct(Punct::RBrace) => {
                    depth = depth.saturating_sub(1);
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Records `e`, then re-synchronizes inside a brace-delimited item
    /// list: past a `;` at relative depth zero, after the `}` that closes
    /// a `{` skipped during recovery, or *before* a `}` at depth zero
    /// (which closes the enclosing list and belongs to the caller).
    ///
    /// `loop_start` is the cursor position at the top of the caller's loop
    /// iteration; if recovery lands back on it without reaching a `}` or
    /// end of input, one token is force-consumed so the caller always
    /// makes progress.
    fn recover_item(&mut self, e: Diagnostic, loop_start: usize) {
        self.record(e);
        let mut depth = 0u32;
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Punct(Punct::Semi) if depth == 0 => {
                    self.bump();
                    break;
                }
                TokenKind::Punct(Punct::LBrace) => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::Punct(Punct::RBrace) => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    self.bump();
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
        if self.pos == loop_start
            && !matches!(self.peek(), TokenKind::Eof | TokenKind::Punct(Punct::RBrace))
        {
            self.bump();
        }
    }

    /// Records an "expected `}`" diagnostic for a list that ran into end
    /// of input.
    fn unclosed(&mut self) {
        self.record(
            Diagnostic::coded(
                codes::PARSE_EXPECTED,
                self.span(),
                "expected `}` before end of input",
            )
            .with_fixit("add the missing closing brace"),
        );
    }

    // ---- top level -----------------------------------------------------

    fn description(&mut self) -> Description {
        let mut desc = Description::default();
        while self.eat_keyword(Keyword::Import) {
            if let Err(e) = self.import_tail(&mut desc) {
                self.recover_top_level(e);
            }
        }
        loop {
            match self.peek() {
                TokenKind::Keyword(Keyword::InstructionSet) => {
                    let span = self.span();
                    self.bump();
                    match self.isa_def(span) {
                        Ok(d) => desc.instruction_sets.push(d),
                        Err(e) => self.recover_top_level(e),
                    }
                }
                TokenKind::Keyword(Keyword::Core) => {
                    let span = self.span();
                    self.bump();
                    match self.core_def(span) {
                        Ok(d) => desc.cores.push(d),
                        Err(e) => self.recover_top_level(e),
                    }
                }
                TokenKind::Eof => break,
                other => {
                    let e = Diagnostic::coded(
                        codes::PARSE_EXPECTED,
                        self.span(),
                        format!(
                            "expected `InstructionSet` or `Core`, found {}",
                            other.describe()
                        ),
                    );
                    self.bump();
                    self.recover_top_level(e);
                }
            }
        }
        desc
    }

    /// Parses the remainder of one `import "...";` after the keyword.
    fn import_tail(&mut self, desc: &mut Description) -> Result<()> {
        let span = self.span();
        match self.bump().kind {
            TokenKind::Str(s) => desc.imports.push(s),
            other => {
                return Err(Diagnostic::coded(
                    codes::PARSE_EXPECTED,
                    span,
                    format!("expected import string, found {}", other.describe()),
                ))
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    /// Parses the remainder of one `InstructionSet` after the keyword.
    fn isa_def(&mut self, span: Span) -> Result<IsaDef> {
        let (name, _) = self.expect_ident()?;
        let extends = if self.eat_keyword(Keyword::Extends) {
            Some(self.expect_ident()?.0)
        } else {
            None
        };
        let body = self.isa_body()?;
        Ok(IsaDef {
            name,
            extends,
            body,
            span,
        })
    }

    /// Parses the remainder of one `Core` after the keyword.
    fn core_def(&mut self, span: Span) -> Result<CoreDef> {
        let (name, _) = self.expect_ident()?;
        let mut provides = Vec::new();
        if self.eat_keyword(Keyword::Provides) {
            provides.push(self.expect_ident()?.0);
            while self.eat_punct(Punct::Comma) {
                provides.push(self.expect_ident()?.0);
            }
        }
        let body = self.isa_body()?;
        Ok(CoreDef {
            name,
            provides,
            body,
            span,
        })
    }

    fn isa_body(&mut self) -> Result<IsaBody> {
        self.expect_punct(Punct::LBrace)?;
        let mut body = IsaBody::default();
        loop {
            match self.peek() {
                TokenKind::Keyword(Keyword::ArchitecturalState) => {
                    self.bump();
                    self.expect_punct(Punct::LBrace)?;
                    while !self.eat_punct(Punct::RBrace) {
                        if self.at_eof() {
                            self.unclosed();
                            break;
                        }
                        let start = self.pos;
                        match self.state_decl() {
                            Ok(mut decls) => body.state.append(&mut decls),
                            Err(e) => self.recover_item(e, start),
                        }
                    }
                }
                TokenKind::Keyword(Keyword::Instructions) => {
                    self.bump();
                    self.expect_punct(Punct::LBrace)?;
                    while !self.eat_punct(Punct::RBrace) {
                        if self.at_eof() {
                            self.unclosed();
                            break;
                        }
                        let start = self.pos;
                        match self.instruction() {
                            Ok(i) => body.instructions.push(i),
                            Err(e) => self.recover_item(e, start),
                        }
                    }
                }
                TokenKind::Keyword(Keyword::Always) => {
                    self.bump();
                    self.expect_punct(Punct::LBrace)?;
                    while !self.eat_punct(Punct::RBrace) {
                        if self.at_eof() {
                            self.unclosed();
                            break;
                        }
                        let start = self.pos;
                        match self.always_def() {
                            Ok(a) => body.always_blocks.push(a),
                            Err(e) => self.recover_item(e, start),
                        }
                    }
                }
                TokenKind::Keyword(Keyword::Functions) => {
                    self.bump();
                    self.expect_punct(Punct::LBrace)?;
                    while !self.eat_punct(Punct::RBrace) {
                        if self.at_eof() {
                            self.unclosed();
                            break;
                        }
                        let start = self.pos;
                        match self.function() {
                            Ok(f) => body.functions.push(f),
                            Err(e) => self.recover_item(e, start),
                        }
                    }
                }
                TokenKind::Punct(Punct::RBrace) => {
                    self.bump();
                    break;
                }
                TokenKind::Eof => {
                    self.unclosed();
                    break;
                }
                other => {
                    let e = Diagnostic::coded(
                        codes::PARSE_EXPECTED,
                        self.span(),
                        format!(
                            "expected an ISA section or `}}`, found {}",
                            other.describe()
                        ),
                    );
                    let start = self.pos;
                    self.recover_item(e, start);
                }
            }
        }
        Ok(body)
    }

    fn always_def(&mut self) -> Result<AlwaysDef> {
        let span = self.span();
        let (name, _) = self.expect_ident()?;
        self.expect_punct(Punct::LBrace)?;
        let behavior = self.block_body()?;
        Ok(AlwaysDef {
            name,
            behavior,
            span,
        })
    }

    // ---- architectural state --------------------------------------------

    /// Parses one state declaration line, which may declare several names:
    /// `register unsigned<32> START_PC, END_PC, COUNT;`
    fn state_decl(&mut self) -> Result<Vec<StateDecl>> {
        let span = self.span();
        let storage = if self.eat_keyword(Keyword::Register) {
            StorageClass::Register
        } else if self.eat_keyword(Keyword::Extern) {
            StorageClass::Extern
        } else {
            StorageClass::Param
        };
        let is_const = self.eat_keyword(Keyword::Const);
        // `const` may also precede the storage class.
        let storage = if storage == StorageClass::Param && self.eat_keyword(Keyword::Register) {
            StorageClass::Register
        } else {
            storage
        };
        let ty = self.type_expr()?;
        let mut out = Vec::new();
        loop {
            let (name, nspan) = self.expect_ident()?;
            let extent = if self.eat_punct(Punct::LBracket) {
                let e = self.expr()?;
                self.expect_punct(Punct::RBracket)?;
                Some(e)
            } else {
                None
            };
            let init = if self.eat_punct(Punct::Assign) {
                if self.eat_punct(Punct::LBrace) {
                    let mut items = Vec::new();
                    if !self.eat_punct(Punct::RBrace) {
                        items.push(self.expr()?);
                        while self.eat_punct(Punct::Comma) {
                            if self.peek() == &TokenKind::Punct(Punct::RBrace) {
                                break;
                            }
                            items.push(self.expr()?);
                        }
                        self.expect_punct(Punct::RBrace)?;
                    }
                    Some(Initializer::List(items))
                } else {
                    Some(Initializer::Single(self.expr()?))
                }
            } else {
                None
            };
            out.push(StateDecl {
                storage,
                is_const,
                ty: ty.clone(),
                name,
                extent,
                init,
                span: nspan,
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        let _ = span;
        self.expect_punct(Punct::Semi)?;
        Ok(out)
    }

    // ---- types -----------------------------------------------------------

    fn at_type_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Keyword(
                Keyword::Signed
                    | Keyword::Unsigned
                    | Keyword::Bool
                    | Keyword::Char
                    | Keyword::Short
                    | Keyword::Int
                    | Keyword::Long
            )
        )
    }

    fn type_expr(&mut self) -> Result<TypeExpr> {
        let span = self.span();
        let signed_kw = if self.eat_keyword(Keyword::Signed) {
            Some(true)
        } else if self.eat_keyword(Keyword::Unsigned) {
            Some(false)
        } else {
            None
        };
        // `signed<expr>` / `unsigned<expr>`:
        if let Some(signed) = signed_kw {
            if self.eat_punct(Punct::Lt) {
                let width = self.width_level_expr()?;
                self.expect_punct(Punct::Gt)?;
                return Ok(TypeExpr {
                    signed,
                    width: WidthSpec::Expr(Box::new(width)),
                    span,
                });
            }
        }
        // Keyword aliases, optionally after `signed` / `unsigned`:
        let (default_signed, width) = if self.eat_keyword(Keyword::Bool) {
            (false, 1)
        } else if self.eat_keyword(Keyword::Char) {
            (true, 8)
        } else if self.eat_keyword(Keyword::Short) {
            (true, 16)
        } else if self.eat_keyword(Keyword::Int) {
            (true, 32)
        } else if self.eat_keyword(Keyword::Long) {
            if self.eat_keyword(Keyword::Long) {
                (true, 64)
            } else {
                (true, 32)
            }
        } else if let Some(s) = signed_kw {
            // bare `signed` / `unsigned` == 32-bit int
            (s, 32)
        } else {
            return Err(Diagnostic::coded(
                codes::PARSE_BAD_TYPE,
                span,
                format!("expected a type, found {}", self.peek().describe()),
            ));
        };
        Ok(TypeExpr {
            signed: signed_kw.unwrap_or(default_signed),
            width: WidthSpec::Fixed(width),
            span,
        })
    }

    // ---- instructions -----------------------------------------------------

    fn instruction(&mut self) -> Result<InstrDef> {
        let span = self.span();
        let (name, _) = self.expect_ident()?;
        self.expect_punct(Punct::LBrace)?;
        self.expect_keyword(Keyword::Encoding)?;
        self.expect_punct(Punct::Colon)?;
        let encoding = self.encoding()?;
        self.expect_keyword(Keyword::Behavior)?;
        self.expect_punct(Punct::Colon)?;
        let behavior = match self.stmt()? {
            Stmt::Block(b) => b,
            other => Block { stmts: vec![other] },
        };
        self.expect_punct(Punct::RBrace)?;
        Ok(InstrDef {
            name,
            encoding,
            behavior,
            span,
        })
    }

    fn encoding(&mut self) -> Result<Vec<EncPiece>> {
        let mut pieces = Vec::new();
        loop {
            let span = self.span();
            match self.peek().clone() {
                TokenKind::Int { value, width } => {
                    self.bump();
                    if width.is_none() {
                        return Err(Diagnostic::coded(
                            codes::PARSE_BAD_ENCODING,
                            span,
                            "encoding constants must be sized Verilog-style literals (e.g. 7'b0001011)",
                        )
                        .with_fixit("write the constant with an explicit size, e.g. 7'd0"));
                    }
                    pieces.push(EncPiece::Const { value, span });
                }
                TokenKind::Ident(name) => {
                    self.bump();
                    self.expect_punct(Punct::LBracket)?;
                    let hi = self.const_u32()?;
                    self.expect_punct(Punct::Colon)?;
                    let lo = self.const_u32()?;
                    self.expect_punct(Punct::RBracket)?;
                    if lo > hi {
                        return Err(Diagnostic::coded(
                            codes::PARSE_BAD_ENCODING,
                            span,
                            format!("encoding field range [{hi}:{lo}] is reversed"),
                        )
                        .with_fixit(format!("write it as [{lo}:{hi}]")));
                    }
                    pieces.push(EncPiece::Field { name, hi, lo, span });
                }
                other => {
                    return Err(Diagnostic::coded(
                        codes::PARSE_BAD_ENCODING,
                        span,
                        format!(
                            "expected encoding constant or field, found {}",
                            other.describe()
                        ),
                    ))
                }
            }
            if self.eat_punct(Punct::Semi) {
                break;
            }
            self.expect_punct(Punct::ColonColon)?;
        }
        Ok(pieces)
    }

    fn const_u32(&mut self) -> Result<u32> {
        let span = self.span();
        match self.bump().kind {
            TokenKind::Int { value, .. } => value.try_to_u64().map(|v| v as u32).ok_or_else(|| {
                Diagnostic::coded(codes::PARSE_BAD_ENCODING, span, "integer constant too large")
            }),
            other => Err(Diagnostic::coded(
                codes::PARSE_BAD_ENCODING,
                span,
                format!("expected integer constant, found {}", other.describe()),
            )),
        }
    }

    // ---- functions ---------------------------------------------------------

    fn function(&mut self) -> Result<FuncDef> {
        let span = self.span();
        let ret = if self.eat_keyword(Keyword::Void) {
            None
        } else {
            Some(self.type_expr()?)
        };
        let (name, _) = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                let ty = self.type_expr()?;
                let (pname, _) = self.expect_ident()?;
                params.push((ty, pname));
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RParen)?;
        }
        self.expect_punct(Punct::LBrace)?;
        let body = self.block_body()?;
        Ok(FuncDef {
            name,
            ret,
            params,
            body,
            span,
        })
    }

    // ---- statements ----------------------------------------------------------

    /// Parses statements until the matching `}` (which is consumed).
    ///
    /// Statement errors are recorded and recovery resumes at the next `;`
    /// or brace boundary, so one bad statement costs itself, not the
    /// block. The `Result` is kept for signature symmetry; the body itself
    /// never fails.
    fn block_body(&mut self) -> Result<Block> {
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.at_eof() {
                self.unclosed();
                break;
            }
            let start = self.pos;
            match self.stmt() {
                Ok(s) => stmts.push(s),
                Err(e) => self.recover_item(e, start),
            }
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        self.enter()?;
        let r = self.stmt_inner();
        self.depth -= 1;
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt> {
        let span = self.span();
        match self.peek() {
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                Ok(Stmt::Block(self.block_body()?))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let then_block = self.stmt_as_block()?;
                let else_block = if self.eat_keyword(Keyword::Else) {
                    Some(self.stmt_as_block()?)
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_block,
                    else_block,
                    span,
                })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.eat_punct(Punct::Semi) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt(true)?))
                };
                let cond = if self.peek() == &TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if self.peek() == &TokenKind::Punct(Punct::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt_no_semi()?))
                };
                self.expect_punct(Punct::RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    span,
                })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::While {
                    cond,
                    body,
                    do_first: false,
                    span,
                })
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = self.stmt_as_block()?;
                self.expect_keyword(Keyword::While)?;
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::While {
                    cond,
                    body,
                    do_first: true,
                    span,
                })
            }
            TokenKind::Keyword(Keyword::Spawn) => {
                self.bump();
                self.expect_punct(Punct::LBrace)?;
                let body = self.block_body()?;
                Ok(Stmt::Spawn { body, span })
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.peek() == &TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            _ => self.simple_stmt(true),
        }
    }

    fn stmt_as_block(&mut self) -> Result<Block> {
        Ok(match self.stmt()? {
            Stmt::Block(b) => b,
            other => Block { stmts: vec![other] },
        })
    }

    /// Declaration, assignment, inc/dec, or expression statement.
    fn simple_stmt(&mut self, want_semi: bool) -> Result<Stmt> {
        let s = self.simple_stmt_no_semi()?;
        if want_semi {
            self.expect_punct(Punct::Semi)?;
        }
        Ok(s)
    }

    fn simple_stmt_no_semi(&mut self) -> Result<Stmt> {
        let span = self.span();
        if self.at_type_start() {
            let ty = self.type_expr()?;
            let (name, _) = self.expect_ident()?;
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Decl {
                ty,
                name,
                init,
                span,
            });
        }
        // Prefix increment/decrement.
        if self.eat_punct(Punct::PlusPlus) {
            let target = self.unary()?;
            return Ok(Stmt::IncDec {
                target,
                increment: true,
                span,
            });
        }
        if self.eat_punct(Punct::MinusMinus) {
            let target = self.unary()?;
            return Ok(Stmt::IncDec {
                target,
                increment: false,
                span,
            });
        }
        let target = self.expr()?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Assign) => Some(AssignOp::Set),
            TokenKind::Punct(Punct::PlusAssign) => Some(AssignOp::Add),
            TokenKind::Punct(Punct::MinusAssign) => Some(AssignOp::Sub),
            TokenKind::Punct(Punct::StarAssign) => Some(AssignOp::Mul),
            TokenKind::Punct(Punct::SlashAssign) => Some(AssignOp::Div),
            TokenKind::Punct(Punct::PercentAssign) => Some(AssignOp::Rem),
            TokenKind::Punct(Punct::AmpAssign) => Some(AssignOp::And),
            TokenKind::Punct(Punct::PipeAssign) => Some(AssignOp::Or),
            TokenKind::Punct(Punct::CaretAssign) => Some(AssignOp::Xor),
            TokenKind::Punct(Punct::ShlAssign) => Some(AssignOp::Shl),
            TokenKind::Punct(Punct::ShrAssign) => Some(AssignOp::Shr),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let value = self.expr()?;
            return Ok(Stmt::Assign {
                target,
                op,
                value,
                span,
            });
        }
        // Postfix increment/decrement.
        if self.eat_punct(Punct::PlusPlus) {
            return Ok(Stmt::IncDec {
                target,
                increment: true,
                span,
            });
        }
        if self.eat_punct(Punct::MinusMinus) {
            return Ok(Stmt::IncDec {
                target,
                increment: false,
                span,
            });
        }
        Ok(Stmt::Expr { expr: target, span })
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr> {
        let cond = self.log_or()?;
        if self.eat_punct(Punct::Question) {
            let span = cond.span;
            let then_val = self.expr()?;
            self.expect_punct(Punct::Colon)?;
            let else_val = self.ternary()?;
            return Ok(Expr::new(
                ExprKind::Ternary {
                    cond: Box::new(cond),
                    then_val: Box::new(then_val),
                    else_val: Box::new(else_val),
                },
                span,
            ));
        }
        Ok(cond)
    }

    fn binary_level<F>(&mut self, next: F, table: &[(Punct, BinOp)]) -> Result<Expr>
    where
        F: Fn(&mut Self) -> Result<Expr>,
    {
        let mut lhs = next(self)?;
        'outer: loop {
            for &(p, op) in table {
                if self.peek() == &TokenKind::Punct(p) {
                    self.bump();
                    let rhs = next(self)?;
                    let span = lhs.span;
                    lhs = Expr::new(
                        ExprKind::Binary {
                            op,
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        },
                        span,
                    );
                    continue 'outer;
                }
            }
            break;
        }
        Ok(lhs)
    }

    fn log_or(&mut self) -> Result<Expr> {
        self.binary_level(Self::log_and, &[(Punct::PipePipe, BinOp::LogOr)])
    }

    fn log_and(&mut self) -> Result<Expr> {
        self.binary_level(Self::bit_or, &[(Punct::AmpAmp, BinOp::LogAnd)])
    }

    fn bit_or(&mut self) -> Result<Expr> {
        self.binary_level(Self::bit_xor, &[(Punct::Pipe, BinOp::Or)])
    }

    fn bit_xor(&mut self) -> Result<Expr> {
        self.binary_level(Self::bit_and, &[(Punct::Caret, BinOp::Xor)])
    }

    fn bit_and(&mut self) -> Result<Expr> {
        self.binary_level(Self::equality, &[(Punct::Amp, BinOp::And)])
    }

    fn equality(&mut self) -> Result<Expr> {
        self.binary_level(
            Self::relational,
            &[(Punct::EqEq, BinOp::Eq), (Punct::Ne, BinOp::Ne)],
        )
    }

    fn relational(&mut self) -> Result<Expr> {
        self.binary_level(
            Self::concat,
            &[
                (Punct::Le, BinOp::Le),
                (Punct::Ge, BinOp::Ge),
                (Punct::Lt, BinOp::Lt),
                (Punct::Gt, BinOp::Gt),
            ],
        )
    }

    fn concat(&mut self) -> Result<Expr> {
        self.binary_level(Self::shift, &[(Punct::ColonColon, BinOp::Concat)])
    }

    fn shift(&mut self) -> Result<Expr> {
        self.binary_level(
            Self::additive,
            &[(Punct::Shl, BinOp::Shl), (Punct::Shr, BinOp::Shr)],
        )
    }

    fn additive(&mut self) -> Result<Expr> {
        self.binary_level(
            Self::multiplicative,
            &[(Punct::Plus, BinOp::Add), (Punct::Minus, BinOp::Sub)],
        )
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        self.binary_level(
            Self::unary,
            &[
                (Punct::Star, BinOp::Mul),
                (Punct::Slash, BinOp::Div),
                (Punct::Percent, BinOp::Rem),
            ],
        )
    }

    /// Expression level used inside `signed< ... >` widths: stops before
    /// comparison operators so the closing `>` is not consumed.
    fn width_level_expr(&mut self) -> Result<Expr> {
        self.shift()
    }

    /// Bounds recursion depth (see [`MAX_NESTING`]); every expression and
    /// statement recursion cycle passes through a guarded entry point.
    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(Diagnostic::coded(
                codes::PARSE_NESTING,
                self.span(),
                "nesting too deep",
            ));
        }
        Ok(())
    }

    fn unary(&mut self) -> Result<Expr> {
        self.enter()?;
        let r = self.unary_inner();
        self.depth -= 1;
        r
    }

    fn unary_inner(&mut self) -> Result<Expr> {
        let span = self.span();
        let op = match self.peek() {
            TokenKind::Punct(Punct::Minus) => Some(UnOp::Neg),
            TokenKind::Punct(Punct::Tilde) => Some(UnOp::Not),
            TokenKind::Punct(Punct::Bang) => Some(UnOp::LogNot),
            TokenKind::Punct(Punct::Plus) => Some(UnOp::Plus),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::new(
                ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
                span,
            ));
        }
        // Cast: `(` followed by a type keyword.
        if self.peek() == &TokenKind::Punct(Punct::LParen) {
            if let TokenKind::Keyword(
                Keyword::Signed
                | Keyword::Unsigned
                | Keyword::Bool
                | Keyword::Char
                | Keyword::Short
                | Keyword::Int
                | Keyword::Long,
            ) = self.peek_at(1)
            {
                self.bump(); // (
                let (signed, width) = self.cast_type()?;
                self.expect_punct(Punct::RParen)?;
                let operand = self.unary()?;
                return Ok(Expr::new(
                    ExprKind::Cast {
                        signed,
                        width,
                        operand: Box::new(operand),
                    },
                    span,
                ));
            }
        }
        self.postfix()
    }

    /// Parses the type inside a cast. `(signed)` / `(unsigned)` keep the
    /// operand width (width `None`); everything else fixes a width.
    fn cast_type(&mut self) -> Result<(bool, Option<WidthSpec>)> {
        let span = self.span();
        let signed_kw = if self.eat_keyword(Keyword::Signed) {
            Some(true)
        } else if self.eat_keyword(Keyword::Unsigned) {
            Some(false)
        } else {
            None
        };
        if let Some(s) = signed_kw {
            if self.eat_punct(Punct::Lt) {
                let w = self.width_level_expr()?;
                self.expect_punct(Punct::Gt)?;
                return Ok((s, Some(WidthSpec::Expr(Box::new(w)))));
            }
            // `(signed int)` etc.
            if self.at_type_start() {
                let alias = self.type_expr()?;
                let w = match alias.width {
                    WidthSpec::Fixed(w) => w,
                    WidthSpec::Expr(_) => unreachable!("aliases have fixed widths"),
                };
                return Ok((s, Some(WidthSpec::Fixed(w))));
            }
            // Bare `(signed)` / `(unsigned)`: signedness reinterpretation.
            return Ok((s, None));
        }
        // Alias keyword without explicit signedness.
        let alias = self.type_expr()?;
        match alias.width {
            WidthSpec::Fixed(w) => Ok((alias.signed, Some(WidthSpec::Fixed(w)))),
            WidthSpec::Expr(_) => Err(Diagnostic::coded(
                codes::PARSE_BAD_TYPE,
                span,
                "malformed cast type",
            )),
        }
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct(Punct::LBracket) {
                let first = self.expr()?;
                if self.eat_punct(Punct::Colon) {
                    let lo = self.expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    let span = e.span;
                    e = Expr::new(
                        ExprKind::Range {
                            base: Box::new(e),
                            hi: Box::new(first),
                            lo: Box::new(lo),
                        },
                        span,
                    );
                } else {
                    self.expect_punct(Punct::RBracket)?;
                    let span = e.span;
                    e = Expr::new(
                        ExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(first),
                        },
                        span,
                    );
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int { value, width } => {
                self.bump();
                Ok(Expr::new(
                    ExprKind::Int {
                        value,
                        sized: width.is_some(),
                    },
                    span,
                ))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        args.push(self.expr()?);
                        while self.eat_punct(Punct::Comma) {
                            args.push(self.expr()?);
                        }
                        self.expect_punct(Punct::RParen)?;
                    }
                    Ok(Expr::new(ExprKind::Call { callee: name, args }, span))
                } else {
                    Ok(Expr::new(ExprKind::Ident(name), span))
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(Diagnostic::coded(
                codes::PARSE_EXPECTED,
                span,
                format!("expected expression, found {}", other.describe()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_dotprod() {
        let src = r#"
import "RV32I.core_desc"
InstructionSet X_DOTP extends RV32I {
  instructions {
    dotp {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] ::
                3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        signed<32> res = 0;
        for (int i = 0; i < 32; i += 8) {
          signed<16> prod = (signed) X[rs1][i+7:i] *
                            (signed) X[rs2][i+7:i];
          res += prod;
        }
        X[rd] = (unsigned) res;
} } } }
"#;
        // Note: the paper's Figure 1 omits the trailing `;` after the
        // import — our grammar requires it per Figure 2.
        let src = src.replace("\"RV32I.core_desc\"\n", "\"RV32I.core_desc\";\n");
        let desc = parse(&src).unwrap();
        assert_eq!(desc.imports, vec!["RV32I.core_desc"]);
        assert_eq!(desc.instruction_sets.len(), 1);
        let isa = &desc.instruction_sets[0];
        assert_eq!(isa.name, "X_DOTP");
        assert_eq!(isa.extends.as_deref(), Some("RV32I"));
        let instr = &isa.body.instructions[0];
        assert_eq!(instr.name, "dotp");
        assert_eq!(instr.encoding.len(), 6);
        assert_eq!(instr.behavior.stmts.len(), 3);
    }

    #[test]
    fn parses_figure3_zol() {
        let src = r#"
InstructionSet zol extends RV32I {
  architectural_state {
    register unsigned<32> START_PC, END_PC, COUNT;
  }
  instructions {
    setup_zol {
      encoding: uimmL[11:0] :: uimmS[4:0] :: 3'b101
                :: 5'b00000 :: 7'b0001011;
      behavior:
      {
        START_PC = (unsigned<32>)(PC + 4);
        END_PC = (unsigned<32>)(PC + (uimmS :: 1'b0));
        COUNT = uimmL;
  } } }
  always {
    zol {
      if (COUNT != 0 && END_PC == PC) {
        PC = START_PC;
        --COUNT;
} } } }
"#;
        let desc = parse(src).unwrap();
        let isa = &desc.instruction_sets[0];
        assert_eq!(isa.body.state.len(), 3);
        assert_eq!(isa.body.state[1].name, "END_PC");
        assert_eq!(isa.body.instructions.len(), 1);
        assert_eq!(isa.body.always_blocks.len(), 1);
        assert_eq!(isa.body.always_blocks[0].name, "zol");
    }

    #[test]
    fn parses_spawn_block() {
        let src = r#"
InstructionSet sqrt extends RV32I {
  instructions {
    sqrt {
      encoding: 7'd1 :: 5'd0 :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<32> x = X[rs1];
        spawn {
          X[rd] = x >> 1;
        }
      }
} } }
"#;
        let desc = parse(src).unwrap();
        let behavior = &desc.instruction_sets[0].body.instructions[0].behavior;
        assert!(matches!(behavior.stmts[1], Stmt::Spawn { .. }));
    }

    #[test]
    fn parses_core_def_with_provides() {
        let src = "Core VexRiscv provides RV32I, zol { }";
        let desc = parse(src).unwrap();
        assert_eq!(desc.cores[0].name, "VexRiscv");
        assert_eq!(desc.cores[0].provides, vec!["RV32I", "zol"]);
    }

    #[test]
    fn parses_functions_section() {
        let src = r#"
InstructionSet f {
  functions {
    unsigned<32> rot(unsigned<32> x, unsigned<5> n) {
      return (unsigned<32>)((x >> n) | (x << (32 - n)));
    }
    void nothing() { }
  }
}
"#;
        let desc = parse(src).unwrap();
        let funcs = &desc.instruction_sets[0].body.functions;
        assert_eq!(funcs.len(), 2);
        assert_eq!(funcs[0].name, "rot");
        assert_eq!(funcs[0].params.len(), 2);
        assert!(funcs[1].ret.is_none());
    }

    #[test]
    fn expression_precedence() {
        // :: binds tighter than comparison, looser than shift.
        let e = parse_expr("a == b :: c << d").unwrap();
        match e.kind {
            ExprKind::Binary { op: BinOp::Eq, rhs, .. } => match rhs.kind {
                ExprKind::Binary {
                    op: BinOp::Concat, ..
                } => {}
                other => panic!("expected concat on rhs, got {other:?}"),
            },
            other => panic!("expected eq at top, got {other:?}"),
        }
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Binary { op: BinOp::Add, .. } => {}
            other => panic!("expected add at top, got {other:?}"),
        }
    }

    #[test]
    fn cast_forms() {
        assert!(matches!(
            parse_expr("(signed)x").unwrap().kind,
            ExprKind::Cast {
                signed: true,
                width: None,
                ..
            }
        ));
        assert!(matches!(
            parse_expr("(unsigned<5>)(a+b)").unwrap().kind,
            ExprKind::Cast {
                signed: false,
                width: Some(_),
                ..
            }
        ));
        assert!(matches!(
            parse_expr("(int)x").unwrap().kind,
            ExprKind::Cast {
                signed: true,
                width: Some(WidthSpec::Fixed(32)),
                ..
            }
        ));
    }

    #[test]
    fn range_and_index() {
        let e = parse_expr("MEM[addr+3:addr]").unwrap();
        assert!(matches!(e.kind, ExprKind::Range { .. }));
        let e = parse_expr("X[rs1][7:0]").unwrap();
        match e.kind {
            ExprKind::Range { base, .. } => {
                assert!(matches!(base.kind, ExprKind::Index { .. }))
            }
            other => panic!("expected range, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unsized_encoding_constants() {
        let src = r#"
InstructionSet bad {
  instructions {
    i { encoding: 0 :: rd[4:0] :: 7'b0001011; behavior: { } }
  }
}
"#;
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_reversed_encoding_range() {
        let src = r#"
InstructionSet bad {
  instructions {
    i { encoding: rd[0:4] :: 27'd0; behavior: { } }
  }
}
"#;
        assert!(parse(src).is_err());
    }

    #[test]
    fn ternary_parses() {
        let e = parse_expr("a ? b : c ? d : e").unwrap();
        match e.kind {
            ExprKind::Ternary { else_val, .. } => {
                assert!(matches!(else_val.kind, ExprKind::Ternary { .. }))
            }
            other => panic!("expected ternary, got {other:?}"),
        }
    }

    #[test]
    fn const_rom_initializer() {
        let src = r#"
InstructionSet s {
  architectural_state {
    register const unsigned<8> SBOX[4] = {0x63, 0x7c, 0x77, 0x7b};
  }
}
"#;
        let desc = parse(src).unwrap();
        let d = &desc.instruction_sets[0].body.state[0];
        assert!(d.is_const);
        assert!(matches!(d.init, Some(Initializer::List(ref v)) if v.len() == 4));
    }

    #[test]
    fn recovery_reports_independent_statement_errors() {
        // Two broken statements in separate instructions plus one good
        // instruction: both errors surface in one pass and the good
        // instruction still parses.
        let src = r#"
InstructionSet r extends RV32I {
  instructions {
    a {
      encoding: 25'd0 :: 7'b0001011;
      behavior: { X[1] = ; }
    }
    b {
      encoding: 25'd1 :: 7'b0001011;
      behavior: { unsigned<8> v = 0; v = v + 1; }
    }
    c {
      encoding: 25'd2 :: 7'b0001011;
      behavior: { = 3; }
    }
  }
}
"#;
        let out = parse_all(src);
        assert_eq!(out.errors.len(), 2, "{:?}", out.errors);
        assert!(out.errors.iter().all(|e| e.code == codes::PARSE_EXPECTED));
        let isa = &out.description.instruction_sets[0];
        let names: Vec<_> = isa.body.instructions.iter().map(|i| i.name.as_str()).collect();
        assert!(names.contains(&"b"), "good instruction survives: {names:?}");
    }

    #[test]
    fn recovery_keeps_later_top_level_definitions() {
        let src = r#"
InstructionSet broken extends {
InstructionSet fine extends RV32I {
  instructions {
    i { encoding: 25'd0 :: 7'b0001011; behavior: { } }
  }
}
"#;
        let out = parse_all(src);
        assert!(!out.errors.is_empty());
        let names: Vec<_> = out
            .description
            .instruction_sets
            .iter()
            .map(|d| d.name.as_str())
            .collect();
        assert!(names.contains(&"fine"), "{names:?}");
    }

    #[test]
    fn parse_returns_the_first_recorded_error() {
        let src = "InstructionSet x { instructions { i { encoding: 0 :: 7'b0001011; behavior: { } } } }";
        let first = parse(src).unwrap_err();
        let all = parse_all(src);
        assert_eq!(first, all.errors[0]);
        assert_eq!(first.code, codes::PARSE_BAD_ENCODING);
    }

    #[test]
    fn error_count_is_capped() {
        // A long run of garbage must terminate with a bounded error list
        // ending in the cap notice.
        let src = "InstructionSet g { instructions { ".to_string() + &"? ; ".repeat(500) + "} }";
        let out = parse_all(&src);
        assert!(out.errors.len() <= MAX_ERRORS + 1, "{}", out.errors.len());
        assert_eq!(
            out.errors.last().unwrap().code,
            codes::PARSE_TOO_MANY_ERRORS
        );
    }

    #[test]
    fn unterminated_blocks_report_missing_brace() {
        let out = parse_all("InstructionSet a { instructions { i { encoding: 7'd0");
        assert!(!out.errors.is_empty());
        assert!(
            out.errors.iter().any(|e| e.message.contains("expected `}`")
                || e.message.contains("end of input")),
            "{:?}",
            out.errors
        );
    }

    #[test]
    fn clean_sources_report_no_errors_through_parse_all() {
        let src = "Core VexRiscv provides RV32I, zol { }";
        let out = parse_all(src);
        assert!(out.errors.is_empty());
        assert_eq!(out.description.cores[0].name, "VexRiscv");
    }
}
