/root/repo/target/debug/deps/riscv-5261c405de60c4a8.d: crates/riscv/src/lib.rs crates/riscv/src/asm.rs crates/riscv/src/decode.rs crates/riscv/src/encode.rs crates/riscv/src/iss.rs

/root/repo/target/debug/deps/libriscv-5261c405de60c4a8.rlib: crates/riscv/src/lib.rs crates/riscv/src/asm.rs crates/riscv/src/decode.rs crates/riscv/src/encode.rs crates/riscv/src/iss.rs

/root/repo/target/debug/deps/libriscv-5261c405de60c4a8.rmeta: crates/riscv/src/lib.rs crates/riscv/src/asm.rs crates/riscv/src/decode.rs crates/riscv/src/encode.rs crates/riscv/src/iss.rs

crates/riscv/src/lib.rs:
crates/riscv/src/asm.rs:
crates/riscv/src/decode.rs:
crates/riscv/src/encode.rs:
crates/riscv/src/iss.rs:
