/root/repo/target/debug/deps/coredsl-8faef11d6ff1b2d4.d: crates/coredsl/src/lib.rs crates/coredsl/src/ast.rs crates/coredsl/src/elab.rs crates/coredsl/src/error.rs crates/coredsl/src/lexer.rs crates/coredsl/src/parser.rs crates/coredsl/src/prelude_src.rs crates/coredsl/src/sema.rs crates/coredsl/src/tast.rs crates/coredsl/src/token.rs crates/coredsl/src/types.rs

/root/repo/target/debug/deps/coredsl-8faef11d6ff1b2d4: crates/coredsl/src/lib.rs crates/coredsl/src/ast.rs crates/coredsl/src/elab.rs crates/coredsl/src/error.rs crates/coredsl/src/lexer.rs crates/coredsl/src/parser.rs crates/coredsl/src/prelude_src.rs crates/coredsl/src/sema.rs crates/coredsl/src/tast.rs crates/coredsl/src/token.rs crates/coredsl/src/types.rs

crates/coredsl/src/lib.rs:
crates/coredsl/src/ast.rs:
crates/coredsl/src/elab.rs:
crates/coredsl/src/error.rs:
crates/coredsl/src/lexer.rs:
crates/coredsl/src/parser.rs:
crates/coredsl/src/prelude_src.rs:
crates/coredsl/src/sema.rs:
crates/coredsl/src/tast.rs:
crates/coredsl/src/token.rs:
crates/coredsl/src/types.rs:
