//! Regenerates Figure 8: the SCAIE-V configuration file Longnail emits for
//! the ZOL ISAX of Figure 3 — custom-register requests, the setup
//! instruction with its encoding and interface schedule, and the
//! `always`-block whose state updates carry mandatory valid bits.

use longnail::driver::builtin_datasheet;
use longnail::isax_lib;
use longnail::Longnail;

fn main() {
    let ln = Longnail::new();
    let ds = builtin_datasheet("VexRiscv").unwrap();
    let (unit, src) = isax_lib::isax_source("zol").unwrap();
    let compiled = ln.compile(&src, &unit, &ds).unwrap();
    println!("Figure 3: the zol ISAX in CoreDSL");
    println!("----------------------------------");
    println!("{}", src.trim());
    println!();
    println!("Figure 8: SCAIE-V configuration file emitted by Longnail");
    println!("---------------------------------------------------------");
    print!("{}", compiled.config.to_yaml());

    // The properties the paper's Figure 8 walkthrough calls out:
    let setup = compiled
        .config
        .functionalities
        .iter()
        .find(|f| f.name == "setup_zol")
        .expect("setup_zol present");
    assert!(setup.encoding.is_some());
    assert!(setup
        .schedule
        .iter()
        .any(|e| e.interface == "WrCOUNT.addr"));
    let always = compiled
        .config
        .functionalities
        .iter()
        .find(|f| f.name == "zol")
        .expect("always block present");
    assert!(always.is_always());
    for e in &always.schedule {
        if e.interface.starts_with("Wr") && !e.interface.ends_with(".addr") {
            assert!(e.has_valid, "{} must carry a valid bit", e.interface);
        }
    }
    println!("\n(all always-mode state updates carry mandatory valid bits)");
}
