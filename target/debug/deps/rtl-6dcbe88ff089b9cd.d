/root/repo/target/debug/deps/rtl-6dcbe88ff089b9cd.d: crates/rtl/src/lib.rs crates/rtl/src/build.rs crates/rtl/src/interp.rs crates/rtl/src/lint.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs Cargo.toml

/root/repo/target/debug/deps/librtl-6dcbe88ff089b9cd.rmeta: crates/rtl/src/lib.rs crates/rtl/src/build.rs crates/rtl/src/interp.rs crates/rtl/src/lint.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs Cargo.toml

crates/rtl/src/lib.rs:
crates/rtl/src/build.rs:
crates/rtl/src/interp.rs:
crates/rtl/src/lint.rs:
crates/rtl/src/netlist.rs:
crates/rtl/src/verilog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
