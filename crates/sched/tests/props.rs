//! Property-based tests: random scheduling problems through both solvers.

use proptest::prelude::*;
use sched::problem::{LongnailProblem, OperatorType, Schedule};
use sched::{schedule_asap, schedule_ilp};

/// A random DAG: `n` operations, each with edges from a random subset of
/// earlier operations, random operator characteristics, and a random
/// cycle-time budget.
#[derive(Debug, Clone)]
struct RandomProblem {
    ops: Vec<(u32, u32, u32, Option<u32>)>, // (latency, delay_tenths, earliest, latest)
    edges: Vec<(usize, usize)>,
    cycle_tenths: u32,
}

fn random_problem() -> impl Strategy<Value = RandomProblem> {
    (2usize..=14).prop_flat_map(|n| {
        let ops = proptest::collection::vec(
            (
                0u32..=2,                       // latency
                0u32..=10,                      // delay in tenths
                0u32..=3,                       // earliest
                proptest::option::weighted(0.3, 4u32..=20), // latest
            ),
            n,
        );
        let edges = proptest::collection::vec((0usize..n, 0usize..n), 0..=2 * n).prop_map(
            move |pairs| {
                pairs
                    .into_iter()
                    .filter(|(a, b)| a < b) // acyclic by construction
                    .collect::<Vec<_>>()
            },
        );
        (ops, edges, 12u32..=40).prop_map(|(ops, edges, cycle_tenths)| RandomProblem {
            ops,
            edges,
            cycle_tenths,
        })
    })
}

fn build(rp: &RandomProblem) -> LongnailProblem {
    let mut p = LongnailProblem {
        cycle_time: rp.cycle_tenths as f64 / 10.0,
        ..LongnailProblem::default()
    };
    for (i, &(latency, delay_tenths, earliest, latest)) in rp.ops.iter().enumerate() {
        let delay = (delay_tenths as f64 / 10.0).min(rp.cycle_tenths as f64 / 10.0);
        let mut ot = OperatorType::sequential(&format!("t{i}"), latency, delay);
        ot.earliest = earliest;
        ot.latest = latest.map(|l| l.max(earliest));
        let tid = p.add_operator_type(ot);
        p.add_operation(&format!("op{i}"), tid);
    }
    for &(a, b) in &rp.edges {
        p.add_dependence(
            sched::problem::OperationId(a),
            sched::problem::OperationId(b),
        );
    }
    p
}

fn objective(p: &LongnailProblem, s: &Schedule) -> u64 {
    let starts: u64 = s.start_time.iter().map(|&t| t as u64).sum();
    let lifetimes: u64 = p
        .dependences
        .iter()
        .map(|d| (s.start_time[d.to.0] - s.start_time[d.from.0]) as u64)
        .sum();
    starts + lifetimes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whenever the ILP finds a schedule, it satisfies all three constraint
    /// levels of Table 2.
    #[test]
    fn ilp_schedules_verify(rp in random_problem()) {
        let mut p = build(&rp);
        if let Ok(s) = schedule_ilp(&mut p) {
            p.verify(&s).unwrap();
        }
    }

    /// ASAP solutions also verify, and the ILP is never worse on the
    /// Figure 7 objective.
    #[test]
    fn ilp_objective_never_worse_than_asap(rp in random_problem()) {
        let mut p_asap = build(&rp);
        let mut p_ilp = build(&rp);
        // Chain breakers are part of the ILP model; give ASAP the same
        // problem (it handles chaining natively).
        #[allow(clippy::single_match)]
        match (schedule_asap(&mut p_asap), schedule_ilp(&mut p_ilp)) {
            (Ok(a), Ok(i)) => {
                p_asap.verify(&a).unwrap();
                p_ilp.verify(&i).unwrap();
                // The initial breakers are satisfied by the ASAP schedule
                // (they are derived from the same timeline), so the ILP can
                // only be worse when the lazy repair loop added further
                // breakers — constraints ASAP never faced. Compare only
                // when no repair happened.
                let mut p_initial = build(&rp);
                sched::chain::compute_chain_breakers(&mut p_initial).unwrap();
                if p_ilp.chain_breakers.len() == p_initial.chain_breakers.len() {
                    prop_assert!(
                        objective(&p_ilp, &i) <= objective(&p_asap, &a),
                        "ILP {} vs ASAP {}",
                        objective(&p_ilp, &i),
                        objective(&p_asap, &a)
                    );
                }
            }
            // Feasibility may legitimately differ: ASAP is greedy and can
            // miss schedules that require delaying early ops, and chain
            // breakers add constraints ASAP does not have. Either solver
            // failing alone is acceptable; both failing is fine too.
            _ => {}
        }
    }

    /// Makespan lower bound: no schedule beats the critical path.
    #[test]
    fn makespan_respects_critical_path(rp in random_problem()) {
        let mut p = build(&rp);
        if let Ok(s) = schedule_ilp(&mut p) {
            // Longest path in whole cycles (latencies only).
            let n = p.operations.len();
            let mut dist = vec![0u32; n];
            // Edges only go from lower to higher index, so processing them
            // sorted by source is a topological relaxation.
            let mut deps = p.dependences.clone();
            deps.sort_by_key(|d| d.from.0);
            for d in &deps {
                let lat = p.lot(d.from).latency;
                let v = dist[d.from.0] + lat;
                if v > dist[d.to.0] {
                    dist[d.to.0] = v;
                }
            }
            for (i, &d) in dist.iter().enumerate() {
                prop_assert!(
                    s.start_time[i] >= d.max(p.lot(sched::problem::OperationId(i)).earliest)
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Resilience: an arbitrarily tiny work budget never panics. The
    /// outcome either verifies against every Table 2 constraint level
    /// (exact or degraded), or the problem is genuinely infeasible — in
    /// which case the ASAP fallback on a fresh copy fails too.
    #[test]
    fn tiny_budget_never_panics_and_fallback_verifies(
        rp in random_problem(),
        limit in 0u64..300,
    ) {
        let mut p = build(&rp);
        match sched::schedule_resilient(&mut p, &sched::Budget::new(limit)) {
            Ok(out) => {
                p.verify(&out.schedule).unwrap();
                if let Some(d) = &out.degradation {
                    prop_assert!(d.work_used <= d.work_limit);
                }
            }
            Err(_) => {
                let mut fresh = build(&rp);
                let fallback = schedule_asap(&mut fresh)
                    .and_then(|s| fresh.verify(&s).map(|_| s));
                prop_assert!(
                    fallback.is_err(),
                    "resilient errored on a problem the fallback solves"
                );
            }
        }
    }

    /// No happy-path change: with the default budget the resilient facade
    /// takes the exact path and returns the identical schedule to the
    /// plain ILP entry point.
    #[test]
    fn default_budget_matches_exact_schedule(rp in random_problem()) {
        let mut p_exact = build(&rp);
        let mut p_res = build(&rp);
        let exact = schedule_ilp(&mut p_exact);
        let resilient = sched::schedule_resilient(&mut p_res, &sched::Budget::default());
        match (exact, resilient) {
            (Ok(a), Ok(out)) => {
                prop_assert!(out.is_exact());
                prop_assert_eq!(&a.start_time, &out.schedule.start_time);
                prop_assert_eq!(
                    &a.start_time_in_cycle,
                    &out.schedule.start_time_in_cycle
                );
            }
            // The ILP can be infeasible (breaker over-constraint) where the
            // fallback still finds a valid schedule; that is a degradation.
            (Err(_), Ok(out)) => prop_assert!(!out.is_exact()),
            (Ok(_), Err(e)) => prop_assert!(
                false,
                "resilient failed where exact succeeded: {}",
                e
            ),
            (Err(_), Err(_)) => {}
        }
    }
}
