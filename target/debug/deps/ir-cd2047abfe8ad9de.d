/root/repo/target/debug/deps/ir-cd2047abfe8ad9de.d: crates/ir/src/lib.rs crates/ir/src/eval.rs crates/ir/src/hirprint.rs crates/ir/src/interp.rs crates/ir/src/lil.rs crates/ir/src/lower.rs crates/ir/src/verify.rs

/root/repo/target/debug/deps/ir-cd2047abfe8ad9de: crates/ir/src/lib.rs crates/ir/src/eval.rs crates/ir/src/hirprint.rs crates/ir/src/interp.rs crates/ir/src/lil.rs crates/ir/src/lower.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/eval.rs:
crates/ir/src/hirprint.rs:
crates/ir/src/interp.rs:
crates/ir/src/lil.rs:
crates/ir/src/lower.rs:
crates/ir/src/verify.rs:
