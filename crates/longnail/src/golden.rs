//! Golden-model execution of ISAX-extended programs.
//!
//! Combines the `riscv` ISS with the CoreDSL behavior interpreter
//! (`ir::interp`): base instructions execute natively, ISAX words dispatch
//! into their CoreDSL behavior, and `always`-blocks are evaluated once per
//! retired instruction against the fetch PC — the architectural reference
//! that the cycle-level core simulations (paper §5.3 verification) are
//! compared against.

use bits::ApInt;
use coredsl::tast::TypedModule;
use ir::interp::{decode_fields, ArchState, Interp};
use riscv::iss::{Cpu, CustomExecutor, IssError, StepOutcome};
use std::collections::HashMap;

/// Architectural state of one or more integrated ISAXes plus the base CPU.
#[derive(Debug)]
pub struct GoldenMachine {
    /// The base-ISA CPU (GPRs, PC, memory).
    pub cpu: Cpu,
    isaxes: Vec<TypedModule>,
    /// Custom-register state: name → index → value.
    cust: HashMap<String, HashMap<u64, ApInt>>,
    /// Declared widths of custom registers.
    widths: HashMap<String, u32>,
}

impl GoldenMachine {
    /// Creates a machine with the given ISAXes integrated.
    pub fn new(isaxes: Vec<TypedModule>) -> Self {
        let mut widths = HashMap::new();
        for module in &isaxes {
            for reg in &module.registers {
                if reg.builtin.is_none() {
                    widths.insert(reg.name.clone(), reg.ty.width);
                }
            }
        }
        GoldenMachine {
            cpu: Cpu::new(),
            isaxes,
            cust: HashMap::new(),
            widths,
        }
    }

    /// Loads a program and points the PC at it.
    pub fn load_program(&mut self, base: u32, words: &[u32]) {
        self.cpu.load_program(base, words);
    }

    /// Reads a custom register (zero if never written).
    pub fn cust_reg(&self, name: &str, index: u64) -> ApInt {
        self.cust
            .get(name)
            .and_then(|m| m.get(&index))
            .cloned()
            .unwrap_or_else(|| ApInt::zero(self.widths.get(name).copied().unwrap_or(32)))
    }

    /// Sets a custom register (test setup).
    pub fn set_cust_reg(&mut self, name: &str, index: u64, value: ApInt) {
        self.cust
            .entry(name.to_string())
            .or_default()
            .insert(index, value);
    }

    /// Executes one instruction (plus one evaluation of every
    /// `always`-block).
    ///
    /// # Errors
    ///
    /// Propagates ISS and interpreter errors.
    pub fn step(&mut self) -> Result<StepOutcome, IssError> {
        let pc = self.cpu.pc;
        let outcome = {
            let mut hook = GoldenHook {
                isaxes: &self.isaxes,
                cust: &mut self.cust,
                widths: &self.widths,
                instr_pc: pc,
            };
            self.cpu.step(Some(&mut hook))?
        };
        if outcome == StepOutcome::Halted {
            return Ok(outcome);
        }
        // Evaluate always-blocks against the fetch PC of the retired
        // instruction. An always-block's PC update redirects the next fetch
        // unless the instruction itself already jumped (static arbitration:
        // explicit control flow wins).
        let default_next = pc.wrapping_add(4);
        for i in 0..self.isaxes.len() {
            let module = self.isaxes[i].clone();
            let interp = Interp::new(&module);
            for always in &module.always_blocks {
                let mut pending_pc = None;
                {
                    let mut bridge = Bridge {
                        cpu: &mut self.cpu,
                        cust: &mut self.cust,
                        widths: &self.widths,
                        pc_value: pc,
                        pc_write: Some(&mut pending_pc),
                    };
                    interp
                        .exec_always_def(always, &mut bridge)
                        .map_err(|e| IssError {
                            pc,
                            message: format!("always `{}`: {e}", always.name),
                        })?;
                }
                if let Some(new_pc) = pending_pc {
                    if self.cpu.pc == default_next {
                        self.cpu.pc = new_pc;
                    }
                }
            }
        }
        Ok(outcome)
    }

    /// Runs until halt or `max_steps`.
    ///
    /// # Errors
    ///
    /// Propagates step errors, or reports step exhaustion.
    pub fn run(&mut self, max_steps: u64) -> Result<(), IssError> {
        for _ in 0..max_steps {
            if self.step()? == StepOutcome::Halted {
                return Ok(());
            }
        }
        Err(IssError {
            pc: self.cpu.pc,
            message: format!("program did not halt within {max_steps} steps"),
        })
    }
}

/// CustomExecutor dispatching unknown words into ISAX behaviors.
struct GoldenHook<'a> {
    isaxes: &'a [TypedModule],
    cust: &'a mut HashMap<String, HashMap<u64, ApInt>>,
    widths: &'a HashMap<String, u32>,
    instr_pc: u32,
}

impl<'a> CustomExecutor for GoldenHook<'a> {
    fn execute(&mut self, word: u32, cpu: &mut Cpu) -> Result<bool, IssError> {
        for module in self.isaxes {
            for instr in &module.instructions {
                if decode_fields(&instr.encoding, word).is_none() {
                    continue;
                }
                let interp = Interp::new(module);
                let mut bridge = Bridge {
                    cpu,
                    cust: self.cust,
                    widths: self.widths,
                    pc_value: self.instr_pc,
                    pc_write: None,
                };
                interp
                    .exec_instruction_def(instr, word, &mut bridge)
                    .map_err(|e| IssError {
                        pc: self.instr_pc,
                        message: format!("isax `{}`: {e}", instr.name),
                    })?;
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// Bridges the CoreDSL interpreter's [`ArchState`] onto the ISS state.
struct Bridge<'a, 'b> {
    cpu: &'a mut Cpu,
    cust: &'a mut HashMap<String, HashMap<u64, ApInt>>,
    widths: &'a HashMap<String, u32>,
    /// Value returned for PC reads (the executing instruction's PC, or the
    /// fetch PC for always-blocks).
    pc_value: u32,
    /// When set, PC writes are captured here instead of applied directly
    /// (always-block arbitration).
    pc_write: Option<&'b mut Option<u32>>,
}

impl<'a, 'b> ArchState for Bridge<'a, 'b> {
    fn read(&mut self, reg: &str, index: u64) -> ApInt {
        match reg {
            "X" => ApInt::from_u64(self.cpu.read_reg(index as u32 & 31) as u64, 32),
            "PC" => ApInt::from_u64(self.pc_value as u64, 32),
            "MEM" => ApInt::from_u64(self.cpu.read_byte(index as u32) as u64, 8),
            custom => self
                .cust
                .get(custom)
                .and_then(|m| m.get(&index))
                .cloned()
                .unwrap_or_else(|| {
                    ApInt::zero(self.widths.get(custom).copied().unwrap_or(32))
                }),
        }
    }

    fn write(&mut self, reg: &str, index: u64, value: ApInt) {
        match reg {
            "X" => self.cpu.write_reg(index as u32 & 31, value.to_u64() as u32),
            "PC" => {
                let v = value.to_u64() as u32;
                match &mut self.pc_write {
                    Some(slot) => **slot = Some(v),
                    None => self.cpu.pc = v,
                }
            }
            "MEM" => self.cpu.write_byte(index as u32, value.to_u64() as u8),
            custom => {
                self.cust
                    .entry(custom.to_string())
                    .or_default()
                    .insert(index, value);
            }
        }
    }
}
