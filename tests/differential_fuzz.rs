//! Differential fuzzing of the whole flow: randomly generated (but
//! well-typed) CoreDSL instruction behaviors are executed three ways —
//!
//! 1. the golden CoreDSL interpreter (sequential semantics),
//! 2. the LIL data-flow evaluator (post-lowering semantics),
//! 3. the cycle-accurate netlist interpreter on the *generated RTL*,
//!
//! and all three must agree bit-for-bit on the written `rd` value. This
//! exercises the type rules, loop-free lowering (if-conversion, CSE,
//! folding, write merging), the ILP scheduler, and the hardware builder in
//! one sweep. Seeds are fixed: failures are reproducible.

use bits::ApInt;
use coredsl::types::IntType;
use ir::eval::{eval_graph, LilEnv, UpdateKind};
use ir::interp::{Interp, SimpleState};
use longnail::driver::builtin_datasheet;
use longnail::Longnail;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtl::build::IfaceSignal;
use rtl::netlist::{CombOp, Driver, Module, NetId, PortDir, RomData};
use rtl::xsim::DiffSim;
use rtl::Simulator;
use std::collections::HashMap;

/// A generated expression: CoreDSL text plus its checked type.
#[derive(Clone)]
struct GenExpr {
    text: String,
    ty: IntType,
}

struct Generator {
    rng: StdRng,
    locals: Vec<(String, IntType)>,
}

impl Generator {
    fn new(seed: u64) -> Self {
        Generator {
            rng: StdRng::seed_from_u64(seed),
            locals: Vec::new(),
        }
    }

    fn leaf(&mut self) -> GenExpr {
        match self.rng.random_range(0..4u32) {
            0 => {
                let width = self.rng.random_range(1..=33u32);
                let value: u64 = self.rng.random();
                GenExpr {
                    text: format!("{}'d{}", width, value & ((1u64 << width.min(63)) - 1)),
                    ty: IntType::unsigned(width),
                }
            }
            1 => GenExpr {
                text: "X[rs1]".into(),
                ty: IntType::unsigned(32),
            },
            2 => GenExpr {
                text: "X[rs2]".into(),
                ty: IntType::unsigned(32),
            },
            _ => {
                if self.locals.is_empty() {
                    GenExpr {
                        text: "X[rs1]".into(),
                        ty: IntType::unsigned(32),
                    }
                } else {
                    let i = self.rng.random_range(0..self.locals.len());
                    let (name, ty) = self.locals[i].clone();
                    GenExpr { text: name, ty }
                }
            }
        }
    }

    /// Caps runaway widths with an explicit cast (as a user would).
    fn cap(&mut self, e: GenExpr) -> GenExpr {
        if e.ty.width > 64 {
            let ty = IntType::unsigned(32);
            GenExpr {
                text: format!("(unsigned<32>)({})", e.text),
                ty,
            }
        } else {
            e
        }
    }

    fn expr(&mut self, depth: u32) -> GenExpr {
        if depth == 0 {
            return self.leaf();
        }
        let e = match self.rng.random_range(0..9u32) {
            0..=2 => {
                let a = self.expr(depth - 1);
                let b = self.expr(depth - 1);
                let (op, ty) = match self.rng.random_range(0..6u32) {
                    0 => ("+", a.ty.add_result(b.ty)),
                    1 => ("-", a.ty.sub_result(b.ty)),
                    2 => ("*", a.ty.mul_result(b.ty)),
                    3 => ("&", a.ty.bitwise_result(b.ty)),
                    4 => ("|", a.ty.bitwise_result(b.ty)),
                    _ => ("^", a.ty.bitwise_result(b.ty)),
                };
                GenExpr {
                    text: format!("({} {op} {})", a.text, b.text),
                    ty,
                }
            }
            3 => {
                let a = self.expr(depth - 1);
                let amount = self.rng.random_range(0..a.ty.width.min(32));
                let op = if self.rng.random_bool(0.5) { "<<" } else { ">>" };
                GenExpr {
                    text: format!("({} {op} {amount})", a.text),
                    ty: a.ty.shift_result(),
                }
            }
            4 => {
                let a = self.expr(depth - 1);
                if a.ty.width < 2 {
                    a
                } else {
                    let lo = self.rng.random_range(0..a.ty.width - 1);
                    let hi = self.rng.random_range(lo..a.ty.width);
                    GenExpr {
                        text: format!("({})[{hi}:{lo}]", a.text),
                        ty: IntType::unsigned(hi - lo + 1),
                    }
                }
            }
            5 => {
                let a = self.expr(depth - 1);
                let b = self.expr(depth - 1);
                if a.ty.width + b.ty.width > 64 {
                    a
                } else {
                    GenExpr {
                        text: format!("({} :: {})", a.text, b.text),
                        ty: a.ty.concat_result(b.ty),
                    }
                }
            }
            6 => {
                let c = self.expr(depth - 1);
                let a = self.expr(depth - 1);
                let b = self.expr(depth - 1);
                let ty = a.ty.common(b.ty);
                GenExpr {
                    text: format!("(({}) != 0 ? {} : {})", c.text, a.text, b.text),
                    ty,
                }
            }
            7 => {
                let a = self.expr(depth - 1);
                let b = self.expr(depth - 1);
                let op = ["<", "<=", ">", ">=", "==", "!="][self.rng.random_range(0..6)];
                GenExpr {
                    text: format!("({} {op} {})", a.text, b.text),
                    ty: IntType::bool_ty(),
                }
            }
            _ => {
                let a = self.expr(depth - 1);
                let signed = self.rng.random_bool(0.5);
                let width = self.rng.random_range(1..=48u32);
                GenExpr {
                    text: format!(
                        "({}<{width}>)({})",
                        if signed { "signed" } else { "unsigned" },
                        a.text
                    ),
                    ty: IntType {
                        signed,
                        width,
                    },
                }
            }
        };
        self.cap(e)
    }

    /// Generates one complete instruction behavior.
    fn behavior(&mut self) -> String {
        let mut body = String::new();
        let num_locals = self.rng.random_range(2..=5u32);
        for i in 0..num_locals {
            let d = self.rng.random_range(1..=3u32);
            let e = self.expr(d);
            let width = self.rng.random_range(4..=40u32);
            let name = format!("l{i}");
            body.push_str(&format!(
                "        unsigned<{width}> {name} = (unsigned<{width}>)({});\n",
                e.text
            ));
            self.locals.push((name, IntType::unsigned(width)));
        }
        // Conditional reassignments (exercise if-conversion + muxes).
        for _ in 0..self.rng.random_range(0..=2u32) {
            let cond = self.expr(2);
            let idx = self.rng.random_range(0..self.locals.len());
            let (name, ty) = self.locals[idx].clone();
            let val = self.expr(2);
            body.push_str(&format!(
                "        if (({}) != 0) {{ {name} = (unsigned<{}>)({}); }}\n",
                cond.text, ty.width, val.text
            ));
        }
        let result = self.expr(3);
        body.push_str(&format!(
            "        X[rd] = (unsigned<32>)({});\n",
            result.text
        ));
        body
    }
}

fn make_source(behavior: &str) -> String {
    format!(
        r#"
import "RV32I.core_desc";
InstructionSet fuzzed extends RV32I {{
  instructions {{
    fuzz {{
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {{
{behavior}
      }}
    }}
  }}
}}
"#
    )
}

struct FuzzEnv {
    rs1: u32,
    rs2: u32,
}

impl LilEnv for FuzzEnv {
    fn instr_word(&mut self) -> ApInt {
        // rd=3, rs1=1, rs2=2 with the fuzz opcode.
        ApInt::from_u64(((2 << 20) | (1 << 15) | (3 << 7) | 0b0001011) as u64, 32)
    }
    fn read_rs1(&mut self) -> ApInt {
        ApInt::from_u64(self.rs1 as u64, 32)
    }
    fn read_rs2(&mut self) -> ApInt {
        ApInt::from_u64(self.rs2 as u64, 32)
    }
    fn read_pc(&mut self) -> ApInt {
        ApInt::zero(32)
    }
    fn read_mem(&mut self, _addr: &ApInt) -> ApInt {
        ApInt::zero(32)
    }
    fn read_cust_reg(&mut self, _name: &str, _index: &ApInt) -> ApInt {
        ApInt::zero(32)
    }
}

/// Builds a random netlist directly over the `rtl` dialect — no CoreDSL in
/// the loop — so the four-state simulator is exercised on operator mixes
/// the lowering would never produce. Every module ends with the three
/// gadgets behind this PR's bug fixes: a division by a constant-zero
/// divisor, a dynamic extract whose offset can run past the top of its
/// base, and same-width ZExt/SExt aliases.
fn random_netlist(seed: u64) -> Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Module::new("fuzznet");
    let pa = m.add_port("a", PortDir::Input, 32);
    let pb = m.add_port("b", PortDir::Input, 32);
    let po = m.add_port("o", PortDir::Output, 32);
    let na = m.add_net(Driver::Input { port: pa }, 32, "a");
    let nb = m.add_net(Driver::Input { port: pb }, 32, "b");
    m.roms.push(RomData {
        name: "tab".into(),
        width: 32,
        contents: (0..5).map(|i| ApInt::from_u64(0x1111 * i, 32)).collect(),
    });
    let mut words = vec![na, nb]; // 32-bit nets
    let mut bits: Vec<NetId> = Vec::new(); // 1-bit nets
    for step in 0..24u32 {
        let x = words[rng.random_range(0..words.len())];
        let y = words[rng.random_range(0..words.len())];
        let comb = |op, args, lo| Driver::Comb { op, args, lo };
        let name = format!("n{step}");
        let net = match rng.random_range(0..15u32) {
            0 => m.add_net(comb(CombOp::Add, vec![x, y], 0), 32, &name),
            1 => m.add_net(comb(CombOp::Sub, vec![x, y], 0), 32, &name),
            2 => m.add_net(comb(CombOp::Mul, vec![x, y], 0), 32, &name),
            3 => {
                let op = [CombOp::DivU, CombOp::DivS, CombOp::RemU, CombOp::RemS]
                    [rng.random_range(0..4)];
                m.add_net(comb(op, vec![x, y], 0), 32, &name)
            }
            4 => {
                let op = [CombOp::And, CombOp::Or, CombOp::Xor][rng.random_range(0..3)];
                m.add_net(comb(op, vec![x, y], 0), 32, &name)
            }
            5 => m.add_net(comb(CombOp::Not, vec![x], 0), 32, &name),
            6 => {
                let op = [CombOp::Shl, CombOp::ShrU, CombOp::ShrS][rng.random_range(0..3)];
                m.add_net(comb(op, vec![x, y], 0), 32, &name)
            }
            7 => {
                let op = [
                    CombOp::Eq,
                    CombOp::Ne,
                    CombOp::Ult,
                    CombOp::Ule,
                    CombOp::Slt,
                    CombOp::Sle,
                ][rng.random_range(0..6)];
                bits.push(m.add_net(comb(op, vec![x, y], 0), 1, &name));
                continue;
            }
            8 if !bits.is_empty() => {
                let c = bits[rng.random_range(0..bits.len())];
                m.add_net(comb(CombOp::Mux, vec![c, x, y], 0), 32, &name)
            }
            9 => {
                let hi = m.add_net(comb(CombOp::Extract, vec![x], 16), 16, &name);
                let lo = m.add_net(comb(CombOp::Extract, vec![y], 0), 16, &format!("{name}b"));
                m.add_net(comb(CombOp::Concat, vec![hi, lo], 0), 32, &format!("{name}c"))
            }
            10 if !bits.is_empty() => {
                let b = bits[rng.random_range(0..bits.len())];
                m.add_net(comb(CombOp::Replicate, vec![b], 32), 32, &name)
            }
            11 => {
                // Dynamic extract with a full 32-bit offset: can reach far
                // past the top of the base, so only total (zero-filled)
                // emission keeps this X-free.
                let e = m.add_net(comb(CombOp::ExtractDyn, vec![x, y], 0), 8, &name);
                m.add_net(comb(CombOp::ZExt, vec![e], 0), 32, &format!("{name}z"))
            }
            12 => {
                let e = m.add_net(comb(CombOp::Extract, vec![x], 8), 8, &name);
                let op = if rng.random_bool(0.5) { CombOp::SExt } else { CombOp::ZExt };
                m.add_net(comb(op, vec![e], 0), 32, &format!("{name}x"))
            }
            13 => {
                let enable = if rng.random_bool(0.5) && !bits.is_empty() {
                    Some(bits[rng.random_range(0..bits.len())])
                } else {
                    None
                };
                let init = ApInt::from_u64(rng.random::<u64>(), 64).zext_or_trunc(32);
                m.add_net(Driver::Reg { next: x, enable, init }, 32, &name)
            }
            _ => {
                // ROM read through a 3-bit index over a 5-entry table:
                // indices 5..=7 overrun and must read zero everywhere.
                let idx = m.add_net(comb(CombOp::Trunc, vec![x], 0), 3, &name);
                m.add_net(Driver::Rom { rom: 0, index: idx }, 32, &format!("{name}r"))
            }
        };
        words.push(net);
    }
    // Deterministic gadgets: the historic X sources, now fixed.
    let zero = m.add_net(Driver::Const(ApInt::zero(32)), 32, "zdiv");
    let g1 = m.add_net(
        Driver::Comb { op: CombOp::DivU, args: vec![na, zero], lo: 0 },
        32,
        "div0",
    );
    let g2 = m.add_net(
        Driver::Comb { op: CombOp::RemS, args: vec![nb, zero], lo: 0 },
        32,
        "rem0",
    );
    let off = m.add_net(Driver::Const(ApInt::from_u64(30, 32)), 32, "off30");
    let top = m.add_net(
        Driver::Comb { op: CombOp::ExtractDyn, args: vec![na, off], lo: 0 },
        8,
        "top",
    );
    let topz = m.add_net(
        Driver::Comb { op: CombOp::ZExt, args: vec![top], lo: 0 },
        32,
        "topz",
    );
    let zs = m.add_net(
        Driver::Comb { op: CombOp::ZExt, args: vec![nb], lo: 0 },
        32,
        "zsame",
    );
    let ss = m.add_net(
        Driver::Comb { op: CombOp::SExt, args: vec![na], lo: 0 },
        32,
        "ssame",
    );
    words.extend([g1, g2, topz, zs, ss]);
    for b in bits {
        let z = m.add_net(
            Driver::Comb { op: CombOp::ZExt, args: vec![b], lo: 0 },
            32,
            "bz",
        );
        words.push(z);
    }
    // XOR-reduce everything so every net is observable at the output.
    let mut acc = words[0];
    for (i, w) in words.iter().skip(1).enumerate() {
        acc = m.add_net(
            Driver::Comb { op: CombOp::Xor, args: vec![acc, *w], lo: 0 },
            32,
            &format!("acc{i}"),
        );
    }
    m.connect_output(po, acc);
    m.validate().unwrap_or_else(|e| panic!("seed {seed}: invalid netlist: {e}"));
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// xsim-vs-interp property: under the default (guarded) emission
    /// options, a fully-known stimulus must keep every net of a random
    /// netlist fully known, and the four-state values must agree with the
    /// two-state interpreter bit-for-bit — `DiffSim::step` checks every
    /// fully-known net, so `net_x_bits == 0` means total coverage.
    #[test]
    fn random_netlists_stay_known_and_match_the_interpreter(seed: u64, a0: u32, b0: u32) {
        let module = random_netlist(seed);
        let mut diff = DiffSim::new(module);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        for t in 0..8u32 {
            let (a, b) = if t == 0 {
                (a0, b0)
            } else if t == 1 {
                (a0, 0) // meet the data-dependent divisions with a zero
            } else {
                (rng.random(), rng.random())
            };
            let mut inputs = HashMap::new();
            inputs.insert("a".to_string(), ApInt::from_u64(a as u64, 32));
            inputs.insert("b".to_string(), ApInt::from_u64(b as u64, 32));
            let stats = match diff.step(&inputs) {
                Ok(s) => s,
                Err(e) => {
                    return Err(proptest::TestCaseError::fail(format!(
                        "seed {seed}, cycle {t}, a={a:#x}, b={b:#x}: {e}"
                    )))
                }
            };
            prop_assert_eq!(stats.net_x_bits, 0, "seed {}, cycle {}: X bits survive", seed, t);
            prop_assert_eq!(stats.output_x_bits, 0);
        }
    }
}

#[test]
fn random_programs_agree_across_all_three_semantics() {
    let ln = Longnail::new();
    let ds = builtin_datasheet("VexRiscv").unwrap();
    let word: u32 = (2 << 20) | (1 << 15) | (3 << 7) | 0b0001011;
    let mut cases = 0;
    for seed in 0..40u64 {
        let mut generator = Generator::new(seed);
        let src = make_source(&generator.behavior());
        // The generator only emits well-typed programs; a frontend error
        // here is itself a bug worth failing on.
        let module = coredsl::Frontend::new()
            .compile_str(&src, "fuzzed")
            .unwrap_or_else(|e| panic!("seed {seed}: frontend rejected\n{src}\n{e}"));
        let compiled = ln
            .compile_module(module.clone(), &ds)
            .unwrap_or_else(|e| panic!("seed {seed}: flow failed: {e}"));
        let g = compiled.graph("fuzz").unwrap();
        let interp = Interp::new(&module);

        let mut operand_rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        for _ in 0..4 {
            let rs1: u32 = operand_rng.random();
            let rs2: u32 = operand_rng.random();

            // 1. Golden interpreter.
            let mut st = SimpleState::new(&module);
            st.set("X", 1, ApInt::from_u64(rs1 as u64, 32));
            st.set("X", 2, ApInt::from_u64(rs2 as u64, 32));
            interp
                .exec_instruction("fuzz", word, &mut st)
                .unwrap_or_else(|e| panic!("seed {seed}: golden failed: {e}\n{src}"));
            let golden = st.get("X", 3).to_u64() as u32;

            // 2. LIL evaluator.
            let mut env = FuzzEnv { rs1, rs2 };
            let updates = eval_graph(&g.graph, &compiled.lil, &mut env);
            let lil = updates
                .iter()
                .find(|u| u.kind == UpdateKind::Rd)
                .map(|u| u.value.to_u64() as u32)
                .unwrap_or(golden); // no write executed on this path
            assert_eq!(
                lil, golden,
                "seed {seed}, rs1={rs1:#x}, rs2={rs2:#x}: LIL vs golden\n{src}"
            );

            // 3. RTL netlist simulation.
            let rd_binding = g.built.binding_any_stage(&IfaceSignal::RdData).unwrap();
            let pred_binding = g.built.binding_any_stage(&IfaceSignal::RdPred).unwrap();
            let mut sim = Simulator::new(g.built.module.clone());
            let mut inputs = HashMap::new();
            for b in &g.built.bindings {
                match &b.signal {
                    IfaceSignal::Rs1Data => {
                        inputs.insert(b.name.clone(), ApInt::from_u64(rs1 as u64, 32));
                    }
                    IfaceSignal::Rs2Data => {
                        inputs.insert(b.name.clone(), ApInt::from_u64(rs2 as u64, 32));
                    }
                    IfaceSignal::InstrWord => {
                        inputs.insert(b.name.clone(), ApInt::from_u64(word as u64, 32));
                    }
                    IfaceSignal::StallIn => {
                        inputs.insert(b.name.clone(), ApInt::zero(1));
                    }
                    _ => {}
                }
            }
            let mut rtl_val = 0u32;
            let mut rtl_pred = false;
            for _ in 0..=g.built.max_stage {
                let outputs = sim.step(&inputs);
                rtl_val = outputs[&rd_binding.name].to_u64() as u32;
                rtl_pred = !outputs[&pred_binding.name].is_zero();
            }
            if rtl_pred {
                assert_eq!(
                    rtl_val, golden,
                    "seed {seed}, rs1={rs1:#x}, rs2={rs2:#x}: RTL vs golden\n{src}"
                );
            }
            cases += 1;
        }
    }
    assert_eq!(cases, 160);
}
