//! Ablation of the Figure 7 ILP formulation (a DESIGN.md design-choice
//! bench): schedule every Table 3 ISAX with the exact ILP and with the
//! greedy ASAP baseline, and compare the paper's objective (start times +
//! lifetimes) and the resulting pipeline-register bits in the built
//! hardware. The lifetime term is what saves registers in the ISAX module
//! (§4.3's "minimizing ... lifetimes (saving registers in the ISAX
//! module)").

use ir::lil::OpKind;
use longnail::driver::{builtin_datasheet, lil_iface_op};
use longnail::isax_lib;
use rtl::build::build_graph_module;
use sched::problem::{LongnailProblem, OperatorTypeId, Schedule};
use sched::{schedule_asap, schedule_ilp};
use std::collections::HashMap;

fn build_problem(
    graph: &ir::lil::Graph,
    ds: &scaiev::VirtualDatasheet,
    budget: f64,
) -> (LongnailProblem, Vec<sched::problem::OperationId>) {
    let mut p = LongnailProblem {
        cycle_time: budget,
        ..LongnailProblem::default()
    };
    let mut cache: HashMap<String, OperatorTypeId> = HashMap::new();
    let mut ids = Vec::new();
    for (_, op) in graph.iter() {
        let key = op.kind.mnemonic();
        let tid = *cache.entry(key.clone()).or_insert_with(|| {
            let ot = if let Some(iface) = lil_iface_op(&op.kind) {
                let t = ds.timing(&iface).expect("datasheet entry");
                let latest = match op.kind {
                    OpKind::WriteRd | OpKind::ReadMem | OpKind::WriteMem
                    | OpKind::WriteCustReg(_) => None,
                    _ => t.latest,
                };
                let mut ot =
                    sched::problem::OperatorType::sequential(&key, t.latency, 0.0);
                ot.earliest = t.earliest;
                ot.latest = latest;
                ot
            } else {
                let delay = match op.kind {
                    OpKind::Const(_)
                    | OpKind::Sink
                    | OpKind::Concat
                    | OpKind::Replicate(_)
                    | OpKind::ExtractConst { .. }
                    | OpKind::ZExt
                    | OpKind::SExt
                    | OpKind::Trunc => 0.0,
                    OpKind::Mux | OpKind::Not => 0.2,
                    _ => 1.0,
                };
                sched::problem::OperatorType::combinational(&key, delay)
            };
            p.add_operator_type(ot)
        });
        ids.push(p.add_operation(&key, tid));
    }
    for (v, op) in graph.iter() {
        for &operand in op.operands.iter().chain(op.pred.iter()) {
            p.add_dependence(ids[operand.0], ids[v.0]);
        }
    }
    (p, ids)
}

fn objective(p: &LongnailProblem, s: &Schedule) -> u64 {
    let starts: u64 = s.start_time.iter().map(|&t| t as u64).sum();
    let lifetimes: u64 = p
        .dependences
        .iter()
        .map(|d| (s.start_time[d.to.0] - s.start_time[d.from.0]) as u64)
        .sum();
    starts + lifetimes
}

fn main() {
    let ds = builtin_datasheet("VexRiscv").unwrap();
    let budget = ds.clock_ns / longnail::driver::UNIT_NS;
    println!("Scheduler ablation on VexRiscv: Figure 7 ILP vs ASAP baseline\n");
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "ISAX", "LIL ops", "obj(ILP)", "obj(ASAP)", "regbits(ILP)", "regbits(ASAP)"
    );
    let mut ilp_total = 0u64;
    let mut asap_total = 0u64;
    for (name, unit, src) in isax_lib::all_isaxes() {
        let module = coredsl::Frontend::new().compile_str(&src, &unit).unwrap();
        let lil = ir::lower_module(&module).unwrap();
        for graph in &lil.graphs {
            if graph.kind == ir::lil::GraphKind::Always {
                continue;
            }
            let (mut p_ilp, ids) = build_problem(graph, &ds, budget);
            let (mut p_asap, _) = build_problem(graph, &ds, budget);
            let Ok(ilp) = schedule_ilp(&mut p_ilp) else {
                continue;
            };
            let Ok(asap) = schedule_asap(&mut p_asap) else {
                continue;
            };
            let per_graph = |s: &Schedule| -> Vec<u32> {
                (0..graph.len()).map(|i| s.start_time[ids[i].0]).collect()
            };
            let reg_bits = |starts: &[u32]| {
                build_graph_module(graph, &lil, starts, &|_| 0)
                    .module
                    .register_bits()
            };
            let oi = objective(&p_ilp, &ilp);
            let oa = objective(&p_asap, &asap);
            ilp_total += oi;
            asap_total += oa;
            println!(
                "{:<16} {:>8} {:>10} {:>10} {:>12} {:>12}",
                format!("{name}/{}", graph.name),
                graph.len(),
                oi,
                oa,
                reg_bits(&per_graph(&ilp)),
                reg_bits(&per_graph(&asap)),
            );
            assert!(oi <= oa, "{name}: ILP must not be worse than ASAP");
        }
    }
    println!(
        "\ntotal objective: ILP {ilp_total} vs ASAP {asap_total} \
         ({:.1} % saved by the exact formulation)",
        100.0 * (asap_total - ilp_total) as f64 / asap_total.max(1) as f64
    );
}
