/root/repo/target/release/deps/eda-fe0c709c82d0374d.d: crates/eda/src/lib.rs crates/eda/src/area.rs crates/eda/src/report.rs crates/eda/src/tech.rs crates/eda/src/timing.rs

/root/repo/target/release/deps/libeda-fe0c709c82d0374d.rlib: crates/eda/src/lib.rs crates/eda/src/area.rs crates/eda/src/report.rs crates/eda/src/tech.rs crates/eda/src/timing.rs

/root/repo/target/release/deps/libeda-fe0c709c82d0374d.rmeta: crates/eda/src/lib.rs crates/eda/src/area.rs crates/eda/src/report.rs crates/eda/src/tech.rs crates/eda/src/timing.rs

crates/eda/src/lib.rs:
crates/eda/src/area.rs:
crates/eda/src/report.rs:
crates/eda/src/tech.rs:
crates/eda/src/timing.rs:
