//! Matrix-level trace aggregation: merge N per-cell [`Trace`]s into one
//! [`MatrixSummary`] (per-stage duration statistics, solver-work totals,
//! the critical-path cell, cache attribution, degradation counters) and
//! into one merged trace for `--metrics-out`.
//!
//! Determinism mirrors [`Trace::stripped`]: a summary carries both
//! wall-clock statistics and deterministic work counters, and
//! [`MatrixSummary::stripped`] zeroes everything scheduling- or
//! timing-dependent. The stripped projection — and therefore
//! [`MatrixSummary::to_json`] of it — is byte-identical for every worker
//! count, which is what `matrix_summary.json` and the CI `diff -r` gate
//! rely on.

use crate::{is_nondeterministic, metrics, EventKind, SpanId, Trace, TraceEvent, STAGES};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Order-statistics over one stage's wall-clock durations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurStats {
    /// Spans observed (deterministic: one per unit or per cell).
    pub count: u64,
    pub min_ns: u64,
    /// Median, nearest-rank.
    pub p50_ns: u64,
    /// 95th percentile, nearest-rank.
    pub p95_ns: u64,
    pub max_ns: u64,
    pub total_ns: u64,
}

impl DurStats {
    /// Computes nearest-rank order statistics over `durs`.
    pub fn from_durations(mut durs: Vec<u64>) -> DurStats {
        durs.sort_unstable();
        let n = durs.len();
        if n == 0 {
            return DurStats::default();
        }
        let rank = |p: f64| durs[((p * n as f64).ceil() as usize).clamp(1, n) - 1];
        DurStats {
            count: n as u64,
            min_ns: durs[0],
            p50_ns: rank(0.50),
            p95_ns: rank(0.95),
            max_ns: durs[n - 1],
            total_ns: durs.iter().sum(),
        }
    }

    fn stripped(&self) -> DurStats {
        DurStats {
            count: self.count,
            ..DurStats::default()
        }
    }
}

/// One row of the per-stage table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSummary {
    /// Stage name (one of [`STAGES`], `unit`, or `compile`).
    pub name: String,
    pub durs: DurStats,
}

/// One stage's incremental-cache attribution (`cache.<stage>.*`), plus
/// the synthetic `cell` row for whole-artifact disk hits. Which lookups
/// hit depends on what earlier runs left in the cache, so the whole
/// table is cleared in the deterministic projection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageCacheSummary {
    /// Stage name (one of [`STAGES`], or `cell`).
    pub stage: String,
    pub hits: u64,
    pub misses: u64,
    /// Lookups that blocked on a peer's in-flight compute.
    pub waits: u64,
}

/// Per-worker utilization line for the summary footer. Scheduling-
/// dependent, so never part of the deterministic projection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolWorkerSummary {
    /// Jobs this worker claimed.
    pub jobs: u64,
    /// Nanoseconds spent running jobs.
    pub busy_ns: u64,
    /// `busy_ns` over the pool's wall time, 0..=1.
    pub utilization: f64,
}

/// The merged view of a compile matrix: what `lnc --matrix --summary`
/// prints and what `matrix_summary.json` serializes (stripped).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatrixSummary {
    /// Cells aggregated (successfully compiled cells carry traces; the
    /// caller sets this to the *full* cell count including failures).
    pub cells: u64,
    /// Worker threads the matrix ran with (0 in the stripped projection).
    pub jobs: u64,
    /// Per-stage duration statistics, in pipeline order, then `unit` and
    /// `compile`.
    pub stages: Vec<StageSummary>,
    /// Every deterministic counter summed across all cells, sorted by
    /// name. Nondeterministic (`pool.*` / `cache.*`) counters are
    /// excluded here; cache totals live in the dedicated fields below.
    pub counters: BTreeMap<String, u64>,
    /// Cell whose `compile` span bounds the matrix wall time (the cell a
    /// latency optimization must attack first). Empty when stripped.
    pub critical_path_cell: String,
    /// That cell's `compile` span duration.
    pub critical_path_ns: u64,
    /// Frontend-cache hits across the whole matrix. Deterministic within
    /// one process, but a warm `--cache-dir` run serves cells from disk
    /// and skips frontend lookups entirely, so the total is zeroed in the
    /// stripped projection to keep cold and warm artifacts identical.
    pub cache_hits: u64,
    /// Frontend-cache misses (zeroed when stripped, like `cache_hits`).
    pub cache_misses: u64,
    /// Cells that blocked on a slot a peer was computing (scheduling-
    /// dependent; zeroed when stripped).
    pub cache_waits: u64,
    /// Cells degraded to a fault diagnostic (`degrade.cell_faults`).
    pub cell_faults: u64,
    /// Contained error-severity problems (`degrade.errors_recovered`).
    pub errors_recovered: u64,
    /// Per-stage incremental-cache attribution, in pipeline order with a
    /// trailing `cell` row when a disk cache served whole artifacts.
    /// History-dependent, so cleared when stripped.
    pub stage_cache: Vec<StageCacheSummary>,
    /// Per-worker pool utilization (empty when stripped).
    pub pool: Vec<PoolWorkerSummary>,
    /// Pool wall time backing the utilization figures.
    pub pool_wall_ns: u64,
}

/// Aggregates per-cell traces (name, trace) into a [`MatrixSummary`].
///
/// Trace-derived fields are filled here: per-stage duration statistics
/// (via [`Trace::span_durations_ns`], so repeated per-unit stage spans
/// all count), deterministic counter totals, the critical-path cell, and
/// the cache-wait total. The caller overrides `cells`, `cache_hits`,
/// `cache_misses`, `cell_faults`, `errors_recovered`, `jobs`, and the
/// pool fields with the authoritative batch-level values (failed cells
/// have no trace to aggregate).
pub fn summarize(cells: &[(String, &Trace)]) -> MatrixSummary {
    let mut summary = MatrixSummary {
        cells: cells.len() as u64,
        ..MatrixSummary::default()
    };
    for name in STAGES.iter().copied().chain(["unit", "compile"]) {
        let durs: Vec<u64> = cells
            .iter()
            .flat_map(|(_, t)| t.span_durations_ns(name))
            .collect();
        summary.stages.push(StageSummary {
            name: name.to_string(),
            durs: DurStats::from_durations(durs),
        });
    }
    for (name, trace) in cells {
        for e in &trace.events {
            if let EventKind::Counter { name: n, value, .. } = &e.kind {
                if !is_nondeterministic(n) {
                    *summary.counters.entry(n.clone()).or_insert(0) += value;
                }
            }
        }
        summary.cache_hits += trace.counter_total(metrics::CACHE_FRONTEND_HIT);
        summary.cache_misses += trace.counter_total(metrics::CACHE_FRONTEND_MISS);
        summary.cache_waits += trace.counter_total(metrics::CACHE_FRONTEND_WAIT);
        let compile_ns = trace.span_duration_ns("compile").unwrap_or(0);
        // Strict `>` keeps the tie-break on the first cell in matrix
        // order, so equal-duration runs still pick deterministically.
        if compile_ns > summary.critical_path_ns {
            summary.critical_path_ns = compile_ns;
            summary.critical_path_cell = name.clone();
        }
    }
    summary
}

impl MatrixSummary {
    /// Looks up a stage row by name (`"frontend"`, …, `"unit"`,
    /// `"compile"`).
    pub fn stage(&self, name: &str) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// The deterministic projection, mirroring [`Trace::stripped`]: every
    /// wall-clock figure is zeroed, the (timing-derived) critical-path
    /// cell is blanked, and the scheduling- or history-dependent cache
    /// and pool fields are cleared. What remains — span counts, work
    /// counters, degradation counters — is identical for every worker
    /// count *and* for cold versus warm cache state, which is what the
    /// cold/warm `diff -r` CI gate relies on.
    pub fn stripped(&self) -> MatrixSummary {
        MatrixSummary {
            cells: self.cells,
            jobs: 0,
            stages: self
                .stages
                .iter()
                .map(|s| StageSummary {
                    name: s.name.clone(),
                    durs: s.durs.stripped(),
                })
                .collect(),
            counters: self.counters.clone(),
            critical_path_cell: String::new(),
            critical_path_ns: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_waits: 0,
            cell_faults: self.cell_faults,
            errors_recovered: self.errors_recovered,
            stage_cache: Vec::new(),
            pool: Vec::new(),
            pool_wall_ns: 0,
        }
    }

    /// Serializes the summary as pretty-printed JSON. Field order is
    /// fixed and counters iterate sorted, so equal summaries serialize to
    /// equal bytes; `lnc` writes `stripped().to_json()` as
    /// `matrix_summary.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"longnail-matrix-summary/1\",\n");
        let _ = writeln!(out, "  \"cells\": {},", self.cells);
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"count\": {}, \"min_ns\": {}, \"p50_ns\": {}, \
                 \"p95_ns\": {}, \"max_ns\": {}, \"total_ns\": {}}}",
                s.name,
                s.durs.count,
                s.durs.min_ns,
                s.durs.p50_ns,
                s.durs.p95_ns,
                s.durs.max_ns,
                s.durs.total_ns
            );
            out.push_str(if i + 1 == self.stages.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ],\n  \"counters\": {\n");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let _ = write!(out, "    \"{name}\": {value}");
            out.push_str(if i + 1 == self.counters.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  },\n");
        let _ = writeln!(
            out,
            "  \"critical_path\": {{\"cell\": \"{}\", \"compile_ns\": {}}},",
            self.critical_path_cell, self.critical_path_ns
        );
        let _ = writeln!(
            out,
            "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"waits_on_slot\": {}}},",
            self.cache_hits, self.cache_misses, self.cache_waits
        );
        let _ = writeln!(
            out,
            "  \"degradation\": {{\"cell_faults\": {}, \"errors_recovered\": {}}}",
            self.cell_faults, self.errors_recovered
        );
        out.push_str("}\n");
        out
    }

    /// Renders the human-readable summary table (`lnc --matrix
    /// --summary`): per-stage min/p50/p95/max/total wall-clock, the
    /// critical-path cell, solver totals, cache attribution, degradation
    /// counters, and per-worker pool utilization.
    pub fn render(&self) -> String {
        use crate::report::fmt_duration;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== matrix summary: {} cell(s), {} job(s) ==\n",
            self.cells, self.jobs
        );
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "stage", "spans", "min", "p50", "p95", "max", "total"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<10} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
                s.name,
                s.durs.count,
                fmt_duration(s.durs.min_ns),
                fmt_duration(s.durs.p50_ns),
                fmt_duration(s.durs.p95_ns),
                fmt_duration(s.durs.max_ns),
                fmt_duration(s.durs.total_ns)
            );
        }
        out.push('\n');
        if !self.critical_path_cell.is_empty() {
            let _ = writeln!(
                out,
                "critical path: {} (compile {})",
                self.critical_path_cell,
                fmt_duration(self.critical_path_ns)
            );
        }
        let c = |n: &str| self.counters.get(n).copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "solver: {} pivot(s), {} node(s), {} round(s), {} fallback(s)",
            c(metrics::SOLVER_PIVOTS),
            c(metrics::SOLVER_NODES),
            c(metrics::SOLVER_ROUNDS),
            c(metrics::SCHED_FALLBACK)
        );
        let _ = writeln!(
            out,
            "cache: {} miss(es), {} hit(s), {} wait(s) on slot",
            self.cache_misses, self.cache_hits, self.cache_waits
        );
        if !self.stage_cache.is_empty() {
            let _ = write!(out, "stage cache (miss/hit):");
            for s in &self.stage_cache {
                let _ = write!(out, " {} {}/{}", s.stage, s.misses, s.hits);
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "degraded: {} cell fault(s), {} error(s) recovered",
            self.cell_faults, self.errors_recovered
        );
        if !self.pool.is_empty() {
            let _ = write!(out, "pool: {} worker(s)", self.pool.len());
            for (i, w) in self.pool.iter().enumerate() {
                let _ = write!(
                    out,
                    " · w{i} {:.0}% ({} job(s))",
                    w.utilization * 100.0,
                    w.jobs
                );
            }
            out.push('\n');
        }
        out
    }
}

/// Merges per-cell traces into one matrix-wide trace: a root `matrix`
/// span with `matrix_counters` / `matrix_gauges` attached, one `cell`
/// span per entry (the cell name in the `unit` field), and each cell's
/// events nested under its `cell` span with span ids remapped to stay
/// unique and `seq` renumbered dense. This is the *unstripped* stream
/// `lnc --matrix --metrics-out` writes.
pub fn merge_traces(
    cells: &[(String, &Trace)],
    matrix_counters: &[(String, u64)],
    matrix_gauges: &[(String, f64)],
    wall_ns: u64,
) -> Trace {
    let root = SpanId(1);
    let mut events: Vec<TraceEvent> = Vec::new();
    events.push(TraceEvent {
        seq: 0,
        kind: EventKind::SpanStart {
            id: root,
            parent: None,
            name: "matrix".to_string(),
            unit: None,
        },
    });
    for (name, value) in matrix_counters {
        events.push(TraceEvent {
            seq: 0,
            kind: EventKind::Counter {
                span: root,
                name: name.clone(),
                value: *value,
            },
        });
    }
    for (name, value) in matrix_gauges {
        events.push(TraceEvent {
            seq: 0,
            kind: EventKind::Gauge {
                span: root,
                name: name.clone(),
                value: *value,
            },
        });
    }
    let mut next_id = 2u64;
    for (name, trace) in cells {
        let cell_span = SpanId(next_id);
        events.push(TraceEvent {
            seq: 0,
            kind: EventKind::SpanStart {
                id: cell_span,
                parent: Some(root),
                name: "cell".to_string(),
                unit: Some(name.clone()),
            },
        });
        // Cell traces number spans from 1; shifting by `offset` keeps
        // every remapped id above the ids handed out so far.
        let offset = next_id;
        let mut max_id = 0u64;
        let remap = |id: SpanId| SpanId(id.0 + offset);
        for e in &trace.events {
            let kind = match &e.kind {
                EventKind::SpanStart {
                    id,
                    parent,
                    name,
                    unit,
                } => {
                    max_id = max_id.max(id.0);
                    EventKind::SpanStart {
                        id: remap(*id),
                        parent: Some(parent.map_or(cell_span, remap)),
                        name: name.clone(),
                        unit: unit.clone(),
                    }
                }
                EventKind::SpanEnd { id, dur_ns } => EventKind::SpanEnd {
                    id: remap(*id),
                    dur_ns: *dur_ns,
                },
                EventKind::Counter { span, name, value } => EventKind::Counter {
                    span: remap(*span),
                    name: name.clone(),
                    value: *value,
                },
                EventKind::Gauge { span, name, value } => EventKind::Gauge {
                    span: remap(*span),
                    name: name.clone(),
                    value: *value,
                },
                EventKind::Attr { span, name, value } => EventKind::Attr {
                    span: remap(*span),
                    name: name.clone(),
                    value: value.clone(),
                },
                EventKind::Diag {
                    span,
                    severity,
                    stage,
                    unit,
                    message,
                } => EventKind::Diag {
                    span: span.map(remap),
                    severity: severity.clone(),
                    stage: stage.clone(),
                    unit: unit.clone(),
                    message: message.clone(),
                },
            };
            events.push(TraceEvent { seq: 0, kind });
        }
        events.push(TraceEvent {
            seq: 0,
            kind: EventKind::SpanEnd {
                id: cell_span,
                dur_ns: trace.span_duration_ns("compile").unwrap_or(0),
            },
        });
        next_id = offset + max_id + 1;
    }
    events.push(TraceEvent {
        seq: 0,
        kind: EventKind::SpanEnd {
            id: root,
            dur_ns: wall_ns,
        },
    });
    for (i, e) in events.iter_mut().enumerate() {
        e.seq = i as u64;
    }
    Trace { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    /// A cell trace with one unit and fixed stage durations (per-unit
    /// stage spans carry no real clock here; tests only need structure).
    fn cell(unit: &str, pivots: u64) -> Trace {
        let mut t = Telemetry::new();
        let root = t.start_span("compile");
        t.counter(root, metrics::CACHE_FRONTEND_HIT, 1);
        let fe = t.start_span("frontend");
        t.end_span(fe);
        let u = t.start_unit_span("unit", Some(unit));
        let s = t.start_span("solve");
        t.counter(s, metrics::SOLVER_PIVOTS, pivots);
        t.end_span(s);
        t.end_span(u);
        t.end_span(root);
        t.finish()
    }

    #[test]
    fn durstats_nearest_rank_percentiles() {
        let d = DurStats::from_durations((1..=100).collect());
        assert_eq!((d.min_ns, d.p50_ns, d.p95_ns, d.max_ns), (1, 50, 95, 100));
        assert_eq!(d.total_ns, 5050);
        let one = DurStats::from_durations(vec![7]);
        assert_eq!((one.p50_ns, one.p95_ns), (7, 7));
        assert_eq!(DurStats::from_durations(vec![]), DurStats::default());
    }

    #[test]
    fn summarize_totals_counters_and_finds_critical_path() {
        let a = cell("a", 10);
        let b = cell("b", 32);
        let cells = vec![("a_ORCA".to_string(), &a), ("b_ORCA".to_string(), &b)];
        let s = summarize(&cells);
        assert_eq!(s.cells, 2);
        assert_eq!(s.counters.get(metrics::SOLVER_PIVOTS), Some(&42));
        // cache.* counters are excluded from the generic map but summed
        // into the dedicated fields.
        assert!(!s.counters.contains_key(metrics::CACHE_FRONTEND_HIT));
        assert_eq!(s.cache_hits, 2);
        let solve = s.stages.iter().find(|x| x.name == "solve").unwrap();
        assert_eq!(solve.durs.count, 2);
        let compile = s.stages.iter().find(|x| x.name == "compile").unwrap();
        assert_eq!(compile.durs.count, 2);
        // Some cell is on the critical path (ties break to the first).
        assert!(!s.critical_path_cell.is_empty());
    }

    #[test]
    fn stripped_summaries_of_different_timings_are_equal() {
        let a1 = cell("a", 10);
        let a2 = cell("a", 10);
        let s1 = summarize(&[("a_ORCA".to_string(), &a1)]);
        let s2 = summarize(&[("a_ORCA".to_string(), &a2)]);
        // Unstripped summaries may differ (wall clock); stripped must not.
        assert_eq!(s1.stripped(), s2.stripped());
        assert_eq!(s1.stripped().to_json(), s2.stripped().to_json());
        assert!(s1
            .stripped()
            .to_json()
            .contains("\"critical_path\": {\"cell\": \"\""));
    }

    #[test]
    fn render_mentions_the_key_sections() {
        let a = cell("a", 5);
        let mut s = summarize(&[("a_ORCA".to_string(), &a)]);
        s.jobs = 4;
        s.cache_misses = 1;
        s.stage_cache.push(StageCacheSummary {
            stage: "frontend".to_string(),
            hits: 3,
            misses: 1,
            waits: 0,
        });
        s.pool.push(PoolWorkerSummary {
            jobs: 1,
            busy_ns: 50,
            utilization: 0.5,
        });
        let r = s.render();
        assert!(r.contains("matrix summary: 1 cell(s), 4 job(s)"), "{r}");
        assert!(r.contains("p50"), "{r}");
        assert!(r.contains("solver: 5 pivot(s)"), "{r}");
        assert!(r.contains("cache: 1 miss(es), 1 hit(s)"), "{r}");
        assert!(r.contains("stage cache (miss/hit): frontend 1/3"), "{r}");
        assert!(r.contains("pool: 1 worker(s) · w0 50% (1 job(s))"), "{r}");
    }

    #[test]
    fn stripped_clears_cache_attribution() {
        let a = cell("a", 5);
        let mut s = summarize(&[("a_ORCA".to_string(), &a)]);
        s.stage_cache.push(StageCacheSummary {
            stage: "frontend".to_string(),
            hits: 1,
            misses: 0,
            waits: 0,
        });
        assert_eq!(s.cache_hits, 1);
        let stripped = s.stripped();
        // Hit/miss totals depend on what earlier runs left in a disk
        // cache, so the deterministic artifact must not carry them.
        assert_eq!(stripped.cache_hits, 0);
        assert_eq!(stripped.cache_misses, 0);
        assert!(stripped.stage_cache.is_empty());
        assert!(stripped.to_json().contains("\"hits\": 0, \"misses\": 0"));
    }

    #[test]
    fn merged_trace_nests_cells_and_round_trips() {
        let a = cell("a", 1);
        let b = cell("b", 2);
        let merged = merge_traces(
            &[("a_ORCA".to_string(), &a), ("b_Piccolo".to_string(), &b)],
            &[("cache.hits".to_string(), 3)],
            &[("pool.worker.utilization".to_string(), 0.9)],
            1234,
        );
        // Root, two cell spans, and each cell's own spans.
        assert_eq!(merged.span_count("matrix"), 1);
        assert_eq!(merged.span_count("cell"), 2);
        assert_eq!(merged.span_count("compile"), 2);
        assert_eq!(merged.counter_total(metrics::SOLVER_PIVOTS), 3);
        // Cell spans carry the cell name and parent to the matrix root.
        let cells: Vec<_> = merged
            .span_starts()
            .filter(|&(_, _, n, _)| n == "cell")
            .collect();
        assert_eq!(cells[0].3, Some("a_ORCA"));
        assert_eq!(cells[1].3, Some("b_Piccolo"));
        assert_eq!(cells[0].1, cells[1].1);
        // Span ids stay unique and the stream stays codec-clean.
        let mut ids: Vec<u64> = merged.span_starts().map(|(id, _, _, _)| id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            merged.span_count("matrix") + merged.span_count("cell") + 2 * 4
        );
        let back = Trace::from_jsonl(&merged.to_jsonl()).unwrap();
        assert_eq!(back, merged);
        assert_eq!(merged.span_duration_ns("matrix"), Some(1234));
    }
}
