//! Static-priority arbitration between ISAXes (paper §3.3).
//!
//! Multiple HLS-generated instruction modules (and `always`-blocks) may
//! request the same state update in the same clock cycle. SCAIE-V
//! multiplexes the incoming payloads based on the current opcode in the
//! pipeline, and where several requesters remain, applies a static priority
//! that guarantees a deterministic order.

/// One update request presented to the arbiter in a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request<T> {
    /// Index of the requesting ISAX functionality — lower index = higher
    /// static priority (registration order).
    pub priority: usize,
    /// The payload (e.g. a PC value or register write).
    pub payload: T,
}

/// A static-priority arbiter for one state-update target.
#[derive(Debug, Clone, Default)]
pub struct StaticArbiter {
    /// Names of the registered requesters, in priority order.
    requesters: Vec<String>,
}

impl StaticArbiter {
    /// Creates an empty arbiter.
    pub fn new() -> Self {
        StaticArbiter::default()
    }

    /// Registers a requester, returning its priority index. Registration
    /// order determines the static priority (first registered wins ties).
    pub fn register(&mut self, name: &str) -> usize {
        self.requesters.push(name.to_string());
        self.requesters.len() - 1
    }

    /// Number of registered requesters (sizing for the generated mux).
    pub fn fan_in(&self) -> usize {
        self.requesters.len()
    }

    /// Name of a registered requester.
    pub fn requester(&self, priority: usize) -> Option<&str> {
        self.requesters.get(priority).map(|s| s.as_str())
    }

    /// Grants the highest-priority (lowest index) request; deterministic
    /// for any input order.
    pub fn grant<T>(&self, mut requests: Vec<Request<T>>) -> Option<Request<T>> {
        requests.sort_by_key(|r| r.priority);
        requests.into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_index_wins() {
        let mut arb = StaticArbiter::new();
        let zol = arb.register("zol");
        let autoinc = arb.register("autoinc");
        assert_eq!(arb.fan_in(), 2);
        let granted = arb
            .grant(vec![
                Request {
                    priority: autoinc,
                    payload: "b",
                },
                Request {
                    priority: zol,
                    payload: "a",
                },
            ])
            .unwrap();
        assert_eq!(granted.payload, "a");
        assert_eq!(arb.requester(granted.priority), Some("zol"));
    }

    #[test]
    fn empty_requests_grant_nothing() {
        let arb = StaticArbiter::new();
        assert!(arb.grant::<u32>(Vec::new()).is_none());
    }

    #[test]
    fn single_request_granted() {
        let mut arb = StaticArbiter::new();
        let p = arb.register("only");
        let g = arb
            .grant(vec![Request {
                priority: p,
                payload: 42u32,
            }])
            .unwrap();
        assert_eq!(g.payload, 42);
    }
}
