/root/repo/target/debug/deps/longnail-c9ed6da6c4f844a3.d: crates/longnail/src/lib.rs crates/longnail/src/diag.rs crates/longnail/src/driver.rs crates/longnail/src/golden.rs crates/longnail/src/isax_lib.rs

/root/repo/target/debug/deps/liblongnail-c9ed6da6c4f844a3.rlib: crates/longnail/src/lib.rs crates/longnail/src/diag.rs crates/longnail/src/driver.rs crates/longnail/src/golden.rs crates/longnail/src/isax_lib.rs

/root/repo/target/debug/deps/liblongnail-c9ed6da6c4f844a3.rmeta: crates/longnail/src/lib.rs crates/longnail/src/diag.rs crates/longnail/src/driver.rs crates/longnail/src/golden.rs crates/longnail/src/isax_lib.rs

crates/longnail/src/lib.rs:
crates/longnail/src/diag.rs:
crates/longnail/src/driver.rs:
crates/longnail/src/golden.rs:
crates/longnail/src/isax_lib.rs:
