/root/repo/target/debug/deps/differential_fuzz-eb68a8588bf7f46c.d: tests/differential_fuzz.rs

/root/repo/target/debug/deps/differential_fuzz-eb68a8588bf7f46c: tests/differential_fuzz.rs

tests/differential_fuzz.rs:
