//! The bitwidth-aware CoreDSL type system (paper §2.3).
//!
//! All values are signed or unsigned two's-complement integers of arbitrary
//! width. The core rules:
//!
//! * **Lossless implicit assignment** — precision or sign information is
//!   never lost implicitly. `unsigned<4> = unsigned<5>` and
//!   `unsigned<4> = signed<4>` are rejected; narrowing requires an explicit
//!   C-style cast.
//! * **Bitwidth-aware operators** — operands of different types are allowed
//!   and the result is wide enough to represent all possible values, e.g.
//!   `unsigned<5> + signed<4>` yields `signed<7>`.

use std::fmt;

/// A CoreDSL integer type: `signed<w>` or `unsigned<w>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntType {
    /// Signed (two's complement) or unsigned interpretation.
    pub signed: bool,
    /// Bitwidth (>= 1).
    pub width: u32,
}

impl IntType {
    /// `unsigned<width>`.
    pub fn unsigned(width: u32) -> Self {
        IntType {
            signed: false,
            width,
        }
    }

    /// `signed<width>`.
    pub fn signed(width: u32) -> Self {
        IntType {
            signed: true,
            width,
        }
    }

    /// The one-bit boolean type `unsigned<1>`.
    pub fn bool_ty() -> Self {
        Self::unsigned(1)
    }

    /// Width this type occupies when embedded in a signed type without
    /// losing values: unsigned types need one extra (sign) bit.
    fn width_in_signed(self) -> u32 {
        if self.signed {
            self.width
        } else {
            self.width + 1
        }
    }

    /// True if every value of `source` is representable in `self` —
    /// the condition for a legal *implicit* conversion on assignment.
    pub fn can_losslessly_hold(self, source: IntType) -> bool {
        match (self.signed, source.signed) {
            (false, true) => false, // discarding sign information is forbidden
            (true, _) => self.width >= source.width_in_signed(),
            (false, false) => self.width >= source.width,
        }
    }

    /// The smallest type that can hold all values of both operands
    /// ("common type": used for bitwise operators, ternary arms, and
    /// comparison operand extension).
    pub fn common(self, other: IntType) -> IntType {
        let signed = self.signed || other.signed;
        let width = if signed {
            self.width_in_signed().max(other.width_in_signed())
        } else {
            self.width.max(other.width)
        };
        IntType { signed, width }
    }

    /// Result type of `+` / `-`: one bit wider than the common type, so that
    /// no over-/underflow can occur. `unsigned<5> + signed<4>` → `signed<7>`.
    pub fn add_result(self, other: IntType) -> IntType {
        let common = self.common(other);
        IntType {
            signed: common.signed,
            width: common.width + 1,
        }
    }

    /// Result type of binary `-`: always signed (a difference of unsigned
    /// values can be negative), one bit wider than the common type.
    pub fn sub_result(self, other: IntType) -> IntType {
        let common = self.common(other);
        IntType {
            signed: true,
            width: if common.signed {
                common.width + 1
            } else {
                // unsigned - unsigned of width w spans [-(2^w - 1), 2^w - 1]
                common.width + 1
            },
        }
    }

    /// Result type of `*`: the sum of operand widths; signed if either
    /// operand is signed. `signed<8> * signed<8>` → `signed<16>`.
    pub fn mul_result(self, other: IntType) -> IntType {
        IntType {
            signed: self.signed || other.signed,
            width: self.width + other.width,
        }
    }

    /// Result type of `/`: the dividend's width plus one if the divisor is
    /// signed (|INT_MIN| / -1 overflow), signed if either operand is signed.
    pub fn div_result(self, other: IntType) -> IntType {
        let signed = self.signed || other.signed;
        // The quotient can only exceed the dividend's range when negation
        // is involved (|INT_MIN| / -1, or an unsigned dividend turning
        // signed), which costs one extra bit.
        let width = if other.signed || (signed && !self.signed) {
            self.width + 1
        } else {
            self.width
        };
        IntType { signed, width }
    }

    /// Result type of `%`: no wider than either operand; takes the
    /// dividend's signedness.
    pub fn rem_result(self, other: IntType) -> IntType {
        IntType {
            signed: self.signed,
            width: self.width.min(other.width.max(1)),
        }
    }

    /// Result type of `<<` / `>>`: the (unchanged) left-operand type, per the
    /// CoreDSL specification.
    pub fn shift_result(self) -> IntType {
        self
    }

    /// Result type of `&`, `|`, `^`: the common type of the operands.
    pub fn bitwise_result(self, other: IntType) -> IntType {
        self.common(other)
    }

    /// Result type of unary `-`: signed, one bit wider.
    pub fn neg_result(self) -> IntType {
        IntType {
            signed: true,
            width: self.width_in_signed().max(self.width + 1),
        }
    }

    /// Result type of unary `~`: the operand type.
    pub fn not_result(self) -> IntType {
        self
    }

    /// Result type of `a :: b` (concatenation): unsigned, sum of widths.
    pub fn concat_result(self, other: IntType) -> IntType {
        IntType::unsigned(self.width + other.width)
    }
}

impl fmt::Display for IntType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.signed {
            write!(f, "signed<{}>", self.width)
        } else {
            write!(f, "unsigned<{}>", self.width)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        let u4 = IntType::unsigned(4);
        let u5 = IntType::unsigned(5);
        let s4 = IntType::signed(4);
        // u4 = u5 (discarding MSB) and u4 = s4 (discarding sign) forbidden:
        assert!(!u4.can_losslessly_hold(u5));
        assert!(!u4.can_losslessly_hold(s4));
        // u5 + s4 yields signed<7>:
        assert_eq!(u5.add_result(s4), IntType::signed(7));
        // legal implicit widenings:
        assert!(u5.can_losslessly_hold(u4));
        assert!(IntType::signed(5).can_losslessly_hold(u4));
        assert!(IntType::signed(5).can_losslessly_hold(s4));
        assert!(!IntType::signed(4).can_losslessly_hold(u4));
    }

    #[test]
    fn dotprod_figure1_types() {
        // signed<16> prod = (signed) X[rs1][i+7:i] * (signed) X[rs2][i+7:i];
        let s8 = IntType::signed(8);
        assert_eq!(s8.mul_result(s8), IntType::signed(16));
        // res += prod with res: signed<32> — compound assign wraps to s32.
        let s32 = IntType::signed(32);
        assert_eq!(s32.add_result(IntType::signed(16)), IntType::signed(33));
    }

    #[test]
    fn common_type_mixing() {
        let u8t = IntType::unsigned(8);
        let s8 = IntType::signed(8);
        assert_eq!(u8t.common(s8), IntType::signed(9));
        assert_eq!(u8t.common(u8t), u8t);
        assert_eq!(s8.common(s8), s8);
        assert_eq!(u8t.bitwise_result(s8), IntType::signed(9));
    }

    #[test]
    fn sub_is_always_signed() {
        let u8t = IntType::unsigned(8);
        assert_eq!(u8t.sub_result(u8t), IntType::signed(9));
        let s8 = IntType::signed(8);
        assert_eq!(s8.sub_result(s8), IntType::signed(9));
    }

    #[test]
    fn neg_and_shift() {
        assert_eq!(IntType::unsigned(8).neg_result(), IntType::signed(9));
        assert_eq!(IntType::signed(8).neg_result(), IntType::signed(9));
        assert_eq!(IntType::unsigned(8).shift_result(), IntType::unsigned(8));
    }

    #[test]
    fn concat_is_unsigned_sum() {
        assert_eq!(
            IntType::signed(12).concat_result(IntType::unsigned(5)),
            IntType::unsigned(17)
        );
    }

    #[test]
    fn display() {
        assert_eq!(IntType::signed(7).to_string(), "signed<7>");
        assert_eq!(IntType::unsigned(1).to_string(), "unsigned<1>");
    }
}
