//! Construction of a pipelined ISAX hardware module from a scheduled LIL
//! graph (paper §4.5).
//!
//! Each LIL graph becomes one hardware module whose interface operations
//! become input/output ports; the numerical suffix of a port name indicates
//! the pipeline stage in which the interface is active (Figure 5d).
//! Stallable pipeline registers are inserted wherever a value crosses a
//! stage boundary. Longnail infers no controller: the SCAIE-V-generated
//! logic tracks instruction progress and commits results at the right time.

use crate::netlist::{CombOp, Driver, Module, NetId, PortDir, RomData};
use bits::ApInt;
use ir::lil::{Graph, LilModule, OpKind, ValueId};
use std::collections::HashMap;

/// Semantic role of a generated port, so that SCAIE-V / core adapters can
/// wire the module without parsing names.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IfaceSignal {
    /// Input: the 32-bit instruction word.
    InstrWord,
    /// Input: rs1 operand value.
    Rs1Data,
    /// Input: rs2 operand value.
    Rs2Data,
    /// Input: current PC.
    PcData,
    /// Output: load address.
    MemRdAddr,
    /// Output: load predicate.
    MemRdPred,
    /// Input: load result.
    MemRdData,
    /// Output: store address.
    MemWrAddr,
    /// Output: store data.
    MemWrData,
    /// Output: store predicate.
    MemWrPred,
    /// Output: rd write-back data.
    RdData,
    /// Output: rd write-back predicate.
    RdPred,
    /// Output: new PC.
    PcWrData,
    /// Output: PC write predicate (valid bit).
    PcWrPred,
    /// Output: custom-register read index.
    CustRdAddr(String),
    /// Input: custom-register read data.
    CustRdData(String),
    /// Output: custom-register write index.
    CustWrAddr(String),
    /// Output: custom-register write data.
    CustWrData(String),
    /// Output: custom-register write predicate (valid bit).
    CustWrPred(String),
    /// Input: stall of the given stage (gates that stage's pipeline
    /// registers).
    StallIn,
}

impl IfaceSignal {
    /// Canonical port-name stem.
    pub fn stem(&self) -> String {
        match self {
            IfaceSignal::InstrWord => "instr_word".into(),
            IfaceSignal::Rs1Data => "rs1".into(),
            IfaceSignal::Rs2Data => "rs2".into(),
            IfaceSignal::PcData => "pc".into(),
            IfaceSignal::MemRdAddr => "rdmem_addr".into(),
            IfaceSignal::MemRdPred => "rdmem_valid".into(),
            IfaceSignal::MemRdData => "rdmem_data".into(),
            IfaceSignal::MemWrAddr => "wrmem_addr".into(),
            IfaceSignal::MemWrData => "wrmem_data".into(),
            IfaceSignal::MemWrPred => "wrmem_valid".into(),
            IfaceSignal::RdData => "wrrd_data".into(),
            IfaceSignal::RdPred => "wrrd_valid".into(),
            IfaceSignal::PcWrData => "wrpc_data".into(),
            IfaceSignal::PcWrPred => "wrpc_valid".into(),
            IfaceSignal::CustRdAddr(r) => format!("rd{}_addr", r.to_lowercase()),
            IfaceSignal::CustRdData(r) => format!("rd{}_data", r.to_lowercase()),
            IfaceSignal::CustWrAddr(r) => format!("wr{}_addr", r.to_lowercase()),
            IfaceSignal::CustWrData(r) => format!("wr{}_data", r.to_lowercase()),
            IfaceSignal::CustWrPred(r) => format!("wr{}_valid", r.to_lowercase()),
            IfaceSignal::StallIn => "stall_in".into(),
        }
    }
}

/// A generated port with its semantic binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortBinding {
    pub signal: IfaceSignal,
    /// Pipeline stage the signal is active in.
    pub stage: u32,
    /// Port name in the module (`<stem>_<stage>`).
    pub name: String,
    pub dir: PortDir,
    pub width: u32,
    /// True if the driving/consuming LIL operation came from a
    /// `spawn`-block (needed for decoupled-mode port classification).
    pub in_spawn: bool,
}

/// The result of building: the module plus its port bindings.
#[derive(Debug, Clone)]
pub struct BuiltModule {
    pub module: Module,
    pub bindings: Vec<PortBinding>,
    /// Highest stage any port is active in.
    pub max_stage: u32,
}

impl BuiltModule {
    /// Finds a binding by signal and stage.
    pub fn binding(&self, signal: &IfaceSignal, stage: u32) -> Option<&PortBinding> {
        self.bindings
            .iter()
            .find(|b| b.signal == *signal && b.stage == stage)
    }

    /// Finds the unique binding for a signal regardless of stage.
    pub fn binding_any_stage(&self, signal: &IfaceSignal) -> Option<&PortBinding> {
        self.bindings.iter().find(|b| b.signal == *signal)
    }
}

/// Builds the hardware module for one scheduled graph.
///
/// `start_time[v]` is the scheduled cycle of LIL operation `v`;
/// `read_latency(kind)` gives the result latency of interface reads (from
/// the core's virtual datasheet).
///
/// # Panics
///
/// Panics if `start_time` does not cover the graph (callers always schedule
/// first).
pub fn build_graph_module(
    graph: &Graph,
    lil: &LilModule,
    start_time: &[u32],
    read_latency: &dyn Fn(&OpKind) -> u32,
) -> BuiltModule {
    assert_eq!(start_time.len(), graph.ops.len(), "schedule covers graph");
    let mut b = Builder {
        graph,
        start_time,
        read_latency,
        module: Module::new(&format!("{}_{}", lil.name, graph.name)),
        bindings: Vec::new(),
        avail: HashMap::new(),
        nets: HashMap::new(),
        stall: HashMap::new(),
        not_stall: HashMap::new(),
        consts: HashMap::new(),
        rom_ids: HashMap::new(),
        max_stage: 0,
    };
    b.module.add_port("clk", PortDir::Input, 1);
    b.module.add_port("rst", PortDir::Input, 1);
    for (i, rom) in lil.roms.iter().enumerate() {
        b.rom_ids.insert(rom.name.clone(), i);
        b.module.roms.push(RomData {
            name: rom.name.clone(),
            width: rom.width,
            contents: rom.contents.clone(),
        });
    }
    b.run();
    let max_stage = b.max_stage;
    let module = b.module;
    let bindings = b.bindings;
    debug_assert!(module.validate().is_ok(), "{:?}", module.validate());
    BuiltModule {
        module,
        bindings,
        max_stage,
    }
}

struct Builder<'a> {
    graph: &'a Graph,
    start_time: &'a [u32],
    read_latency: &'a dyn Fn(&OpKind) -> u32,
    module: Module,
    bindings: Vec<PortBinding>,
    /// Stage each LIL value first becomes available in.
    avail: HashMap<usize, u32>,
    /// (LIL value, stage) → net.
    nets: HashMap<(usize, u32), NetId>,
    /// stall_in net per stage.
    stall: HashMap<u32, NetId>,
    /// Cached inverted stall per stage (register clock enables).
    not_stall: HashMap<u32, NetId>,
    /// Interned constants (stage-independent).
    consts: HashMap<usize, NetId>,
    rom_ids: HashMap<String, usize>,
    max_stage: u32,
}

impl<'a> Builder<'a> {
    fn input_port(
        &mut self,
        signal: IfaceSignal,
        stage: u32,
        width: u32,
        in_spawn: bool,
    ) -> NetId {
        let name = format!("{}_{stage}", signal.stem());
        let port = self.module.add_port(&name, PortDir::Input, width);
        let net = self.module.add_net(Driver::Input { port }, width, &name);
        self.bindings.push(PortBinding {
            signal,
            stage,
            name,
            dir: PortDir::Input,
            width,
            in_spawn,
        });
        self.max_stage = self.max_stage.max(stage);
        net
    }

    fn output_port(
        &mut self,
        signal: IfaceSignal,
        stage: u32,
        net: NetId,
        in_spawn: bool,
    ) {
        let width = self.module.nets[net.0].width;
        let name = format!("{}_{stage}", signal.stem());
        let port = self.module.add_port(&name, PortDir::Output, width);
        self.module.connect_output(port, net);
        self.bindings.push(PortBinding {
            signal,
            stage,
            name,
            dir: PortDir::Output,
            width,
            in_spawn,
        });
        self.max_stage = self.max_stage.max(stage);
    }

    fn stall_net(&mut self, stage: u32) -> NetId {
        if let Some(&n) = self.stall.get(&stage) {
            return n;
        }
        let n = self.input_port(IfaceSignal::StallIn, stage, 1, false);
        self.stall.insert(stage, n);
        n
    }

    fn not_stall_net(&mut self, stage: u32) -> NetId {
        if let Some(&n) = self.not_stall.get(&stage) {
            return n;
        }
        let stall = self.stall_net(stage);
        let n = self.module.add_net(
            Driver::Comb {
                op: CombOp::Not,
                args: vec![stall],
                lo: 0,
            },
            1,
            "",
        );
        self.not_stall.insert(stage, n);
        n
    }

    fn const_net(&mut self, v: usize, c: &ApInt) -> NetId {
        if let Some(&n) = self.consts.get(&v) {
            return n;
        }
        let n = self
            .module
            .add_net(Driver::Const(c.clone()), c.width(), &format!("c{v}"));
        self.consts.insert(v, n);
        n
    }

    /// Returns the net carrying LIL value `v` in `stage`, inserting
    /// stallable pipeline registers as needed.
    fn value_in_stage(&mut self, v: ValueId, stage: u32) -> NetId {
        if let OpKind::Const(c) = &self.graph.ops[v.0].kind {
            let c = c.clone();
            return self.const_net(v.0, &c);
        }
        let base = *self.avail.get(&v.0).expect("value availability known");
        assert!(
            stage >= base,
            "value %{} needed in stage {stage} before it exists (stage {base})",
            v.0
        );
        if let Some(&n) = self.nets.get(&(v.0, stage)) {
            return n;
        }
        // Walk up from the last materialized stage.
        let mut cur_stage = stage - 1;
        while !self.nets.contains_key(&(v.0, cur_stage)) {
            cur_stage -= 1;
        }
        let mut net = self.nets[&(v.0, cur_stage)];
        let width = self.module.nets[net.0].width;
        for s in cur_stage..stage {
            let not_stall = self.not_stall_net(s);
            net = self.module.add_net(
                Driver::Reg {
                    next: net,
                    enable: Some(not_stall),
                    init: ApInt::zero(width),
                },
                width,
                &format!("pipe_{}_{}", v.0, s),
            );
            self.nets.insert((v.0, s + 1), net);
        }
        net
    }

    fn define(&mut self, v: ValueId, stage: u32, net: NetId) {
        self.avail.insert(v.0, stage);
        self.nets.insert((v.0, stage), net);
        self.max_stage = self.max_stage.max(stage);
    }

    fn run(&mut self) {
        for (v, op) in self.graph.iter() {
            let stage = self.start_time[v.0];
            let in_spawn = op.in_spawn;
            let pred_net = op.pred.map(|p| self.value_in_stage(p, stage));
            let operand_nets: Vec<NetId> = op
                .operands
                .iter()
                .map(|&o| self.value_in_stage(o, stage))
                .collect();
            match &op.kind {
                OpKind::Const(_) => { /* interned on demand */ }
                OpKind::InstrWord => {
                    let n = self.input_port(IfaceSignal::InstrWord, stage, 32, in_spawn);
                    self.define(v, stage, n);
                }
                OpKind::ReadRs1 | OpKind::ReadRs2 | OpKind::ReadPc => {
                    let sig = match op.kind {
                        OpKind::ReadRs1 => IfaceSignal::Rs1Data,
                        OpKind::ReadRs2 => IfaceSignal::Rs2Data,
                        _ => IfaceSignal::PcData,
                    };
                    let lat = (self.read_latency)(&op.kind);
                    let n = self.input_port(sig, stage + lat, 32, in_spawn);
                    self.define(v, stage + lat, n);
                }
                OpKind::ReadMem => {
                    self.output_port(IfaceSignal::MemRdAddr, stage, operand_nets[0], in_spawn);
                    let pred = pred_net.unwrap_or_else(|| {
                        self.module
                            .add_net(Driver::Const(ApInt::one(1)), 1, "true")
                    });
                    self.output_port(IfaceSignal::MemRdPred, stage, pred, in_spawn);
                    let lat = (self.read_latency)(&op.kind);
                    let n = self.input_port(IfaceSignal::MemRdData, stage + lat, 32, in_spawn);
                    self.define(v, stage + lat, n);
                }
                OpKind::ReadCustReg(name) => {
                    self.output_port(
                        IfaceSignal::CustRdAddr(name.clone()),
                        stage,
                        operand_nets[0],
                        in_spawn,
                    );
                    let lat = (self.read_latency)(&op.kind);
                    let n = self.input_port(
                        IfaceSignal::CustRdData(name.clone()),
                        stage + lat,
                        op.width,
                        in_spawn,
                    );
                    self.define(v, stage + lat, n);
                }
                OpKind::WriteRd => {
                    self.emit_write(
                        IfaceSignal::RdData,
                        IfaceSignal::RdPred,
                        stage,
                        operand_nets[0],
                        pred_net,
                        in_spawn,
                    );
                }
                OpKind::WritePc => {
                    self.emit_write(
                        IfaceSignal::PcWrData,
                        IfaceSignal::PcWrPred,
                        stage,
                        operand_nets[0],
                        pred_net,
                        in_spawn,
                    );
                }
                OpKind::WriteMem => {
                    self.output_port(IfaceSignal::MemWrAddr, stage, operand_nets[0], in_spawn);
                    self.emit_write(
                        IfaceSignal::MemWrData,
                        IfaceSignal::MemWrPred,
                        stage,
                        operand_nets[1],
                        pred_net,
                        in_spawn,
                    );
                }
                OpKind::WriteCustReg(name) => {
                    self.output_port(
                        IfaceSignal::CustWrAddr(name.clone()),
                        stage,
                        operand_nets[0],
                        in_spawn,
                    );
                    self.emit_write(
                        IfaceSignal::CustWrData(name.clone()),
                        IfaceSignal::CustWrPred(name.clone()),
                        stage,
                        operand_nets[1],
                        pred_net,
                        in_spawn,
                    );
                }
                OpKind::RomRead(name) => {
                    let rom = self.rom_ids[name];
                    let n = self.module.add_net(
                        Driver::Rom {
                            rom,
                            index: operand_nets[0],
                        },
                        op.width,
                        &format!("rom_{name}"),
                    );
                    self.define(v, stage, n);
                }
                OpKind::Sink => {}
                comb => {
                    let (comb_op, lo) = comb_op_of(comb);
                    let n = self.module.add_net(
                        Driver::Comb {
                            op: comb_op,
                            args: operand_nets,
                            lo,
                        },
                        op.width,
                        "",
                    );
                    self.define(v, stage, n);
                }
            }
        }
    }

    fn emit_write(
        &mut self,
        data_sig: IfaceSignal,
        pred_sig: IfaceSignal,
        stage: u32,
        data: NetId,
        pred: Option<NetId>,
        in_spawn: bool,
    ) {
        self.output_port(data_sig, stage, data, in_spawn);
        let pred = pred.unwrap_or_else(|| {
            self.module
                .add_net(Driver::Const(ApInt::one(1)), 1, "true")
        });
        self.output_port(pred_sig, stage, pred, in_spawn);
    }
}

fn comb_op_of(kind: &OpKind) -> (CombOp, u32) {
    match kind {
        OpKind::Add => (CombOp::Add, 0),
        OpKind::Sub => (CombOp::Sub, 0),
        OpKind::Mul => (CombOp::Mul, 0),
        OpKind::DivU => (CombOp::DivU, 0),
        OpKind::DivS => (CombOp::DivS, 0),
        OpKind::RemU => (CombOp::RemU, 0),
        OpKind::RemS => (CombOp::RemS, 0),
        OpKind::And => (CombOp::And, 0),
        OpKind::Or => (CombOp::Or, 0),
        OpKind::Xor => (CombOp::Xor, 0),
        OpKind::Not => (CombOp::Not, 0),
        OpKind::Shl => (CombOp::Shl, 0),
        OpKind::ShrU => (CombOp::ShrU, 0),
        OpKind::ShrS => (CombOp::ShrS, 0),
        OpKind::Eq => (CombOp::Eq, 0),
        OpKind::Ne => (CombOp::Ne, 0),
        OpKind::Ult => (CombOp::Ult, 0),
        OpKind::Ule => (CombOp::Ule, 0),
        OpKind::Slt => (CombOp::Slt, 0),
        OpKind::Sle => (CombOp::Sle, 0),
        OpKind::Mux => (CombOp::Mux, 0),
        OpKind::Concat => (CombOp::Concat, 0),
        OpKind::Replicate(n) => (CombOp::Replicate, *n),
        OpKind::ExtractConst { lo } => (CombOp::Extract, *lo),
        OpKind::ExtractDyn => (CombOp::ExtractDyn, 0),
        OpKind::ZExt => (CombOp::ZExt, 0),
        OpKind::SExt => (CombOp::SExt, 0),
        OpKind::Trunc => (CombOp::Trunc, 0),
        other => unreachable!("not a combinational op: {other:?}"),
    }
}
