//! A dependency-free scoped thread pool for embarrassingly parallel,
//! deterministically ordered work.
//!
//! The workspace is offline (no rayon), so this crate hand-rolls the one
//! pattern the compile matrix needs: run `f(0..jobs)` across up to
//! `workers` OS threads and hand the results back **in index order**,
//! regardless of which worker finished which job when. Work distribution
//! is self-scheduling: every worker repeatedly claims the next unclaimed
//! index from a shared atomic counter, so a slow job (one big ISAX ILP)
//! never stalls the queue behind it the way static chunking would.
//!
//! Determinism contract: [`Pool::run`] returns `results[i] == f(i)` for
//! every `i`, merged by index — never by completion order. Callers that
//! record per-job artifacts (traces, Verilog, diagnostics) therefore see
//! identical output for any worker count, provided `f` itself is
//! deterministic per index.
//!
//! Panic semantics: a panic inside `f` is forwarded to the caller after
//! all workers have stopped claiming work, like `std::thread::scope`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// A fixed-width scoped thread pool.
///
/// The pool is a value, not a resource: threads are spawned per
/// [`Pool::run`] call inside a [`std::thread::scope`] and joined before it
/// returns, so borrowed data (`&self` compilers, caches) flows into the
/// closure without `'static` bounds.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// Creates a pool that runs at most `workers` jobs concurrently.
    /// A worker count of 0 is clamped to 1.
    pub fn new(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
        }
    }

    /// Concurrency width this pool was created with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(i)` for every `i in 0..jobs` and returns the results in
    /// index order.
    ///
    /// With a single worker (or at most one job) everything runs inline on
    /// the calling thread — no threads are spawned, so the serial path is
    /// byte-for-byte the sequential loop.
    ///
    /// # Panics
    ///
    /// Re-raises the first observed panic from `f` after all workers have
    /// drained.
    pub fn run<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers == 1 || jobs <= 1 {
            return (0..jobs).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let threads = self.workers.min(jobs);
        let worker_outputs: Vec<WorkerOutput<T>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut claimed: Vec<(usize, T)> = Vec::new();
                        let mut panic = None;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= jobs {
                                break;
                            }
                            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                                Ok(v) => claimed.push((i, v)),
                                Err(p) => {
                                    // Stop the whole pool: park the queue
                                    // past the end so peers drain quickly.
                                    next.store(jobs, Ordering::Relaxed);
                                    panic = Some(p);
                                    break;
                                }
                            }
                        }
                        WorkerOutput { claimed, panic }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker thread itself panicked"))
                .collect()
        });
        // Merge by stable job index, never by completion order.
        let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
        let mut first_panic = None;
        for out in worker_outputs {
            for (i, v) in out.claimed {
                debug_assert!(slots[i].is_none(), "job {i} ran twice");
                slots[i] = Some(v);
            }
            if first_panic.is_none() {
                first_panic = out.panic;
            }
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("job {i} was never claimed")))
            .collect()
    }
}

struct WorkerOutput<T> {
    claimed: Vec<(usize, T)>,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Convenience wrapper: `run_indexed(jobs, workers, f)` ==
/// `Pool::new(workers).run(jobs, f)`.
pub fn run_indexed<T, F>(jobs: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    Pool::new(workers).run(jobs, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 3, 8] {
            let got = Pool::new(workers).run(37, |i| i * i);
            let want: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, want, "workers = {workers}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        Pool::new(4).run(100, |i| {
            ran[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, r) in ran.iter().enumerate() {
            assert_eq!(r.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn zero_jobs_and_zero_workers_are_fine() {
        assert!(Pool::new(0).run(0, |i| i).is_empty());
        assert_eq!(Pool::new(0).workers(), 1);
        assert_eq!(Pool::new(3).run(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn single_worker_runs_inline_on_the_caller_thread() {
        let caller = std::thread::current().id();
        let ids = Pool::new(1).run(5, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn work_is_shared_when_a_job_blocks() {
        // One deliberately slow job must not prevent other workers from
        // draining the rest of the queue (self-scheduling, not chunking).
        let slow_started = AtomicBool::new(false);
        let done_while_slow = AtomicUsize::new(0);
        Pool::new(2).run(16, |i| {
            if i == 0 {
                slow_started.store(true, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(30));
            } else if slow_started.load(Ordering::SeqCst) {
                done_while_slow.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(done_while_slow.load(Ordering::SeqCst) > 0);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(3).run(10, |i| {
                if i == 4 {
                    panic!("job four exploded");
                }
                i
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("job four exploded"), "{msg}");
    }

    #[test]
    fn borrows_non_static_state() {
        let log = Mutex::new(Vec::new());
        let doubled = Pool::new(2).run(8, |i| {
            log.lock().unwrap().push(i);
            i * 2
        });
        assert_eq!(doubled, (0..8).map(|i| i * 2).collect::<Vec<_>>());
        let mut seen = log.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }
}
