//! The netlist data structures: a flat, SSA-like module representation in
//! which every net has exactly one driver.

use bits::ApInt;

/// Identifies a net within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub usize);

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    Input,
    Output,
}

/// A module port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    pub name: String,
    pub dir: PortDir,
    pub width: u32,
}

/// Combinational operators (the `comb` dialect subset used by Longnail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombOp {
    Add,
    Sub,
    Mul,
    DivU,
    DivS,
    RemU,
    RemS,
    And,
    Or,
    Xor,
    Not,
    Shl,
    ShrU,
    ShrS,
    Eq,
    Ne,
    Ult,
    Ule,
    Slt,
    Sle,
    /// args: cond, then, else.
    Mux,
    /// args: hi, lo.
    Concat,
    Replicate,
    /// Static slice; `lo` carried in the driver.
    Extract,
    /// args: base, offset — `(base >> offset)[width-1:0]`.
    ExtractDyn,
    ZExt,
    SExt,
    Trunc,
}

/// What drives a net.
#[derive(Debug, Clone, PartialEq)]
pub enum Driver {
    /// Value of the input port with this index.
    Input { port: usize },
    /// Constant.
    Const(ApInt),
    /// Combinational operator. `lo` is the offset for [`CombOp::Extract`]
    /// and the replication count for [`CombOp::Replicate`]; 0 otherwise.
    Comb {
        op: CombOp,
        args: Vec<NetId>,
        lo: u32,
    },
    /// Clocked register: latches `next` at the clock edge when `enable`
    /// (default true) holds; resets to `init`.
    Reg {
        next: NetId,
        enable: Option<NetId>,
        init: ApInt,
    },
    /// Combinational read of the module-internal ROM `rom` at `index`
    /// (out-of-range indices read zero).
    Rom { rom: usize, index: NetId },
}

/// A net: a driver plus its bit width.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    pub driver: Driver,
    pub width: u32,
    /// Debug name used by the Verilog emitter (may be empty).
    pub name: String,
}

/// An internalized constant table.
#[derive(Debug, Clone, PartialEq)]
pub struct RomData {
    pub name: String,
    pub width: u32,
    pub contents: Vec<ApInt>,
}

/// A hardware module.
#[derive(Debug, Clone, Default)]
pub struct Module {
    pub name: String,
    pub ports: Vec<Port>,
    pub nets: Vec<Net>,
    /// Output port index → net driving it.
    pub outputs: Vec<(usize, NetId)>,
    pub roms: Vec<RomData>,
}

impl Module {
    /// Creates an empty module (with no clock — add ports explicitly).
    pub fn new(name: &str) -> Self {
        Module {
            name: name.to_string(),
            ..Module::default()
        }
    }

    /// Adds a port, returning its index.
    pub fn add_port(&mut self, name: &str, dir: PortDir, width: u32) -> usize {
        self.ports.push(Port {
            name: name.to_string(),
            dir,
            width,
        });
        self.ports.len() - 1
    }

    /// Adds a net, returning its id.
    pub fn add_net(&mut self, driver: Driver, width: u32, name: &str) -> NetId {
        self.nets.push(Net {
            driver,
            width,
            name: name.to_string(),
        });
        NetId(self.nets.len() - 1)
    }

    /// Connects an output port to its driving net.
    pub fn connect_output(&mut self, port: usize, net: NetId) {
        debug_assert_eq!(self.ports[port].dir, PortDir::Output);
        self.outputs.push((port, net));
    }

    /// Port index by name.
    pub fn port(&self, name: &str) -> Option<usize> {
        self.ports.iter().position(|p| p.name == name)
    }

    /// Number of clocked register bits (used by the area model).
    pub fn register_bits(&self) -> u64 {
        self.nets
            .iter()
            .filter(|n| matches!(n.driver, Driver::Reg { .. }))
            .map(|n| n.width as u64)
            .sum()
    }

    /// Checks structural sanity: operand nets exist, output ports are
    /// connected exactly once, register `next` references are in range.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.nets.len();
        for (i, net) in self.nets.iter().enumerate() {
            match &net.driver {
                Driver::Input { port } => {
                    if *port >= self.ports.len() || self.ports[*port].dir != PortDir::Input {
                        return Err(format!("net {i} reads a non-input port"));
                    }
                    if self.ports[*port].width != net.width {
                        return Err(format!("net {i} width differs from its port"));
                    }
                }
                Driver::Const(c) => {
                    if c.width() != net.width {
                        return Err(format!("net {i} constant width mismatch"));
                    }
                }
                Driver::Comb { args, .. } => {
                    for a in args {
                        if a.0 >= n {
                            return Err(format!("net {i} references unknown net {}", a.0));
                        }
                        // Combinational operand must come earlier (no comb loops).
                        if a.0 >= i {
                            return Err(format!("net {i} has a combinational cycle"));
                        }
                    }
                }
                Driver::Reg { next, enable, .. } => {
                    if next.0 >= n || enable.map(|e| e.0 >= n).unwrap_or(false) {
                        return Err(format!("net {i} register references unknown net"));
                    }
                }
                Driver::Rom { rom, index } => {
                    if *rom >= self.roms.len() || index.0 >= i {
                        return Err(format!("net {i} ROM reference invalid"));
                    }
                }
            }
        }
        let mut seen = vec![false; self.ports.len()];
        for (port, net) in &self.outputs {
            if self.ports[*port].dir != PortDir::Output {
                return Err(format!("output connection to non-output port {port}"));
            }
            if seen[*port] {
                return Err(format!("output port {port} driven twice"));
            }
            seen[*port] = true;
            if net.0 >= n {
                return Err(format!("output port {port} driven by unknown net"));
            }
        }
        for (i, p) in self.ports.iter().enumerate() {
            if p.dir == PortDir::Output && !seen[i] {
                return Err(format!("output port `{}` is undriven", p.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate_tiny_module() {
        let mut m = Module::new("t");
        let a = m.add_port("a", PortDir::Input, 8);
        let b = m.add_port("b", PortDir::Input, 8);
        let o = m.add_port("o", PortDir::Output, 8);
        let na = m.add_net(Driver::Input { port: a }, 8, "a");
        let nb = m.add_net(Driver::Input { port: b }, 8, "b");
        let sum = m.add_net(
            Driver::Comb {
                op: CombOp::Add,
                args: vec![na, nb],
                lo: 0,
            },
            8,
            "sum",
        );
        m.connect_output(o, sum);
        m.validate().unwrap();
        assert_eq!(m.register_bits(), 0);
    }

    #[test]
    fn undriven_output_is_rejected() {
        let mut m = Module::new("t");
        m.add_port("o", PortDir::Output, 1);
        assert!(m.validate().is_err());
    }

    #[test]
    fn combinational_cycle_is_rejected() {
        let mut m = Module::new("t");
        let o = m.add_port("o", PortDir::Output, 1);
        // net 0 references itself.
        let n = m.add_net(
            Driver::Comb {
                op: CombOp::Not,
                args: vec![NetId(0)],
                lo: 0,
            },
            1,
            "loop",
        );
        m.connect_output(o, n);
        assert!(m.validate().is_err());
    }

    #[test]
    fn register_bits_counted() {
        let mut m = Module::new("t");
        let a = m.add_port("a", PortDir::Input, 16);
        let o = m.add_port("o", PortDir::Output, 16);
        let na = m.add_net(Driver::Input { port: a }, 16, "a");
        let r = m.add_net(
            Driver::Reg {
                next: na,
                enable: None,
                init: bits::ApInt::zero(16),
            },
            16,
            "r",
        );
        m.connect_output(o, r);
        m.validate().unwrap();
        assert_eq!(m.register_bits(), 16);
    }
}
