/root/repo/target/debug/deps/cores-b128820fe4dbde00.d: crates/cores/src/lib.rs crates/cores/src/descriptor.rs crates/cores/src/exec.rs Cargo.toml

/root/repo/target/debug/deps/libcores-b128820fe4dbde00.rmeta: crates/cores/src/lib.rs crates/cores/src/descriptor.rs crates/cores/src/exec.rs Cargo.toml

crates/cores/src/lib.rs:
crates/cores/src/descriptor.rs:
crates/cores/src/exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
