/root/repo/target/debug/deps/fig8_zol_config-d67febffd0aeb26d.d: crates/bench/benches/fig8_zol_config.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_zol_config-d67febffd0aeb26d.rmeta: crates/bench/benches/fig8_zol_config.rs Cargo.toml

crates/bench/benches/fig8_zol_config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
