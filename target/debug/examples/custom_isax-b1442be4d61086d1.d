/root/repo/target/debug/examples/custom_isax-b1442be4d61086d1.d: examples/custom_isax.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_isax-b1442be4d61086d1.rmeta: examples/custom_isax.rs Cargo.toml

examples/custom_isax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
