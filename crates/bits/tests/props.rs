//! Property-based tests: `ApInt` semantics against native integer
//! references at machine widths, and algebraic laws at wide widths.

use bits::ApInt;
use proptest::prelude::*;

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn to_signed(v: u64, width: u32) -> i64 {
    let m = mask(width);
    let v = v & m;
    if width < 64 && v >> (width - 1) & 1 == 1 {
        (v | !m) as i64
    } else {
        v as i64
    }
}

proptest! {
    #[test]
    fn add_sub_mul_match_native(a: u64, b: u64, width in 1u32..=64) {
        let (am, bm) = (a & mask(width), b & mask(width));
        let x = ApInt::from_u64(am, width);
        let y = ApInt::from_u64(bm, width);
        prop_assert_eq!(x.add(&y).to_u64(), am.wrapping_add(bm) & mask(width));
        prop_assert_eq!(x.sub(&y).to_u64(), am.wrapping_sub(bm) & mask(width));
        prop_assert_eq!(x.mul(&y).to_u64(), am.wrapping_mul(bm) & mask(width));
    }

    #[test]
    fn unsigned_division_matches_native(a: u64, b: u64, width in 1u32..=64) {
        let (am, bm) = (a & mask(width), b & mask(width));
        prop_assume!(bm != 0);
        let x = ApInt::from_u64(am, width);
        let y = ApInt::from_u64(bm, width);
        prop_assert_eq!(x.udiv(&y).to_u64(), am / bm);
        prop_assert_eq!(x.urem(&y).to_u64(), am % bm);
    }

    #[test]
    fn signed_division_matches_native(a: u64, b: u64, width in 2u32..=63) {
        let (am, bm) = (a & mask(width), b & mask(width));
        let (asig, bsig) = (to_signed(am, width), to_signed(bm, width));
        prop_assume!(bsig != 0);
        let x = ApInt::from_u64(am, width);
        let y = ApInt::from_u64(bm, width);
        // The quotient wraps at the operand width (MIN / -1 overflows, as
        // in hardware), so reduce the i64 reference to the same width.
        let expect_div = to_signed(asig.wrapping_div(bsig) as u64, width);
        let expect_rem = to_signed(asig.wrapping_rem(bsig) as u64, width);
        prop_assert_eq!(x.sdiv(&y).to_i64(), expect_div);
        prop_assert_eq!(x.srem(&y).to_i64(), expect_rem);
    }

    #[test]
    fn shifts_match_native(a: u64, amount in 0u32..80, width in 1u32..=64) {
        let am = a & mask(width);
        let x = ApInt::from_u64(am, width);
        let amt = ApInt::from_u64(amount as u64, 8);
        let expected_shl = if amount >= width { 0 } else { (am << amount) & mask(width) };
        prop_assert_eq!(x.shl(&amt).to_u64(), expected_shl);
        let expected_lshr = if amount >= width { 0 } else { am >> amount };
        prop_assert_eq!(x.lshr(&amt).to_u64(), expected_lshr);
        let sig = to_signed(am, width);
        let expected_ashr = if amount >= width {
            if sig < 0 { mask(width) } else { 0 }
        } else {
            ((sig >> amount) as u64) & mask(width)
        };
        prop_assert_eq!(x.ashr(&amt).to_u64(), expected_ashr);
    }

    #[test]
    fn comparisons_match_native(a: u64, b: u64, width in 1u32..=64) {
        let (am, bm) = (a & mask(width), b & mask(width));
        let x = ApInt::from_u64(am, width);
        let y = ApInt::from_u64(bm, width);
        prop_assert_eq!(x.ult(&y), am < bm);
        prop_assert_eq!(x.ule(&y), am <= bm);
        prop_assert_eq!(x.slt(&y), to_signed(am, width) < to_signed(bm, width));
        prop_assert_eq!(x.sle(&y), to_signed(am, width) <= to_signed(bm, width));
    }

    #[test]
    fn concat_extract_roundtrip(a: u64, b: u64, wa in 1u32..=32, wb in 1u32..=32) {
        let x = ApInt::from_u64(a & mask(wa), wa);
        let y = ApInt::from_u64(b & mask(wb), wb);
        let joined = x.concat(&y);
        prop_assert_eq!(joined.width(), wa + wb);
        prop_assert_eq!(joined.extract(wb, wa), x);
        prop_assert_eq!(joined.extract(0, wb), y);
    }

    #[test]
    fn extension_preserves_value(a: u64, width in 1u32..=64, extra in 0u32..=128) {
        let am = a & mask(width);
        let x = ApInt::from_u64(am, width);
        prop_assert_eq!(x.zext(width + extra).trunc(width), x.clone());
        prop_assert_eq!(x.sext(width + extra).trunc(width), x.clone());
        prop_assert_eq!(x.sext(width + extra).to_i64(), to_signed(am, width));
    }

    #[test]
    fn wide_arithmetic_laws(a: u64, b: u64, c: u64) {
        // Associativity/commutativity at a width no native type covers.
        let width = 200;
        let x = ApInt::from_u64(a, width);
        let y = ApInt::from_u64(b, width);
        let z = ApInt::from_u64(c, width);
        prop_assert_eq!(x.add(&y).add(&z), x.add(&y.add(&z)));
        prop_assert_eq!(x.mul(&y), y.mul(&x));
        prop_assert_eq!(x.mul(&y.add(&z)), x.mul(&y).add(&x.mul(&z)));
        // Division identity: a = q*b + r with r < b.
        if !y.is_zero() {
            let q = x.udiv(&y);
            let r = x.urem(&y);
            prop_assert!(r.ult(&y));
            prop_assert_eq!(q.mul(&y).add(&r), x);
        }
    }

    #[test]
    fn decimal_string_roundtrip(a: u64, b: u64) {
        // Build a 128-bit value from two limbs and round-trip via decimal.
        let v = ApInt::from_u64(a, 64).concat(&ApInt::from_u64(b, 64));
        let s = v.to_dec_string();
        let back = ApInt::from_str_radix(&s, 10, 128).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn neg_is_additive_inverse(a: u64, width in 1u32..=64) {
        let x = ApInt::from_u64(a & mask(width), width);
        prop_assert!(x.add(&x.neg()).is_zero());
        prop_assert_eq!(x.neg().neg(), x);
    }
}
