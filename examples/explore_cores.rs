//! Portability exploration: compile the long-running CORDIC-style square
//! root for all four host cores and compare how the core-aware scheduler
//! adapts — pipeline depth, execution-mode selection, and estimated ASIC
//! cost (paper §3.2, §5.4).
//!
//! ```sh
//! cargo run --example explore_cores
//! ```

use eda::report::IsaxInput;
use eda::{evaluate_integration, CoreAsicProfile, TechLibrary};
use longnail::driver::{builtin_datasheet, EVAL_CORES};
use longnail::isax_lib;
use longnail::Longnail;
use scaiev::integrate::size_interface_logic;
use scaiev::modes::ExecutionMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ln = Longnail::new();
    let lib = TechLibrary::new();
    println!("the sqrt ISAX (32 unrolled digit-recurrence iterations) across cores:\n");
    println!(
        "{:<10} {:>7} {:>8} {:>18} {:>12} {:>10} {:>9}",
        "core", "stages", "budget", "mode", "module µm²", "area ovh", "fmax Δ"
    );
    for core in EVAL_CORES {
        let ds = builtin_datasheet(core).expect("bundled core");
        for variant in ["sqrt_tightly", "sqrt_decoupled"] {
            let (unit, src) = isax_lib::isax_source(variant).expect("bundled ISAX");
            let compiled = ln.compile(&src, &unit, &ds)?;
            let g = compiled.graph("sqrt").expect("compiled instruction");
            let profile = CoreAsicProfile::for_core(core).expect("profile");
            let iface = size_interface_logic(
                std::slice::from_ref(&compiled.config),
                &ds,
                true,
            );
            let report = evaluate_integration(
                &lib,
                &profile,
                &[IsaxInput {
                    module: &g.built.module,
                    on_forwarding_path: core == "ORCA" && g.mode != ExecutionMode::Decoupled,
                    registered_commit: g.mode == ExecutionMode::Decoupled,
                }],
                &iface,
            );
            println!(
                "{:<10} {:>7} {:>8.1} {:>18} {:>12.0} {:>9.0} % {:>8.1} %",
                if variant == "sqrt_tightly" { core } else { "" },
                g.max_stage,
                ds.clock_ns / longnail::driver::UNIT_NS,
                g.mode.to_string(),
                eda::area::module_area(&lib, &g.built.module).total(),
                report.area_overhead_pct(),
                report.fmax_delta_pct(),
            );
        }
    }
    println!(
        "\nThe slower the core clock, the more logic levels fit per stage \
         (the `budget` column), so Piccolo absorbs the whole computation in \
         a handful of stages while PicoRV32 pipelines it deeply. Both sqrt \
         variants exceed every pipeline length, so the flow selects the \
         tightly-coupled or (with `spawn`) the decoupled interface variant."
    );
    Ok(())
}
