//! Host-core models: the four open-source embedded RISC-V cores of the
//! evaluation (paper §5.2) with SCAIE-V ISAX integration.
//!
//! * [`descriptor`] — microarchitectural descriptors: pipeline shape
//!   (5-stage ORCA/VexRiscv, 3-stage Piccolo, FSM-sequenced PicoRV32) and
//!   the timing parameters of the cycle model,
//! * [`exec`] — the [`exec::ExtendedCore`]: executes RV32I programs with
//!   integrated ISAXes, modeling per-instruction cycle costs, execution
//!   modes (in-pipeline / tightly-coupled / decoupled with scoreboard
//!   stalls), `always`-blocks evaluated every retired instruction, and
//!   SCAIE-V arbitration. Architectural ISAX semantics come from
//!   evaluating the *compiled* LIL graphs — i.e. the same data-flow the
//!   generated hardware implements (differentially tested against the RTL
//!   netlist interpreter and the golden model).

pub mod descriptor;
pub mod exec;

pub use descriptor::{descriptor, CoreDescriptor, CoreKind};
pub use exec::ExtendedCore;
