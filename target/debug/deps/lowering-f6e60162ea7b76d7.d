/root/repo/target/debug/deps/lowering-f6e60162ea7b76d7.d: crates/ir/tests/lowering.rs

/root/repo/target/debug/deps/lowering-f6e60162ea7b76d7: crates/ir/tests/lowering.rs

crates/ir/tests/lowering.rs:
