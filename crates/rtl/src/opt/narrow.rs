//! Bitwidth narrowing driven by the value/known planes of [`crate::xsim`].
//!
//! The pass abstractly evaluates the module once with every input,
//! register, and dynamic ROM read held all-X and constants fully known,
//! using the exact four-state operator semantics of the simulator. Every
//! operator is monotone under refinement (turning an input X bit into a
//! value never changes an already-known output bit), so any bit that
//! comes out *known* in this evaluation holds that value under every
//! concrete stimulus and register state. Three rewrites follow:
//!
//! * a combinational or ROM net whose abstract value is fully known is a
//!   constant,
//! * `Add`/`Mul`/`And`/`Or`/`Xor` whose operands provably fit in `t < w`
//!   bits (counting top known-zero bits, with a carry bit for `Add` and
//!   the width sum for `Mul`) are re-emitted at width `t` behind `Trunc`s
//!   and the result `ZExt`-patched back to `w` — extends and truncates
//!   are free wiring in the area model while adder/multiplier area scales
//!   with width,
//! * `SExt` whose source sign bit is provably zero becomes `ZExt`.
//!
//! Narrowing strictly shrinks the computed width each time it fires, so
//! the fixpoint terminates. The pass inserts nets and therefore rebuilds
//! the module like [`super::strength`].

use super::as_const;
use crate::netlist::{CombOp, Driver, Module, Net, NetId};
use crate::verilog::EmitOptions;
use crate::xsim::{eval_comb, XVal};
use bits::ApInt;

/// Abstract per-net values: all-X at the boundary, exact everywhere else.
fn abstract_eval(m: &Module, opts: &EmitOptions) -> Vec<XVal> {
    let mut vals: Vec<XVal> = Vec::with_capacity(m.nets.len());
    for net in &m.nets {
        let v = match &net.driver {
            Driver::Input { .. } | Driver::Reg { .. } => XVal::all_x(net.width),
            Driver::Const(c) => XVal::known(c.clone()),
            Driver::Rom { rom, index } => {
                let table = &m.roms[*rom];
                match vals[index.0].as_known() {
                    Some(idx) => {
                        let word = idx
                            .try_to_u64()
                            .and_then(|v| usize::try_from(v).ok())
                            .and_then(|k| table.contents.get(k))
                            .cloned()
                            .unwrap_or_else(|| ApInt::zero(table.width));
                        XVal::known(word)
                    }
                    None => XVal::all_x(net.width),
                }
            }
            Driver::Comb { op, args, lo } => {
                eval_comb(*op, |k| &vals[args[k].0], *lo, net.width, opts)
            }
        };
        vals.push(v);
    }
    vals
}

/// Number of low bits that can carry information: width minus the run of
/// top bits known to be zero.
fn live_width(v: &XVal) -> u32 {
    let mut w = v.width();
    while w > 0 && v.known_plane().bit(w - 1) && !v.value_plane().bit(w - 1) {
        w -= 1;
    }
    w
}

enum Rewrite {
    Const(ApInt),
    Narrow(CombOp, NetId, NetId, u32),
    ZeroSignExtend(NetId),
}

fn analyze(m: &Module, vals: &[XVal], i: usize) -> Option<Rewrite> {
    let net = &m.nets[i];
    let w = net.width;
    if w == 0 {
        return None;
    }
    match &net.driver {
        Driver::Comb { op, args, .. } => {
            if vals[i].is_fully_known() {
                return Some(Rewrite::Const(vals[i].value_plane().clone()));
            }
            match op {
                CombOp::Add | CombOp::Mul | CombOp::And | CombOp::Or | CombOp::Xor
                    if args.len() == 2 =>
                {
                    let (a, b) = (args[0], args[1]);
                    if m.nets[a.0].width != w || m.nets[b.0].width != w {
                        return None;
                    }
                    let (ua, ub) = (live_width(&vals[a.0]), live_width(&vals[b.0]));
                    let t = match op {
                        CombOp::Add => ua.max(ub).saturating_add(1),
                        CombOp::Mul => ua.saturating_add(ub),
                        _ => ua.max(ub),
                    }
                    .max(1);
                    (t < w).then_some(Rewrite::Narrow(*op, a, b, t))
                }
                CombOp::SExt if args.len() == 1 => {
                    let src = &vals[args[0].0];
                    let sw = src.width();
                    let sign_zero = sw > 0
                        && sw < w
                        && src.known_plane().bit(sw - 1)
                        && !src.value_plane().bit(sw - 1);
                    sign_zero.then_some(Rewrite::ZeroSignExtend(args[0]))
                }
                _ => None,
            }
        }
        Driver::Rom { .. } => vals[i]
            .is_fully_known()
            .then(|| Rewrite::Const(vals[i].value_plane().clone())),
        _ => None,
    }
}

pub(super) fn run(m: &Module, opts: &EmitOptions) -> Option<(Module, u64)> {
    // The abstract evaluation (and the rewrites) assume lint-clean width
    // discipline; bail out rather than evaluate a malformed module.
    if crate::lint::lint_module(m).is_err() {
        return None;
    }
    let vals = abstract_eval(m, opts);
    let rewrites: Vec<Option<Rewrite>> = (0..m.nets.len())
        .map(|i| {
            analyze(m, &vals, i).filter(|r| {
                // Re-writing a constant to the same constant is no progress.
                !matches!(r, Rewrite::Const(c) if as_const(m, NetId(i)) == Some(c))
            })
        })
        .collect();
    if rewrites.iter().all(Option::is_none) {
        return None;
    }
    let mut out = Module {
        name: m.name.clone(),
        ports: m.ports.clone(),
        nets: Vec::with_capacity(m.nets.len()),
        outputs: Vec::new(),
        roms: m.roms.clone(),
    };
    let mut map = vec![NetId(0); m.nets.len()];
    let mut count = 0u64;
    for (i, net) in m.nets.iter().enumerate() {
        let w = net.width;
        let name = &net.name;
        map[i] = match &rewrites[i] {
            Some(Rewrite::Const(c)) => {
                count += 1;
                push(&mut out, Driver::Const(c.clone()), w, name)
            }
            Some(Rewrite::Narrow(op, a, b, t)) => {
                count += 1;
                let ta = push(&mut out, comb(CombOp::Trunc, vec![map[a.0]], 0), *t, name);
                let tb = push(&mut out, comb(CombOp::Trunc, vec![map[b.0]], 0), *t, name);
                let narrow = push(&mut out, comb(*op, vec![ta, tb], 0), *t, name);
                push(&mut out, comb(CombOp::ZExt, vec![narrow], 0), w, name)
            }
            Some(Rewrite::ZeroSignExtend(src)) => {
                count += 1;
                push(&mut out, comb(CombOp::ZExt, vec![map[src.0]], 0), w, name)
            }
            None => {
                let mut d = net.driver.clone();
                match &mut d {
                    Driver::Comb { args, .. } => {
                        for a in args.iter_mut() {
                            *a = map[a.0];
                        }
                    }
                    Driver::Rom { index, .. } => *index = map[index.0],
                    Driver::Reg { .. } | Driver::Input { .. } | Driver::Const(_) => {}
                }
                push(&mut out, d, w, name)
            }
        };
    }
    for net in &mut out.nets {
        if let Driver::Reg { next, enable, .. } = &mut net.driver {
            *next = map[next.0];
            if let Some(e) = enable {
                *e = map[e.0];
            }
        }
    }
    out.outputs = m.outputs.iter().map(|&(p, n)| (p, map[n.0])).collect();
    Some((out, count))
}

fn comb(op: CombOp, args: Vec<NetId>, lo: u32) -> Driver {
    Driver::Comb { op, args, lo }
}

fn push(out: &mut Module, driver: Driver, width: u32, name: &str) -> NetId {
    out.nets.push(Net {
        driver,
        width,
        name: name.to_string(),
    });
    NetId(out.nets.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::PortDir;

    /// Two 8-bit inputs zero-extended to 32, then added/multiplied at 32.
    fn wide_module(op: CombOp) -> Module {
        let mut m = Module::new("t");
        let a = m.add_port("a", PortDir::Input, 8);
        let b = m.add_port("b", PortDir::Input, 8);
        let o = m.add_port("o", PortDir::Output, 32);
        let na = m.add_net(Driver::Input { port: a }, 8, "a");
        let nb = m.add_net(Driver::Input { port: b }, 8, "b");
        let wa = m.add_net(comb(CombOp::ZExt, vec![na], 0), 32, "wa");
        let wb = m.add_net(comb(CombOp::ZExt, vec![nb], 0), 32, "wb");
        let r = m.add_net(comb(op, vec![wa, wb], 0), 32, "r");
        m.connect_output(o, r);
        m
    }

    #[test]
    fn wide_ops_on_narrow_data_shrink() {
        for (op, expect) in [(CombOp::Add, 9), (CombOp::Mul, 16), (CombOp::Xor, 8)] {
            let m = wide_module(op);
            let (narrowed, count) = run(&m, &EmitOptions::default()).unwrap();
            assert_eq!(count, 1, "{op:?}");
            narrowed.validate().unwrap();
            crate::lint::lint_module(&narrowed).unwrap();
            let found = narrowed
                .nets
                .iter()
                .find(|n| matches!(&n.driver, Driver::Comb { op: x, .. } if *x == op))
                .unwrap_or_else(|| panic!("{op:?} missing"));
            assert_eq!(found.width, expect, "{op:?}");
            super::super::verify_equivalent(&m, &narrowed, &EmitOptions::default(), 24).unwrap();
        }
    }

    #[test]
    fn masked_constants_fold_through_the_planes() {
        // x & 0 is fully known even though x is an input.
        let mut m = Module::new("t");
        let a = m.add_port("a", PortDir::Input, 8);
        let o = m.add_port("o", PortDir::Output, 8);
        let na = m.add_net(Driver::Input { port: a }, 8, "a");
        let zero = m.add_net(Driver::Const(ApInt::zero(8)), 8, "z");
        let and = m.add_net(comb(CombOp::And, vec![na, zero], 0), 8, "and");
        m.connect_output(o, and);
        let (narrowed, count) = run(&m, &EmitOptions::default()).unwrap();
        assert_eq!(count, 1);
        assert_eq!(
            narrowed.nets[and.0].driver,
            Driver::Const(ApInt::zero(8))
        );
    }

    #[test]
    fn sext_of_provably_positive_value_becomes_zext() {
        let mut m = Module::new("t");
        let a = m.add_port("a", PortDir::Input, 8);
        let o = m.add_port("o", PortDir::Output, 16);
        let na = m.add_net(Driver::Input { port: a }, 8, "a");
        // ZExt pads known zeros, so the 12-bit value has a known-zero sign.
        let pad = m.add_net(comb(CombOp::ZExt, vec![na], 0), 12, "pad");
        let sx = m.add_net(comb(CombOp::SExt, vec![pad], 0), 16, "sx");
        m.connect_output(o, sx);
        let (narrowed, _) = run(&m, &EmitOptions::default()).unwrap();
        assert!(
            matches!(
                &narrowed.nets[sx.0].driver,
                Driver::Comb { op: CombOp::ZExt, .. }
            ),
            "{:?}",
            narrowed.nets[sx.0].driver
        );
        super::super::verify_equivalent(&m, &narrowed, &EmitOptions::default(), 24).unwrap();
    }

    #[test]
    fn already_tight_ops_are_untouched() {
        let mut m = Module::new("t");
        let a = m.add_port("a", PortDir::Input, 8);
        let b = m.add_port("b", PortDir::Input, 8);
        let o = m.add_port("o", PortDir::Output, 8);
        let na = m.add_net(Driver::Input { port: a }, 8, "a");
        let nb = m.add_net(Driver::Input { port: b }, 8, "b");
        let x = m.add_net(comb(CombOp::Xor, vec![na, nb], 0), 8, "x");
        m.connect_output(o, x);
        assert!(run(&m, &EmitOptions::default()).is_none());
    }
}
