/root/repo/target/debug/deps/timing-c627404faafbbc72.d: crates/cores/tests/timing.rs

/root/repo/target/debug/deps/timing-c627404faafbbc72: crates/cores/tests/timing.rs

crates/cores/tests/timing.rs:
