//! Strength reduction: `Mul`/`DivU`/`RemU` by constant powers of two.
//!
//! In the area model a `w`-bit multiplier costs `O(w²)` gate equivalents
//! and a divider ~6× that, while `Extract`/`Concat`/`ZExt` are free wiring
//! — so a power-of-two operand turns real arithmetic into wires:
//!
//! * `a * 2^k  → Concat(a[w-k-1:0], 0…0)`   (shift left by wiring)
//! * `a / 2^k  → ZExt(a[w-1:k])`            (shift right by wiring)
//! * `a % 2^k  → ZExt(a[k-1:0])`            (mask by wiring)
//!
//! `k = 0` (multiply/divide by one, remainder by one) belongs to constant
//! folding. This pass inserts nets, so it rebuilds the module (new nets
//! are emitted immediately before their user, preserving topological
//! order); it returns `None` when nothing applies so the common case
//! costs one scan.
//!
//! Four-state discipline: the wiring forms propagate per-bit X where the
//! original `Mul`/`DivU`/`RemU` X-poisoned the whole word — a strict
//! refinement — and compute identical values on known operands (the
//! divisor `2^k` is never zero, so division guarding does not matter).

use super::as_const;
use crate::netlist::{CombOp, Driver, Module, Net, NetId};
use bits::ApInt;

/// `Some(k)` if `c` is exactly `2^k` with `k > 0`.
fn pow2_exponent(c: &ApInt) -> Option<u32> {
    let mut k = None;
    for (li, &limb) in c.limbs().iter().enumerate() {
        if limb == 0 {
            continue;
        }
        if limb.count_ones() != 1 || k.is_some() {
            return None;
        }
        k = Some(li as u32 * 64 + limb.trailing_zeros());
    }
    k.filter(|&k| k > 0)
}

/// A reducible net: (index, op, value operand, exponent).
fn reducible(m: &Module, i: usize) -> Option<(CombOp, NetId, u32)> {
    let Driver::Comb { op, args, .. } = &m.nets[i].driver else {
        return None;
    };
    if args.len() != 2 {
        return None;
    }
    let w = m.nets[i].width;
    match op {
        CombOp::Mul => {
            // Either operand may be the power of two.
            for (value, konst) in [(args[0], args[1]), (args[1], args[0])] {
                if let Some(k) = as_const(m, konst).and_then(pow2_exponent) {
                    if k < w && m.nets[value.0].width == w {
                        return Some((CombOp::Mul, value, k));
                    }
                }
            }
            None
        }
        CombOp::DivU | CombOp::RemU => {
            let k = as_const(m, args[1]).and_then(pow2_exponent)?;
            (k < w && m.nets[args[0].0].width == w).then_some((*op, args[0], k))
        }
        _ => None,
    }
}

pub(super) fn run(m: &Module) -> Option<(Module, u64)> {
    if !(0..m.nets.len()).any(|i| reducible(m, i).is_some()) {
        return None;
    }
    let mut out = Module {
        name: m.name.clone(),
        ports: m.ports.clone(),
        nets: Vec::with_capacity(m.nets.len()),
        outputs: Vec::new(),
        roms: m.roms.clone(),
    };
    // Old net id → new net id; registers may reference forward, so their
    // operands (and the outputs) are remapped after the emission sweep.
    let mut map = vec![NetId(0); m.nets.len()];
    let mut rewrites = 0u64;
    for (i, net) in m.nets.iter().enumerate() {
        let name = &net.name;
        let w = net.width;
        map[i] = match reducible(m, i) {
            Some((op, value, k)) => {
                rewrites += 1;
                let a = map[value.0];
                match op {
                    CombOp::Mul => {
                        // {a[w-k-1:0], k'b0}
                        let low = push(&mut out, comb(CombOp::Extract, vec![a], 0), w - k, name);
                        let zeros = push(&mut out, Driver::Const(ApInt::zero(k)), k, "");
                        push(&mut out, comb(CombOp::Concat, vec![low, zeros], 0), w, name)
                    }
                    CombOp::DivU => {
                        let high = push(&mut out, comb(CombOp::Extract, vec![a], k), w - k, name);
                        push(&mut out, comb(CombOp::ZExt, vec![high], 0), w, name)
                    }
                    CombOp::RemU => {
                        let low = push(&mut out, comb(CombOp::Extract, vec![a], 0), k, name);
                        push(&mut out, comb(CombOp::ZExt, vec![low], 0), w, name)
                    }
                    _ => unreachable!(),
                }
            }
            None => {
                let mut d = net.driver.clone();
                match &mut d {
                    Driver::Comb { args, .. } => {
                        for a in args.iter_mut() {
                            *a = map[a.0];
                        }
                    }
                    Driver::Rom { index, .. } => *index = map[index.0],
                    // Forward references: keep old ids, patch below.
                    Driver::Reg { .. } | Driver::Input { .. } | Driver::Const(_) => {}
                }
                push(&mut out, d, w, name)
            }
        };
    }
    for net in &mut out.nets {
        if let Driver::Reg { next, enable, .. } = &mut net.driver {
            *next = map[next.0];
            if let Some(e) = enable {
                *e = map[e.0];
            }
        }
    }
    out.outputs = m.outputs.iter().map(|&(p, n)| (p, map[n.0])).collect();
    Some((out, rewrites))
}

fn comb(op: CombOp, args: Vec<NetId>, lo: u32) -> Driver {
    Driver::Comb { op, args, lo }
}

fn push(out: &mut Module, driver: Driver, width: u32, name: &str) -> NetId {
    out.nets.push(Net {
        driver,
        width,
        name: name.to_string(),
    });
    NetId(out.nets.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Simulator;
    use crate::netlist::PortDir;
    use std::collections::HashMap;

    fn module_with(op: CombOp, konst: u64) -> Module {
        let mut m = Module::new("t");
        let a = m.add_port("a", PortDir::Input, 8);
        let o = m.add_port("o", PortDir::Output, 8);
        let na = m.add_net(Driver::Input { port: a }, 8, "a");
        let c = m.add_net(Driver::Const(ApInt::from_u64(konst, 8)), 8, "c");
        let r = m.add_net(
            Driver::Comb {
                op,
                args: vec![na, c],
                lo: 0,
            },
            8,
            "r",
        );
        m.connect_output(o, r);
        m
    }

    fn eval(m: &Module, a: u64) -> u64 {
        let mut sim = Simulator::new(m.clone());
        let mut inputs = HashMap::new();
        inputs.insert("a".to_string(), ApInt::from_u64(a, 8));
        sim.eval(&inputs)["o"].to_u64()
    }

    #[test]
    fn pow2_exponent_detects_only_real_powers() {
        assert_eq!(pow2_exponent(&ApInt::from_u64(8, 32)), Some(3));
        assert_eq!(pow2_exponent(&ApInt::one(32).shl_bits(20)), Some(20));
        assert_eq!(pow2_exponent(&ApInt::from_u64(1, 8)), None, "k=0 is folding's job");
        assert_eq!(pow2_exponent(&ApInt::from_u64(6, 8)), None);
        assert_eq!(pow2_exponent(&ApInt::zero(8)), None);
    }

    #[test]
    fn mul_div_rem_by_pow2_become_wiring() {
        for (op, konst) in [
            (CombOp::Mul, 8u64),
            (CombOp::DivU, 4),
            (CombOp::RemU, 16),
        ] {
            let m = module_with(op, konst);
            let (reduced, count) = run(&m).unwrap();
            assert_eq!(count, 1, "{op:?}");
            reduced.validate().unwrap();
            crate::lint::lint_module(&reduced).unwrap();
            assert!(
                !reduced.nets.iter().any(|n| matches!(
                    &n.driver,
                    Driver::Comb { op: x, .. } if x == &op
                )),
                "{op:?} survived"
            );
            for a in [0u64, 1, 7, 100, 255] {
                assert_eq!(eval(&m, a), eval(&reduced, a), "{op:?} a={a}");
            }
        }
    }

    #[test]
    fn non_pow2_and_signed_ops_are_left_alone() {
        for (op, konst) in [(CombOp::Mul, 6u64), (CombOp::DivS, 4), (CombOp::RemS, 8)] {
            let m = module_with(op, konst);
            assert!(run(&m).is_none(), "{op:?} by {konst}");
        }
    }
}
