//! Criterion performance benchmarks of the compiler itself: parsing, type
//! checking, lowering, the ILP scheduler against the ASAP baseline
//! (ablation of the Figure 7 formulation), and the full end-to-end flow.

use criterion::{criterion_group, criterion_main, Criterion};
use longnail::driver::builtin_datasheet;
use longnail::isax_lib;
use longnail::Longnail;
use std::hint::black_box;

fn bench_frontend(c: &mut Criterion) {
    let (_, src) = isax_lib::isax_source("dotprod").unwrap();
    c.bench_function("parse_dotprod", |b| {
        b.iter(|| coredsl::parser::parse(black_box(&src)).unwrap())
    });
    c.bench_function("frontend_dotprod", |b| {
        let fe = coredsl::Frontend::new();
        b.iter(|| fe.compile_str(black_box(&src), "X_DOTP").unwrap())
    });
    let sparkle = isax_lib::sparkle_src();
    c.bench_function("frontend_sparkle", |b| {
        let fe = coredsl::Frontend::new();
        b.iter(|| fe.compile_str(black_box(&sparkle), "sparkle").unwrap())
    });
}

fn bench_lowering(c: &mut Criterion) {
    let fe = coredsl::Frontend::new();
    let (_, src) = isax_lib::isax_source("sqrt_tightly").unwrap();
    let module = fe.compile_str(&src, "sqrt_tightly").unwrap();
    c.bench_function("lower_sqrt_unrolled", |b| {
        b.iter(|| ir::lower_module(black_box(&module)).unwrap())
    });
}

fn build_sqrt_problem(budget: f64) -> sched::problem::LongnailProblem {
    use ir::lil::OpKind;
    use sched::problem::{LongnailProblem, OperatorType};
    let fe = coredsl::Frontend::new();
    let (_, src) = isax_lib::isax_source("sqrt_tightly").unwrap();
    let module = fe.compile_str(&src, "sqrt_tightly").unwrap();
    let lil = ir::lower_module(&module).unwrap();
    let graph = lil.graph("sqrt").unwrap();
    let mut p = LongnailProblem {
        cycle_time: budget,
        ..LongnailProblem::default()
    };
    let mut ids = Vec::new();
    for (_, op) in graph.iter() {
        let ot = match &op.kind {
            OpKind::ReadRs1 => OperatorType::combinational("rs1", 0.0).with_window(2, Some(4)),
            OpKind::WriteRd => OperatorType::combinational("wr", 0.0).with_window(2, None),
            OpKind::Const(_)
            | OpKind::Sink
            | OpKind::Concat
            | OpKind::ExtractConst { .. }
            | OpKind::ZExt
            | OpKind::SExt
            | OpKind::Trunc => OperatorType::combinational("wire", 0.0),
            OpKind::Mux | OpKind::Not => OperatorType::combinational("mux", 0.2),
            _ => OperatorType::combinational("logic", 1.0),
        };
        let tid = p.add_operator_type(ot);
        ids.push(p.add_operation("op", tid));
    }
    for (v, op) in graph.iter() {
        for &operand in op.operands.iter().chain(op.pred.iter()) {
            p.add_dependence(ids[operand.0], ids[v.0]);
        }
    }
    p
}

fn bench_schedulers(c: &mut Criterion) {
    c.bench_function("schedule_sqrt_ilp", |b| {
        b.iter_batched(
            || build_sqrt_problem(6.0),
            |mut p| sched::schedule_ilp(&mut p).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("schedule_sqrt_asap_baseline", |b| {
        b.iter_batched(
            || build_sqrt_problem(6.0),
            |mut p| sched::schedule_asap(&mut p).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let ds = builtin_datasheet("VexRiscv").unwrap();
    let ln = Longnail::new();
    let (_, dotp) = isax_lib::isax_source("dotprod").unwrap();
    c.bench_function("compile_dotprod_vexriscv", |b| {
        b.iter(|| ln.compile(black_box(&dotp), "X_DOTP", &ds).unwrap())
    });
    let (_, zol) = isax_lib::isax_source("zol").unwrap();
    c.bench_function("compile_zol_vexriscv", |b| {
        b.iter(|| ln.compile(black_box(&zol), "zol", &ds).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_frontend, bench_lowering, bench_schedulers, bench_end_to_end
}
criterion_main!(benches);
