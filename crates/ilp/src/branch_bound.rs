//! Branch-and-bound over warm-started LP re-optimization.
//!
//! [`solve`] first runs [`crate::presolve`] (which alone solves fully
//! bounded models), then solves the reduced LP relaxation once and
//! branches with **bound-delta nodes**: each node clones its parent's
//! optimal simplex tableau, appends a single branching bound as a row
//! ([`Simplex::add_le_row`]) and repairs feasibility with a dual-simplex
//! pass — instead of cloning the whole [`Model`] and re-solving from
//! scratch. Nodes are explored in deterministic **best-bound** order: the
//! node whose parent relaxation promised the best objective goes first
//! (ties broken by creation order), so the incumbent is provably optimal
//! as soon as no open node's bound beats it.
//!
//! The pre-warm-start algorithm survives as [`solve_naive`] — the
//! reference the property tests compare objectives and pivot counts
//! against.

use crate::budget::{Budget, WorkKind};
use crate::model::{Model, Sense, Solution, SolveError};
use crate::presolve::{self, Presolve, Presolved};
use crate::rational::Rational;
use crate::simplex::{self, Simplex};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Solves `model` to integer optimality, charging one [`WorkKind::Node`]
/// per explored search node (plus the pivots of each node's LP
/// re-optimization) against `budget`.
///
/// Scheduling models present as difference-constraint systems, which
/// presolve detects; their LP vertices are integral and no node is ever
/// opened, so budget exhaustion here indicates a pathological model.
///
/// # Errors
///
/// Returns [`SolveError::Infeasible`] if no integer point satisfies the
/// constraints, [`SolveError::Unbounded`] if the relaxation is unbounded,
/// [`SolveError::Exhausted`] when the budget runs out mid-search, or
/// [`SolveError::Numerical`] if a vertex resists exact reconstruction.
pub fn solve(model: &Model, budget: &Budget) -> Result<Solution, SolveError> {
    match presolve::presolve(model, budget)? {
        Presolve::Solved(values) => {
            let objective = model
                .objective
                .iter()
                .enumerate()
                .fold(Rational::ZERO, |acc, (i, &c)| acc + c * values[i]);
            Ok(Solution { values, objective })
        }
        Presolve::Reduced(pre) => {
            let mut root = Simplex::new(&pre.reduced);
            root.optimize(budget)?;
            integerize(&pre, &root, model, budget)
        }
    }
}

/// Drives an optimized root tableau to integer optimality and lifts the
/// result back to the original variable space. Shared between
/// [`solve`] and the incremental warm-round path
/// ([`crate::incremental::Incremental`]).
pub(crate) fn integerize(
    pre: &Presolved,
    root: &Simplex,
    original: &Model,
    budget: &Budget,
) -> Result<Solution, SolveError> {
    let reduced = &pre.reduced;
    let rsol = root.solution(reduced)?;
    if let Some(sol) = integral(reduced, &rsol) {
        return Ok(pre.restore(original, &sol));
    }
    debug_assert!(
        !pre.difference_system,
        "difference-system vertices must be integral"
    );
    let minimize = reduced.sense == Sense::Minimize;
    let better = |a: Rational, b: Rational| if minimize { a < b } else { a > b };

    let mut incumbent: Option<Solution> = None;
    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    let mut next_id = 0u64;
    push_children(&mut heap, root, &rsol, reduced, minimize, &mut next_id);
    while let Some(mut node) = heap.pop() {
        budget
            .charge(WorkKind::Node)
            .map_err(SolveError::Exhausted)?;
        if let Some(inc) = &incumbent {
            // The child's relaxation cannot beat its parent's bound.
            if !better(node.key.bound, inc.objective) {
                continue;
            }
        }
        // Apply the branching bound as a row and repair with dual simplex.
        if node.up {
            node.state
                .add_le_row(&[(node.var, -1.0)], -(node.bound as f64));
        } else {
            node.state.add_le_row(&[(node.var, 1.0)], node.bound as f64);
        }
        let relaxed = match node.state.reoptimize(budget) {
            Ok(()) => node.state.solution(reduced)?,
            Err(SolveError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        if let Some(inc) = &incumbent {
            if !better(relaxed.objective, inc.objective) {
                continue; // pruned by bound
            }
        }
        match integral(reduced, &relaxed) {
            // Strictly better than the incumbent (checked above).
            Some(sol) => incumbent = Some(sol),
            None => push_children(
                &mut heap,
                &node.state,
                &relaxed,
                reduced,
                minimize,
                &mut next_id,
            ),
        }
    }
    incumbent
        .map(|sol| pre.restore(original, &sol))
        .ok_or(SolveError::Infeasible)
}

/// An open search node: the parent's optimal tableau plus one pending
/// branching bound, applied lazily when the node is popped.
struct Node {
    state: Simplex,
    /// Reduced-space variable index being branched on.
    var: usize,
    /// `true` for the `x >= ceil` child, `false` for `x <= floor`.
    up: bool,
    bound: i128,
    key: NodeKey,
}

/// Best-bound ordering key. `BinaryHeap` pops the maximum, so `cmp` ranks
/// the *most promising* node greatest: the best parent bound first, then
/// the oldest node (smallest id) among ties.
#[derive(PartialEq, Eq)]
struct NodeKey {
    bound: Rational,
    minimize: bool,
    id: u64,
}

impl Ord for NodeKey {
    fn cmp(&self, other: &Self) -> Ordering {
        let by_bound = if self.minimize {
            other.bound.cmp(&self.bound) // smaller bound is better
        } else {
            self.bound.cmp(&other.bound)
        };
        by_bound.then(other.id.cmp(&self.id)) // older node is better
    }
}

impl PartialOrd for NodeKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for Node {}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Pushes the two children for the first fractional integer variable of
/// `sol`, sharing `state` (the parent's optimal tableau) by clone.
fn push_children(
    heap: &mut BinaryHeap<Node>,
    state: &Simplex,
    sol: &Solution,
    reduced: &Model,
    minimize: bool,
    next_id: &mut u64,
) {
    let (var, x) = reduced
        .vars
        .iter()
        .zip(&sol.values)
        .enumerate()
        .find_map(|(i, (v, x))| (v.integer && !x.is_integer()).then_some((i, *x)))
        .expect("push_children called with an integral solution");
    for (up, bound) in [(false, x.floor()), (true, x.ceil())] {
        heap.push(Node {
            state: state.clone(),
            var,
            up,
            bound,
            key: NodeKey {
                bound: sol.objective,
                minimize,
                id: *next_id,
            },
        });
        *next_id += 1;
    }
}

/// Returns the solution if every integer variable is integral.
fn integral(model: &Model, sol: &Solution) -> Option<Solution> {
    let ok = model
        .vars
        .iter()
        .zip(&sol.values)
        .all(|(v, x)| !v.integer || x.is_integer());
    ok.then(|| sol.clone())
}

/// The pre-warm-start reference algorithm: no presolve, and every node
/// clones the whole `Model` and re-solves its LP from scratch. Kept as
/// the oracle for the warm-start property tests (equal objectives, never
/// fewer pivots than the warm path).
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_naive(model: &Model, budget: &Budget) -> Result<Solution, SolveError> {
    let root = simplex::solve_lp(model, budget)?;
    if let Some(sol) = integral(model, &root) {
        return Ok(sol);
    }
    let minimize = model.sense == Sense::Minimize;
    let better = |a: Rational, b: Rational| if minimize { a < b } else { a > b };

    let mut incumbent: Option<Solution> = None;
    let mut stack: Vec<Model> = Vec::new();
    branch(model, &root, &mut stack);
    while let Some(node) = stack.pop() {
        budget
            .charge(WorkKind::Node)
            .map_err(SolveError::Exhausted)?;
        let relaxed = match simplex::solve_lp(&node, budget) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        if let Some(inc) = &incumbent {
            if !better(relaxed.objective, inc.objective) {
                continue; // pruned by bound
            }
        }
        match integral(&node, &relaxed) {
            Some(sol) => {
                let is_better = incumbent
                    .as_ref()
                    .map(|inc| better(sol.objective, inc.objective))
                    .unwrap_or(true);
                if is_better {
                    incumbent = Some(sol);
                }
            }
            None => branch(&node, &relaxed, &mut stack),
        }
    }
    incumbent.ok_or(SolveError::Infeasible)
}

/// Pushes the two child models for the first fractional integer variable
/// (naive path only).
fn branch(model: &Model, sol: &Solution, stack: &mut Vec<Model>) {
    let (i, x) = model
        .vars
        .iter()
        .zip(&sol.values)
        .enumerate()
        .find_map(|(i, (v, x))| (v.integer && !x.is_integer()).then_some((i, *x)))
        .expect("branch called with an integral solution");
    let mut down = model.clone();
    let floor = Rational::int(x.floor());
    match down.vars[i].upper {
        Some(u) if u <= floor => {}
        _ => down.vars[i].upper = Some(floor),
    }
    stack.push(down);
    let mut up = model.clone();
    let ceil = Rational::int(x.ceil());
    if up.vars[i].lower < ceil {
        up.vars[i].lower = ceil;
    }
    stack.push(up);
}

#[cfg(test)]
mod tests {
    use crate::{Budget, Model, Rational, Sense, SolveError, WorkKind};

    #[test]
    fn rounds_fractional_relaxation() {
        // max x s.t. 2x <= 3, x integer → x = 1.
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x");
        m.obj(x, 1);
        m.constraint_le(&[(x, 2)], 3);
        let sol = m.solve().unwrap();
        assert_eq!(sol.value(x), 1);
    }

    #[test]
    fn knapsack_like() {
        // max 5a + 4b s.t. 6a + 5b <= 10, a,b integer.
        // a=1 forces b=0 (value 5); a=0 allows b=2 (value 8) — optimal.
        let mut m = Model::new(Sense::Maximize);
        let a = m.int_var("a");
        let b = m.int_var("b");
        m.obj(a, 5);
        m.obj(b, 4);
        m.constraint_le(&[(a, 6), (b, 5)], 10);
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, 8.into());
        assert_eq!(sol.value(a), 0);
        assert_eq!(sol.value(b), 2);
    }

    #[test]
    fn integer_infeasible() {
        // 1/3 <= x <= 2/3, x integer → infeasible.
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x");
        m.obj(x, 1);
        m.add_rational_constraint(crate::Constraint {
            terms: vec![(x, Rational::int(3))],
            op: crate::ConstraintOp::Ge,
            rhs: Rational::int(1),
        });
        m.add_rational_constraint(crate::Constraint {
            terms: vec![(x, Rational::int(3))],
            op: crate::ConstraintOp::Le,
            rhs: Rational::int(2),
        });
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn mixed_integer() {
        // min y s.t. y >= x - 0.5, y >= -x + 2.5, x integer, y continuous.
        // x=1 → y >= 1.5; x=2 → y >= 1.5. Optimal y = 1.5.
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x");
        let y = m.var("y");
        m.obj(y, 1);
        m.add_rational_constraint(crate::Constraint {
            terms: vec![(y, Rational::int(2)), (x, Rational::int(-2))],
            op: crate::ConstraintOp::Ge,
            rhs: Rational::int(-1),
        });
        m.add_rational_constraint(crate::Constraint {
            terms: vec![(y, Rational::int(2)), (x, Rational::int(2))],
            op: crate::ConstraintOp::Ge,
            rhs: Rational::int(5),
        });
        let sol = m.solve().unwrap();
        assert_eq!(sol.rational_value(y), Rational::new(3, 2));
    }

    #[test]
    fn difference_constraints_do_not_branch() {
        // A Figure-7-shaped model: start times + lifetimes. Presolve lifts
        // the lower bounds to the ASAP times and the all-positive phase-2
        // costs keep the slack basis optimal: zero nodes, zero pivots.
        let mut m = Model::new(Sense::Minimize);
        let t: Vec<_> = (0..5).map(|i| m.int_var(&format!("t{i}"))).collect();
        for &v in &t {
            m.obj(v, 1);
        }
        // chain t0 -> t1 -> t3, t2 -> t3, t3 -> t4 with latencies 1.
        for &(a, b) in &[(0, 1), (1, 3), (2, 3), (3, 4)] {
            m.constraint_le(&[(t[a], 1), (t[b], -1)], -1);
        }
        let budget = Budget::unlimited();
        let sol = m.solve_with_budget(&budget).unwrap();
        assert_eq!(sol.value(t[0]), 0);
        assert_eq!(sol.value(t[1]), 1);
        assert_eq!(sol.value(t[2]), 0);
        assert_eq!(sol.value(t[3]), 2);
        assert_eq!(sol.value(t[4]), 3);
        assert_eq!(budget.count(WorkKind::Node), 0);
    }

    #[test]
    fn warm_nodes_match_naive_objective() {
        // A model that genuinely branches: both paths must agree on the
        // optimum, and the warm path must not pivot more than the naive
        // clone-and-re-solve path.
        let mut m = Model::new(Sense::Maximize);
        let a = m.int_var("a");
        let b = m.int_var("b");
        let c = m.int_var("c");
        m.obj(a, 7);
        m.obj(b, 5);
        m.obj(c, 4);
        m.constraint_le(&[(a, 4), (b, 3), (c, 2)], 9);
        m.constraint_le(&[(a, 1), (b, 2), (c, 3)], 7);
        let warm = Budget::unlimited();
        let naive = Budget::unlimited();
        let ws = crate::branch_bound::solve(&m, &warm).unwrap();
        let ns = crate::branch_bound::solve_naive(&m, &naive).unwrap();
        assert_eq!(ws.objective, ns.objective);
        assert!(m.is_feasible(&ws.values));
        assert!(
            warm.count(WorkKind::Pivot) <= naive.count(WorkKind::Pivot),
            "warm {} > naive {}",
            warm.count(WorkKind::Pivot),
            naive.count(WorkKind::Pivot)
        );
    }

    #[test]
    fn tiny_budget_reports_exhaustion() {
        // Needs at least one unit of work; a zero budget must fail with a
        // typed error, never a panic.
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x");
        m.obj(x, 1);
        m.constraint_ge(&[(x, 1)], 3);
        let budget = crate::Budget::new(0);
        match m.solve_with_budget(&budget) {
            Err(SolveError::Exhausted(e)) => assert_eq!(e.limit, 0),
            other => panic!("expected exhaustion, got {other:?}"),
        }
        // The same model solves fine under the default budget.
        assert_eq!(m.solve().unwrap().value(x), 3);
    }

    #[test]
    fn feasibility_checker_agrees() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x");
        m.obj(x, 1);
        m.constraint_ge(&[(x, 1)], 3);
        let sol = m.solve().unwrap();
        assert!(m.is_feasible(&sol.values));
        assert!(!m.is_feasible(&[Rational::int(2)]));
    }
}
