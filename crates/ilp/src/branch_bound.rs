//! Branch-and-bound over the simplex LP relaxation.

use crate::budget::{Budget, WorkKind};
use crate::model::{Model, Sense, Solution, SolveError};
use crate::rational::Rational;
use crate::simplex;

/// Solves `model` to integer optimality, charging one [`WorkKind::Node`]
/// per explored search node (plus the pivots of each node's LP re-solve)
/// against `budget`.
///
/// Scheduling models are totally unimodular and essentially never branch,
/// so budget exhaustion here indicates a pathological model.
///
/// # Errors
///
/// Returns [`SolveError::Infeasible`] if no integer point satisfies the
/// constraints, [`SolveError::Unbounded`] if the relaxation is unbounded,
/// or [`SolveError::Exhausted`] when the budget runs out mid-search.
pub fn solve(model: &Model, budget: &Budget) -> Result<Solution, SolveError> {
    let root = simplex::solve_lp(model, budget)?;
    if let Some(sol) = integral(model, &root) {
        return Ok(sol);
    }
    let minimize = model.sense == Sense::Minimize;
    let better = |a: Rational, b: Rational| if minimize { a < b } else { a > b };

    let mut incumbent: Option<Solution> = None;
    let mut stack: Vec<Model> = Vec::new();
    branch(model, &root, &mut stack);
    while let Some(node) = stack.pop() {
        budget.charge(WorkKind::Node).map_err(SolveError::Exhausted)?;
        let relaxed = match simplex::solve_lp(&node, budget) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        if let Some(inc) = &incumbent {
            if !better(relaxed.objective, inc.objective) {
                continue; // pruned by bound
            }
        }
        match integral(&node, &relaxed) {
            Some(sol) => {
                let is_better = incumbent
                    .as_ref()
                    .map(|inc| better(sol.objective, inc.objective))
                    .unwrap_or(true);
                if is_better {
                    incumbent = Some(sol);
                }
            }
            None => branch(&node, &relaxed, &mut stack),
        }
    }
    incumbent.ok_or(SolveError::Infeasible)
}

/// Returns the solution if every integer variable is integral.
fn integral(model: &Model, sol: &Solution) -> Option<Solution> {
    let ok = model
        .vars
        .iter()
        .zip(&sol.values)
        .all(|(v, x)| !v.integer || x.is_integer());
    ok.then(|| sol.clone())
}

/// Pushes the two child nodes for the first fractional integer variable.
fn branch(model: &Model, sol: &Solution, stack: &mut Vec<Model>) {
    let (i, x) = model
        .vars
        .iter()
        .zip(&sol.values)
        .enumerate()
        .find_map(|(i, (v, x))| (v.integer && !x.is_integer()).then_some((i, *x)))
        .expect("branch called with an integral solution");
    let mut down = model.clone();
    let floor = Rational::int(x.floor());
    match down.vars[i].upper {
        Some(u) if u <= floor => {}
        _ => down.vars[i].upper = Some(floor),
    }
    stack.push(down);
    let mut up = model.clone();
    let ceil = Rational::int(x.ceil());
    if up.vars[i].lower < ceil {
        up.vars[i].lower = ceil;
    }
    stack.push(up);
}

#[cfg(test)]
mod tests {
    use crate::{Model, Rational, Sense, SolveError};

    #[test]
    fn rounds_fractional_relaxation() {
        // max x s.t. 2x <= 3, x integer → x = 1.
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x");
        m.obj(x, 1);
        m.constraint_le(&[(x, 2)], 3);
        let sol = m.solve().unwrap();
        assert_eq!(sol.value(x), 1);
    }

    #[test]
    fn knapsack_like() {
        // max 5a + 4b s.t. 6a + 5b <= 10, a,b integer.
        // a=1 forces b=0 (value 5); a=0 allows b=2 (value 8) — optimal.
        let mut m = Model::new(Sense::Maximize);
        let a = m.int_var("a");
        let b = m.int_var("b");
        m.obj(a, 5);
        m.obj(b, 4);
        m.constraint_le(&[(a, 6), (b, 5)], 10);
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, 8.into());
        assert_eq!(sol.value(a), 0);
        assert_eq!(sol.value(b), 2);
    }

    #[test]
    fn integer_infeasible() {
        // 1/3 <= x <= 2/3, x integer → infeasible.
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x");
        m.obj(x, 1);
        m.add_rational_constraint(crate::Constraint {
            terms: vec![(x, Rational::int(3))],
            op: crate::ConstraintOp::Ge,
            rhs: Rational::int(1),
        });
        m.add_rational_constraint(crate::Constraint {
            terms: vec![(x, Rational::int(3))],
            op: crate::ConstraintOp::Le,
            rhs: Rational::int(2),
        });
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn mixed_integer() {
        // min y s.t. y >= x - 0.5, y >= -x + 2.5, x integer, y continuous.
        // x=1 → y >= 1.5; x=2 → y >= 1.5. Optimal y = 1.5.
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x");
        let y = m.var("y");
        m.obj(y, 1);
        m.add_rational_constraint(crate::Constraint {
            terms: vec![(y, Rational::int(2)), (x, Rational::int(-2))],
            op: crate::ConstraintOp::Ge,
            rhs: Rational::int(-1),
        });
        m.add_rational_constraint(crate::Constraint {
            terms: vec![(y, Rational::int(2)), (x, Rational::int(2))],
            op: crate::ConstraintOp::Ge,
            rhs: Rational::int(5),
        });
        let sol = m.solve().unwrap();
        assert_eq!(sol.rational_value(y), Rational::new(3, 2));
    }

    #[test]
    fn difference_constraints_do_not_branch() {
        // A Figure-7-shaped model: start times + lifetimes.
        let mut m = Model::new(Sense::Minimize);
        let t: Vec<_> = (0..5).map(|i| m.int_var(&format!("t{i}"))).collect();
        for &v in &t {
            m.obj(v, 1);
        }
        // chain t0 -> t1 -> t3, t2 -> t3, t3 -> t4 with latencies 1.
        for &(a, b) in &[(0, 1), (1, 3), (2, 3), (3, 4)] {
            m.constraint_le(&[(t[a], 1), (t[b], -1)], -1);
        }
        let sol = m.solve().unwrap();
        assert_eq!(sol.value(t[0]), 0);
        assert_eq!(sol.value(t[1]), 1);
        assert_eq!(sol.value(t[2]), 0);
        assert_eq!(sol.value(t[3]), 2);
        assert_eq!(sol.value(t[4]), 3);
    }

    #[test]
    fn tiny_budget_reports_exhaustion() {
        // Needs at least one pivot; a zero budget must fail with a typed
        // error, never a panic.
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x");
        m.obj(x, 1);
        m.constraint_ge(&[(x, 1)], 3);
        let budget = crate::Budget::new(0);
        match m.solve_with_budget(&budget) {
            Err(SolveError::Exhausted(e)) => assert_eq!(e.limit, 0),
            other => panic!("expected exhaustion, got {other:?}"),
        }
        // The same model solves fine under the default budget.
        assert_eq!(m.solve().unwrap().value(x), 3);
    }

    #[test]
    fn feasibility_checker_agrees() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x");
        m.obj(x, 1);
        m.constraint_ge(&[(x, 1)], 3);
        let sol = m.solve().unwrap();
        assert!(m.is_feasible(&sol.values));
        assert!(!m.is_feasible(&[Rational::int(2)]));
    }
}
