//! Language-level tests: diagnostics for ill-formed descriptions and
//! acceptance of less common well-formed constructs.

use coredsl::Frontend;

fn compile(src: &str, unit: &str) -> Result<coredsl::TypedModule, String> {
    Frontend::new()
        .compile_str(src, unit)
        .map_err(|e| e.to_string())
}

fn wrap_behavior(body: &str) -> String {
    format!(
        r#"
import "RV32I.core_desc";
InstructionSet t extends RV32I {{
  instructions {{
    i {{
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {{
{body}
      }}
    }}
  }}
}}
"#
    )
}

fn expect_err(body: &str, needle: &str) {
    let err = compile(&wrap_behavior(body), "t").unwrap_err();
    assert!(
        err.contains(needle),
        "expected error containing `{needle}`, got: {err}"
    );
}

fn expect_ok(body: &str) {
    compile(&wrap_behavior(body), "t").unwrap_or_else(|e| panic!("{e}\nbody: {body}"));
}

// ---- type-system diagnostics (§2.3) ------------------------------------

#[test]
fn narrowing_assignments_are_rejected_with_clear_errors() {
    expect_err(
        "unsigned<8> a = 0; unsigned<9> b = 0; a = b;",
        "lose information",
    );
    expect_err("unsigned<8> a = 0; signed<8> b = 0; a = b;", "lose information");
    expect_err("signed<8> a = 0; unsigned<8> b = 0; a = b;", "lose information");
    // Arithmetic widens: assigning a+b back needs a cast.
    expect_err(
        "unsigned<8> a = 0; unsigned<8> b = 0; a = a + b;",
        "lose information",
    );
    // Literal too wide for the target.
    expect_err("unsigned<4> a = 255;", "lose information");
}

#[test]
fn lossless_assignments_are_accepted() {
    expect_ok("unsigned<9> a = 0; unsigned<8> b = 0; a = b;");
    expect_ok("signed<9> a = 0; unsigned<8> b = 0; a = b;");
    expect_ok("signed<9> a = 0; signed<8> b = 0; a = b;");
    expect_ok("unsigned<4> a = 15;");
    // Compound assignment implicitly wraps.
    expect_ok("unsigned<8> a = 0; unsigned<8> b = 200; a += b; a *= b; a <<= 3;");
    expect_ok("unsigned<8> a = 0; a++; --a;");
}

#[test]
fn unknown_names_are_reported() {
    expect_err("X[rd] = frobnicate;", "unknown name");
    expect_err("X[rd] = helper(1);", "unknown function");
    expect_err("NOPE = 1;", "cannot assign");
}

#[test]
fn shadowing_in_same_scope_is_rejected_but_nesting_is_fine() {
    expect_err("unsigned<8> a = 0; unsigned<8> a = 1;", "already declared");
    expect_ok("unsigned<8> a = 0; if (a == 0) { unsigned<8> a = 1; X[rd] = (unsigned<32>)a; }");
}

#[test]
fn range_bounds_must_share_a_base() {
    expect_err(
        "unsigned<8> a = 1; unsigned<8> b = 2; unsigned<32> v = X[rs1]; X[rd] = (unsigned<32>)v[a:b];",
        "constant",
    );
    expect_ok("unsigned<32> v = X[rs1]; X[rd] = (unsigned<32>)v[7:0];");
}

#[test]
fn statement_restrictions() {
    expect_err("return 1;", "return is only allowed inside functions");
    expect_err("X[rs1] + 1;", "no effect");
    expect_err(
        "for (int i = 0; ; i += 1) { X[rd] = 1; }",
        "condition",
    );
}

#[test]
fn encoding_must_be_exactly_32_bits() {
    let src = r#"
InstructionSet t {
  instructions {
    short_enc { encoding: 5'd0 :: 7'b0001011; behavior: { } }
  }
}
"#;
    let err = compile(src, "t").unwrap_err();
    assert!(err.contains("12 bits"), "{err}");
}

#[test]
fn spawn_restrictions() {
    // spawn must be last in its block.
    let src = r#"
import "RV32I.core_desc";
InstructionSet t extends RV32I {
  instructions {
    i {
      encoding: 25'd0 :: 7'b0001011;
      behavior: {
        spawn { PC = (unsigned<32>)(PC + 8); }
        unsigned<8> after = 1;
      }
    }
  }
}
"#;
    // Accepted by sema; rejected at lowering.
    let module = compile(src, "t").unwrap();
    let err = ir::lower_module(&module).unwrap_err();
    assert!(err.message.contains("last statement"), "{err}");
    // spawn is not allowed in always-blocks at all.
    let src = r#"
import "RV32I.core_desc";
InstructionSet t extends RV32I {
  always {
    blk { spawn { PC = 0; } }
  }
}
"#;
    let err = compile(src, "t").unwrap_err();
    assert!(err.contains("spawn"), "{err}");
}

// ---- elaboration: cores, parameters, inheritance -------------------------

#[test]
fn core_parameter_override_applies() {
    let src = r#"
InstructionSet base {
  architectural_state {
    unsigned int W = 8;
    register unsigned<W> R;
  }
}
Core Wide provides base {
  architectural_state { unsigned int W = 16; }
}
"#;
    let module = compile(src, "Wide").unwrap();
    let (_, r) = module.register("R").unwrap();
    assert_eq!(r.ty.width, 16);
}

#[test]
fn parameters_usable_in_widths_and_extents() {
    let src = r#"
InstructionSet p {
  architectural_state {
    unsigned int N = 4;
    register unsigned<N*8> BUF[N*2];
  }
}
"#;
    let module = compile(src, "p").unwrap();
    let (_, buf) = module.register("BUF").unwrap();
    assert_eq!(buf.ty.width, 32);
    assert_eq!(buf.elems, 8);
    assert_eq!(buf.addr_width(), 3);
}

#[test]
fn diamond_imports_are_deduplicated() {
    let mut fe = Frontend::new();
    fe.add_source(
        "mid.core_desc",
        "import \"RV32I.core_desc\";\nInstructionSet mid extends RV32I { }",
    );
    let src = r#"
import "RV32I.core_desc";
import "mid.core_desc";
InstructionSet top extends mid {
  architectural_state { register unsigned<32> T; }
}
"#;
    let module = fe.compile_str(src, "top").map_err(|e| e.to_string()).unwrap();
    assert!(module.register("X").is_some());
    assert!(module.register("T").is_some());
    // X must appear exactly once despite the diamond.
    assert_eq!(
        module.registers.iter().filter(|r| r.name == "X").count(),
        1
    );
}

#[test]
fn multi_segment_immediate_fields_reassemble() {
    // S-type-style split immediate.
    let src = r#"
import "RV32I.core_desc";
InstructionSet s extends RV32I {
  instructions {
    st {
      encoding: imm[11:5] :: rs2[4:0] :: rs1[4:0] :: 3'd2 :: imm[4:0] :: 7'b0101011;
      behavior: {
        unsigned<32> a = (unsigned<32>)(X[rs1] + imm);
        MEM[a+3:a] = X[rs2];
      }
    }
  }
}
"#;
    let module = compile(src, "s").unwrap();
    let enc = &module.instructions[0].encoding;
    let imm = enc.fields.iter().find(|f| f.name == "imm").unwrap();
    assert_eq!(imm.width, 12);
    let segs = enc.field_segments("imm");
    assert_eq!(segs, vec![(25, 5, 7), (7, 0, 5)]);
    // Decoding reassembles the value.
    let word = ir::interp::decode_fields(enc, (0b1010101u32 << 25) | (0b11001 << 7) | (0b010 << 12) | 0b0101011)
        .unwrap();
    assert_eq!(word["imm"].to_u64(), (0b1010101 << 5) | 0b11001);
}

#[test]
fn functions_can_call_functions() {
    let src = r#"
import "RV32I.core_desc";
InstructionSet f extends RV32I {
  functions {
    unsigned<8> inc(unsigned<8> x) { return (unsigned<8>)(x + 1); }
    unsigned<8> inc2(unsigned<8> x) { return inc(inc(x)); }
  }
  instructions {
    i {
      encoding: 12'd0 :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: { X[rd] = (unsigned<32>) inc2(X[rs1][7:0]); }
    }
  }
}
"#;
    let module = compile(src, "f").unwrap();
    let lil = ir::lower_module(&module).unwrap();
    let g = lil.graph("i").unwrap();
    let mut env = ir::eval::MapEnv {
        word: (1 << 15) | (2 << 7) | 0b0001011,
        rs1: 40,
        ..Default::default()
    };
    let updates = ir::eval::eval_graph(g, &lil, &mut env);
    assert_eq!(updates[0].value.to_u64(), 42);
}

#[test]
fn verilog_literals_in_all_bases() {
    expect_ok("unsigned<16> a = 16'hBEEF; unsigned<3> b = 3'o7; unsigned<4> c = 4'b1010; unsigned<7> d = 7'd99;");
}

#[test]
fn ternary_and_logical_operators_type_correctly() {
    expect_ok(
        "unsigned<8> a = 1; signed<8> b = -1;
         signed<9> c = a < 200 && b != 0 ? a : b;
         X[rd] = (unsigned<32>) c;",
    );
}

#[test]
fn bare_signed_unsigned_default_to_32_bits() {
    let src = wrap_behavior("unsigned u = 0; signed s = 0; X[rd] = (unsigned<32>)(u + (unsigned<32>)s);");
    compile(&src, "t").unwrap();
}
