//! Semantic analysis: name resolution, constant evaluation, and type
//! checking per the rules of paper §2.3.
//!
//! The checker enforces the central CoreDSL guarantee that *precision or
//! sign information is never lost implicitly*: a plain assignment requires
//! the target type to hold every value of the source type, otherwise an
//! explicit C-style cast is required. Compound assignments (`+=`, `--`, ...)
//! are desugared to plain assignments with an implicit wrapping cast to the
//! target type, matching the CoreDSL specification.

use crate::ast;
use crate::ast::{AssignOp, BinOp, StorageClass, UnOp, WidthSpec};
use crate::error::{codes, Diagnostic, Result, Span};
use crate::tast::*;
use crate::types::IntType;
use bits::ApInt;
use std::collections::{HashMap, HashSet};

/// Flattened (post-inheritance) input to semantic analysis, produced by
/// [`crate::elab`].
#[derive(Debug, Clone, Default)]
pub struct SemaInput {
    /// Name of the elaborated unit.
    pub name: String,
    /// State declarations with the name of the declaring instruction set.
    pub state: Vec<(ast::StateDecl, String)>,
    /// Parameter overrides from `Core` bodies (name → value expression).
    pub param_overrides: Vec<(String, ast::Expr)>,
    pub instructions: Vec<ast::InstrDef>,
    pub always_blocks: Vec<ast::AlwaysDef>,
    pub functions: Vec<ast::FuncDef>,
}

/// A semantic analysis with recovery: the module built from everything
/// that checked cleanly, plus every independent error found in one pass.
#[derive(Debug)]
pub struct SemaOutput {
    /// Registers, functions, instructions and always-blocks that passed
    /// all checks. A unit (function/instruction/always) with any error is
    /// dropped, so poison placeholders never reach lowering.
    pub module: TypedModule,
    /// All recorded diagnostics, in traversal order of discovery.
    pub errors: Vec<Diagnostic>,
}

/// Runs semantic analysis over a flattened description, accumulating
/// errors instead of stopping at the first one.
///
/// Containment is per declaration and per unit: a bad parameter,
/// register, function, instruction or always-block costs itself, not the
/// analysis. Inside a body, a bad statement costs that statement; a
/// declaration that fails still binds its name as *poisoned*, and later
/// uses of poisoned names are silently typed as [`ExprKind::Poison`]
/// instead of cascading follow-on errors.
pub fn analyze_all(input: SemaInput) -> SemaOutput {
    let mut sema = Sema::default();
    let mut errors = Vec::new();
    sema.module.name = input.name.clone();
    sema.resolve_params(&input, &mut errors);
    sema.build_registers(&input, &mut errors);
    sema.collect_function_signatures(&input, &mut errors);
    for f in &input.functions {
        // A function whose signature failed to resolve was already
        // reported; there is nothing to check its body against.
        if !sema.func_sigs.contains_key(&f.name) {
            continue;
        }
        if let Some(func) = sema.check_function(f, &mut errors) {
            sema.module.functions.push(func);
        }
    }
    for i in &input.instructions {
        if let Some(instr) = sema.check_instruction(i, &mut errors) {
            sema.module.instructions.push(instr);
        }
    }
    for a in &input.always_blocks {
        if let Some(blk) = sema.check_always(a, &mut errors) {
            sema.module.always_blocks.push(blk);
        }
    }
    SemaOutput {
        module: sema.module,
        errors,
    }
}

/// Runs semantic analysis over a flattened description.
///
/// # Errors
///
/// Returns the first type or name-resolution error.
pub fn analyze(input: SemaInput) -> Result<TypedModule> {
    let mut out = analyze_all(input);
    if out.errors.is_empty() {
        Ok(out.module)
    } else {
        Err(out.errors.remove(0))
    }
}

#[derive(Default)]
struct Sema {
    module: TypedModule,
    params: HashMap<String, (IntType, ApInt)>,
    func_sigs: HashMap<String, (Option<IntType>, Vec<IntType>)>,
}

/// What kind of body is being checked; restricts the allowed constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BodyKind {
    Instruction,
    Always,
    Function,
}

struct Ctx<'a> {
    kind: BodyKind,
    fields: HashMap<String, u32>,
    locals: Vec<Local>,
    scopes: Vec<HashMap<String, LocalId>>,
    ret: Option<IntType>,
    sema: &'a Sema,
    /// Statement-level errors recorded during body checking.
    errors: Vec<Diagnostic>,
    /// Locals whose declaration failed; uses are typed as poison instead
    /// of cascading "unknown name" / lossy-conversion errors.
    poisoned: HashSet<usize>,
}

impl Sema {
    // ---- parameters and registers --------------------------------------

    fn resolve_params(&mut self, input: &SemaInput, errors: &mut Vec<Diagnostic>) {
        for (decl, _) in &input.state {
            if decl.storage != StorageClass::Param {
                continue;
            }
            if let Err(e) = self.resolve_param(decl, input) {
                errors.push(e);
            }
        }
    }

    fn resolve_param(&mut self, decl: &ast::StateDecl, input: &SemaInput) -> Result<()> {
        {
            let ty = self.eval_type(&decl.ty)?;
            let override_expr = input
                .param_overrides
                .iter()
                .find(|(n, _)| *n == decl.name)
                .map(|(_, e)| e);
            let init_expr = match (override_expr, &decl.init) {
                (Some(e), _) => e,
                (None, Some(ast::Initializer::Single(e))) => e,
                (None, Some(ast::Initializer::List(_))) => {
                    return Err(Diagnostic::coded(codes::SEMA_NOT_CONST,
                        decl.span,
                        format!("parameter `{}` cannot have a list initializer", decl.name),
                    ))
                }
                (None, None) => {
                    return Err(Diagnostic::coded(codes::SEMA_NOT_CONST,
                        decl.span,
                        format!("parameter `{}` has no value", decl.name),
                    ))
                }
            };
            let (value, _) = self.eval_const(init_expr)?;
            let value = if ty.signed {
                value.sext_or_trunc(ty.width)
            } else {
                value.zext_or_trunc(ty.width)
            };
            self.params.insert(decl.name.clone(), (ty, value.clone()));
            self.module.params.push((decl.name.clone(), ty, value));
        }
        Ok(())
    }

    fn build_registers(&mut self, input: &SemaInput, errors: &mut Vec<Diagnostic>) {
        for (decl, origin) in &input.state {
            if decl.storage == StorageClass::Param {
                continue;
            }
            if self.module.register(&decl.name).is_some() {
                // Inherited duplicate (e.g. RV32I state pulled in twice):
                // keep the first definition.
                continue;
            }
            if let Err(e) = self.build_register(decl, origin) {
                errors.push(e);
            }
        }
    }

    fn build_register(&mut self, decl: &ast::StateDecl, origin: &str) -> Result<()> {
        {
            let ty = self.eval_type(&decl.ty)?;
            let elems = match &decl.extent {
                None => 1u64,
                Some(e) => {
                    let (v, _) = self.eval_const(e)?;
                    v.try_to_u64().filter(|&n| n >= 1).ok_or_else(|| {
                        Diagnostic::coded(codes::SEMA_BAD_WIDTH, decl.span, "register array extent out of range")
                    })?
                }
            };
            // Non-extern state is physically materialized (ROM contents,
            // custom register files); bound its total size so a hostile
            // extent fails here with a diagnostic instead of aborting in an
            // allocation downstream. Extern spaces (e.g. the 4 GiB `MEM`)
            // are provided by the environment and exempt.
            const MAX_STATE_BITS: u64 = 1 << 26;
            if decl.storage != StorageClass::Extern
                && (ty.width as u64)
                    .checked_mul(elems)
                    .is_none_or(|bits| bits > MAX_STATE_BITS)
            {
                return Err(Diagnostic::coded(codes::SEMA_BAD_WIDTH,
                    decl.span,
                    format!(
                        "register `{}` would occupy more than {} bits of storage",
                        decl.name, MAX_STATE_BITS
                    ),
                ));
            }
            let init = match &decl.init {
                None => None,
                Some(ast::Initializer::Single(e)) => {
                    let (v, vt) = self.eval_const(e)?;
                    Some(vec![resize(&v, vt, ty)])
                }
                Some(ast::Initializer::List(items)) => {
                    if items.len() as u64 > elems {
                        return Err(Diagnostic::coded(codes::SEMA_TYPE_MISMATCH,
                            decl.span,
                            format!(
                                "initializer has {} elements but `{}` holds {elems}",
                                items.len(),
                                decl.name
                            ),
                        ));
                    }
                    let mut vals = Vec::with_capacity(items.len());
                    for e in items {
                        let (v, vt) = self.eval_const(e)?;
                        vals.push(resize(&v, vt, ty));
                    }
                    Some(vals)
                }
            };
            let kind = match decl.storage {
                StorageClass::Register => RegisterKind::Register,
                StorageClass::Extern => RegisterKind::Extern,
                StorageClass::Param => unreachable!(),
            };
            let builtin = match decl.name.as_str() {
                "X" => Some(BuiltinReg::Gpr),
                "PC" => Some(BuiltinReg::Pc),
                "MEM" => Some(BuiltinReg::Mem),
                _ => None,
            };
            if decl.is_const && init.is_none() {
                return Err(Diagnostic::coded(codes::SEMA_NOT_CONST,
                    decl.span,
                    format!("const register `{}` must be initialized", decl.name),
                ));
            }
            self.module.registers.push(Register {
                name: decl.name.clone(),
                ty,
                elems,
                kind,
                is_const: decl.is_const,
                init,
                builtin,
                origin: origin.to_owned(),
            });
        }
        Ok(())
    }

    fn collect_function_signatures(&mut self, input: &SemaInput, errors: &mut Vec<Diagnostic>) {
        for f in &input.functions {
            if let Err(e) = self.collect_function_signature(f) {
                errors.push(e);
            }
        }
    }

    fn collect_function_signature(&mut self, f: &ast::FuncDef) -> Result<()> {
        let ret = match &f.ret {
            None => None,
            Some(t) => Some(self.eval_type(t)?),
        };
        let mut params = Vec::new();
        for (t, _) in &f.params {
            params.push(self.eval_type(t)?);
        }
        if self.func_sigs.insert(f.name.clone(), (ret, params)).is_some() {
            return Err(Diagnostic::coded(codes::SEMA_DUPLICATE,
                f.span,
                format!("function `{}` defined more than once", f.name),
            ));
        }
        Ok(())
    }

    // ---- constant evaluation ---------------------------------------------

    fn eval_type(&self, t: &ast::TypeExpr) -> Result<IntType> {
        let width = match &t.width {
            WidthSpec::Fixed(w) => *w,
            WidthSpec::Expr(e) => {
                let (v, _) = self.eval_const(e)?;
                v.try_to_u64()
                    .filter(|&w| w >= 1 && w <= bits::MAX_WIDTH as u64)
                    .ok_or_else(|| Diagnostic::coded(codes::SEMA_BAD_WIDTH, t.span, "type width out of range"))?
                    as u32
            }
        };
        Ok(IntType {
            signed: t.signed,
            width,
        })
    }

    /// Evaluates a compile-time constant expression (parameters are in
    /// scope). Returns the value at its natural type.
    fn eval_const(&self, e: &ast::Expr) -> Result<(ApInt, IntType)> {
        match &e.kind {
            ast::ExprKind::Int { value, .. } => {
                Ok((value.clone(), IntType::unsigned(value.width())))
            }
            ast::ExprKind::Ident(name) => self
                .params
                .get(name)
                .map(|(t, v)| (v.clone(), *t))
                .ok_or_else(|| {
                    Diagnostic::coded(codes::SEMA_NOT_CONST,
                        e.span,
                        format!("`{name}` is not a compile-time constant"),
                    )
                }),
            ast::ExprKind::Unary { op, operand } => {
                let (v, t) = self.eval_const(operand)?;
                Ok(match op {
                    UnOp::Neg => {
                        let rt = t.neg_result();
                        let wide = resize(&v, t, rt);
                        (wide.neg(), rt)
                    }
                    UnOp::Not => (v.not(), t),
                    UnOp::LogNot => (ApInt::from_bool(v.is_zero()), IntType::bool_ty()),
                    UnOp::Plus => (v, t),
                })
            }
            ast::ExprKind::Binary { op, lhs, rhs } => {
                let (lv, lt) = self.eval_const(lhs)?;
                let (rv, rt) = self.eval_const(rhs)?;
                eval_binary(*op, &lv, lt, &rv, rt)
                    .ok_or_else(|| Diagnostic::coded(codes::SEMA_NOT_CONST, e.span, "unsupported constant operator"))
            }
            ast::ExprKind::Cast {
                signed,
                width,
                operand,
            } => {
                let (v, t) = self.eval_const(operand)?;
                let w = match width {
                    None => t.width,
                    Some(WidthSpec::Fixed(w)) => *w,
                    Some(WidthSpec::Expr(we)) => {
                        let (wv, _) = self.eval_const(we)?;
                        wv.try_to_u64().filter(|&w| w >= 1).ok_or_else(|| {
                            Diagnostic::coded(codes::SEMA_BAD_WIDTH, e.span, "cast width out of range")
                        })? as u32
                    }
                };
                let target = IntType {
                    signed: *signed,
                    width: w,
                };
                Ok((resize(&v, t, target), target))
            }
            ast::ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                let (c, _) = self.eval_const(cond)?;
                if c.is_zero() {
                    self.eval_const(else_val)
                } else {
                    self.eval_const(then_val)
                }
            }
            _ => Err(Diagnostic::coded(codes::SEMA_NOT_CONST,
                e.span,
                "expression is not a compile-time constant",
            )),
        }
    }

    // ---- bodies -------------------------------------------------------------

    /// Checks one instruction; returns `None` (with the errors appended)
    /// if anything in it failed, so a broken unit is dropped whole and
    /// poison placeholders never reach lowering.
    fn check_instruction(
        &self,
        i: &ast::InstrDef,
        errors: &mut Vec<Diagnostic>,
    ) -> Option<Instruction> {
        let encoding = match self.check_encoding(i) {
            Ok(e) => e,
            Err(e) => {
                errors.push(e);
                return None;
            }
        };
        let mut ctx = Ctx::new(BodyKind::Instruction, self);
        ctx.fields = encoding
            .fields
            .iter()
            .map(|f| (f.name.clone(), f.width))
            .collect();
        let behavior = ctx.check_block(&i.behavior).unwrap_or_default();
        let clean = ctx.errors.is_empty();
        errors.append(&mut ctx.errors);
        clean.then(|| Instruction {
            name: i.name.clone(),
            encoding,
            behavior,
            locals: ctx.locals,
            span: i.span,
        })
    }

    fn check_always(&self, a: &ast::AlwaysDef, errors: &mut Vec<Diagnostic>) -> Option<AlwaysBlock> {
        let mut ctx = Ctx::new(BodyKind::Always, self);
        let behavior = ctx.check_block(&a.behavior).unwrap_or_default();
        let clean = ctx.errors.is_empty();
        errors.append(&mut ctx.errors);
        clean.then(|| AlwaysBlock {
            name: a.name.clone(),
            behavior,
            locals: ctx.locals,
            span: a.span,
        })
    }

    fn check_function(&self, f: &ast::FuncDef, errors: &mut Vec<Diagnostic>) -> Option<Function> {
        let (ret, param_tys) = self.func_sigs[&f.name].clone();
        let mut ctx = Ctx::new(BodyKind::Function, self);
        ctx.ret = ret;
        let mut params = Vec::new();
        for ((_, name), ty) in f.params.iter().zip(param_tys) {
            match ctx.declare_local(name.clone(), ty, f.span) {
                Ok(id) => params.push(id),
                Err(e) => ctx.errors.push(e),
            }
        }
        let body = ctx.check_block(&f.body).unwrap_or_default();
        let clean = ctx.errors.is_empty();
        errors.append(&mut ctx.errors);
        clean.then(|| Function {
            name: f.name.clone(),
            ret,
            params,
            body,
            locals: ctx.locals,
        })
    }

    fn check_encoding(&self, i: &ast::InstrDef) -> Result<Encoding> {
        let mut pieces = Vec::new();
        let mut fields: Vec<Field> = Vec::new();
        for p in &i.encoding {
            match p {
                ast::EncPiece::Const { value, .. } => {
                    pieces.push(EncodingPiece::Const(value.clone()))
                }
                ast::EncPiece::Field { name, hi, lo, span } => {
                    if self.module.register(name).is_some() {
                        return Err(Diagnostic::coded(codes::SEMA_DUPLICATE,
                            *span,
                            format!("encoding field `{name}` collides with a register"),
                        ));
                    }
                    match fields.iter_mut().find(|f| f.name == *name) {
                        Some(f) => f.width = f.width.max(hi + 1),
                        None => fields.push(Field {
                            name: name.clone(),
                            width: hi + 1,
                        }),
                    }
                    pieces.push(EncodingPiece::Field {
                        name: name.clone(),
                        hi: *hi,
                        lo: *lo,
                    });
                }
            }
        }
        let enc = Encoding { pieces, fields };
        if enc.width() != 32 {
            return Err(Diagnostic::coded(codes::SEMA_BAD_WIDTH,
                i.span,
                format!(
                    "instruction `{}` encoding is {} bits wide, expected 32",
                    i.name,
                    enc.width()
                ),
            ));
        }
        Ok(enc)
    }
}

/// Resizes `v` of type `from` to type `to`, using the *source* signedness
/// for extension (C cast semantics).
pub fn resize(v: &ApInt, from: IntType, to: IntType) -> ApInt {
    if from.signed {
        v.sext_or_trunc(to.width)
    } else {
        v.zext_or_trunc(to.width)
    }
}

/// Evaluates a binary operator on values, returning the result at the
/// §2.3 result type. This single definition is shared by the constant
/// folder and (via [`crate::sema_support`]) the golden interpreter, so both
/// agree bit-for-bit. Returns `None` for operators outside the evaluable
/// set (none today; kept for forward compatibility).
pub fn eval_binary(
    op: BinOp,
    lv: &ApInt,
    lt: IntType,
    rv: &ApInt,
    rt: IntType,
) -> Option<(ApInt, IntType)> {
    let at = |t: IntType| -> (ApInt, ApInt) {
        (resize(lv, lt, t), resize(rv, rt, t))
    };
    Some(match op {
        BinOp::Add => {
            let t = lt.add_result(rt);
            let (a, b) = at(t);
            (a.add(&b), t)
        }
        BinOp::Sub => {
            let t = lt.sub_result(rt);
            let (a, b) = at(t);
            (a.sub(&b), t)
        }
        BinOp::Mul => {
            let t = lt.mul_result(rt);
            let (a, b) = at(t);
            (a.mul(&b), t)
        }
        BinOp::Div => {
            let t = lt.div_result(rt);
            let (a, b) = at(t);
            (if t.signed { a.sdiv(&b) } else { a.udiv(&b) }, t)
        }
        BinOp::Rem => {
            let ct = lt.common(rt);
            let (a, b) = at(ct);
            let r = if ct.signed { a.srem(&b) } else { a.urem(&b) };
            let t = lt.rem_result(rt);
            (resize(&r, ct, t), t)
        }
        BinOp::And | BinOp::Or | BinOp::Xor => {
            let t = lt.bitwise_result(rt);
            let (a, b) = at(t);
            let r = match op {
                BinOp::And => a.and(&b),
                BinOp::Or => a.or(&b),
                _ => a.xor(&b),
            };
            (r, t)
        }
        BinOp::Shl => (lv.shl(rv), lt.shift_result()),
        BinOp::Shr => (
            if lt.signed { lv.ashr(rv) } else { lv.lshr(rv) },
            lt.shift_result(),
        ),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
            let ct = lt.common(rt);
            let (a, b) = at(ct);
            let r = match (op, ct.signed) {
                (BinOp::Eq, _) => a == b,
                (BinOp::Ne, _) => a != b,
                (BinOp::Lt, true) => a.slt(&b),
                (BinOp::Lt, false) => a.ult(&b),
                (BinOp::Le, true) => a.sle(&b),
                (BinOp::Le, false) => a.ule(&b),
                (BinOp::Gt, true) => b.slt(&a),
                (BinOp::Gt, false) => b.ult(&a),
                (BinOp::Ge, true) => b.sle(&a),
                (BinOp::Ge, false) => b.ule(&a),
                _ => unreachable!(),
            };
            (ApInt::from_bool(r), IntType::bool_ty())
        }
        BinOp::LogAnd => (
            ApInt::from_bool(!lv.is_zero() && !rv.is_zero()),
            IntType::bool_ty(),
        ),
        BinOp::LogOr => (
            ApInt::from_bool(!lv.is_zero() || !rv.is_zero()),
            IntType::bool_ty(),
        ),
        BinOp::Concat => (lv.concat(rv), lt.concat_result(rt)),
    })
}

impl<'a> Ctx<'a> {
    fn new(kind: BodyKind, sema: &'a Sema) -> Self {
        Ctx {
            kind,
            fields: HashMap::new(),
            locals: Vec::new(),
            scopes: vec![HashMap::new()],
            ret: None,
            sema,
            errors: Vec::new(),
            poisoned: HashSet::new(),
        }
    }

    fn declare_local(&mut self, name: String, ty: IntType, span: Span) -> Result<LocalId> {
        if self.scopes.last().unwrap().contains_key(&name) {
            return Err(Diagnostic::coded(codes::SEMA_DUPLICATE,
                span,
                format!("`{name}` is already declared in this scope"),
            ));
        }
        let id = LocalId(self.locals.len());
        self.locals.push(Local {
            name: name.clone(),
            ty,
        });
        self.scopes.last_mut().unwrap().insert(name, id);
        Ok(id)
    }

    fn lookup_local(&self, name: &str) -> Option<LocalId> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }

    fn check_block(&mut self, b: &ast::Block) -> Result<Block> {
        self.scopes.push(HashMap::new());
        let stmts = self.check_stmts(&b.stmts);
        self.scopes.pop();
        Ok(Block { stmts })
    }

    /// Checks a statement list with containment: a bad statement records
    /// its error and is dropped, and checking continues with the next one
    /// so every independent error in a body surfaces in one pass.
    fn check_stmts(&mut self, stmts: &[ast::Stmt]) -> Vec<Stmt> {
        let mut out = Vec::new();
        for s in stmts {
            match self.check_stmt(s) {
                Ok(t) => out.push(t),
                Err(e) => {
                    self.errors.push(e);
                    self.poison_decl(s);
                }
            }
        }
        out
    }

    /// After a failed declaration, still binds the name — as *poisoned* —
    /// so later uses don't cascade into spurious "unknown name" errors.
    fn poison_decl(&mut self, s: &ast::Stmt) {
        if let ast::Stmt::Decl { ty, name, span, .. } = s {
            let ty = self
                .sema
                .eval_type(ty)
                .unwrap_or_else(|_| IntType::unsigned(32));
            if let Ok(id) = self.declare_local(name.clone(), ty, *span) {
                self.poisoned.insert(id.0);
            }
        }
    }

    fn check_stmt(&mut self, s: &ast::Stmt) -> Result<Stmt> {
        match s {
            ast::Stmt::Decl {
                ty,
                name,
                init,
                span,
            } => {
                let ty = self.sema.eval_type(ty)?;
                let init = match init {
                    None => None,
                    Some(e) => {
                        let value = self.check_expr(e)?;
                        Some(self.coerce_assign(value, ty, *span)?)
                    }
                };
                let local = self.declare_local(name.clone(), ty, *span)?;
                Ok(Stmt::Decl { local, init })
            }
            ast::Stmt::Assign {
                target,
                op,
                value,
                span,
            } => {
                let (lv, target_ty) = self.check_lvalue(target)?;
                let rhs = self.check_expr(value)?;
                if matches!(&lv, LValue::Local(id) if self.poisoned.contains(&id.0)) {
                    // Assignment to a poisoned local: the declaration error
                    // was reported and its type may be wrong, so skip the
                    // conversion check (the rhs was still checked above).
                    return Ok(Stmt::Assign {
                        target: lv,
                        value: Expr {
                            ty: target_ty,
                            kind: ExprKind::Poison,
                        },
                    });
                }
                let value = if *op == AssignOp::Set {
                    self.coerce_assign(rhs, target_ty, *span)?
                } else {
                    // Compound assignment: `a op= b` is
                    // `a = (type_of_a)(a op b)` — wrapping implicit cast.
                    let cur = self.lvalue_as_expr(&lv, target_ty);
                    let bin_op = match op {
                        AssignOp::Add => BinOp::Add,
                        AssignOp::Sub => BinOp::Sub,
                        AssignOp::Mul => BinOp::Mul,
                        AssignOp::Div => BinOp::Div,
                        AssignOp::Rem => BinOp::Rem,
                        AssignOp::And => BinOp::And,
                        AssignOp::Or => BinOp::Or,
                        AssignOp::Xor => BinOp::Xor,
                        AssignOp::Shl => BinOp::Shl,
                        AssignOp::Shr => BinOp::Shr,
                        AssignOp::Set => unreachable!(),
                    };
                    let combined = self.type_binary(bin_op, cur, rhs, *span)?;
                    Expr {
                        ty: target_ty,
                        kind: ExprKind::Cast {
                            operand: Box::new(combined),
                        },
                    }
                };
                Ok(Stmt::Assign { target: lv, value })
            }
            ast::Stmt::IncDec {
                target,
                increment,
                span,
            } => {
                let (lv, target_ty) = self.check_lvalue(target)?;
                let cur = self.lvalue_as_expr(&lv, target_ty);
                let one = Expr::constant(ApInt::one(1), false);
                let op = if *increment { BinOp::Add } else { BinOp::Sub };
                let combined = self.type_binary(op, cur, one, *span)?;
                Ok(Stmt::Assign {
                    target: lv,
                    value: Expr {
                        ty: target_ty,
                        kind: ExprKind::Cast {
                            operand: Box::new(combined),
                        },
                    },
                })
            }
            ast::Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                let cond = self.check_expr(cond)?;
                let then_block = self.check_block(then_block)?;
                let else_block = match else_block {
                    Some(b) => self.check_block(b)?,
                    None => Block::default(),
                };
                Ok(Stmt::If {
                    cond,
                    then_block,
                    else_block,
                })
            }
            ast::Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                self.scopes.push(HashMap::new());
                let result = (|| {
                    let init = match init {
                        Some(s) => vec![self.check_stmt(s)?],
                        None => Vec::new(),
                    };
                    let cond = match cond {
                        Some(c) => self.check_expr(c)?,
                        None => {
                            return Err(Diagnostic::coded(codes::SEMA_TYPE_MISMATCH,
                                *span,
                                "for-loops must have a condition (loops are unrolled during synthesis)",
                            ))
                        }
                    };
                    let step = match step {
                        Some(s) => vec![self.check_stmt(s)?],
                        None => Vec::new(),
                    };
                    let body = self.check_block(body)?;
                    Ok(Stmt::For {
                        init,
                        cond,
                        step,
                        body,
                    })
                })();
                self.scopes.pop();
                result
            }
            ast::Stmt::While {
                cond,
                body,
                do_first,
                span: _,
            } => {
                // `while` is a for-loop without init/step; `do..while`
                // prepends one unconditional execution of the body.
                self.scopes.push(HashMap::new());
                let result = (|| {
                    let cond = self.check_expr(cond)?;
                    let first = if *do_first {
                        Some(self.check_block(body)?)
                    } else {
                        None
                    };
                    let checked_body = self.check_block(body)?;
                    let looped = Stmt::For {
                        init: Vec::new(),
                        cond,
                        step: Vec::new(),
                        body: checked_body,
                    };
                    Ok(match first {
                        None => looped,
                        Some(first) => Stmt::If {
                            cond: Expr::constant(ApInt::one(1), false),
                            then_block: Block {
                                stmts: first
                                    .stmts
                                    .into_iter()
                                    .chain(std::iter::once(looped))
                                    .collect(),
                            },
                            else_block: Block::default(),
                        },
                    })
                })();
                self.scopes.pop();
                result
            }
            ast::Stmt::Spawn { body, span } => {
                if self.kind != BodyKind::Instruction {
                    return Err(Diagnostic::coded(codes::SEMA_PURITY,
                        *span,
                        "spawn-blocks are only allowed inside instruction behavior",
                    ));
                }
                let body = self.check_block(body)?;
                Ok(Stmt::Spawn { body })
            }
            ast::Stmt::Expr { expr, span } => match &expr.kind {
                ast::ExprKind::Call { .. } => {
                    let e = self.check_expr(expr)?;
                    match e.kind {
                        ExprKind::Call { callee, args } => Ok(Stmt::Call { callee, args }),
                        _ => unreachable!(),
                    }
                }
                _ => Err(Diagnostic::coded(codes::SEMA_TYPE_MISMATCH,
                    *span,
                    "expression statement has no effect",
                )),
            },
            ast::Stmt::Return { value, span } => {
                if self.kind != BodyKind::Function {
                    return Err(Diagnostic::coded(codes::SEMA_BAD_RETURN,
                        *span,
                        "return is only allowed inside functions",
                    ));
                }
                let value = match (&self.ret, value) {
                    (None, None) => None,
                    (Some(rt), Some(e)) => {
                        let rt = *rt;
                        let v = self.check_expr(e)?;
                        Some(self.coerce_assign(v, rt, *span)?)
                    }
                    (None, Some(_)) => {
                        return Err(Diagnostic::coded(codes::SEMA_BAD_RETURN, *span, "void function returns a value"))
                    }
                    (Some(_), None) => {
                        return Err(Diagnostic::coded(codes::SEMA_BAD_RETURN, *span, "missing return value"))
                    }
                };
                Ok(Stmt::Return { value })
            }
            ast::Stmt::Block(b) => {
                let inner = self.check_block(b)?;
                Ok(Stmt::If {
                    cond: Expr::constant(ApInt::one(1), false),
                    then_block: inner,
                    else_block: Block::default(),
                })
            }
        }
    }

    /// Checks that `value` may be implicitly assigned to `target_ty` (the
    /// lossless rule), wrapping it in a widening cast when the types differ.
    fn coerce_assign(&self, value: Expr, target_ty: IntType, span: Span) -> Result<Expr> {
        if matches!(value.kind, ExprKind::Poison) {
            // A poisoned source was already reported; don't pile a
            // conversion error on top.
            return Ok(Expr {
                ty: target_ty,
                kind: ExprKind::Poison,
            });
        }
        if value.ty == target_ty {
            return Ok(value);
        }
        if !target_ty.can_losslessly_hold(value.ty) {
            return Err(Diagnostic::coded(codes::SEMA_LOSSY_ASSIGN,
                span,
                format!(
                    "implicit conversion from {} to {} may lose information; use an explicit cast",
                    value.ty, target_ty
                ),
            )
            .with_fixit(format!("write `({target_ty}) ...` to truncate explicitly")));
        }
        Ok(Expr {
            ty: target_ty,
            kind: ExprKind::Cast {
                operand: Box::new(value),
            },
        })
    }

    fn check_lvalue(&mut self, e: &ast::Expr) -> Result<(LValue, IntType)> {
        match &e.kind {
            ast::ExprKind::Ident(name) => {
                if let Some(id) = self.lookup_local(name) {
                    let ty = self.locals[id.0].ty;
                    return Ok((LValue::Local(id), ty));
                }
                if let Some((reg, r)) = self.sema.module.register(name) {
                    self.check_state_access(r, e.span)?;
                    if r.elems > 1 {
                        return Err(Diagnostic::coded(codes::SEMA_BAD_LVALUE,
                            e.span,
                            format!("register array `{name}` needs an index to be assigned"),
                        ));
                    }
                    let ty = r.ty;
                    return Ok((LValue::Reg { reg, index: None }, ty));
                }
                Err(Diagnostic::coded(codes::SEMA_BAD_LVALUE,
                    e.span,
                    format!("cannot assign to `{name}`"),
                ))
            }
            ast::ExprKind::Index { base, index } => {
                let ast::ExprKind::Ident(name) = &base.kind else {
                    return Err(Diagnostic::coded(codes::SEMA_BAD_LVALUE, e.span, "invalid assignment target"));
                };
                let Some((reg, r)) = self.sema.module.register(name) else {
                    return Err(Diagnostic::coded(codes::SEMA_BAD_LVALUE,
                        e.span,
                        format!("cannot index-assign `{name}`"),
                    ));
                };
                self.check_state_access(r, e.span)?;
                if r.elems <= 1 {
                    return Err(Diagnostic::coded(codes::SEMA_BAD_LVALUE,
                        e.span,
                        format!("`{name}` is not a register array"),
                    ));
                }
                if r.is_const {
                    return Err(Diagnostic::coded(codes::SEMA_BAD_LVALUE,
                        e.span,
                        format!("cannot assign to const register `{name}`"),
                    ));
                }
                let ty = r.ty;
                let index = self.check_expr(index)?;
                Ok((
                    LValue::Reg {
                        reg,
                        index: Some(index),
                    },
                    ty,
                ))
            }
            ast::ExprKind::Range { base, hi, lo } => {
                // Register-array range store (e.g. MEM[a+3:a] = v) or a
                // bit-range store into a local.
                if let ast::ExprKind::Ident(name) = &base.kind {
                    if let Some((reg, r)) = self.sema.module.register(name) {
                        self.check_state_access(r, e.span)?;
                        if r.elems <= 1 {
                            return Err(Diagnostic::coded(codes::SEMA_BAD_LVALUE,
                                e.span,
                                format!("`{name}` is not a register array"),
                            ));
                        }
                        let elemw = r.ty.width;
                        let elems = range_extent(hi, lo).ok_or_else(|| {
                            Diagnostic::coded(codes::SEMA_BAD_RANGE,
                                e.span,
                                "range bounds must be constants or share a base with constant offsets",
                            )
                        })?;
                        let lo = self.check_expr(lo)?;
                        let ty = IntType::unsigned(elems as u32 * elemw);
                        return Ok((LValue::RegRange { reg, lo, elems }, ty));
                    }
                    if let Some(id) = self.lookup_local(name) {
                        let width = range_extent(hi, lo).ok_or_else(|| {
                            Diagnostic::coded(codes::SEMA_BAD_RANGE,
                                e.span,
                                "range bounds must be constants or share a base with constant offsets",
                            )
                        })? as u32;
                        let offset = self.check_expr(lo)?;
                        return Ok((
                            LValue::LocalRange {
                                local: id,
                                offset,
                                width,
                            },
                            IntType::unsigned(width),
                        ));
                    }
                }
                Err(Diagnostic::coded(codes::SEMA_BAD_LVALUE, e.span, "invalid assignment target"))
            }
            _ => Err(Diagnostic::coded(codes::SEMA_BAD_LVALUE, e.span, "invalid assignment target")),
        }
    }

    /// Rejects architectural-state access inside functions (functions are
    /// pure so they can be inlined unconditionally).
    fn check_state_access(&self, r: &Register, span: Span) -> Result<()> {
        if self.kind == BodyKind::Function && !r.is_const {
            return Err(Diagnostic::coded(codes::SEMA_PURITY,
                span,
                format!(
                    "functions may not access architectural state (`{}`)",
                    r.name
                ),
            ));
        }
        Ok(())
    }

    /// Re-reads an lvalue as an expression (for compound-assignment
    /// desugaring).
    fn lvalue_as_expr(&self, lv: &LValue, ty: IntType) -> Expr {
        let kind = match lv {
            LValue::Local(id) => ExprKind::Local(*id),
            LValue::LocalRange {
                local,
                offset,
                width,
            } => ExprKind::Slice {
                base: Box::new(Expr {
                    ty: self.locals[local.0].ty,
                    kind: ExprKind::Local(*local),
                }),
                offset: Box::new(offset.clone()),
                width: *width,
            },
            LValue::Reg { reg, index } => ExprKind::ReadReg {
                reg: *reg,
                index: index.clone().map(Box::new),
            },
            LValue::RegRange { reg, lo, elems } => ExprKind::ReadRegRange {
                reg: *reg,
                lo: Box::new(lo.clone()),
                elems: *elems,
            },
        };
        Expr { ty, kind }
    }

    fn type_binary(&self, op: BinOp, lhs: Expr, rhs: Expr, span: Span) -> Result<Expr> {
        let (lt, rt) = (lhs.ty, rhs.ty);
        let ty = match op {
            BinOp::Add => lt.add_result(rt),
            BinOp::Sub => lt.sub_result(rt),
            BinOp::Mul => lt.mul_result(rt),
            BinOp::Div => lt.div_result(rt),
            BinOp::Rem => lt.rem_result(rt),
            BinOp::And | BinOp::Or | BinOp::Xor => lt.bitwise_result(rt),
            BinOp::Shl | BinOp::Shr => lt.shift_result(),
            BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::Eq
            | BinOp::Ne
            | BinOp::LogAnd
            | BinOp::LogOr => IntType::bool_ty(),
            BinOp::Concat => lt.concat_result(rt),
        };
        if matches!(lhs.kind, ExprKind::Poison) || matches!(rhs.kind, ExprKind::Poison) {
            // Poisoned operands fold to poison; the result type may be
            // nonsense, so skip the width check too.
            return Ok(Expr {
                ty: IntType {
                    signed: ty.signed,
                    width: ty.width.min(bits::MAX_WIDTH),
                },
                kind: ExprKind::Poison,
            });
        }
        if ty.width > bits::MAX_WIDTH {
            return Err(Diagnostic::coded(codes::SEMA_BAD_WIDTH, span, "operator result width too large"));
        }
        Ok(Expr {
            ty,
            kind: ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
        })
    }

    fn check_expr(&mut self, e: &ast::Expr) -> Result<Expr> {
        match &e.kind {
            ast::ExprKind::Int { value, .. } => Ok(Expr::constant(value.clone(), false)),
            ast::ExprKind::Ident(name) => {
                if let Some(id) = self.lookup_local(name) {
                    if self.poisoned.contains(&id.0) {
                        // The declaration already failed and was reported;
                        // type this use as poison instead of cascading.
                        return Ok(Expr {
                            ty: self.locals[id.0].ty,
                            kind: ExprKind::Poison,
                        });
                    }
                    return Ok(Expr {
                        ty: self.locals[id.0].ty,
                        kind: ExprKind::Local(id),
                    });
                }
                if let Some(&width) = self.fields.get(name) {
                    return Ok(Expr {
                        ty: IntType::unsigned(width),
                        kind: ExprKind::Field(name.clone()),
                    });
                }
                if let Some((ty, v)) = self.sema.params.get(name) {
                    return Ok(Expr {
                        ty: *ty,
                        kind: ExprKind::Const(v.clone()),
                    });
                }
                if let Some((reg, r)) = self.sema.module.register(name) {
                    self.check_state_access(r, e.span)?;
                    if r.elems > 1 {
                        return Err(Diagnostic::coded(codes::SEMA_BAD_LVALUE,
                            e.span,
                            format!("register array `{name}` must be indexed"),
                        ));
                    }
                    return Ok(Expr {
                        ty: r.ty,
                        kind: ExprKind::ReadReg { reg, index: None },
                    });
                }
                Err(Diagnostic::coded(codes::SEMA_UNKNOWN_NAME, e.span, format!("unknown name `{name}`")))
            }
            ast::ExprKind::Binary { op, lhs, rhs } => {
                let l = self.check_expr(lhs)?;
                let r = self.check_expr(rhs)?;
                self.type_binary(*op, l, r, e.span)
            }
            ast::ExprKind::Unary { op, operand } => {
                let v = self.check_expr(operand)?;
                let ty = match op {
                    UnOp::Neg => v.ty.neg_result(),
                    UnOp::Not => v.ty.not_result(),
                    UnOp::LogNot => IntType::bool_ty(),
                    UnOp::Plus => v.ty,
                };
                Ok(Expr {
                    ty,
                    kind: ExprKind::Unary {
                        op: *op,
                        operand: Box::new(v),
                    },
                })
            }
            ast::ExprKind::Index { base, index } => {
                // Register-array element read?
                if let ast::ExprKind::Ident(name) = &base.kind {
                    if self.lookup_local(name).is_none() && !self.fields.contains_key(name) {
                        if let Some((reg, r)) = self.sema.module.register(name) {
                            self.check_state_access(r, e.span)?;
                            if r.elems > 1 {
                                let ty = r.ty;
                                let index = self.check_expr(index)?;
                                return Ok(Expr {
                                    ty,
                                    kind: ExprKind::ReadReg {
                                        reg,
                                        index: Some(Box::new(index)),
                                    },
                                });
                            }
                        }
                    }
                }
                // Single-bit select on a scalar value.
                let base = self.check_expr(base)?;
                let index = self.check_expr(index)?;
                Ok(Expr {
                    ty: IntType::unsigned(1),
                    kind: ExprKind::Slice {
                        base: Box::new(base),
                        offset: Box::new(index),
                        width: 1,
                    },
                })
            }
            ast::ExprKind::Range { base, hi, lo } => {
                // Register-array range read (address-space load)?
                if let ast::ExprKind::Ident(name) = &base.kind {
                    if self.lookup_local(name).is_none() && !self.fields.contains_key(name) {
                        if let Some((reg, r)) = self.sema.module.register(name) {
                            if r.elems > 1 {
                                self.check_state_access(r, e.span)?;
                                let elemw = r.ty.width;
                                let elems = range_extent(hi, lo).ok_or_else(|| {
                                    Diagnostic::coded(codes::SEMA_BAD_RANGE,
                                        e.span,
                                        "range bounds must be constants or share a base with constant offsets",
                                    )
                                })?;
                                let lo = self.check_expr(lo)?;
                                return Ok(Expr {
                                    ty: IntType::unsigned(elems as u32 * elemw),
                                    kind: ExprKind::ReadRegRange {
                                        reg,
                                        lo: Box::new(lo),
                                        elems,
                                    },
                                });
                            }
                        }
                    }
                }
                // Bit-range on a scalar value.
                let width = range_extent(hi, lo).ok_or_else(|| {
                    Diagnostic::coded(codes::SEMA_BAD_RANGE,
                        e.span,
                        "range bounds must be constants or share a base with constant offsets",
                    )
                })? as u32;
                let base = self.check_expr(base)?;
                if width > base.ty.width && !matches!(base.kind, ExprKind::Poison) {
                    return Err(Diagnostic::coded(codes::SEMA_BAD_WIDTH,
                        e.span,
                        format!(
                            "bit range of width {width} exceeds operand width {}",
                            base.ty.width
                        ),
                    ));
                }
                let offset = self.check_expr(lo)?;
                Ok(Expr {
                    ty: IntType::unsigned(width),
                    kind: ExprKind::Slice {
                        base: Box::new(base),
                        offset: Box::new(offset),
                        width,
                    },
                })
            }
            ast::ExprKind::Cast {
                signed,
                width,
                operand,
            } => {
                let v = self.check_expr(operand)?;
                let w = match width {
                    None => v.ty.width,
                    Some(WidthSpec::Fixed(w)) => *w,
                    Some(WidthSpec::Expr(we)) => {
                        let (wv, _) = self.sema.eval_const(we)?;
                        wv.try_to_u64()
                            .filter(|&w| w >= 1 && w <= bits::MAX_WIDTH as u64)
                            .ok_or_else(|| Diagnostic::coded(codes::SEMA_BAD_WIDTH, e.span, "cast width out of range"))?
                            as u32
                    }
                };
                Ok(Expr {
                    ty: IntType {
                        signed: *signed,
                        width: w,
                    },
                    kind: ExprKind::Cast {
                        operand: Box::new(v),
                    },
                })
            }
            ast::ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                let cond = self.check_expr(cond)?;
                let t = self.check_expr(then_val)?;
                let f = self.check_expr(else_val)?;
                let ty = t.ty.common(f.ty);
                Ok(Expr {
                    ty,
                    kind: ExprKind::Ternary {
                        cond: Box::new(cond),
                        then_val: Box::new(t),
                        else_val: Box::new(f),
                    },
                })
            }
            ast::ExprKind::Call { callee, args } => {
                let Some((ret, param_tys)) = self.sema.func_sigs.get(callee).cloned() else {
                    return Err(Diagnostic::coded(codes::SEMA_BAD_CALL,
                        e.span,
                        format!("unknown function `{callee}`"),
                    ));
                };
                if args.len() != param_tys.len() {
                    return Err(Diagnostic::coded(codes::SEMA_BAD_CALL,
                        e.span,
                        format!(
                            "function `{callee}` expects {} arguments, got {}",
                            param_tys.len(),
                            args.len()
                        ),
                    ));
                }
                let mut typed_args = Vec::new();
                for (a, pt) in args.iter().zip(param_tys) {
                    let v = self.check_expr(a)?;
                    typed_args.push(self.coerce_assign(v, pt, a.span)?);
                }
                let ty = ret.ok_or_else(|| {
                    Diagnostic::coded(codes::SEMA_BAD_CALL,
                        e.span,
                        format!("void function `{callee}` used as a value"),
                    )
                });
                match ty {
                    Ok(ty) => Ok(Expr {
                        ty,
                        kind: ExprKind::Call {
                            callee: callee.clone(),
                            args: typed_args,
                        },
                    }),
                    // Void calls are handled by `check_stmt`; reaching here
                    // means a void call in expression position.
                    Err(d) => Err(d),
                }
            }
        }
    }
}

/// Computes the static extent `hi - lo + 1` of a range whose bounds are
/// constants or the same base expression with constant offsets (paper §2.4).
fn range_extent(hi: &ast::Expr, lo: &ast::Expr) -> Option<u64> {
    let (hb, ho) = split_offset(hi);
    let (lb, lo_off) = split_offset(lo);
    match (hb, lb) {
        (None, None) => {
            let ext = ho - lo_off + 1;
            (ext >= 1).then_some(ext as u64)
        }
        (Some(a), Some(b)) if structurally_equal(a, b) => {
            let ext = ho - lo_off + 1;
            (ext >= 1).then_some(ext as u64)
        }
        _ => None,
    }
}

/// Splits `base + constant` / `base - constant` / `constant` forms.
fn split_offset(e: &ast::Expr) -> (Option<&ast::Expr>, i64) {
    match &e.kind {
        ast::ExprKind::Int { value, .. } => (None, value.try_to_u64().unwrap_or(0) as i64),
        ast::ExprKind::Binary {
            op: BinOp::Add,
            lhs,
            rhs,
        } => {
            if let ast::ExprKind::Int { value, .. } = &rhs.kind {
                let (b, o) = split_offset(lhs);
                (b, o + value.try_to_u64().unwrap_or(0) as i64)
            } else if let ast::ExprKind::Int { value, .. } = &lhs.kind {
                let (b, o) = split_offset(rhs);
                (b, o + value.try_to_u64().unwrap_or(0) as i64)
            } else {
                (Some(e), 0)
            }
        }
        ast::ExprKind::Binary {
            op: BinOp::Sub,
            lhs,
            rhs,
        } => {
            if let ast::ExprKind::Int { value, .. } = &rhs.kind {
                let (b, o) = split_offset(lhs);
                (b, o - value.try_to_u64().unwrap_or(0) as i64)
            } else {
                (Some(e), 0)
            }
        }
        _ => (Some(e), 0),
    }
}

/// Conservative structural equality on untyped expressions.
fn structurally_equal(a: &ast::Expr, b: &ast::Expr) -> bool {
    use ast::ExprKind as K;
    match (&a.kind, &b.kind) {
        (K::Int { value: va, .. }, K::Int { value: vb, .. }) => {
            va.width() == vb.width() && va == vb
        }
        (K::Ident(na), K::Ident(nb)) => na == nb,
        (
            K::Binary {
                op: oa,
                lhs: la,
                rhs: ra,
            },
            K::Binary {
                op: ob,
                lhs: lb,
                rhs: rb,
            },
        ) => oa == ob && structurally_equal(la, lb) && structurally_equal(ra, rb),
        (
            K::Unary {
                op: oa,
                operand: pa,
            },
            K::Unary {
                op: ob,
                operand: pb,
            },
        ) => oa == ob && structurally_equal(pa, pb),
        (
            K::Index {
                base: ba,
                index: ia,
            },
            K::Index {
                base: bb,
                index: ib,
            },
        ) => structurally_equal(ba, bb) && structurally_equal(ia, ib),
        _ => false,
    }
}
