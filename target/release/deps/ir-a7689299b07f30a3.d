/root/repo/target/release/deps/ir-a7689299b07f30a3.d: crates/ir/src/lib.rs crates/ir/src/eval.rs crates/ir/src/hirprint.rs crates/ir/src/interp.rs crates/ir/src/lil.rs crates/ir/src/lower.rs crates/ir/src/verify.rs

/root/repo/target/release/deps/libir-a7689299b07f30a3.rlib: crates/ir/src/lib.rs crates/ir/src/eval.rs crates/ir/src/hirprint.rs crates/ir/src/interp.rs crates/ir/src/lil.rs crates/ir/src/lower.rs crates/ir/src/verify.rs

/root/repo/target/release/deps/libir-a7689299b07f30a3.rmeta: crates/ir/src/lib.rs crates/ir/src/eval.rs crates/ir/src/hirprint.rs crates/ir/src/interp.rs crates/ir/src/lil.rs crates/ir/src/lower.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/eval.rs:
crates/ir/src/hirprint.rs:
crates/ir/src/interp.rs:
crates/ir/src/lil.rs:
crates/ir/src/lower.rs:
crates/ir/src/verify.rs:
