//! Property-based tests: the ILP solver against brute-force enumeration on
//! small bounded models.

use ilp::{Model, Rational, Sense, SolveError};
use proptest::prelude::*;

/// A small random model: up to 3 integer variables with bounds [0, 6],
/// up to 4 constraints with coefficients in [-3, 3] and rhs in [-8, 8].
#[derive(Debug, Clone)]
struct SmallModel {
    num_vars: usize,
    objective: Vec<i64>,
    maximize: bool,
    constraints: Vec<(Vec<i64>, i64, u8)>, // (coeffs, rhs, op: 0 le, 1 ge, 2 eq)
}

fn small_model() -> impl Strategy<Value = SmallModel> {
    (1usize..=3).prop_flat_map(|num_vars| {
        (
            proptest::collection::vec(-4i64..=4, num_vars),
            any::<bool>(),
            proptest::collection::vec(
                (
                    proptest::collection::vec(-3i64..=3, num_vars),
                    -8i64..=8,
                    0u8..=2,
                ),
                0..=4,
            ),
        )
            .prop_map(move |(objective, maximize, constraints)| SmallModel {
                num_vars,
                objective,
                maximize,
                constraints,
            })
    })
}

const BOUND: i64 = 6;

fn build(m: &SmallModel) -> (Model, Vec<ilp::VarId>) {
    let mut model = Model::new(if m.maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    });
    let vars: Vec<_> = (0..m.num_vars)
        .map(|i| {
            let v = model.int_var(&format!("x{i}"));
            model.set_upper(v, BOUND);
            model.obj(v, m.objective[i]);
            v
        })
        .collect();
    for (coeffs, rhs, op) in &m.constraints {
        let terms: Vec<_> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
        match op {
            0 => model.constraint_le(&terms, *rhs),
            1 => model.constraint_ge(&terms, *rhs),
            _ => model.constraint_eq(&terms, *rhs),
        }
    }
    (model, vars)
}

/// Exhaustively enumerates the integer grid [0, BOUND]^n.
fn brute_force(m: &SmallModel) -> Option<i64> {
    let n = m.num_vars;
    let mut best: Option<i64> = None;
    let total = (BOUND as usize + 1).pow(n as u32);
    for idx in 0..total {
        let mut point = Vec::with_capacity(n);
        let mut rest = idx;
        for _ in 0..n {
            point.push((rest % (BOUND as usize + 1)) as i64);
            rest /= BOUND as usize + 1;
        }
        let feasible = m.constraints.iter().all(|(coeffs, rhs, op)| {
            let lhs: i64 = coeffs.iter().zip(&point).map(|(c, x)| c * x).sum();
            match op {
                0 => lhs <= *rhs,
                1 => lhs >= *rhs,
                _ => lhs == *rhs,
            }
        });
        if !feasible {
            continue;
        }
        let obj: i64 = m.objective.iter().zip(&point).map(|(c, x)| c * x).sum();
        best = Some(match best {
            None => obj,
            Some(b) => {
                if m.maximize {
                    b.max(obj)
                } else {
                    b.min(obj)
                }
            }
        });
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_matches_brute_force(m in small_model()) {
        let (model, _) = build(&m);
        let brute = brute_force(&m);
        match (model.solve(), brute) {
            (Ok(sol), Some(best)) => {
                prop_assert!(model.is_feasible(&sol.values),
                    "solver returned an infeasible point: {:?}", sol.values);
                prop_assert_eq!(sol.objective, Rational::int(best as i128),
                    "objective mismatch (brute force: {})", best);
            }
            (Err(SolveError::Infeasible), None) => {}
            (Ok(sol), None) => {
                prop_assert!(false, "solver found {:?} but the grid has no feasible point", sol.values);
            }
            (Err(e), Some(best)) => {
                prop_assert!(false, "solver said {} but brute force found optimum {}", e, best);
            }
            (Err(e), None) => {
                // All variables are bounded and the models are tiny, so
                // neither unboundedness nor budget exhaustion can happen.
                prop_assert!(false, "infeasible model reported as {}", e);
            }
        }
    }

    #[test]
    fn lp_relaxation_bounds_the_ilp(m in small_model()) {
        let (model, _) = build(&m);
        if let (Ok(relax), Ok(exact)) = (model.solve_relaxation(), model.solve()) {
            if m.maximize {
                prop_assert!(relax.objective >= exact.objective);
            } else {
                prop_assert!(relax.objective <= exact.objective);
            }
        }
    }
}
