/root/repo/target/debug/deps/lnc-ab0625a5bbd49af3.d: crates/longnail/src/bin/lnc.rs Cargo.toml

/root/repo/target/debug/deps/liblnc-ab0625a5bbd49af3.rmeta: crates/longnail/src/bin/lnc.rs Cargo.toml

crates/longnail/src/bin/lnc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
