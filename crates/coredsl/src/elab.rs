//! Elaboration: import resolution, `InstructionSet` inheritance, `Core`
//! composition, and parameter assignment (paper §2.2).
//!
//! Elaboration flattens the modular description into a single [`SemaInput`]
//! — base-ISA state first, then each extension in inheritance order — and
//! hands it to [`crate::sema`] for type checking.

use crate::ast::{CoreDef, IsaDef, Stmt};
use crate::error::{codes, Diagnostic, Result, Span};
use crate::parser::parse_all;
use crate::prelude_src;
use crate::sema::{analyze_all, SemaInput};
use crate::tast::TypedModule;
use std::collections::{HashMap, HashSet};

/// A compile with full recovery: the module built from every unit that
/// survived, plus all parse, elaboration, and semantic errors found in a
/// single pass.
#[derive(Debug)]
pub struct CompileOutput {
    /// The elaborated module; `None` only when elaboration could not even
    /// identify or flatten the requested unit. When `Some` but [`errors`]
    /// is non-empty, the module holds the subset that checked cleanly.
    ///
    /// [`errors`]: CompileOutput::errors
    pub module: Option<TypedModule>,
    /// Every recorded diagnostic, in discovery order (parse first, then
    /// elaboration, then semantic analysis).
    pub errors: Vec<Diagnostic>,
}

/// The CoreDSL frontend: owns the import namespace and drives
/// parse → elaborate → analyze.
///
/// # Examples
///
/// ```
/// use coredsl::Frontend;
///
/// let src = r#"
/// import "RV32I.core_desc";
/// InstructionSet nopext extends RV32I {
///     instructions {
///         custom_nop {
///             encoding: 25'd0 :: 7'b0001011;
///             behavior: { }
///         }
///     }
/// }
/// "#;
/// let module = Frontend::new().compile_str(src, "nopext").unwrap();
/// // The RV32I base state (X, PC, MEM) is visible after elaboration:
/// assert!(module.register("X").is_some());
/// assert!(module.register("PC").is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Frontend {
    sources: HashMap<String, String>,
}

impl Default for Frontend {
    fn default() -> Self {
        Self::new()
    }
}

impl Frontend {
    /// Creates a frontend with the built-in `RV32I.core_desc` prelude
    /// registered.
    pub fn new() -> Self {
        let mut sources = HashMap::new();
        sources.insert(
            prelude_src::RV32I_IMPORT.to_string(),
            prelude_src::RV32I.to_string(),
        );
        Frontend { sources }
    }

    /// Registers an importable source under `name` (the string used in
    /// `import "<name>";`). Replaces any previous source of that name.
    pub fn add_source(&mut self, name: &str, text: &str) -> &mut Self {
        self.sources.insert(name.to_string(), text.to_string());
        self
    }

    /// Compiles a root description: parses `src` (and, transitively, its
    /// imports), then elaborates and type-checks the requested unit.
    ///
    /// `unit` names the `InstructionSet` or `Core` to elaborate. As a
    /// convenience, if `unit` does not match any definition but the root
    /// source defines exactly one instruction set or core, that definition
    /// is elaborated (so callers can pass a display name).
    ///
    /// # Errors
    ///
    /// Returns the first parse, elaboration, or type error. Use
    /// [`Frontend::compile_str_all`] to see every error in one pass.
    pub fn compile_str(&self, src: &str, unit: &str) -> Result<TypedModule> {
        let mut out = self.compile_str_all(src, unit);
        if let Some(first) = out.errors.drain(..).next() {
            return Err(first);
        }
        out.module.ok_or_else(|| {
            Diagnostic::new(Span::default(), "elaboration produced no module")
        })
    }

    /// Compiles a root description with recovery: every parse,
    /// elaboration, and semantic error is accumulated instead of stopping
    /// at the first, and the module is built from everything that checked
    /// cleanly. See [`Frontend::compile_str`] for the unit-name rules.
    pub fn compile_str_all(&self, src: &str, unit: &str) -> CompileOutput {
        let mut errors = Vec::new();
        let mut world = World::default();
        world.load_description_all(src, "<root>", self, &mut errors);
        let root_sets: Vec<String> = world.root_units.clone();
        let target = if world.isa_defs.contains_key(unit) || world.core_defs.contains_key(unit) {
            Some(unit.to_string())
        } else if root_sets.len() == 1 {
            Some(root_sets[0].clone())
        } else {
            errors.push(Diagnostic::coded(
                codes::ELAB_NO_UNIT,
                Span::default(),
                format!(
                    "no InstructionSet or Core named `{unit}` (root defines: {})",
                    root_sets.join(", ")
                ),
            ));
            None
        };
        let module = target.and_then(|target| match world.flatten(&target) {
            Err(e) => {
                errors.push(e);
                None
            }
            Ok(mut input) => {
                // Give the module the caller-facing name.
                if !unit.is_empty() {
                    input.name = unit.to_string();
                }
                let out = analyze_all(input);
                errors.extend(out.errors);
                Some(out.module)
            }
        });
        CompileOutput { module, errors }
    }

    /// Compiles a registered importable source by name.
    ///
    /// # Errors
    ///
    /// Returns an error if `import_name` is not registered, or on any
    /// parse/elaboration/type error.
    pub fn compile_import(&self, import_name: &str, unit: &str) -> Result<TypedModule> {
        let src = self.sources.get(import_name).ok_or_else(|| {
            Diagnostic::coded(
                codes::ELAB_UNKNOWN_IMPORT,
                Span::default(),
                format!("no source registered for import {import_name:?}"),
            )
        })?;
        self.compile_str(src, unit)
    }

    /// Like [`Frontend::compile_import`], but with full error recovery.
    pub fn compile_import_all(&self, import_name: &str, unit: &str) -> CompileOutput {
        match self.sources.get(import_name) {
            Some(src) => self.compile_str_all(src, unit),
            None => CompileOutput {
                module: None,
                errors: vec![Diagnostic::coded(
                    codes::ELAB_UNKNOWN_IMPORT,
                    Span::default(),
                    format!("no source registered for import {import_name:?}"),
                )],
            },
        }
    }
}

/// The set of all parsed definitions reachable from the root file.
#[derive(Default)]
struct World {
    isa_defs: HashMap<String, IsaDef>,
    core_defs: HashMap<String, CoreDef>,
    loaded: HashSet<String>,
    /// Units defined in the *root* file, in order.
    root_units: Vec<String>,
}

impl World {
    /// Parses `src` and loads its definitions and imports, recording every
    /// error instead of stopping: an unresolvable import costs that import,
    /// a duplicate definition keeps the first one, and a parse error keeps
    /// whatever the parser recovered.
    fn load_description_all(
        &mut self,
        src: &str,
        name: &str,
        fe: &Frontend,
        errors: &mut Vec<Diagnostic>,
    ) {
        let parsed = parse_all(src);
        errors.extend(parsed.errors.into_iter().map(|d| d.in_source(name)));
        let desc = parsed.description;
        for import in &desc.imports {
            if !self.loaded.insert(import.clone()) {
                continue; // already loaded (diamond imports are fine)
            }
            match fe.sources.get(import) {
                None => errors.push(
                    Diagnostic::coded(
                        codes::ELAB_UNKNOWN_IMPORT,
                        Span::default(),
                        format!("cannot resolve import {import:?}"),
                    )
                    .in_source(name),
                ),
                Some(text) => {
                    // Clone to satisfy the borrow checker; sources are small.
                    let text = text.clone();
                    self.load_description_all(&text, import, fe, errors);
                }
            }
        }
        let is_root = name == "<root>";
        for isa in desc.instruction_sets {
            if is_root {
                self.root_units.push(isa.name.clone());
            }
            if self.isa_defs.contains_key(&isa.name) {
                errors.push(
                    Diagnostic::coded(
                        codes::ELAB_DUPLICATE_DEF,
                        isa.span,
                        format!("InstructionSet `{}` defined more than once", isa.name),
                    )
                    .in_source(name),
                );
                continue;
            }
            self.isa_defs.insert(isa.name.clone(), isa);
        }
        for core in desc.cores {
            if is_root {
                self.root_units.push(core.name.clone());
            }
            if self.core_defs.contains_key(&core.name) {
                errors.push(
                    Diagnostic::coded(
                        codes::ELAB_DUPLICATE_DEF,
                        core.span,
                        format!("Core `{}` defined more than once", core.name),
                    )
                    .in_source(name),
                );
                continue;
            }
            self.core_defs.insert(core.name.clone(), core);
        }
    }

    /// Produces the inheritance chain of an instruction set, base first.
    fn chain(&self, name: &str) -> Result<Vec<&IsaDef>> {
        let mut chain = Vec::new();
        let mut seen = HashSet::new();
        let mut cur = Some(name.to_string());
        while let Some(n) = cur {
            if !seen.insert(n.clone()) {
                return Err(Diagnostic::coded(
                    codes::ELAB_EXTENDS_CYCLE,
                    Span::default(),
                    format!("inheritance cycle involving `{n}`"),
                ));
            }
            let def = self.isa_defs.get(&n).ok_or_else(|| {
                Diagnostic::coded(
                    codes::ELAB_NO_UNIT,
                    Span::default(),
                    format!("unknown InstructionSet `{n}`"),
                )
            })?;
            chain.push(def);
            cur = def.extends.clone();
        }
        chain.reverse();
        Ok(chain)
    }

    /// Flattens the named unit into a [`SemaInput`].
    fn flatten(&self, name: &str) -> Result<SemaInput> {
        let mut input = SemaInput {
            name: name.to_string(),
            ..SemaInput::default()
        };
        let mut merged: Vec<&IsaDef> = Vec::new();
        let mut seen = HashSet::new();
        if let Some(core) = self.core_defs.get(name) {
            for provided in &core.provides {
                for def in self.chain(provided)? {
                    if seen.insert(def.name.clone()) {
                        merged.push(def);
                    }
                }
            }
            // The core's own body contributes parameter assignments and
            // possibly additional state/instructions.
            for decl in &core.body.state {
                if decl.storage == crate::ast::StorageClass::Param {
                    if let Some(crate::ast::Initializer::Single(e)) = &decl.init {
                        input
                            .param_overrides
                            .push((decl.name.clone(), e.clone()));
                        continue;
                    }
                }
                input.state.push((decl.clone(), core.name.clone()));
            }
            self.merge_bodies(&merged, &mut input);
            input
                .instructions
                .extend(core.body.instructions.iter().cloned());
            input
                .always_blocks
                .extend(core.body.always_blocks.iter().cloned());
            input.functions.extend(core.body.functions.iter().cloned());
            // Core-body `param = value;` assignments (parsed as bare
            // assignments) are also accepted as overrides:
            self.collect_core_param_assignments(core, &mut input);
        } else {
            for def in self.chain(name)? {
                if seen.insert(def.name.clone()) {
                    merged.push(def);
                }
            }
            self.merge_bodies(&merged, &mut input);
        }
        Ok(input)
    }

    fn merge_bodies(&self, defs: &[&IsaDef], input: &mut SemaInput) {
        for def in defs {
            for decl in &def.body.state {
                input.state.push((decl.clone(), def.name.clone()));
            }
            input
                .instructions
                .extend(def.body.instructions.iter().cloned());
            input
                .always_blocks
                .extend(def.body.always_blocks.iter().cloned());
            input.functions.extend(def.body.functions.iter().cloned());
        }
    }

    fn collect_core_param_assignments(&self, _core: &CoreDef, _input: &mut SemaInput) {
        // Parameter re-assignment inside core bodies is expressed as state
        // declarations without storage class, handled in `flatten`. Bare
        // assignment statements cannot appear at section level in our
        // grammar, so nothing further to collect.
        let _ = Stmt::Block(crate::ast::Block::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tast::BuiltinReg;

    const DOTP: &str = r#"
import "RV32I.core_desc";
InstructionSet X_DOTP extends RV32I {
  instructions {
    dotp {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        signed<32> res = 0;
        for (int i = 0; i < 32; i += 8) {
          signed<16> prod = (signed) X[rs1][i+7:i] * (signed) X[rs2][i+7:i];
          res += prod;
        }
        X[rd] = (unsigned) res;
      }
    }
  }
}
"#;

    #[test]
    fn compiles_figure1_dotprod() {
        let module = Frontend::new().compile_str(DOTP, "X_DOTP").unwrap();
        assert_eq!(module.name, "X_DOTP");
        let (_, x) = module.register("X").unwrap();
        assert_eq!(x.builtin, Some(BuiltinReg::Gpr));
        assert_eq!(x.elems, 32);
        assert_eq!(module.instructions.len(), 1);
        let dotp = &module.instructions[0];
        assert_eq!(dotp.encoding.pattern_string().len(), 32);
        assert_eq!(
            dotp.encoding.pattern_string(),
            "0000000----------000-----0001011"
        );
        // rd, rs1, rs2 fields present:
        let names: Vec<_> = dotp.encoding.fields.iter().map(|f| &f.name).collect();
        assert!(names.contains(&&"rs1".to_string()));
        assert!(names.contains(&&"rd".to_string()));
    }

    #[test]
    fn xlen_parameter_is_resolved() {
        let module = Frontend::new()
            .compile_str("import \"RV32I.core_desc\";\nInstructionSet e extends RV32I { }", "e")
            .unwrap();
        let (name, _, value) = &module.params[0];
        assert_eq!(name, "XLEN");
        assert_eq!(value.to_u64(), 32);
    }

    #[test]
    fn unknown_import_is_an_error() {
        let err = Frontend::new()
            .compile_str("import \"nope.core_desc\";\nInstructionSet e { }", "e")
            .unwrap_err();
        assert!(err.message.contains("cannot resolve import"));
    }

    #[test]
    fn unknown_base_set_is_an_error() {
        let err = Frontend::new()
            .compile_str("InstructionSet e extends NOPE { }", "e")
            .unwrap_err();
        assert!(err.message.contains("unknown InstructionSet"));
    }

    #[test]
    fn inheritance_cycles_are_detected() {
        let src = "InstructionSet a extends b { } InstructionSet b extends a { }";
        let err = Frontend::new().compile_str(src, "a").unwrap_err();
        assert!(err.message.contains("cycle"));
    }

    #[test]
    fn lossy_assignment_is_rejected() {
        let src = r#"
import "RV32I.core_desc";
InstructionSet bad extends RV32I {
  instructions {
    i {
      encoding: 12'd0 :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<4> u4 = 0;
        unsigned<5> u5 = 0;
        u4 = u5;
      }
    }
  }
}
"#;
        let err = Frontend::new().compile_str(src, "bad").unwrap_err();
        assert!(err.message.contains("lose information"), "{err}");
    }

    #[test]
    fn sign_discarding_assignment_is_rejected() {
        let src = r#"
InstructionSet bad {
  instructions {
    i {
      encoding: 12'd0 :: 5'd0 :: 3'd0 :: 5'd0 :: 7'b0001011;
      behavior: {
        signed<4> s4 = 0;
        unsigned<4> u4 = 0;
        u4 = s4;
      }
    }
  }
}
"#;
        let err = Frontend::new().compile_str(src, "bad").unwrap_err();
        assert!(err.message.contains("lose information"), "{err}");
    }

    #[test]
    fn explicit_cast_permits_narrowing() {
        let src = r#"
InstructionSet ok {
  instructions {
    i {
      encoding: 12'd0 :: 5'd0 :: 3'd0 :: 5'd0 :: 7'b0001011;
      behavior: {
        unsigned<5> u5 = 17;
        signed<4> s4 = 3;
        unsigned<4> u4 = (unsigned<4>)(u5 + s4);
      }
    }
  }
}
"#;
        assert!(Frontend::new().compile_str(src, "ok").is_ok());
    }

    #[test]
    fn core_definition_composes_sets() {
        let src = r#"
import "RV32I.core_desc";
InstructionSet ext1 extends RV32I {
  architectural_state { register unsigned<32> ACC; }
}
Core MyCore provides ext1 {
  architectural_state { unsigned int XLEN = 32; }
}
"#;
        let module = Frontend::new().compile_str(src, "MyCore").unwrap();
        assert!(module.register("ACC").is_some());
        assert!(module.register("X").is_some());
    }

    #[test]
    fn zol_figure3_compiles() {
        let src = r#"
import "RV32I.core_desc";
InstructionSet zol extends RV32I {
  architectural_state {
    register unsigned<32> START_PC, END_PC, COUNT;
  }
  instructions {
    setup_zol {
      encoding: uimmL[11:0] :: uimmS[4:0] :: 3'b101 :: 5'b00000 :: 7'b0001011;
      behavior: {
        START_PC = (unsigned<32>)(PC + 4);
        END_PC = (unsigned<32>)(PC + (uimmS :: 1'b0));
        COUNT = uimmL;
      }
    }
  }
  always {
    zol {
      if (COUNT != 0 && END_PC == PC) {
        PC = START_PC;
        --COUNT;
      }
    }
  }
}
"#;
        let module = Frontend::new().compile_str(src, "zol").unwrap();
        assert_eq!(module.always_blocks.len(), 1);
        let (_, count) = module.register("COUNT").unwrap();
        assert!(count.is_custom());
        assert_eq!(count.addr_width(), 0);
        let (_, x) = module.register("X").unwrap();
        assert!(!x.is_custom());
        assert_eq!(x.addr_width(), 5);
    }

    #[test]
    fn functions_must_be_pure() {
        let src = r#"
import "RV32I.core_desc";
InstructionSet bad extends RV32I {
  functions {
    unsigned<32> peek() { return PC; }
  }
}
"#;
        let err = Frontend::new().compile_str(src, "bad").unwrap_err();
        assert!(err.message.contains("architectural state"), "{err}");
    }

    #[test]
    fn independent_errors_are_all_reported_in_one_pass() {
        let src = r#"
import "RV32I.core_desc";
InstructionSet multi extends RV32I {
  instructions {
    a {
      encoding: 12'd0 :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<4> u4 = 0;
        unsigned<5> u5 = 0;
        u4 = u5;
        X[rd] = nosuch;
      }
    }
    b {
      encoding: 12'd0 :: rs1[4:0] :: 3'd1 :: rd[4:0] :: 7'b0001011;
      behavior: {
        X[rd] = missing(X[rs1]);
      }
    }
  }
}
"#;
        let out = Frontend::new().compile_str_all(src, "multi");
        let seen: Vec<&str> = out.errors.iter().map(|e| e.code).collect();
        assert!(seen.contains(&codes::SEMA_LOSSY_ASSIGN), "{seen:?}");
        assert!(seen.contains(&codes::SEMA_UNKNOWN_NAME), "{seen:?}");
        assert!(seen.contains(&codes::SEMA_BAD_CALL), "{seen:?}");
        assert!(out.errors.len() >= 3, "{:?}", out.errors);
        // Both instructions had errors, so neither survives — but the
        // module itself does.
        assert_eq!(out.module.unwrap().instructions.len(), 0);
    }

    #[test]
    fn poisoned_declarations_do_not_cascade() {
        let src = r#"
import "RV32I.core_desc";
InstructionSet p extends RV32I {
  instructions {
    i {
      encoding: 12'd0 :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<8> v = nosuch;
        unsigned<8> w = v + 1;
        X[rd] = (unsigned<32>) w;
      }
    }
  }
}
"#;
        let out = Frontend::new().compile_str_all(src, "p");
        // Exactly the declaration error; uses of `v` are poisoned, not
        // re-reported.
        assert_eq!(out.errors.len(), 1, "{:?}", out.errors);
        assert_eq!(out.errors[0].code, codes::SEMA_UNKNOWN_NAME);
    }

    #[test]
    fn clean_units_survive_alongside_broken_ones() {
        let src = r#"
import "RV32I.core_desc";
InstructionSet mix extends RV32I {
  instructions {
    bad {
      encoding: 12'd0 :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: { X[rd] = nosuch; }
    }
    good {
      encoding: 12'd0 :: rs1[4:0] :: 3'd1 :: rd[4:0] :: 7'b0001011;
      behavior: { X[rd] = X[rs1]; }
    }
  }
}
"#;
        let out = Frontend::new().compile_str_all(src, "mix");
        assert_eq!(out.errors.len(), 1, "{:?}", out.errors);
        let module = out.module.unwrap();
        assert_eq!(module.instructions.len(), 1);
        assert_eq!(module.instructions[0].name, "good");
    }

    #[test]
    fn parse_and_sema_errors_accumulate_across_stages() {
        let src = r#"
import "RV32I.core_desc";
InstructionSet s extends RV32I {
  instructions {
    broken {
      encoding: 12'd0 :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: { X[rd] = ; }
    }
    lossy {
      encoding: 12'd0 :: rs1[4:0] :: 3'd1 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<4> u4 = 0;
        unsigned<5> u5 = 0;
        u4 = u5;
      }
    }
  }
}
"#;
        let out = Frontend::new().compile_str_all(src, "s");
        assert!(
            out.errors.iter().any(|e| e.code.starts_with("LN01")),
            "expected a parse error: {:?}",
            out.errors
        );
        assert!(
            out.errors
                .iter()
                .any(|e| e.code == codes::SEMA_LOSSY_ASSIGN),
            "expected the sema error too: {:?}",
            out.errors
        );
    }

    #[test]
    fn mem_range_load_types_as_32bit() {
        let src = r#"
import "RV32I.core_desc";
InstructionSet lw extends RV32I {
  instructions {
    loadw {
      encoding: 12'd0 :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<32> addr = X[rs1];
        X[rd] = MEM[addr+3:addr];
      }
    }
  }
}
"#;
        let module = Frontend::new().compile_str(src, "lw").unwrap();
        assert_eq!(module.instructions.len(), 1);
    }
}
