/root/repo/target/debug/deps/cores-ecdc1693a8cdedf6.d: crates/cores/src/lib.rs crates/cores/src/descriptor.rs crates/cores/src/exec.rs Cargo.toml

/root/repo/target/debug/deps/libcores-ecdc1693a8cdedf6.rmeta: crates/cores/src/lib.rs crates/cores/src/descriptor.rs crates/cores/src/exec.rs Cargo.toml

crates/cores/src/lib.rs:
crates/cores/src/descriptor.rs:
crates/cores/src/exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
