/root/repo/target/debug/deps/coredsl-ff3a6bd1cbfae3f2.d: crates/coredsl/src/lib.rs crates/coredsl/src/ast.rs crates/coredsl/src/elab.rs crates/coredsl/src/error.rs crates/coredsl/src/lexer.rs crates/coredsl/src/parser.rs crates/coredsl/src/prelude_src.rs crates/coredsl/src/sema.rs crates/coredsl/src/tast.rs crates/coredsl/src/token.rs crates/coredsl/src/types.rs

/root/repo/target/debug/deps/libcoredsl-ff3a6bd1cbfae3f2.rlib: crates/coredsl/src/lib.rs crates/coredsl/src/ast.rs crates/coredsl/src/elab.rs crates/coredsl/src/error.rs crates/coredsl/src/lexer.rs crates/coredsl/src/parser.rs crates/coredsl/src/prelude_src.rs crates/coredsl/src/sema.rs crates/coredsl/src/tast.rs crates/coredsl/src/token.rs crates/coredsl/src/types.rs

/root/repo/target/debug/deps/libcoredsl-ff3a6bd1cbfae3f2.rmeta: crates/coredsl/src/lib.rs crates/coredsl/src/ast.rs crates/coredsl/src/elab.rs crates/coredsl/src/error.rs crates/coredsl/src/lexer.rs crates/coredsl/src/parser.rs crates/coredsl/src/prelude_src.rs crates/coredsl/src/sema.rs crates/coredsl/src/tast.rs crates/coredsl/src/token.rs crates/coredsl/src/types.rs

crates/coredsl/src/lib.rs:
crates/coredsl/src/ast.rs:
crates/coredsl/src/elab.rs:
crates/coredsl/src/error.rs:
crates/coredsl/src/lexer.rs:
crates/coredsl/src/parser.rs:
crates/coredsl/src/prelude_src.rs:
crates/coredsl/src/sema.rs:
crates/coredsl/src/tast.rs:
crates/coredsl/src/token.rs:
crates/coredsl/src/types.rs:
