//! Lowering from the typed CoreDSL AST to LIL data-flow graphs
//! (paper §4.1, step (b) → (c)).
//!
//! The lowering performs, in one pass per instruction / `always`-block:
//!
//! * **loop unrolling** — for-loops with compile-time-evaluable trip counts
//!   are fully unrolled (constant folding happens on the fly),
//! * **function inlining** — pure helper functions are inlined,
//! * **if-conversion** — branches become predicated data-flow with
//!   multiplexers at merge points,
//! * **interface extraction** — accesses to `X`/`PC`/`MEM` are
//!   pattern-matched to the SCAIE-V sub-interfaces (a GPR read indexed by an
//!   encoding field covering instruction bits 19:15 becomes `lil.read_rs1`,
//!   and so on),
//! * **write merging** — state updates are combined so each sub-interface
//!   is used at most once per instruction (paper §3.1),
//! * **spawn flattening** — `spawn` regions are flattened into the graph
//!   with their operations marked for decoupled-mode selection.

use crate::lil::*;
use bits::ApInt;
use coredsl::ast::{BinOp, UnOp};
use coredsl::tast::{
    self, AlwaysBlock, BuiltinReg, Encoding, Expr, ExprKind, Instruction, LValue, Local, RegId,
    Stmt, TypedModule,
};
use coredsl::types::IntType;
use std::collections::HashMap;
use std::fmt;

/// Maximum number of iterations a single loop may unroll to.
pub const MAX_UNROLL: u64 = 4096;

/// Error produced during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Instruction or always-block being lowered.
    pub unit: String,
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering `{}`: {}", self.unit, self.message)
    }
}

impl std::error::Error for LowerError {}

type Result<T> = std::result::Result<T, LowerError>;

/// Lowers a type-checked module into LIL graphs.
///
/// # Errors
///
/// Returns an error for behavior outside the synthesizable subset, e.g.
/// loops without compile-time trip counts, GPR reads not indexed by an
/// `rs1`/`rs2` encoding field, or double use of a sub-interface.
pub fn lower_module(module: &TypedModule) -> Result<LilModule> {
    let mut lil = lower_state(module);
    for instr in &module.instructions {
        lil.graphs.push(lower_instruction(module, instr)?);
    }
    for always in &module.always_blocks {
        lil.graphs.push(lower_always(module, always)?);
    }
    Ok(lil)
}

/// Lowers only the architectural state (ROMs and custom registers),
/// producing a module with no graphs. Drivers that lower instructions
/// individually — so one failing instruction does not abort the others —
/// start from this and append graphs from [`lower_instruction`] /
/// [`lower_always`] themselves.
pub fn lower_state(module: &TypedModule) -> LilModule {
    let mut lil = LilModule {
        name: module.name.clone(),
        ..LilModule::default()
    };
    for reg in &module.registers {
        if reg.is_const {
            let mut contents = reg.init.clone().unwrap_or_default();
            contents.resize(reg.elems as usize, ApInt::zero(reg.ty.width));
            lil.roms.push(Rom {
                name: reg.name.clone(),
                width: reg.ty.width,
                contents,
            });
        } else if reg.is_custom() {
            lil.custom_regs.push(CustomReg {
                name: reg.name.clone(),
                width: reg.ty.width,
                elems: reg.elems,
                addr_width: reg.addr_width(),
            });
        }
    }
    lil
}

/// Lowers a single instruction.
pub fn lower_instruction(module: &TypedModule, instr: &Instruction) -> Result<Graph> {
    let kind = GraphKind::Instruction {
        mask: instr.encoding.mask(),
        match_value: instr.encoding.match_value(),
    };
    let mut ctx = Ctx::new(module, instr.name.clone(), kind, Some(&instr.encoding));
    ctx.push_frame(&instr.locals);
    ctx.lower_block(&instr.behavior)?;
    ctx.finish()
}

/// Lowers a single `always`-block.
pub fn lower_always(module: &TypedModule, always: &AlwaysBlock) -> Result<Graph> {
    let mut ctx = Ctx::new(module, always.name.clone(), GraphKind::Always, None);
    ctx.push_frame(&always.locals);
    ctx.lower_block(&always.behavior)?;
    ctx.finish()
}

/// Key identifying a mergeable write target.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum WriteTarget {
    Rd,
    Pc,
    Mem,
    Cust(String),
}

#[derive(Debug, Clone)]
struct PendingWrite {
    target: WriteTarget,
    addr: Option<ValueId>,
    value: ValueId,
    pred: Option<ValueId>,
    in_spawn: bool,
}

/// An inlining frame: maps the active body's `LocalId`s to SSA values.
struct Frame<'a> {
    locals: HashMap<usize, ValueId>,
    table: &'a [Local],
    ret: Option<ValueId>,
}

struct Ctx<'a> {
    module: &'a TypedModule,
    unit: String,
    kind: GraphKind,
    encoding: Option<&'a Encoding>,
    ops: Vec<Op>,
    cse: HashMap<(OpKind, Vec<ValueId>, u32), ValueId>,
    frames: Vec<Frame<'a>>,
    /// Forwarding map for PC and custom-register reads after writes within
    /// the same behavior: (register index, optional address value) → value.
    reg_fwd: HashMap<(usize, Option<ValueId>), ValueId>,
    pending: Vec<PendingWrite>,
    path_pred: Option<ValueId>,
    in_spawn: bool,
    field_cache: HashMap<String, ValueId>,
    instr_word: Option<ValueId>,
    call_stack: Vec<String>,
}

impl<'a> Ctx<'a> {
    fn new(
        module: &'a TypedModule,
        unit: String,
        kind: GraphKind,
        encoding: Option<&'a Encoding>,
    ) -> Self {
        Ctx {
            module,
            unit,
            kind,
            encoding,
            ops: Vec::new(),
            cse: HashMap::new(),
            frames: Vec::new(),
            reg_fwd: HashMap::new(),
            pending: Vec::new(),
            path_pred: None,
            in_spawn: false,
            field_cache: HashMap::new(),
            instr_word: None,
            call_stack: Vec::new(),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(LowerError {
            unit: self.unit.clone(),
            message: message.into(),
        })
    }

    fn push_frame(&mut self, table: &'a [Local]) {
        self.frames.push(Frame {
            locals: HashMap::new(),
            table,
            ret: None,
        });
    }

    fn frame(&mut self) -> &mut Frame<'a> {
        self.frames.last_mut().expect("active frame")
    }

    fn local_ty(&self, id: usize) -> IntType {
        self.frames.last().expect("active frame").table[id].ty
    }

    // ---- op construction with folding and CSE -----------------------------

    fn push(&mut self, kind: OpKind, operands: Vec<ValueId>, width: u32) -> ValueId {
        // Constant folding.
        if let Some(folded) = self.try_fold(&kind, &operands, width) {
            return self.intern_const(folded);
        }
        // Algebraic simplifications.
        if let Some(simplified) = self.try_simplify(&kind, &operands, width) {
            return simplified;
        }
        let pure = !kind.has_side_effect()
            && !matches!(kind, OpKind::ReadMem | OpKind::Sink)
            && width > 0;
        if pure {
            let key = (kind.clone(), operands.clone(), width);
            if let Some(&v) = self.cse.get(&key) {
                return v;
            }
            let v = self.raw_push(kind, operands, width, None);
            self.cse.insert(key, v);
            v
        } else {
            self.raw_push(kind, operands, width, None)
        }
    }

    fn raw_push(
        &mut self,
        kind: OpKind,
        operands: Vec<ValueId>,
        width: u32,
        pred: Option<ValueId>,
    ) -> ValueId {
        let id = ValueId(self.ops.len());
        self.ops.push(Op {
            kind,
            operands,
            width,
            pred,
            in_spawn: self.in_spawn,
        });
        id
    }

    fn intern_const(&mut self, value: ApInt) -> ValueId {
        let width = value.width();
        let kind = OpKind::Const(value);
        let key = (kind.clone(), Vec::new(), width);
        if let Some(&v) = self.cse.get(&key) {
            return v;
        }
        let v = self.raw_push(kind, Vec::new(), width, None);
        self.cse.insert(key, v);
        v
    }

    fn const_of(&self, v: ValueId) -> Option<&ApInt> {
        match &self.ops[v.0].kind {
            OpKind::Const(c) => Some(c),
            _ => None,
        }
    }

    fn width_of(&self, v: ValueId) -> u32 {
        self.ops[v.0].width
    }

    fn try_fold(&self, kind: &OpKind, operands: &[ValueId], width: u32) -> Option<ApInt> {
        // ROM reads with constant indices fold to the looked-up constant.
        if let OpKind::RomRead(name) = kind {
            let idx = self.const_of(operands[0])?;
            let rom = self.module.registers.iter().find(|r| r.name == *name)?;
            let contents = rom.init.as_ref()?;
            let i = idx.try_to_u64()? as usize;
            return Some(if i < contents.len() {
                contents[i].clone()
            } else {
                ApInt::zero(width)
            });
        }
        let consts: Option<Vec<&ApInt>> = operands.iter().map(|&v| self.const_of(v)).collect();
        let c = consts?;
        Some(match kind {
            OpKind::Add => c[0].add(c[1]),
            OpKind::Sub => c[0].sub(c[1]),
            OpKind::Mul => c[0].mul(c[1]),
            OpKind::DivU => c[0].udiv(c[1]),
            OpKind::DivS => c[0].sdiv(c[1]),
            OpKind::RemU => c[0].urem(c[1]),
            OpKind::RemS => c[0].srem(c[1]),
            OpKind::And => c[0].and(c[1]),
            OpKind::Or => c[0].or(c[1]),
            OpKind::Xor => c[0].xor(c[1]),
            OpKind::Not => c[0].not(),
            OpKind::Shl => c[0].shl(c[1]),
            OpKind::ShrU => c[0].lshr(c[1]),
            OpKind::ShrS => c[0].ashr(c[1]),
            OpKind::Eq => ApInt::from_bool(c[0] == c[1]),
            OpKind::Ne => ApInt::from_bool(c[0] != c[1]),
            OpKind::Ult => ApInt::from_bool(c[0].ult(c[1])),
            OpKind::Ule => ApInt::from_bool(c[0].ule(c[1])),
            OpKind::Slt => ApInt::from_bool(c[0].slt(c[1])),
            OpKind::Sle => ApInt::from_bool(c[0].sle(c[1])),
            OpKind::Mux => {
                if c[0].is_zero() {
                    c[2].clone()
                } else {
                    c[1].clone()
                }
            }
            OpKind::Concat => c[0].concat(c[1]),
            OpKind::Replicate(n) => c[0].replicate(*n),
            OpKind::ExtractConst { lo } => {
                let padded = c[0].zext(c[0].width().max(lo + width));
                padded.extract(*lo, width)
            }
            OpKind::ExtractDyn => {
                let shifted = c[0].lshr(c[1]);
                shifted.zext_or_trunc(width)
            }
            OpKind::ZExt => c[0].zext(width),
            OpKind::SExt => c[0].sext(width),
            OpKind::Trunc => c[0].trunc(width),
            _ => return None,
        })
    }

    fn try_simplify(&mut self, kind: &OpKind, operands: &[ValueId], width: u32) -> Option<ValueId> {
        match kind {
            OpKind::ZExt | OpKind::SExt | OpKind::Trunc
                if self.width_of(operands[0]) == width =>
            {
                Some(operands[0])
            }
            OpKind::ExtractConst { lo: 0 } if self.width_of(operands[0]) == width => {
                Some(operands[0])
            }
            OpKind::Mux => match self.const_of(operands[0]) {
                Some(c) if c.is_zero() => Some(operands[2]),
                Some(_) => Some(operands[1]),
                None if operands[1] == operands[2] => Some(operands[1]),
                None => None,
            },
            // Shifts by compile-time constants are pure wiring: rewrite to
            // extract/concat so neither the scheduler nor the area model
            // sees a barrel shifter.
            OpKind::Shl => {
                let c = self.const_of(operands[1])?.try_to_u64()?;
                if c == 0 {
                    return Some(operands[0]);
                }
                if c >= width as u64 {
                    return Some(self.intern_const(ApInt::zero(width)));
                }
                let c = c as u32;
                let low = self.push(
                    OpKind::ExtractConst { lo: 0 },
                    vec![operands[0]],
                    width - c,
                );
                let zeros = self.intern_const(ApInt::zero(c));
                Some(self.push(OpKind::Concat, vec![low, zeros], width))
            }
            OpKind::ShrU => {
                let c = self.const_of(operands[1])?.try_to_u64()?;
                if c == 0 {
                    return Some(operands[0]);
                }
                if c >= width as u64 {
                    return Some(self.intern_const(ApInt::zero(width)));
                }
                let c = c as u32;
                let high = self.push(
                    OpKind::ExtractConst { lo: c },
                    vec![operands[0]],
                    width - c,
                );
                Some(self.push(OpKind::ZExt, vec![high], width))
            }
            OpKind::ShrS => {
                let c = self.const_of(operands[1])?.try_to_u64()?;
                if c == 0 {
                    return Some(operands[0]);
                }
                let c = (c as u32).min(width - 1);
                let high = self.push(
                    OpKind::ExtractConst { lo: c },
                    vec![operands[0]],
                    width - c,
                );
                Some(self.push(OpKind::SExt, vec![high], width))
            }
            // Dynamic extract with constant offset becomes a static extract.
            OpKind::ExtractDyn => {
                let lo = self.const_of(operands[1])?.try_to_u64()? as u32;
                let base = operands[0];
                let bw = self.width_of(base);
                let base = if lo + width > bw {
                    self.push(OpKind::ZExt, vec![base], lo + width)
                } else {
                    base
                };
                Some(self.push(OpKind::ExtractConst { lo }, vec![base], width))
            }
            OpKind::And => {
                if width == 1 {
                    if let Some(c) = self.const_of(operands[0]) {
                        return Some(if c.is_zero() {
                            operands[0]
                        } else {
                            operands[1]
                        });
                    }
                    if let Some(c) = self.const_of(operands[1]) {
                        return Some(if c.is_zero() {
                            operands[1]
                        } else {
                            operands[0]
                        });
                    }
                }
                None
            }
            OpKind::Or => {
                if width == 1 {
                    if let Some(c) = self.const_of(operands[0]) {
                        return Some(if c.is_zero() {
                            operands[1]
                        } else {
                            operands[0]
                        });
                    }
                    if let Some(c) = self.const_of(operands[1]) {
                        return Some(if c.is_zero() {
                            operands[0]
                        } else {
                            operands[1]
                        });
                    }
                }
                // OR of values with disjoint bits is pure wiring: the very
                // common `(x << k) | small` pattern (already lowered to
                // `Concat(x, 0_k) | small`) becomes a concatenation.
                for (a, b) in [(operands[0], operands[1]), (operands[1], operands[0])] {
                    let OpKind::Concat = self.ops[a.0].kind else {
                        continue;
                    };
                    let (hi, lo) = (self.ops[a.0].operands[0], self.ops[a.0].operands[1]);
                    let k = self.width_of(lo);
                    // Low part must be known zero.
                    if !self.const_of(lo).map(|c| c.is_zero()).unwrap_or(false) {
                        continue;
                    }
                    // The other operand must only occupy the low k bits.
                    let small = match &self.ops[b.0].kind {
                        OpKind::Const(c) if c.min_unsigned_width() <= k => {
                            Some(self.intern_const(c.trunc(k)))
                        }
                        OpKind::ZExt if self.width_of(self.ops[b.0].operands[0]) <= k => {
                            let src = self.ops[b.0].operands[0];
                            Some(self.push(OpKind::ZExt, vec![src], k))
                        }
                        _ => None,
                    };
                    if let Some(low) = small {
                        return Some(self.push(OpKind::Concat, vec![hi, low], width));
                    }
                }
                None
            }
            _ => None,
        }
    }

    // ---- width adaptation --------------------------------------------------

    /// Resizes `v` (whose CoreDSL signedness is `signed`) to `width`.
    fn resize(&mut self, v: ValueId, signed: bool, width: u32) -> ValueId {
        let w = self.width_of(v);
        if w == width {
            v
        } else if w < width {
            let kind = if signed { OpKind::SExt } else { OpKind::ZExt };
            self.push(kind, vec![v], width)
        } else {
            self.push(OpKind::Trunc, vec![v], width)
        }
    }

    /// Reduces a value to a 1-bit condition (`!= 0`).
    fn boolify(&mut self, v: ValueId) -> ValueId {
        if self.width_of(v) == 1 {
            return v;
        }
        let zero = self.intern_const(ApInt::zero(self.width_of(v)));
        self.push(OpKind::Ne, vec![v, zero], 1)
    }

    fn and_pred(&mut self, a: Option<ValueId>, b: ValueId) -> ValueId {
        match a {
            None => b,
            Some(a) => self.push(OpKind::And, vec![a, b], 1),
        }
    }

    fn not(&mut self, v: ValueId) -> ValueId {
        self.push(OpKind::Not, vec![v], 1)
    }

    // ---- fields and the instruction word -----------------------------------

    fn instr_word(&mut self) -> ValueId {
        if let Some(v) = self.instr_word {
            return v;
        }
        let v = self.push(OpKind::InstrWord, Vec::new(), 32);
        self.instr_word = Some(v);
        v
    }

    /// Materializes an encoding operand field from the instruction word by
    /// concatenating its segments (gaps are zero-filled).
    fn field_value(&mut self, name: &str) -> Result<ValueId> {
        if let Some(&v) = self.field_cache.get(name) {
            return Ok(v);
        }
        let Some(encoding) = self.encoding else {
            return self.err(format!("field `{name}` referenced outside an instruction"));
        };
        let field = encoding
            .fields
            .iter()
            .find(|f| f.name == name)
            .cloned()
            .ok_or_else(|| LowerError {
                unit: self.unit.clone(),
                message: format!("unknown encoding field `{name}`"),
            })?;
        let mut segments = encoding.field_segments(name);
        segments.sort_by_key(|&(_, field_lo, _)| field_lo);
        let word = self.instr_word();
        // Build from LSB to MSB, concatenating extracted segments with
        // zero padding for gaps.
        let mut acc: Option<ValueId> = None;
        let mut covered = 0u32;
        for (instr_lo, field_lo, len) in segments {
            if field_lo > covered {
                let pad = self.intern_const(ApInt::zero(field_lo - covered));
                acc = Some(match acc {
                    None => pad,
                    Some(a) => self.push(
                        OpKind::Concat,
                        vec![pad, a],
                        field_lo,
                    ),
                });
                covered = field_lo;
            }
            let seg = self.push(OpKind::ExtractConst { lo: instr_lo }, vec![word], len);
            acc = Some(match acc {
                None => seg,
                Some(a) => self.push(OpKind::Concat, vec![seg, a], covered + len),
            });
            covered += len;
        }
        if covered < field.width {
            let pad = self.intern_const(ApInt::zero(field.width - covered));
            acc = Some(match acc {
                None => pad,
                Some(a) => self.push(OpKind::Concat, vec![pad, a], field.width),
            });
        }
        let v = acc.expect("fields have at least one segment");
        self.field_cache.insert(name.to_string(), v);
        Ok(v)
    }

    /// Classifies a GPR access index: it must be an encoding field covering
    /// the standard `rs1`/`rs2`/`rd` bit positions (paper §4.1c).
    fn gpr_port(&self, index: &Expr) -> Option<GprPort> {
        let ExprKind::Field(name) = &index.kind else {
            return None;
        };
        let segments = self.encoding?.field_segments(name);
        if segments.len() != 1 {
            return None;
        }
        match segments[0] {
            (15, 0, 5) => Some(GprPort::Rs1),
            (20, 0, 5) => Some(GprPort::Rs2),
            (7, 0, 5) => Some(GprPort::Rd),
            _ => None,
        }
    }

    // ---- statements ---------------------------------------------------------

    fn lower_block(&mut self, block: &tast::Block) -> Result<()> {
        for (i, stmt) in block.stmts.iter().enumerate() {
            if let Stmt::Spawn { .. } = stmt {
                if i + 1 != block.stmts.len() {
                    return self.err("spawn must be the last statement of its block");
                }
            }
            self.lower_stmt(stmt)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<()> {
        match stmt {
            Stmt::Decl { local, init } => {
                let value = match init {
                    Some(e) => self.lower_expr(e)?,
                    None => {
                        let ty = self.local_ty(local.0);
                        self.intern_const(ApInt::zero(ty.width))
                    }
                };
                self.frame().locals.insert(local.0, value);
                Ok(())
            }
            Stmt::Assign { target, value } => {
                let v = self.lower_expr(value)?;
                self.lower_assign(target, v)
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => self.lower_if(cond, then_block, else_block),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => self.lower_for(init, cond, step, body),
            Stmt::Spawn { body } => {
                if self.kind == GraphKind::Always {
                    return self.err("spawn is not allowed in always-blocks");
                }
                let saved = self.in_spawn;
                self.in_spawn = true;
                let r = self.lower_block(body);
                self.in_spawn = saved;
                r
            }
            Stmt::Call { .. } => {
                // Helper functions are pure, so a void call has no effect.
                Ok(())
            }
            Stmt::Return { value } => {
                if self.frames.len() < 2 {
                    return self.err("return outside of a function");
                }
                let v = match value {
                    Some(e) => Some(self.lower_expr(e)?),
                    None => None,
                };
                self.frame().ret = v;
                Ok(())
            }
        }
    }

    fn lower_if(
        &mut self,
        cond: &Expr,
        then_block: &tast::Block,
        else_block: &tast::Block,
    ) -> Result<()> {
        let c_raw = self.lower_expr(cond)?;
        let c = self.boolify(c_raw);
        if let Some(cv) = self.const_of(c) {
            // Statically resolved branch (common after loop unrolling).
            let taken = !cv.is_zero();
            return self.lower_block(if taken { then_block } else { else_block });
        }
        let saved_locals = self.frame().locals.clone();
        let saved_fwd = self.reg_fwd.clone();
        let outer_pred = self.path_pred;

        self.path_pred = Some(self.and_pred(outer_pred, c));
        self.lower_block(then_block)?;
        let then_locals = std::mem::replace(&mut self.frame().locals, saved_locals.clone());
        let then_fwd = std::mem::replace(&mut self.reg_fwd, saved_fwd.clone());

        let nc = self.not(c);
        self.path_pred = Some(self.and_pred(outer_pred, nc));
        self.lower_block(else_block)?;
        let else_locals = std::mem::take(&mut self.frame().locals);
        let else_fwd = std::mem::take(&mut self.reg_fwd);

        self.path_pred = outer_pred;

        // Merge locals. Sort the key union: HashMap iteration order is
        // seeded per process, and the Mux emission order below decides
        // LIL value numbering — and through it the schedule and the net
        // names in the emitted Verilog, which must be reproducible.
        let mut merged = saved_locals;
        let mut keys: Vec<usize> = then_locals
            .keys()
            .chain(else_locals.keys())
            .copied()
            .collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            let t = then_locals.get(&key).copied();
            let e = else_locals.get(&key).copied();
            let base = merged.get(&key).copied();
            let value = match (t, e) {
                (Some(tv), Some(ev)) if tv == ev => tv,
                (Some(tv), Some(ev)) => self.push(OpKind::Mux, vec![c, tv, ev], self.width_of(tv)),
                (Some(tv), None) => match base {
                    Some(b) if b != tv => {
                        self.push(OpKind::Mux, vec![c, tv, b], self.width_of(tv))
                    }
                    _ => tv,
                },
                (None, Some(ev)) => match base {
                    Some(b) if b != ev => {
                        self.push(OpKind::Mux, vec![c, b, ev], self.width_of(ev))
                    }
                    _ => ev,
                },
                (None, None) => continue,
            };
            merged.insert(key, value);
        }
        self.frame().locals = merged;

        // Merge the state-forwarding map: a read after a conditional write
        // must observe the muxed value.
        let mut merged_fwd = saved_fwd;
        let mut fwd_keys: Vec<(usize, Option<ValueId>)> = then_fwd
            .keys()
            .chain(else_fwd.keys())
            .cloned()
            .collect();
        fwd_keys.sort_unstable();
        fwd_keys.dedup();
        for key in fwd_keys {
            let t = then_fwd.get(&key).copied();
            let e = else_fwd.get(&key).copied();
            let base = match merged_fwd.get(&key).copied() {
                Some(b) => Some(b),
                None => self.architectural_read(&key)?,
            };
            let value = match (t, e) {
                (Some(tv), Some(ev)) if tv == ev => tv,
                (Some(tv), Some(ev)) => self.push(OpKind::Mux, vec![c, tv, ev], self.width_of(tv)),
                (Some(tv), None) => match base {
                    Some(b) if b != tv => {
                        self.push(OpKind::Mux, vec![c, tv, b], self.width_of(tv))
                    }
                    _ => tv,
                },
                (None, Some(ev)) => match base {
                    Some(b) if b != ev => {
                        self.push(OpKind::Mux, vec![c, b, ev], self.width_of(ev))
                    }
                    _ => ev,
                },
                (None, None) => continue,
            };
            merged_fwd.insert(key, value);
        }
        self.reg_fwd = merged_fwd;
        Ok(())
    }

    /// Emits the architectural read for a forwarding key (used as the "else"
    /// value when only one branch wrote the register). CSE guarantees the
    /// sub-interface is still used only once.
    fn architectural_read(&mut self, key: &(usize, Option<ValueId>)) -> Result<Option<ValueId>> {
        let reg = &self.module.registers[key.0];
        match reg.builtin {
            Some(BuiltinReg::Pc) => Ok(Some(self.push(OpKind::ReadPc, Vec::new(), 32))),
            None if reg.is_custom() => {
                let addr = key.1.unwrap_or_else(|| {
                    unreachable!("custom register forwarding keys carry an address")
                });
                Ok(Some(self.push(
                    OpKind::ReadCustReg(reg.name.clone()),
                    vec![addr],
                    reg.ty.width,
                )))
            }
            _ => Ok(None),
        }
    }

    fn lower_for(
        &mut self,
        init: &[Stmt],
        cond: &Expr,
        step: &[Stmt],
        body: &tast::Block,
    ) -> Result<()> {
        for s in init {
            self.lower_stmt(s)?;
        }
        let mut iterations = 0u64;
        loop {
            let c = self.lower_expr(cond)?;
            let Some(cv) = self.const_of(c) else {
                return self.err(
                    "loop condition is not compile-time constant; loops are fully unrolled \
                     during synthesis (paper §2.4)",
                );
            };
            if cv.is_zero() {
                break;
            }
            iterations += 1;
            if iterations > MAX_UNROLL {
                return self.err(format!(
                    "loop exceeds the unroll limit of {MAX_UNROLL} iterations"
                ));
            }
            self.lower_block(body)?;
            for s in step {
                self.lower_stmt(s)?;
            }
        }
        Ok(())
    }

    // ---- assignments -----------------------------------------------------------

    fn lower_assign(&mut self, target: &LValue, value: ValueId) -> Result<()> {
        match target {
            LValue::Local(id) => {
                self.frame().locals.insert(id.0, value);
                Ok(())
            }
            LValue::LocalRange {
                local,
                offset,
                width,
            } => {
                let ty = self.local_ty(local.0);
                let old = self.read_local(local.0)?;
                let off = self.lower_expr(offset)?;
                let new = self.insert_bits(old, ty.width, off, value, *width);
                self.frame().locals.insert(local.0, new);
                Ok(())
            }
            LValue::Reg { reg, index } => self.lower_reg_write(*reg, index.as_ref(), value),
            LValue::RegRange { reg, lo, elems } => {
                let r = &self.module.registers[reg.0];
                if r.builtin != Some(BuiltinReg::Mem) {
                    return self.err(format!(
                        "range assignment is only supported for the MEM address space, not `{}`",
                        r.name
                    ));
                }
                if *elems != 4 || r.ty.width != 8 {
                    return self.err(
                        "memory must be accessed as aligned 32-bit words (4-byte ranges) to map \
                         onto the WrMem sub-interface",
                    );
                }
                let addr_raw = self.lower_expr(lo)?;
                let addr = self.resize(addr_raw, false, 32);
                let value = self.resize(value, false, 32);
                self.pend(WriteTarget::Mem, Some(addr), value);
                Ok(())
            }
        }
    }

    fn lower_reg_write(&mut self, reg: RegId, index: Option<&Expr>, value: ValueId) -> Result<()> {
        let r = &self.module.registers[reg.0];
        if r.is_const {
            return self.err(format!("cannot assign to const register `{}`", r.name));
        }
        match r.builtin {
            Some(BuiltinReg::Gpr) => {
                let Some(index) = index else {
                    return self.err("the GPR file `X` must be indexed");
                };
                match self.gpr_port(index) {
                    Some(GprPort::Rd) => {
                        let value = self.resize(value, false, 32);
                        self.pend(WriteTarget::Rd, None, value);
                        Ok(())
                    }
                    _ => self.err(
                        "GPR writes must be indexed by the `rd` encoding field (bits 11:7); \
                         SCAIE-V's WrRD sub-interface has no other write port (Table 1)",
                    ),
                }
            }
            Some(BuiltinReg::Pc) => {
                let value = self.resize(value, false, 32);
                self.pend(WriteTarget::Pc, None, value);
                self.reg_fwd.insert((reg.0, None), value);
                Ok(())
            }
            Some(BuiltinReg::Mem) => {
                self.err("memory must be written as 4-byte ranges (MEM[a+3:a] = value)")
            }
            None => {
                let addr = match index {
                    Some(e) => {
                        let v = self.lower_expr(e)?;
                        self.resize(v, false, r.addr_width().max(1))
                    }
                    None => self.intern_const(ApInt::zero(r.addr_width().max(1))),
                };
                let value = self.resize(value, false, r.ty.width);
                self.pend(WriteTarget::Cust(r.name.clone()), Some(addr), value);
                self.reg_fwd.insert((reg.0, Some(addr)), value);
                Ok(())
            }
        }
    }

    fn pend(&mut self, target: WriteTarget, addr: Option<ValueId>, value: ValueId) {
        let pred = self.path_pred;
        let in_spawn = self.in_spawn;
        self.pending.push(PendingWrite {
            target,
            addr,
            value,
            pred,
            in_spawn,
        });
    }

    /// Replaces bits `[off + width - 1 : off]` of `old` (total width
    /// `total`) with `value`.
    fn insert_bits(
        &mut self,
        old: ValueId,
        total: u32,
        off: ValueId,
        value: ValueId,
        width: u32,
    ) -> ValueId {
        // (old & ~(mask << off)) | (zext(value) << off)
        let mask = ApInt::ones(width).zext(total.max(width));
        let mask = self.intern_const(mask.zext_or_trunc(total));
        let shifted_mask = self.push(OpKind::Shl, vec![mask, off], total);
        let inv = self.push(OpKind::Not, vec![shifted_mask], total);
        let cleared = self.push(OpKind::And, vec![old, inv], total);
        let val_ext = self.resize(value, false, total);
        let val_shifted = self.push(OpKind::Shl, vec![val_ext, off], total);
        self.push(OpKind::Or, vec![cleared, val_shifted], total)
    }

    // ---- expressions -------------------------------------------------------

    fn read_local(&mut self, id: usize) -> Result<ValueId> {
        match self.frames.last().expect("active frame").locals.get(&id) {
            Some(&v) => Ok(v),
            None => {
                let name = self.frames.last().unwrap().table[id].name.clone();
                self.err(format!("local `{name}` read before initialization"))
            }
        }
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<ValueId> {
        match &e.kind {
            ExprKind::Const(c) => Ok(self.intern_const(c.clone())),
            ExprKind::Local(id) => self.read_local(id.0),
            ExprKind::Field(name) => self.field_value(name),
            ExprKind::ReadReg { reg, index } => self.lower_reg_read(*reg, index.as_deref()),
            ExprKind::ReadRegRange { reg, lo, elems } => {
                let r = &self.module.registers[reg.0];
                if r.builtin != Some(BuiltinReg::Mem) {
                    return self.err(format!(
                        "range reads are only supported for the MEM address space, not `{}`",
                        r.name
                    ));
                }
                if *elems != 4 || r.ty.width != 8 {
                    return self.err(
                        "memory must be read as aligned 32-bit words (4-byte ranges) to map onto \
                         the RdMem sub-interface",
                    );
                }
                let addr_raw = self.lower_expr(lo)?;
                let addr = self.resize(addr_raw, false, 32);
                let pred = self.path_pred;
                let in_spawn = self.in_spawn;
                let id = ValueId(self.ops.len());
                self.ops.push(Op {
                    kind: OpKind::ReadMem,
                    operands: vec![addr],
                    width: 32,
                    pred,
                    in_spawn,
                });
                Ok(id)
            }
            ExprKind::Binary { op, lhs, rhs } => self.lower_binary(*op, lhs, rhs, e.ty),
            ExprKind::Unary { op, operand } => {
                let v = self.lower_expr(operand)?;
                match op {
                    UnOp::Neg => {
                        let ext = self.resize(v, operand.ty.signed, e.ty.width);
                        let zero = self.intern_const(ApInt::zero(e.ty.width));
                        Ok(self.push(OpKind::Sub, vec![zero, ext], e.ty.width))
                    }
                    UnOp::Not => Ok(self.push(OpKind::Not, vec![v], e.ty.width)),
                    UnOp::LogNot => {
                        let zero = self.intern_const(ApInt::zero(self.width_of(v)));
                        Ok(self.push(OpKind::Eq, vec![v, zero], 1))
                    }
                    UnOp::Plus => Ok(v),
                }
            }
            ExprKind::Cast { operand } => {
                let v = self.lower_expr(operand)?;
                Ok(self.resize(v, operand.ty.signed, e.ty.width))
            }
            ExprKind::Slice {
                base,
                offset,
                width,
            } => {
                let b = self.lower_expr(base)?;
                let off = self.lower_expr(offset)?;
                Ok(self.push(OpKind::ExtractDyn, vec![b, off], *width))
            }
            ExprKind::Concat { hi, lo } => {
                let h = self.lower_expr(hi)?;
                let l = self.lower_expr(lo)?;
                Ok(self.push(OpKind::Concat, vec![h, l], e.ty.width))
            }
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                let c_raw = self.lower_expr(cond)?;
                let c = self.boolify(c_raw);
                let t = self.lower_expr(then_val)?;
                let t = self.resize(t, then_val.ty.signed, e.ty.width);
                let f = self.lower_expr(else_val)?;
                let f = self.resize(f, else_val.ty.signed, e.ty.width);
                Ok(self.push(OpKind::Mux, vec![c, t, f], e.ty.width))
            }
            ExprKind::Call { callee, args } => self.inline_call(callee, args),
            ExprKind::Poison => {
                self.err("poisoned expression survived semantic analysis (compiler bug)")
            }
        }
    }

    fn lower_reg_read(&mut self, reg: RegId, index: Option<&Expr>) -> Result<ValueId> {
        let r = &self.module.registers[reg.0];
        match r.builtin {
            Some(BuiltinReg::Gpr) => {
                // A GPR read that sequentially follows a GPR write on the
                // same control path would need dynamic rd==rs forwarding,
                // which SCAIE-V does not provide; reject it. Writes on a
                // *different* branch (disjoint predicate) are fine — the
                // read then observes the architectural value on every path
                // where it executes.
                let same_path = |wp: &Option<ValueId>| match (wp, &self.path_pred) {
                    (None, _) | (_, None) => true,
                    (Some(a), Some(b)) => a == b,
                };
                if self
                    .pending
                    .iter()
                    .any(|w| w.target == WriteTarget::Rd && same_path(&w.pred))
                {
                    return self.err(
                        "GPR read after a GPR write within the same instruction is not \
                         synthesizable (the write index is dynamic)",
                    );
                }
                let Some(index) = index else {
                    return self.err("the GPR file `X` must be indexed");
                };
                match self.gpr_port(index) {
                    Some(GprPort::Rs1) => Ok(self.push(OpKind::ReadRs1, Vec::new(), 32)),
                    Some(GprPort::Rs2) => Ok(self.push(OpKind::ReadRs2, Vec::new(), 32)),
                    _ => self.err(
                        "GPR reads must be indexed by the `rs1` (bits 19:15) or `rs2` \
                         (bits 24:20) encoding fields; SCAIE-V provides only the RdRS1/RdRS2 \
                         read ports (Table 1)",
                    ),
                }
            }
            Some(BuiltinReg::Pc) => {
                if let Some(&v) = self.reg_fwd.get(&(reg.0, None)) {
                    return Ok(v);
                }
                Ok(self.push(OpKind::ReadPc, Vec::new(), 32))
            }
            Some(BuiltinReg::Mem) => {
                self.err("memory must be read as 4-byte ranges (MEM[a+3:a])")
            }
            None if r.is_const => {
                let idx = match index {
                    Some(e) => self.lower_expr(e)?,
                    None => self.intern_const(ApInt::zero(1)),
                };
                Ok(self.push(OpKind::RomRead(r.name.clone()), vec![idx], r.ty.width))
            }
            None => {
                let addr = match index {
                    Some(e) => {
                        let v = self.lower_expr(e)?;
                        self.resize(v, false, r.addr_width().max(1))
                    }
                    None => self.intern_const(ApInt::zero(r.addr_width().max(1))),
                };
                if let Some(&v) = self.reg_fwd.get(&(reg.0, Some(addr))) {
                    return Ok(v);
                }
                Ok(self.push(
                    OpKind::ReadCustReg(r.name.clone()),
                    vec![addr],
                    r.ty.width,
                ))
            }
        }
    }

    fn lower_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, ty: IntType) -> Result<ValueId> {
        let l = self.lower_expr(lhs)?;
        let r = self.lower_expr(rhs)?;
        let rw = ty.width;
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor => {
                let a = self.resize(l, lhs.ty.signed, rw);
                let b = self.resize(r, rhs.ty.signed, rw);
                let kind = match op {
                    BinOp::Add => OpKind::Add,
                    BinOp::Sub => OpKind::Sub,
                    BinOp::Mul => OpKind::Mul,
                    BinOp::And => OpKind::And,
                    BinOp::Or => OpKind::Or,
                    _ => OpKind::Xor,
                };
                Ok(self.push(kind, vec![a, b], rw))
            }
            BinOp::Div => {
                let a = self.resize(l, lhs.ty.signed, rw);
                let b = self.resize(r, rhs.ty.signed, rw);
                let kind = if ty.signed { OpKind::DivS } else { OpKind::DivU };
                Ok(self.push(kind, vec![a, b], rw))
            }
            BinOp::Rem => {
                let ct = lhs.ty.common(rhs.ty);
                let a = self.resize(l, lhs.ty.signed, ct.width);
                let b = self.resize(r, rhs.ty.signed, ct.width);
                let kind = if ct.signed { OpKind::RemS } else { OpKind::RemU };
                let full = self.push(kind, vec![a, b], ct.width);
                Ok(self.resize(full, ct.signed, rw))
            }
            BinOp::Shl => Ok(self.push(OpKind::Shl, vec![l, r], rw)),
            BinOp::Shr => {
                let kind = if lhs.ty.signed {
                    OpKind::ShrS
                } else {
                    OpKind::ShrU
                };
                Ok(self.push(kind, vec![l, r], rw))
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let ct = lhs.ty.common(rhs.ty);
                let a = self.resize(l, lhs.ty.signed, ct.width);
                let b = self.resize(r, rhs.ty.signed, ct.width);
                let (kind, operands) = match (op, ct.signed) {
                    (BinOp::Eq, _) => (OpKind::Eq, vec![a, b]),
                    (BinOp::Ne, _) => (OpKind::Ne, vec![a, b]),
                    (BinOp::Lt, false) => (OpKind::Ult, vec![a, b]),
                    (BinOp::Lt, true) => (OpKind::Slt, vec![a, b]),
                    (BinOp::Le, false) => (OpKind::Ule, vec![a, b]),
                    (BinOp::Le, true) => (OpKind::Sle, vec![a, b]),
                    (BinOp::Gt, false) => (OpKind::Ult, vec![b, a]),
                    (BinOp::Gt, true) => (OpKind::Slt, vec![b, a]),
                    (BinOp::Ge, false) => (OpKind::Ule, vec![b, a]),
                    (BinOp::Ge, true) => (OpKind::Sle, vec![b, a]),
                    _ => unreachable!(),
                };
                Ok(self.push(kind, operands, 1))
            }
            BinOp::LogAnd | BinOp::LogOr => {
                let a = self.boolify(l);
                let b = self.boolify(r);
                let kind = if op == BinOp::LogAnd {
                    OpKind::And
                } else {
                    OpKind::Or
                };
                Ok(self.push(kind, vec![a, b], 1))
            }
            BinOp::Concat => Ok(self.push(OpKind::Concat, vec![l, r], rw)),
        }
    }

    fn inline_call(&mut self, callee: &str, args: &[Expr]) -> Result<ValueId> {
        if self.call_stack.iter().any(|n| n == callee) {
            return self.err(format!("recursive call to function `{callee}`"));
        }
        let module = self.module;
        let func = module.function(callee).ok_or_else(|| LowerError {
            unit: self.unit.clone(),
            message: format!("unknown function `{callee}`"),
        })?;
        let mut arg_values = Vec::new();
        for a in args {
            arg_values.push(self.lower_expr(a)?);
        }
        self.call_stack.push(callee.to_string());
        self.push_frame(&func.locals);
        for (param, value) in func.params.iter().zip(arg_values) {
            self.frame().locals.insert(param.0, value);
        }
        let result = self.lower_block(&func.body);
        let frame = self.frames.pop().expect("function frame");
        self.call_stack.pop();
        result?;
        match frame.ret {
            Some(v) => Ok(v),
            None => self.err(format!(
                "function `{callee}` did not return a value (return must be the last statement)"
            )),
        }
    }

    // ---- finalization ---------------------------------------------------------

    fn finish(mut self) -> Result<Graph> {
        self.merge_pending_writes()?;
        self.raw_push(OpKind::Sink, Vec::new(), 0, None);
        let graph = Graph {
            name: self.unit.clone(),
            kind: self.kind.clone(),
            ops: self.ops,
        };
        let graph = dce(graph);
        graph.validate().map_err(|e| LowerError {
            unit: e.graph,
            message: e.message,
        })?;
        Ok(graph)
    }

    fn merge_pending_writes(&mut self) -> Result<()> {
        let pending = std::mem::take(&mut self.pending);
        // Group by target, preserving program order within each group.
        let mut order: Vec<WriteTarget> = Vec::new();
        let mut groups: HashMap<WriteTarget, Vec<PendingWrite>> = HashMap::new();
        for w in pending {
            if !groups.contains_key(&w.target) {
                order.push(w.target.clone());
            }
            groups.entry(w.target.clone()).or_default().push(w);
        }
        for target in order {
            let writes = groups.remove(&target).expect("group exists");
            let addressed = matches!(target, WriteTarget::Mem) || {
                match &target {
                    WriteTarget::Cust(name) => {
                        // Multi-element custom registers cannot merge writes
                        // to different dynamic indices.
                        self.module
                            .registers
                            .iter()
                            .find(|r| r.name == *name)
                            .map(|r| r.elems > 1)
                            .unwrap_or(false)
                    }
                    _ => false,
                }
            };
            let (value, addr, pred, in_spawn) = if addressed && writes.len() > 1 {
                return self.err(format!(
                    "{} is written more than once; SCAIE-V allows one use of each sub-interface \
                     per instruction",
                    describe_target(&target)
                ));
            } else if writes.len() == 1 {
                let w = &writes[0];
                (w.value, w.addr, w.pred, w.in_spawn)
            } else {
                // Last-write-wins merge for scalar targets.
                let mut acc_value = writes[0].value;
                let mut acc_pred = writes[0].pred;
                let mut in_spawn = writes[0].in_spawn;
                let addr = writes[0].addr;
                for w in &writes[1..] {
                    in_spawn |= w.in_spawn;
                    match w.pred {
                        None => {
                            acc_value = w.value;
                            acc_pred = None;
                        }
                        Some(p) => {
                            let width = self.width_of(acc_value);
                            acc_value =
                                self.push(OpKind::Mux, vec![p, w.value, acc_value], width);
                            acc_pred = acc_pred.map(|p0| self.push(OpKind::Or, vec![p, p0], 1));
                        }
                    }
                }
                (acc_value, addr, acc_pred, in_spawn)
            };
            // always-mode writes carry a mandatory valid bit (paper §3.2):
            // normalize unconditional writes to an explicit true predicate.
            let pred = if self.kind == GraphKind::Always && pred.is_none() {
                Some(self.intern_const(ApInt::one(1)))
            } else {
                pred
            };
            let (kind, operands) = match &target {
                WriteTarget::Rd => (OpKind::WriteRd, vec![value]),
                WriteTarget::Pc => (OpKind::WritePc, vec![value]),
                WriteTarget::Mem => (
                    OpKind::WriteMem,
                    vec![addr.expect("memory writes carry an address"), value],
                ),
                WriteTarget::Cust(name) => (
                    OpKind::WriteCustReg(name.clone()),
                    vec![addr.expect("custom-register writes carry an address"), value],
                ),
            };
            let saved = self.in_spawn;
            self.in_spawn = in_spawn;
            self.raw_push(kind, operands, 0, pred);
            self.in_spawn = saved;
        }
        Ok(())
    }
}

fn describe_target(t: &WriteTarget) -> String {
    match t {
        WriteTarget::Rd => "the WrRD sub-interface".into(),
        WriteTarget::Pc => "the WrPC sub-interface".into(),
        WriteTarget::Mem => "the WrMem sub-interface".into(),
        WriteTarget::Cust(name) => format!("custom register `{name}`"),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GprPort {
    Rs1,
    Rs2,
    Rd,
}

/// Dead-code elimination: keeps only operations transitively reachable from
/// side-effecting operations, then compacts and remaps value ids.
pub fn dce(graph: Graph) -> Graph {
    let n = graph.ops.len();
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    for (i, op) in graph.ops.iter().enumerate() {
        if op.kind.has_side_effect() {
            live[i] = true;
            stack.push(i);
        }
    }
    while let Some(i) = stack.pop() {
        let op = &graph.ops[i];
        for &v in op.operands.iter().chain(op.pred.iter()) {
            if !live[v.0] {
                live[v.0] = true;
                stack.push(v.0);
            }
        }
    }
    let mut remap = vec![usize::MAX; n];
    let mut ops = Vec::new();
    for (i, op) in graph.ops.into_iter().enumerate() {
        if !live[i] {
            continue;
        }
        remap[i] = ops.len();
        let mut op = op;
        for v in op.operands.iter_mut() {
            *v = ValueId(remap[v.0]);
        }
        if let Some(p) = op.pred.as_mut() {
            *p = ValueId(remap[p.0]);
        }
        ops.push(op);
    }
    Graph {
        name: graph.name,
        kind: graph.kind,
        ops,
    }
}
