//! Differential X-propagation oracle tests: the full evaluation matrix is
//! clean, and a deliberately reintroduced unguarded division is caught by
//! both the static lint and the dynamic oracle.

use longnail::driver::{builtin_datasheet, eval_datasheets};
use longnail::{isax_lib, xcheck_compiled, xcheck_compiled_with, Longnail, XCheckOptions};
use rtl::EmitOptions;

#[test]
fn full_evaluation_matrix_is_xcheck_clean() {
    let ln = Longnail::new();
    let matrix = ln.compile_matrix(&isax_lib::all_isaxes(), &eval_datasheets(), 4);
    let mut cells = 0;
    for (entry, compiled) in matrix.compiled() {
        let report = xcheck_compiled(compiled);
        assert!(
            report.is_clean(),
            "{}×{}: {}\n{}",
            entry.isax,
            entry.core,
            report.summary(),
            report.problems().join("\n")
        );
        // Telemetry carries the per-unit counters.
        let jsonl = report.trace.to_jsonl();
        assert!(jsonl.contains("xcheck.cycles"), "{jsonl}");
        assert!(jsonl.contains("xcheck.mismatches"));
        cells += 1;
    }
    assert_eq!(cells, 32, "all 8 ISAXes x 4 cores must compile");
}

/// An ISAX exercising every division flavor, for the regression below.
const DIVIDER: &str = r#"
import "RV32I.core_desc";
InstructionSet X_DIV extends RV32I {
  instructions {
    xdivu {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b1011011;
      behavior: {
        unsigned<32> q = X[rs1] / X[rs2];
        unsigned<32> r = X[rs1] % X[rs2];
        X[rd] = q ^ r;
      }
    }
  }
}
"#;

#[test]
fn reintroduced_unguarded_division_is_caught_by_lint_and_oracle() {
    let ln = Longnail::new();
    let ds = builtin_datasheet("ORCA").unwrap();
    let compiled = ln.compile(DIVIDER, "X_DIV", &ds).unwrap();
    assert!(
        compiled
            .graphs
            .iter()
            .any(|g| g.verilog.contains("== 32'd0) ?")),
        "emitted SystemVerilog must carry the zero-divisor guard"
    );

    // With the (default) guarded emission the unit is clean: the guard
    // makes `/`/`%` total with exactly the interpreter's convention.
    let report = xcheck_compiled(&compiled);
    assert!(report.is_clean(), "{}", report.problems().join("\n"));

    // Simulate an emitter regression that drops the guard: the static
    // lint flags every unguarded DivU/RemU, and the dynamic oracle sees X
    // manufactured from fully-known inputs escape to the outputs on the
    // zero-divisor stimulus cycles.
    let raw = XCheckOptions {
        emit: EmitOptions {
            guard_division: false,
            ..EmitOptions::default()
        },
        ..XCheckOptions::default()
    };
    let report = xcheck_compiled_with(&compiled, &raw);
    assert!(!report.is_clean());
    assert!(
        report.lint_findings() >= 2,
        "expected DivU and RemU hazards, got {}",
        report.problems().join("\n")
    );
    assert!(
        report.x_output_bits() > 0,
        "oracle must observe X escaping to outputs: {}",
        report.summary()
    );
    // X-pessimism never fabricates a value disagreement.
    assert_eq!(report.mismatches(), 0, "{}", report.problems().join("\n"));
}
