//! Oracle-gated netlist optimization (ROADMAP: "An oracle-backed netlist
//! optimization pipeline").
//!
//! A small pass manager drives five rewrites over [`Module`] to a fixpoint:
//!
//! * [`fold`] — constant folding and propagation through every [`CombOp`],
//!   plus algebraic identities (`x+0`, `x&x`, double negation, extend/trunc
//!   chains, constant-index ROM reads),
//! * [`cse`] — common-subexpression elimination over hash-consed
//!   `Driver::Comb`/`Driver::Const`/`Driver::Rom` keys,
//! * [`mux`] — mux-tree flattening (same-condition nesting, identical arms,
//!   inverted selects, 1-bit select muxes),
//! * [`strength`] — strength reduction of `Mul`/`DivU`/`RemU` by powers of
//!   two into free-wiring shifts, masks, and extracts,
//! * [`narrow`] — bitwidth narrowing driven by the value/known planes of
//!   [`crate::xsim`]: an abstract evaluation with all-X inputs/registers
//!   proves upper bits dead, ops are re-emitted at their live width and
//!   users patched with `ZExt` (`-O2` only).
//!
//! Every pass preserves the two-valued [`crate::interp`] semantics of the
//! output ports exactly, and may only *refine* the four-state
//! [`crate::xsim`] semantics (an X bit may become known, a known bit never
//! changes value or becomes X). The pass manager re-validates the netlist
//! after every pass and the pipeline gates the result three ways: the
//! structural lint must stay clean, [`verify_equivalent`] runs the
//! original and optimized modules in lockstep (including X stimulus), and
//! the full matrix re-checks under `lnc --xcheck`.

use crate::interp::Simulator;
use crate::netlist::{CombOp, Driver, Module, NetId};
use crate::verilog::EmitOptions;
use crate::xsim::{XVal, Xsim};
use bits::ApInt;
use std::collections::BTreeMap;
use std::collections::HashMap;

mod cse;
mod fold;
mod mux;
mod narrow;
mod strength;

/// Optimization effort, mirroring `lnc --opt-level {0,1,2}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// No optimization: the netlist is emitted as built.
    O0,
    /// Fold, CSE, mux flattening, strength reduction.
    O1,
    /// `O1` plus bitwidth narrowing.
    O2,
}

impl OptLevel {
    /// Parses a numeric level (the `--opt-level` argument).
    pub fn from_level(level: u8) -> Option<OptLevel> {
        match level {
            0 => Some(OptLevel::O0),
            1 => Some(OptLevel::O1),
            2 => Some(OptLevel::O2),
            _ => None,
        }
    }

    /// The numeric level.
    pub fn level(self) -> u8 {
        match self {
            OptLevel::O0 => 0,
            OptLevel::O1 => 1,
            OptLevel::O2 => 2,
        }
    }
}

/// What the optimizer did: per-pass rewrite counters (deterministic — the
/// bench and CI compare them against checked-in expectations) and net
/// counts before/after.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Fixpoint iterations executed.
    pub iterations: u32,
    /// Rewrites per pass, accumulated across iterations.
    pub rewrites: BTreeMap<&'static str, u64>,
    /// Net count of the input module.
    pub nets_before: usize,
    /// Net count of the optimized module.
    pub nets_after: usize,
}

impl OptReport {
    /// Total rewrites across all passes.
    pub fn total(&self) -> u64 {
        self.rewrites.values().sum()
    }

    fn record(&mut self, pass: &'static str, count: u64) {
        if count > 0 {
            *self.rewrites.entry(pass).or_insert(0) += count;
        }
    }
}

/// One optimizer pass, individually runnable via [`run_pass`] — property
/// tests drive each pass in isolation as well as the full pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Constant folding/propagation and algebraic identities.
    Fold,
    /// Common-subexpression elimination.
    Cse,
    /// Mux-tree flattening.
    Mux,
    /// Strength reduction by powers of two.
    Strength,
    /// Bitwidth narrowing via the xsim known planes (`-O2`).
    Narrow,
    /// Dead-net (and dead-ROM) elimination.
    Dce,
}

impl Pass {
    /// Every pass, in pipeline order.
    pub const ALL: [Pass; 6] = [
        Pass::Fold,
        Pass::Cse,
        Pass::Mux,
        Pass::Strength,
        Pass::Narrow,
        Pass::Dce,
    ];

    /// The pass's rewrite-counter key in [`OptReport::rewrites`].
    pub fn name(self) -> &'static str {
        match self {
            Pass::Fold => "fold",
            Pass::Cse => "cse",
            Pass::Mux => "mux",
            Pass::Strength => "strength",
            Pass::Narrow => "narrow",
            Pass::Dce => "dce",
        }
    }
}

/// Runs a single pass once over `module`, returning the rewritten module
/// and its rewrite count. The output is re-validated exactly like the
/// pipeline does after every pass.
///
/// # Errors
///
/// If the pass produces a structurally invalid netlist (an optimizer bug).
pub fn run_pass(module: &Module, pass: Pass, opts: &EmitOptions) -> Result<(Module, u64), String> {
    let mut m = module.clone();
    let count = match pass {
        Pass::Fold => fold::run(&mut m),
        Pass::Cse => cse::run(&mut m),
        Pass::Mux => mux::run(&mut m),
        Pass::Strength => match strength::run(&m) {
            Some((reduced, count)) => {
                m = reduced;
                count
            }
            None => 0,
        },
        Pass::Narrow => match narrow::run(&m, opts) {
            Some((narrowed, count)) => {
                m = narrowed;
                count
            }
            None => 0,
        },
        Pass::Dce => dce(&mut m),
    };
    check(&m, pass.name())?;
    Ok((m, count))
}

/// Upper bound on fixpoint iterations; convergence is typically reached in
/// two or three. The result is correct (just less optimized) if the cap
/// ever bites.
const MAX_ITERATIONS: u32 = 8;

/// Optimizes `module` at `level`. `opts` selects the emission semantics
/// the four-state analyses model (the same options the module will be
/// emitted with).
///
/// # Errors
///
/// If a pass produces a structurally invalid netlist — an optimizer bug,
/// reported so the caller can fall back to the unoptimized module.
pub fn optimize(
    module: &Module,
    level: OptLevel,
    opts: &EmitOptions,
) -> Result<(Module, OptReport), String> {
    let mut report = OptReport {
        nets_before: module.nets.len(),
        nets_after: module.nets.len(),
        ..OptReport::default()
    };
    let mut m = module.clone();
    if level == OptLevel::O0 {
        return Ok((m, report));
    }
    for _ in 0..MAX_ITERATIONS {
        let mut changed = 0;
        let folded = fold::run(&mut m);
        check(&m, "fold")?;
        report.record("fold", folded);
        changed += folded;

        let shared = cse::run(&mut m);
        check(&m, "cse")?;
        report.record("cse", shared);
        changed += shared;

        let flattened = mux::run(&mut m);
        check(&m, "mux")?;
        report.record("mux", flattened);
        changed += flattened;

        if let Some((reduced, count)) = strength::run(&m) {
            m = reduced;
            check(&m, "strength")?;
            report.record("strength", count);
            changed += count;
        }

        if level >= OptLevel::O2 {
            if let Some((narrowed, count)) = narrow::run(&m, opts) {
                m = narrowed;
                check(&m, "narrow")?;
                report.record("narrow", count);
                changed += count;
            }
        }

        let removed = dce(&mut m);
        check(&m, "dce")?;
        report.record("dce", removed);

        report.iterations += 1;
        if changed == 0 {
            break;
        }
    }
    report.nets_after = m.nets.len();
    Ok((m, report))
}

fn check(m: &Module, pass: &str) -> Result<(), String> {
    m.validate()
        .map_err(|e| format!("optimizer pass `{pass}` broke the netlist: {e}"))
}

/// Net-reference replacement map built by the in-place passes: aliasing a
/// net redirects every later user to an equivalent, earlier net.
pub(crate) struct Replacements {
    repl: Vec<NetId>,
    count: u64,
}

impl Replacements {
    pub(crate) fn new(nets: usize) -> Replacements {
        Replacements {
            repl: (0..nets).map(NetId).collect(),
            count: 0,
        }
    }

    /// Follows alias chains to the canonical net.
    pub(crate) fn resolve(&self, id: NetId) -> NetId {
        let mut cur = id;
        while self.repl[cur.0] != cur {
            cur = self.repl[cur.0];
        }
        cur
    }

    /// Declares net `from` an alias of (earlier, equal-width) `to`.
    pub(crate) fn alias(&mut self, from: usize, to: NetId) {
        debug_assert!(self.resolve(to).0 < from, "alias must point backward");
        self.repl[from] = to;
        self.count += 1;
    }

    pub(crate) fn aliased(&self) -> u64 {
        self.count
    }

    /// Rewrites every net reference in `m` (comb args, ROM indices,
    /// register next/enable, outputs) through the alias map. Safe for the
    /// forward references registers may hold.
    pub(crate) fn apply(&self, m: &mut Module) {
        for net in &mut m.nets {
            match &mut net.driver {
                Driver::Comb { args, .. } => {
                    for a in args {
                        *a = self.resolve(*a);
                    }
                }
                Driver::Rom { index, .. } => *index = self.resolve(*index),
                Driver::Reg { next, enable, .. } => {
                    *next = self.resolve(*next);
                    if let Some(e) = enable {
                        *e = self.resolve(*e);
                    }
                }
                Driver::Input { .. } | Driver::Const(_) => {}
            }
        }
        for (_, net) in &mut m.outputs {
            *net = self.resolve(*net);
        }
    }
}

/// The constant value driving `id`, if any.
pub(crate) fn as_const(m: &Module, id: NetId) -> Option<&ApInt> {
    match &m.nets[id.0].driver {
        Driver::Const(c) => Some(c),
        _ => None,
    }
}

/// Evaluates one combinational operator on constant operands with the
/// two-valued interpreter's semantics (the compiler's reference
/// semantics; see `crate::interp`).
pub(crate) fn eval_const_comb(op: CombOp, args: &[&ApInt], lo: u32, width: u32) -> ApInt {
    let a = |k: usize| args[k];
    match op {
        CombOp::Add => a(0).add(a(1)),
        CombOp::Sub => a(0).sub(a(1)),
        CombOp::Mul => a(0).mul(a(1)),
        CombOp::DivU => a(0).udiv(a(1)),
        CombOp::DivS => a(0).sdiv(a(1)),
        CombOp::RemU => a(0).urem(a(1)),
        CombOp::RemS => a(0).srem(a(1)),
        CombOp::And => a(0).and(a(1)),
        CombOp::Or => a(0).or(a(1)),
        CombOp::Xor => a(0).xor(a(1)),
        CombOp::Not => a(0).not(),
        CombOp::Shl => a(0).shl(a(1)),
        CombOp::ShrU => a(0).lshr(a(1)),
        CombOp::ShrS => a(0).ashr(a(1)),
        CombOp::Eq => ApInt::from_bool(a(0) == a(1)),
        CombOp::Ne => ApInt::from_bool(a(0) != a(1)),
        CombOp::Ult => ApInt::from_bool(a(0).ult(a(1))),
        CombOp::Ule => ApInt::from_bool(a(0).ule(a(1))),
        CombOp::Slt => ApInt::from_bool(a(0).slt(a(1))),
        CombOp::Sle => ApInt::from_bool(a(0).sle(a(1))),
        CombOp::Mux => {
            if a(0).is_zero() {
                a(2).clone()
            } else {
                a(1).clone()
            }
        }
        CombOp::Concat => a(0).concat(a(1)),
        CombOp::Replicate => a(0).replicate(lo),
        CombOp::Extract => {
            let base = a(0);
            let need = lo + width;
            let padded = if base.width() < need {
                base.zext(need)
            } else {
                base.clone()
            };
            padded.extract(lo, width)
        }
        CombOp::ExtractDyn => a(0).lshr(a(1)).zext_or_trunc(width),
        CombOp::ZExt => a(0).zext(width),
        CombOp::SExt => a(0).sext(width),
        CombOp::Trunc => a(0).trunc(width),
    }
}

/// Dead-net elimination: drops every net not reachable from an output,
/// compacting ids (and ROM tables no surviving net reads). Returns the
/// number of nets removed.
pub(crate) fn dce(m: &mut Module) -> u64 {
    let n = m.nets.len();
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = m.outputs.iter().map(|&(_, id)| id.0).collect();
    while let Some(i) = stack.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        match &m.nets[i].driver {
            Driver::Comb { args, .. } => stack.extend(args.iter().map(|a| a.0)),
            Driver::Rom { index, .. } => stack.push(index.0),
            Driver::Reg { next, enable, .. } => {
                stack.push(next.0);
                if let Some(e) = enable {
                    stack.push(e.0);
                }
            }
            Driver::Input { .. } | Driver::Const(_) => {}
        }
    }
    let removed = live.iter().filter(|&&l| !l).count() as u64;
    if removed == 0 {
        return compact_roms(m);
    }
    let mut map = vec![NetId(0); n];
    let mut nets = Vec::with_capacity(n - removed as usize);
    for (i, net) in m.nets.iter().enumerate() {
        if live[i] {
            map[i] = NetId(nets.len());
            nets.push(net.clone());
        }
    }
    for net in &mut nets {
        match &mut net.driver {
            Driver::Comb { args, .. } => {
                for a in args {
                    *a = map[a.0];
                }
            }
            Driver::Rom { index, .. } => *index = map[index.0],
            Driver::Reg { next, enable, .. } => {
                *next = map[next.0];
                if let Some(e) = enable {
                    *e = map[e.0];
                }
            }
            Driver::Input { .. } | Driver::Const(_) => {}
        }
    }
    m.nets = nets;
    for (_, net) in &mut m.outputs {
        *net = map[net.0];
    }
    removed + compact_roms(m)
}

/// Drops ROM tables no net reads, remapping `Driver::Rom` indices.
fn compact_roms(m: &mut Module) -> u64 {
    let mut used = vec![false; m.roms.len()];
    for net in &m.nets {
        if let Driver::Rom { rom, .. } = &net.driver {
            used[*rom] = true;
        }
    }
    let removed = used.iter().filter(|&&u| !u).count() as u64;
    if removed == 0 {
        return 0;
    }
    let mut map = vec![0usize; m.roms.len()];
    let mut roms = Vec::with_capacity(m.roms.len() - removed as usize);
    for (i, rom) in m.roms.iter().enumerate() {
        if used[i] {
            map[i] = roms.len();
            roms.push(rom.clone());
        }
    }
    m.roms = roms;
    for net in &mut m.nets {
        if let Driver::Rom { rom, .. } = &mut net.driver {
            *rom = map[*rom];
        }
    }
    removed
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn rand_apint(state: &mut u64, width: u32) -> ApInt {
    let mut v = ApInt::zero(width);
    let mut pos = 0;
    while pos < width {
        let word = splitmix64(state);
        let take = (width - pos).min(64);
        for j in 0..take {
            v.set_bit(pos + j, (word >> j) & 1 == 1);
        }
        pos += take;
    }
    v
}

/// The runtime half of the oracle gate: drives the original and optimized
/// modules in lockstep over `cycles` cycles of deterministic pseudo-random
/// stimulus and checks
///
/// 1. two-valued output equality (the interpreter semantics are the
///    compiler's contract), and
/// 2. four-state output *refinement* under partially-X stimulus: every
///    output bit the original resolves to a known value must be known with
///    the same value in the optimized module (optimization may remove X,
///    never introduce or change it).
///
/// # Errors
///
/// A description of the first divergence.
pub fn verify_equivalent(
    original: &Module,
    optimized: &Module,
    opts: &EmitOptions,
    cycles: u32,
) -> Result<(), String> {
    let mut interp_a = Simulator::new(original.clone());
    let mut interp_b = Simulator::new(optimized.clone());
    let mut xsim_a = Xsim::with_options(original.clone(), *opts);
    let mut xsim_b = Xsim::with_options(optimized.clone(), *opts);
    xsim_a.reset();
    xsim_b.reset();
    let mut state = 0x6c6e_6770_7470_0001u64 ^ u64::from(cycles);
    for cycle in 0..cycles {
        let mut known = HashMap::new();
        let mut fourstate = HashMap::new();
        for port in &original.ports {
            if port.dir != crate::netlist::PortDir::Input {
                continue;
            }
            let value = rand_apint(&mut state, port.width);
            known.insert(port.name.clone(), value.clone());
            // Every third cycle knocks a pseudo-random subset of bits to X
            // so refinement is exercised, not just the all-known case.
            let mask = if cycle % 3 == 2 {
                rand_apint(&mut state, port.width)
            } else {
                ApInt::ones(port.width)
            };
            fourstate.insert(
                port.name.clone(),
                XVal::from_planes(value.and(&mask), mask),
            );
        }
        let out_a = interp_a.step(&known);
        let out_b = interp_b.step(&known);
        for (name, va) in &out_a {
            let vb = out_b
                .get(name)
                .ok_or_else(|| format!("output `{name}` missing from optimized module"))?;
            if va != vb {
                return Err(format!(
                    "cycle {cycle}: output `{name}` diverged: original={va:x} optimized={vb:x}"
                ));
            }
        }
        let x_a = xsim_a.eval_x(&fourstate);
        let x_b = xsim_b.eval_x(&fourstate);
        for (name, va) in &x_a {
            let vb = x_b
                .get(name)
                .ok_or_else(|| format!("output `{name}` missing from optimized module"))?;
            let disagree = va.value_plane().xor(vb.value_plane());
            let bad = va
                .known_plane()
                .and(&vb.known_plane().not().or(&disagree));
            if !bad.is_zero() {
                return Err(format!(
                    "cycle {cycle}: output `{name}` lost known bits under X stimulus: \
                     original={va} optimized={vb}"
                ));
            }
        }
        xsim_a.clock();
        xsim_b.clock();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lint_module;
    use crate::netlist::PortDir;

    /// a, b 16-bit in; builds a little expression DAG with redundancy,
    /// constants, pow-2 multiplies, and a register.
    fn sample_module() -> Module {
        let mut m = Module::new("t");
        let a = m.add_port("a", PortDir::Input, 16);
        let b = m.add_port("b", PortDir::Input, 16);
        let o = m.add_port("o", PortDir::Output, 16);
        let na = m.add_net(Driver::Input { port: a }, 16, "a");
        let nb = m.add_net(Driver::Input { port: b }, 16, "b");
        let zero = m.add_net(Driver::Const(ApInt::zero(16)), 16, "zero");
        let four = m.add_net(Driver::Const(ApInt::from_u64(4, 16)), 16, "four");
        // a + 0 — folds to a.
        let a0 = m.add_net(
            Driver::Comb {
                op: CombOp::Add,
                args: vec![na, zero],
                lo: 0,
            },
            16,
            "a0",
        );
        // (a + 0) * 4 — strength-reduces to a shift.
        let m4 = m.add_net(
            Driver::Comb {
                op: CombOp::Mul,
                args: vec![a0, four],
                lo: 0,
            },
            16,
            "m4",
        );
        // b ^ b twice — folds to 0, then both CSE away.
        let x1 = m.add_net(
            Driver::Comb {
                op: CombOp::Xor,
                args: vec![nb, nb],
                lo: 0,
            },
            16,
            "x1",
        );
        let x2 = m.add_net(
            Driver::Comb {
                op: CombOp::Xor,
                args: vec![nb, nb],
                lo: 0,
            },
            16,
            "x2",
        );
        let s1 = m.add_net(
            Driver::Comb {
                op: CombOp::Or,
                args: vec![m4, x1],
                lo: 0,
            },
            16,
            "s1",
        );
        let s2 = m.add_net(
            Driver::Comb {
                op: CombOp::Or,
                args: vec![s1, x2],
                lo: 0,
            },
            16,
            "s2",
        );
        let r = m.add_net(
            Driver::Reg {
                next: s2,
                enable: None,
                init: ApInt::zero(16),
            },
            16,
            "r",
        );
        m.connect_output(o, r);
        m.validate().unwrap();
        m
    }

    #[test]
    fn o0_is_identity() {
        let m = sample_module();
        let (out, report) = optimize(&m, OptLevel::O0, &EmitOptions::default()).unwrap();
        assert_eq!(out.nets.len(), m.nets.len());
        assert_eq!(report.total(), 0);
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn fixpoint_collapses_the_sample_and_stays_equivalent() {
        let m = sample_module();
        for level in [OptLevel::O1, OptLevel::O2] {
            let (out, report) = optimize(&m, level, &EmitOptions::default()).unwrap();
            out.validate().unwrap();
            lint_module(&out).unwrap();
            assert!(report.total() > 0, "{level:?}: {report:?}");
            assert!(
                out.nets.len() < m.nets.len(),
                "{level:?}: {} -> {}",
                m.nets.len(),
                out.nets.len()
            );
            // The Mul must be gone (strength-reduced to wiring).
            assert!(
                !out.nets.iter().any(|n| matches!(
                    n.driver,
                    Driver::Comb {
                        op: CombOp::Mul,
                        ..
                    }
                )),
                "{level:?} kept the multiply"
            );
            verify_equivalent(&m, &out, &EmitOptions::default(), 32).unwrap();
        }
    }

    #[test]
    fn counters_are_deterministic() {
        let m = sample_module();
        let (_, r1) = optimize(&m, OptLevel::O2, &EmitOptions::default()).unwrap();
        let (_, r2) = optimize(&m, OptLevel::O2, &EmitOptions::default()).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn verify_flags_a_wrong_rewrite() {
        let m = sample_module();
        let mut broken = m.clone();
        // "Optimize" the Or into an And — verify must catch it.
        for net in &mut broken.nets {
            if let Driver::Comb { op, .. } = &mut net.driver {
                if *op == CombOp::Or {
                    *op = CombOp::And;
                }
            }
        }
        let err = verify_equivalent(&m, &broken, &EmitOptions::default(), 32).unwrap_err();
        assert!(err.contains("diverged") || err.contains("lost known bits"), "{err}");
    }

    #[test]
    fn dce_drops_unreachable_nets_and_roms() {
        let mut m = Module::new("t");
        let a = m.add_port("a", PortDir::Input, 8);
        let o = m.add_port("o", PortDir::Output, 8);
        let na = m.add_net(Driver::Input { port: a }, 8, "a");
        m.roms.push(crate::netlist::RomData {
            name: "dead".into(),
            width: 8,
            contents: vec![ApInt::zero(8); 4],
        });
        let idx = m.add_net(Driver::Const(ApInt::zero(8)), 8, "idx");
        let _dead_read = m.add_net(Driver::Rom { rom: 0, index: idx }, 8, "dead_read");
        let keep = m.add_net(
            Driver::Comb {
                op: CombOp::Not,
                args: vec![na],
                lo: 0,
            },
            8,
            "keep",
        );
        m.connect_output(o, keep);
        let removed = dce(&mut m);
        assert_eq!(removed, 3, "idx, dead_read, dead rom");
        assert_eq!(m.nets.len(), 2);
        assert!(m.roms.is_empty());
        m.validate().unwrap();
    }

    #[test]
    fn opt_level_parses_round_trip() {
        for n in 0..=2u8 {
            assert_eq!(OptLevel::from_level(n).unwrap().level(), n);
        }
        assert_eq!(OptLevel::from_level(3), None);
    }
}
